// Package plants defines the benchmark plants used throughout the
// reproduction: the unstable SISO system of Table I, the permanent
// magnet synchronous motor of Table II, and a handful of classic
// textbook plants used by the examples and tests.
//
// The paper does not reprint the numeric plant matrices (the PMSM is
// borrowed from [18, Example 2]); the models here are standard
// parameterizations chosen to exercise the same code paths and
// timescales — see DESIGN.md, "Substitutions".
package plants

import (
	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
)

// Unstable returns the open-loop unstable second-order SISO plant used
// for the PI experiment (Table I): poles at ≈ +3.6 and -5.6 rad/s, so a
// 10 ms control period samples the unstable mode ~28× per time
// constant — fast enough for PI control, slow enough that extra delays
// of a few sampling periods visibly hurt.
//
//	ẋ = [ 0   1; 20  -2 ] x + [0; 1] u,   y = x₁
func Unstable() *lti.System {
	return lti.MustSystem(
		mat.FromRows([][]float64{
			{0, 1},
			{20, -2},
		}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
}

// PMSMParams collects the physical parameters of the permanent magnet
// synchronous motor model.
type PMSMParams struct {
	R      float64 // stator resistance [Ω]
	Ld, Lq float64 // d/q axis inductances [H]
	Psi    float64 // permanent magnet flux linkage [Wb]
	Pp     float64 // pole pairs
	J      float64 // rotor inertia [kg·m²]
	B      float64 // viscous friction [N·m·s]
}

// DefaultPMSMParams returns typical small-drive values giving
// electrical modes of a few hundred rad/s — the regime where the
// paper's 50 µs control period is the natural choice.
func DefaultPMSMParams() PMSMParams {
	return PMSMParams{
		R:   0.5,
		Ld:  1e-3,
		Lq:  1e-3,
		Psi: 0.1,
		Pp:  3,
		J:   1e-4,
		B:   1e-4,
	}
}

// PMSM returns the dq-frame linearization (about standstill) of a
// permanent magnet synchronous motor, the Table II plant. States are
// [i_d, i_q, ω]; inputs are the dq voltages [v_d, v_q]; all states are
// measured (the paper's LQG example uses the state-feedback form of
// §IV-B with e[k] = x[k]).
//
//	di_d/dt = (-R i_d + v_d)/L_d
//	di_q/dt = (-R i_q - ψ ω + v_q)/L_q
//	dω/dt   = (1.5 p ψ i_q - B ω)/J
func PMSM(p PMSMParams) *lti.System {
	a := mat.FromRows([][]float64{
		{-p.R / p.Ld, 0, 0},
		{0, -p.R / p.Lq, -p.Psi / p.Lq},
		{0, 1.5 * p.Pp * p.Psi / p.J, -p.B / p.J},
	})
	b := mat.FromRows([][]float64{
		{1 / p.Ld, 0},
		{0, 1 / p.Lq},
		{0, 0},
	})
	return lti.MustSystem(a, b, mat.Eye(3))
}

// PMSMCurrentSensed is the PMSM with only the two phase currents
// measured (ω must be estimated) — used to exercise the observer-based
// LQG path.
func PMSMCurrentSensed(p PMSMParams) *lti.System {
	full := PMSM(p)
	c := mat.FromRows([][]float64{
		{1, 0, 0},
		{0, 1, 0},
	})
	return lti.MustSystem(full.A, full.B, c)
}

// DoubleIntegrator returns ẍ = u with position output — the canonical
// quickstart plant.
func DoubleIntegrator() *lti.System {
	return lti.MustSystem(
		mat.FromRows([][]float64{{0, 1}, {0, 0}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
}

// DoubleIntegratorFullState is the double integrator with both states
// measured, for state-feedback designs.
func DoubleIntegratorFullState() *lti.System {
	return lti.MustSystem(
		mat.FromRows([][]float64{{0, 1}, {0, 0}}),
		mat.ColVec(0, 1),
		mat.Eye(2),
	)
}

// DCMotor returns a two-state DC motor (current, speed) with speed
// output: a stable, well-damped SISO plant.
func DCMotor() *lti.System {
	const (
		ra = 1.0  // armature resistance [Ω]
		la = 0.5  // armature inductance [H]
		km = 0.01 // torque constant
		j  = 0.01 // inertia
		b  = 0.1  // friction
	)
	return lti.MustSystem(
		mat.FromRows([][]float64{
			{-ra / la, -km / la},
			{km / j, -b / j},
		}),
		mat.ColVec(1/la, 0),
		mat.RowVec(0, 1),
	)
}

// InvertedPendulum returns the linearized cart-pole around the upright
// equilibrium with full state output [p, ṗ, θ, θ̇] — a classic
// unstable MIMO-state benchmark for state-feedback designs.
func InvertedPendulum() *lti.System {
	const (
		mc = 0.5  // cart mass [kg]
		mp = 0.2  // pole mass [kg]
		l  = 0.3  // pole half-length [m]
		g  = 9.81 // gravity
	)
	denom := mc + mp
	a := mat.FromRows([][]float64{
		{0, 1, 0, 0},
		{0, 0, -mp * g / denom, 0},
		{0, 0, 0, 1},
		{0, 0, (denom) * g / (denom * l), 0},
	})
	b := mat.ColVec(0, 1/denom, 0, -1/(denom*l))
	return lti.MustSystem(a, b, mat.Eye(4))
}

// CruiseControl returns a first-order vehicle-speed plant
// v̇ = (-b v + u)/m with speed output.
func CruiseControl() *lti.System {
	const (
		m = 1000.0 // vehicle mass [kg]
		b = 50.0   // drag coefficient
	)
	return lti.MustSystem(
		mat.FromRows([][]float64{{-b / m}}),
		mat.FromRows([][]float64{{1 / m}}),
		mat.Eye(1),
	)
}
