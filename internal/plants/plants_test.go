package plants

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestUnstableIsUnstableAndControllable(t *testing.T) {
	p := Unstable()
	stable, err := p.IsStable()
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("Table I plant must be open-loop unstable")
	}
	if !p.IsControllable() {
		t.Fatal("Table I plant must be controllable")
	}
	if !p.IsObservable() {
		t.Fatal("Table I plant must be observable")
	}
	if p.InputDim() != 1 || p.OutputDim() != 1 {
		t.Fatal("Table I plant must be SISO")
	}
	// Unstable pole around +3.6 rad/s: slow relative to T = 10 ms.
	poles, err := p.Poles()
	if err != nil {
		t.Fatal(err)
	}
	maxRe := math.Inf(-1)
	for _, pl := range poles {
		if real(pl) > maxRe {
			maxRe = real(pl)
		}
	}
	if maxRe < 1 || maxRe > 20 {
		t.Fatalf("unstable pole at %v rad/s is out of the intended range", maxRe)
	}
}

func TestPMSMStructure(t *testing.T) {
	p := PMSM(DefaultPMSMParams())
	if p.StateDim() != 3 || p.InputDim() != 2 || p.OutputDim() != 3 {
		t.Fatalf("PMSM dims = (%d,%d,%d)", p.StateDim(), p.InputDim(), p.OutputDim())
	}
	stable, err := p.IsStable()
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("PMSM linearization should be open-loop stable (friction + resistance)")
	}
	if !p.IsControllable() {
		t.Fatal("PMSM must be controllable")
	}
	// Electrical modes of a few hundred rad/s justify T = 50 µs.
	poles, err := p.Poles()
	if err != nil {
		t.Fatal(err)
	}
	fastest := 0.0
	for _, pl := range poles {
		if m := cmplx.Abs(pl); m > fastest {
			fastest = m
		}
	}
	if fastest < 100 || fastest > 1e5 {
		t.Fatalf("fastest PMSM mode %v rad/s out of intended range", fastest)
	}
	// T = 50 µs must sample the fastest mode comfortably: ω·T << 1.
	if fastest*50e-6 > 0.5 {
		t.Fatalf("fastest mode %v too fast for T = 50 µs", fastest)
	}
}

func TestPMSMCurrentSensedObservable(t *testing.T) {
	p := PMSMCurrentSensed(DefaultPMSMParams())
	if p.OutputDim() != 2 {
		t.Fatalf("output dim = %d", p.OutputDim())
	}
	if !p.IsObservable() {
		t.Fatal("speed must be observable from the currents (back-EMF coupling)")
	}
}

func TestTextbookPlants(t *testing.T) {
	if s, _ := DoubleIntegrator().IsStable(); s {
		t.Fatal("double integrator reported stable")
	}
	if !DoubleIntegrator().IsControllable() {
		t.Fatal("double integrator must be controllable")
	}
	if DoubleIntegratorFullState().OutputDim() != 2 {
		t.Fatal("full-state double integrator output dim")
	}
	if s, _ := DCMotor().IsStable(); !s {
		t.Fatal("DC motor must be stable")
	}
	if !DCMotor().IsObservable() {
		t.Fatal("DC motor must be observable from speed")
	}
	if s, _ := InvertedPendulum().IsStable(); s {
		t.Fatal("inverted pendulum reported stable")
	}
	if !InvertedPendulum().IsControllable() {
		t.Fatal("inverted pendulum must be controllable")
	}
	if s, _ := CruiseControl().IsStable(); !s {
		t.Fatal("cruise control must be stable")
	}
}
