package lint_test

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"adaptivertc/internal/lint"
)

// TestDriverWorkerInvariance is the determinism contract of the
// parallel driver: the merged findings must be identical for every
// worker count, in content and in order.
func TestDriverWorkerInvariance(t *testing.T) {
	patterns := []string{
		"testdata/errcompare",
		"testdata/maporder",
		"testdata/ctxpropagate",
		"testdata/lockcopy",
		"testdata/goroleak",
		"testdata/floatcompare",
	}
	var ref []lint.Finding
	for _, workers := range []int{1, 2, 8} {
		res, err := lint.Run(".", patterns, lint.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Findings) == 0 {
			t.Fatalf("workers=%d: violation fixtures produced no findings", workers)
		}
		if res.Packages != len(patterns) {
			t.Fatalf("workers=%d: analyzed %d packages, want %d", workers, res.Packages, len(patterns))
		}
		if ref == nil {
			ref = res.Findings
			continue
		}
		if !reflect.DeepEqual(ref, res.Findings) {
			t.Errorf("workers=%d: findings differ from workers=1 run", workers)
		}
	}
}

// TestUnusedIgnore covers suppression accounting end to end: a used
// directive is silent, a stale one and a typo'd one are findings.
func TestUnusedIgnore(t *testing.T) {
	res, err := lint.Run(".", []string{"testdata/unusedignore"},
		lint.Options{Checks: []*lint.Check{lint.ErrCompare, lint.UnusedIgnore}})
	if err != nil {
		t.Fatal(err)
	}
	var stale, typo int
	for _, f := range res.Findings {
		if f.Check != lint.UnusedIgnore.Name {
			t.Errorf("unexpected non-accounting finding: %s", f)
			continue
		}
		switch {
		case strings.Contains(f.Message, "suppresses nothing"):
			stale++
		case strings.Contains(f.Message, "unregistered check"):
			typo++
		default:
			t.Errorf("unclassified accounting finding: %s", f)
		}
	}
	if stale != 1 || typo != 1 {
		t.Errorf("got %d stale + %d typo accounting findings, want 1 + 1:\n%v", stale, typo, res.Findings)
	}
}

// TestUnusedIgnoreNotRunStaysQuiet: without the check in the run set,
// no accounting happens — a subset run must not flag directives it
// cannot judge.
func TestUnusedIgnoreNotRunStaysQuiet(t *testing.T) {
	res, err := lint.Run(".", []string{"testdata/unusedignore"},
		lint.Options{Checks: []*lint.Check{lint.ErrCompare}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("errcompare-only run over the accounting fixture should be clean, got:\n%v", res.Findings)
	}
}

// TestBaselineRoundTrip: a baseline built from a run's findings
// filters exactly those findings; a stale entry surfaces as a
// "baseline" finding; an extra occurrence beyond the accepted count
// stays reported.
func TestBaselineRoundTrip(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := lint.Run(".", []string{"testdata/errcompare"}, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Findings) == 0 {
		t.Fatal("fixture produced no findings to baseline")
	}

	b := lint.NewBaseline(clean.Findings, loader.ModuleDir)
	res, err := lint.Run(".", []string{"testdata/errcompare"}, lint.Options{Baseline: b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("baselined run should be clean, got:\n%v", res.Findings)
	}
	if res.Baselined != len(clean.Findings) {
		t.Errorf("baselined %d findings, want %d", res.Baselined, len(clean.Findings))
	}

	// Persistence round-trip.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := lint.Run(".", []string{"testdata/errcompare"}, lint.Options{Baseline: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Findings) != 0 {
		t.Errorf("reloaded baseline should filter identically, got:\n%v", res2.Findings)
	}

	// A stale entry must surface rather than rot silently.
	withStale := &lint.Baseline{Entries: append(append([]lint.BaselineEntry(nil), b.Entries...),
		lint.BaselineEntry{File: "internal/lint/testdata/errcompare/errcompare.go", Check: "errcompare", Message: "finding fixed long ago"})}
	res3, err := lint.Run(".", []string{"testdata/errcompare"}, lint.Options{Baseline: withStale})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Findings) != 1 || res3.Findings[0].Check != "baseline" {
		t.Errorf("stale entry should produce exactly one baseline finding, got:\n%v", res3.Findings)
	}
}

// TestBaselineCountBounds: an entry accepts exactly Count occurrences;
// line drift must not change that (matching ignores position).
func TestBaselineCountBounds(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := lint.Run(".", []string{"testdata/errcompare"}, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := lint.NewBaseline(clean.Findings, loader.ModuleDir)

	// Decrement one entry's count: one occurrence must resurface.
	cut := *b
	cut.Entries = append([]lint.BaselineEntry(nil), b.Entries...)
	reduced := false
	for i := range cut.Entries {
		if cut.Entries[i].Count > 1 {
			cut.Entries[i].Count--
			reduced = true
			break
		}
	}
	if !reduced {
		t.Skip("no entry with count > 1 in fixture")
	}
	res, err := lint.Run(".", []string{"testdata/errcompare"}, lint.Options{Baseline: &cut})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Errorf("reducing one count by one should resurface exactly one finding, got %d:\n%v", len(res.Findings), res.Findings)
	}
}

// TestBaselineJSONStable: the serialized baseline is deterministic
// (sorted entries), so regenerating it on an unchanged tree is a
// no-op diff.
func TestBaselineJSONStable(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(".", []string{"testdata/errcompare", "testdata/maporder"}, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1 := lint.NewBaseline(res.Findings, loader.ModuleDir)
	b2 := lint.NewBaseline(res.Findings, loader.ModuleDir)
	j1, err := json.Marshal(b1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(b2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Error("baseline serialization is not deterministic")
	}
	for _, e := range b1.Entries {
		if strings.Contains(e.File, "\\") || filepath.IsAbs(e.File) {
			t.Errorf("baseline file %q is not module-relative slash form", e.File)
		}
	}
}
