package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NakedPanic flags panic calls in library packages (under internal/)
// whose argument is a bare string literal. Those panics fire on
// programmer error — dimension mismatches, empty inputs — and a
// message without the offending values (sizes, indexes) turns a
// one-glance fix into a debugging session. Either interpolate the
// dynamic context with fmt.Sprintf, or suppress with a reason when the
// condition genuinely has no dynamic data (e.g. "called with zero
// arguments").
var NakedPanic = &Check{
	Name: "nakedpanic",
	Doc:  "panic with a bare string literal and no dynamic context in internal/ packages",
	Run:  runNakedPanic,
}

func runNakedPanic(p *Pass) {
	if !strings.Contains(p.Pkg.ImportPath, "/internal/") {
		return
	}
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, ok := p.Info().Uses[id].(*types.Builtin); !ok || id.Name != "panic" {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				p.Reportf(call.Pos(), "panic with a bare string; include the offending values via fmt.Sprintf, or add //lint:ignore nakedpanic <reason> if no dynamic context exists")
			}
			return true
		})
	}
}
