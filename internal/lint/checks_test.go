package lint_test

import (
	"testing"

	"adaptivertc/internal/lint"
	"adaptivertc/internal/lint/linttest"
)

func TestFloatCompare(t *testing.T) {
	linttest.Run(t, "testdata/floatcompare", lint.FloatCompare)
}

func TestUnseededRand(t *testing.T) {
	linttest.Run(t, "testdata/unseededrand", lint.UnseededRand)
}

func TestUnseededRandMainPackage(t *testing.T) {
	linttest.Run(t, "testdata/unseededmain", lint.UnseededRand)
}

func TestMatAlias(t *testing.T) {
	linttest.Run(t, "testdata/matalias", lint.MatAlias)
}

func TestNakedPanic(t *testing.T) {
	linttest.Run(t, "testdata/nakedpanic", lint.NakedPanic)
}

func TestDroppedErr(t *testing.T) {
	linttest.Run(t, "testdata/droppederr", lint.DroppedErr)
}

func TestCtxLoop(t *testing.T) {
	linttest.Run(t, "testdata/ctxloop", lint.CtxLoop)
}

func TestHTTPServer(t *testing.T) {
	linttest.Run(t, "testdata/httpserver", lint.HTTPServer)
}

func TestClientTimeout(t *testing.T) {
	linttest.Run(t, "testdata/clienttimeout", lint.ClientTimeout)
}

func TestErrCompare(t *testing.T) {
	linttest.Run(t, "testdata/errcompare", lint.ErrCompare)
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata/maporder", lint.MapOrder)
}

func TestCtxPropagate(t *testing.T) {
	linttest.Run(t, "testdata/ctxpropagate", lint.CtxPropagate)
}

func TestLockCopy(t *testing.T) {
	linttest.Run(t, "testdata/lockcopy", lint.LockCopy)
}

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, "testdata/goroleak", lint.GoroLeak)
}

// TestFullSuiteOnFixtures runs every registered check over every
// fixture at once: checks must not fire outside their own fixture's
// annotated lines (each fixture's wants only mention its own check, so
// any cross-check finding fails the comparison).
func TestFullSuiteOnFixtures(t *testing.T) {
	for _, dir := range []string{
		"testdata/unseededrand",
		"testdata/matalias",
		"testdata/nakedpanic",
		"testdata/ctxloop",
		"testdata/httpserver",
		"testdata/clienttimeout",
		"testdata/errcompare",
		"testdata/maporder",
		"testdata/ctxpropagate",
		"testdata/lockcopy",
		"testdata/goroleak",
		"testdata/timeafter",
	} {
		linttest.Run(t, dir, lint.Checks()...)
	}
}

func TestSyncRename(t *testing.T) {
	linttest.Run(t, "testdata/syncrename", lint.SyncRename)
}

func TestTimeAfter(t *testing.T) {
	linttest.Run(t, "testdata/timeafter", lint.TimeAfter)
}
