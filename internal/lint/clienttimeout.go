package lint

import (
	"go/ast"
	"go/types"
)

// ClientTimeout guards every outbound HTTP call the module makes
// against unbounded waits. A server that hangs mid-response (or a
// network that silently drops packets) holds an http.Client call
// forever unless something bounds it, and the two unbounded shapes are
// both one keystroke away from the correct ones:
//
//  1. an http.Client composite literal that sets no Timeout — such a
//     client waits indefinitely unless every single request it ever
//     performs carries its own context deadline, a property no local
//     literal can promise;
//
//  2. the package-level conveniences http.Get, http.Post,
//     http.PostForm and http.Head — they run on http.DefaultClient,
//     which has no timeout and accepts no context at all.
//
// The fix is mechanical: give the client literal a Timeout, or build
// the request with http.NewRequestWithContext against a client whose
// Timeout is set (internal/client is the module's reference
// implementation). A literal that deliberately relies on per-request
// contexts can say so with //lint:ignore clienttimeout <why>.
var ClientTimeout = &Check{
	Name: "clienttimeout",
	Doc:  "http.Client literal without Timeout, or http.Get/Post/PostForm/Head on the timeout-less DefaultClient",
	Run:  runClientTimeout,
}

// defaultClientFuncs are the net/http package-level helpers that
// round-trip on DefaultClient.
var defaultClientFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

func runClientTimeout(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				if isNetHTTPNamed(p.TypeOf(node), "Client") && !setsField(node, "Timeout") {
					p.Reportf(node.Pos(), "http.Client without Timeout waits forever on a hung server; set Timeout (or justify per-request deadlines with an ignore directive)")
				}
			case *ast.CallExpr:
				if fn := calleeFunc(p, node); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "net/http" &&
					defaultClientFuncs[fn.Name()] && isPackageLevel(fn) {
					p.Reportf(node.Pos(), "http.%s uses DefaultClient, which has no timeout and takes no context; use NewRequestWithContext with a client whose Timeout is set", fn.Name())
				}
			}
			return true
		})
	}
}

// isPackageLevel reports whether fn is a package-level function (not a
// method), so http.Get is flagged but a local type's Get method named
// identically is not.
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
