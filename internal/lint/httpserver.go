package lint

import (
	"go/ast"
	"go/types"
)

// HTTPServer guards the adaserved certification service (and any other
// HTTP surface this module grows) against two latency hazards:
//
//  1. an http.Server composite literal that sets no ReadHeaderTimeout
//     — without it a slow-loris client can hold connections open
//     indefinitely and starve the accept loop;
//
//  2. a handler (a function taking http.ResponseWriter and
//     *http.Request) whose loop does cancellable work — nested loops,
//     or calls into module-internal context-accepting machinery — but
//     never consults the request's context. The client may be long
//     gone while the loop still grinds; r.Context() is cancelled on
//     disconnect and must gate such loops. This extends ctxloop, which
//     cannot see handlers because their context arrives inside
//     *http.Request rather than as a parameter.
var HTTPServer = &Check{
	Name: "httpserver",
	Doc:  "http.Server without ReadHeaderTimeout, or handler loop doing cancellable work without consulting r.Context()",
	Run:  runHTTPServer,
}

func runHTTPServer(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				if isHTTPServerType(p.TypeOf(node)) && !setsField(node, "ReadHeaderTimeout") {
					p.Reportf(node.Pos(), "http.Server without ReadHeaderTimeout: a slow-loris client can hold connections open indefinitely; set ReadHeaderTimeout")
				}
			case *ast.FuncDecl:
				if node.Body != nil {
					if obj := p.Info().Defs[node.Name]; obj != nil && isHandlerSignature(obj.Type()) {
						walkHandlerScope(p, node.Body, false)
					}
				}
			case *ast.FuncLit:
				if isHandlerSignature(p.TypeOf(node)) {
					walkHandlerScope(p, node.Body, false)
				}
			}
			return true
		})
	}
}

// walkHandlerScope mirrors ctxloop's walkCtxScope for handler bodies:
// a loop is exempt when it, or an enclosing loop, consults the request
// context — either through a context-typed value (ctx := r.Context()
// kept in a variable) or by calling r.Context() directly.
func walkHandlerScope(p *Pass, n ast.Node, consulted bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch node := c.(type) {
		case *ast.FuncLit:
			if c == n {
				return true
			}
			// A nested handler literal is analyzed as its own scope by
			// runHTTPServer; a literal with its own context parameter
			// belongs to ctxloop. Anything else (typically a spawned
			// goroutine) runs detached from the enclosing consults.
			if !isHandlerSignature(p.TypeOf(node)) && !signatureHasCtx(p.TypeOf(node)) {
				walkHandlerScope(p, node.Body, false)
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if c == n {
				return true
			}
			loopConsulted := consulted || referencesCtx(p, node) || callsRequestContext(p, node)
			if !loopConsulted && loopDoesCancellableWork(p, node) {
				p.Reportf(node.Pos(), "handler loop does cancellable work but never consults the request context; gate it on r.Context() (poll Err or select on Done), or move it into a context-free helper")
				return false
			}
			walkHandlerScope(p, node, loopConsulted)
			return false
		}
		return true
	})
}

// callsRequestContext reports whether n contains a (*http.Request).Context
// call — consulting the request context without ever binding it to a
// context-typed identifier, which referencesCtx cannot see.
func callsRequestContext(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			return true
		}
		if isHTTPRequestPtr(p.TypeOf(sel.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// setsField reports whether a composite literal assigns the named
// field. A positional literal (no keys) necessarily covers every
// field, so it counts as setting it.
func setsField(cl *ast.CompositeLit, name string) bool {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return true // positional literal: all fields present
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// isHandlerSignature reports whether t is a function taking both an
// http.ResponseWriter and a *http.Request — the shape of every
// net/http handler, including mux method values and middleware.
func isHandlerSignature(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	hasW, hasR := false, false
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		pt := params.At(i).Type()
		if isNetHTTPNamed(pt, "ResponseWriter") {
			hasW = true
		}
		if isHTTPRequestPtr(pt) {
			hasR = true
		}
	}
	return hasW && hasR
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNetHTTPNamed(ptr.Elem(), "Request")
}

// isHTTPServerType reports whether t is net/http.Server.
func isHTTPServerType(t types.Type) bool {
	return isNetHTTPNamed(t, "Server")
}

// isNetHTTPNamed reports whether t is the named net/http type with the
// given name.
func isNetHTTPNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}
