package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags discarded error results from this module's own
// fallible routines. The numerical core reports genuine failures —
// singular matrices, non-convergent eigen iterations, Riccati
// divergence — through error returns; assigning one to _ (or invoking
// the call as a bare statement) converts a detected numerical failure
// into silently wrong downstream results, exactly the failure mode a
// stability certificate must not have. Standard-library calls
// (fmt.Fprintf and friends) are out of scope.
var DroppedErr = &Check{
	Name: "droppederr",
	Doc:  "ignored error return from a module-internal fallible routine",
	Run:  runDroppedErr,
}

func runDroppedErr(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				checkAssignDrop(p, st)
			case *ast.ExprStmt:
				checkExprDrop(p, st)
			case *ast.GoStmt:
				checkCallDrop(p, st.Call)
			case *ast.DeferStmt:
				checkCallDrop(p, st.Call)
			}
			return true
		})
	}
}

// checkAssignDrop handles `v, _ := f()` and `_ = f()` forms.
func checkAssignDrop(p *Pass, st *ast.AssignStmt) {
	// Tuple assignment from a single call: x, _, _ := f().
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || !isModuleFallible(p, call) {
			return
		}
		sig := callSignature(p, call)
		if sig == nil || sig.Results().Len() != len(st.Lhs) {
			return
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && isErrorType(sig.Results().At(i).Type()) {
				p.Reportf(lhs.Pos(), "error result of %s discarded; handle it or propagate it — a swallowed numerical failure corrupts everything downstream", calleeName(p, call))
			}
		}
		return
	}
	// Parallel one-to-one assignments: _ = f(), a, _ = g(), h().
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			if !isBlank(lhs) {
				continue
			}
			call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr)
			if !ok || !isModuleFallible(p, call) {
				continue
			}
			if t := p.TypeOf(st.Rhs[i]); t != nil && isErrorType(t) {
				p.Reportf(lhs.Pos(), "error result of %s discarded; handle it or propagate it — a swallowed numerical failure corrupts everything downstream", calleeName(p, call))
			}
		}
	}
}

// checkExprDrop handles a call used as a bare statement, discarding
// every result including the error.
func checkExprDrop(p *Pass, st *ast.ExprStmt) {
	if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
		checkCallDrop(p, call)
	}
}

func checkCallDrop(p *Pass, call *ast.CallExpr) {
	if !isModuleFallible(p, call) {
		return
	}
	p.Reportf(call.Pos(), "all results of %s discarded, including its error; handle the error or assign the results", calleeName(p, call))
}

// isModuleFallible reports whether call invokes a function declared in
// this module whose last result is an error.
func isModuleFallible(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || !p.IsModuleObject(fn) {
		return false
	}
	sig := callSignature(p, call)
	if sig == nil || sig.Results().Len() == 0 {
		return false
	}
	return isErrorType(sig.Results().At(sig.Results().Len() - 1).Type())
}

func callSignature(p *Pass, call *ast.CallExpr) *types.Signature {
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

func calleeName(p *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(p, call)
	if fn == nil {
		return "call"
	}
	if fn.Pkg() != nil && fn.Pkg() != p.Pkg.Types {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

var universeError = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, universeError)
}
