// Package linttest runs lint checks over annotated fixture files, in
// the style of Prysm's tools/analyzers testdata: a fixture line that
// should be flagged carries a trailing comment
//
//	// want "regexp"
//
// where the quoted regexp must match the finding's message. Multiple
// expectations on one line are written as consecutive quoted strings:
// // want "first" "second". Lines without a want comment must produce
// no finding, and suppressed findings (//lint:ignore) count as absent
// — fixtures therefore cover positive, negative, and suppressed cases
// with the same mechanism.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"adaptivertc/internal/lint"
)

var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one want annotation.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the package in dir, runs the given checks, and compares
// the findings against the fixture's want annotations.
func Run(t *testing.T, dir string, checks ...*lint.Check) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	loader, err := lint.NewLoader(abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := loader.LoadDir(abs)
	if err != nil {
		t.Fatalf("linttest: load %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("linttest: no Go files in %s", dir)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("linttest: fixture should type-check cleanly: %v", terr)
	}

	wants, err := collectWants(pkg.Fset, pkg)
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.RunChecks(pkg, checks)

	for i := range findings {
		f := &findings[i]
		ok := false
		for j := range wants {
			w := &wants[j]
			if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.pattern.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// collectWants extracts the want annotations of every fixture file.
func collectWants(fset *token.FileSet, pkg *lint.Package) ([]expectation, error) {
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}
