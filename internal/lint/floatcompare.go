package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCompare flags == and != between floating-point (or complex)
// operands. Exact float equality is almost always a latent bug in
// numerical code — round-off turns mathematically equal quantities
// into unequal bit patterns — so comparisons must either use an
// explicit tolerance (math.Abs(a-b) <= tol, mat.EqualApprox) or carry
// a suppression explaining why exactness is intended (structural
// zero tests on freshly assigned entries, IEEE sentinel checks).
var FloatCompare = &Check{
	Name: "floatcompare",
	Doc:  "== or != between floating-point operands outside tolerance helpers",
	Run:  runFloatCompare,
}

func runFloatCompare(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xv := typeAndConst(p, be.X)
			yt, yv := typeAndConst(p, be.Y)
			if !isFloatish(xt) && !isFloatish(yt) {
				return true
			}
			// Two constants compare exactly by definition.
			if xv && yv {
				return true
			}
			p.Reportf(be.OpPos, "%s between floating-point operands; use a tolerance (math.Abs(a-b) <= tol, mat.EqualApprox) or add //lint:ignore floatcompare <reason>", be.Op)
			return true
		})
	}
}

func typeAndConst(p *Pass, e ast.Expr) (types.Type, bool) {
	tv, ok := p.Info().Types[e]
	if !ok {
		return nil, false
	}
	return tv.Type, tv.Value != nil
}

func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
