// Fixture for the errcompare check: sentinel errors must be matched
// with errors.Is, not identity. Wrapping via fmt.Errorf("%w") and
// errors.Join silently breaks ==, so a budget-exhausted bracket would
// be misclassified as a hard failure.
package errcompare

import (
	"errors"
	"fmt"
)

// ErrBudget mimics jsr.ErrBudget: a package-level error sentinel.
var ErrBudget = errors.New("errcompare: budget exhausted")

// ErrDeadline is a second sentinel for switch cases.
var ErrDeadline = errors.New("errcompare: deadline")

// errNotSentinel is a local inside functions below, never package
// scope, so comparisons against it are out of scope for the check.

func search(n int) error {
	if n < 0 {
		return fmt.Errorf("searching: %w", ErrBudget)
	}
	return nil
}

func badEqual(n int) bool {
	err := search(n)
	return err == ErrBudget // want "sentinel error ErrBudget compared with =="
}

func badNotEqual(n int) bool {
	err := search(n)
	if err != ErrBudget { // want "sentinel error ErrBudget compared with !="
		return false
	}
	return true
}

func badReversed(n int) bool {
	err := search(n)
	return ErrBudget == err // want "sentinel error ErrBudget compared with =="
}

func badSwitch(n int) string {
	err := search(n)
	switch err {
	case ErrBudget: // want "switch on an error matches sentinel ErrBudget by identity"
		return "budget"
	case ErrDeadline: // want "switch on an error matches sentinel ErrDeadline by identity"
		return "deadline"
	default:
		return "other"
	}
}

func goodIs(n int) bool {
	err := search(n)
	return errors.Is(err, ErrBudget)
}

func goodNilCheck(n int) bool {
	err := search(n)
	return err == nil
}

func goodLocalCompare(n int) bool {
	errA := search(n)
	errB := search(n + 1)
	return errA == errB // locals are not sentinels
}

func suppressedEqual(n int) bool {
	err := search(n)
	//lint:ignore errcompare this error is never wrapped; identity is part of the API contract
	return err == ErrBudget
}
