// Fixture for the matalias check: in-place mat operations whose
// destination is the same variable (or same field chain) as a source
// are flagged; distinct operands and suppressed lines are not.
package matalias

import "adaptivertc/internal/mat"

type pair struct{ A, B *mat.Dense }

func inPlace(a, b *mat.Dense) {
	mat.AddInPlace(a, a) // want "destination aliases source"
	mat.AddInPlace(a, b)
}

func vectors(a *mat.Dense, x, y []float64) {
	mat.MulVecInto(x, a, x) // want "destination aliases source"
	mat.MulVecInto(y, a, x)
}

func selfCopy(a, b *mat.Dense) {
	a.CopyFrom(a) // want "copies a matrix onto itself"
	a.CopyFrom(b)
}

func fieldChains(p, q pair) {
	mat.AddInPlace(p.A, p.A) // want "destination aliases source"
	mat.AddInPlace(p.A, p.B)
	mat.AddInPlace(p.A, q.A) // same field on different roots: distinct storage
}

func suppressedDoubling(a *mat.Dense) {
	//lint:ignore matalias elementwise self-add doubles in place by design
	mat.AddInPlace(a, a)
}
