// Fixture for the clienttimeout check: http.Client literals must set
// Timeout, and the DefaultClient conveniences (http.Get and friends)
// are always flagged; clients with Timeout, same-named local methods,
// and suppressed lines are not.
package clienttimeout

import (
	"context"
	"net/http"
	"net/url"
	"time"
)

// bareClient waits forever on a hung server.
func bareClient() *http.Client {
	return &http.Client{} // want "http.Client without Timeout"
}

// transportOnly configures everything except the one field that
// bounds a round trip.
func transportOnly(t http.RoundTripper) *http.Client {
	return &http.Client{ // want "http.Client without Timeout"
		Transport: t,
	}
}

// boundedClient is the correct shape.
func boundedClient() *http.Client {
	return &http.Client{Timeout: 30 * time.Second}
}

// valueLiteral is flagged the same as the pointer form.
func valueLiteral() http.Client {
	return http.Client{} // want "http.Client without Timeout"
}

// conveniences all run on the timeout-less DefaultClient.
func conveniences() error {
	resp, err := http.Get("http://example.invalid/") // want "http.Get uses DefaultClient"
	if err != nil {
		return err
	}
	resp.Body.Close()
	resp, err = http.Post("http://example.invalid/", "text/plain", nil) // want "http.Post uses DefaultClient"
	if err != nil {
		return err
	}
	resp.Body.Close()
	resp, err = http.PostForm("http://example.invalid/", url.Values{}) // want "http.PostForm uses DefaultClient"
	if err != nil {
		return err
	}
	resp.Body.Close()
	resp, err = http.Head("http://example.invalid/") // want "http.Head uses DefaultClient"
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// withContext builds the request properly; the call is on a bounded
// client, so nothing fires.
func withContext(ctx context.Context) error {
	c := boundedClient()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.invalid/", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// fetcher has methods that shadow the convenience names; method calls
// are not package-level http calls and must not fire.
type fetcher struct{}

func (fetcher) Get(string) error  { return nil }
func (fetcher) Head(string) error { return nil }

func localMethods(f fetcher) error {
	if err := f.Get("x"); err != nil {
		return err
	}
	return f.Head("x")
}

// suppressed documents a deliberate context-deadline-only client.
func suppressed() *http.Client {
	//lint:ignore clienttimeout every request through this client carries a context deadline from the scheduler
	return &http.Client{}
}
