// Fixture for the unseededrand check in a library (non-main) package:
// global-source draws and hard-coded seeds are flagged, caller-seeded
// generators and *rand.Rand methods are not.
package unseededrand

import (
	"math/rand"
	mrand "math/rand"
)

func global() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want "draws from the global source"
	return rand.Float64()              // want "draws from the global source"
}

func aliasedImport() int {
	return mrand.Intn(10) // want "draws from the global source"
}

func hardcodedSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "hard-coded rand seed in library package"
}

func callerSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // seed flows from the caller
}

func methodsAreFine(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() // drawing from an explicit Rand is the approved pattern
}

func suppressedGlobal() float64 {
	//lint:ignore unseededrand throwaway jitter for a demo, determinism not required
	return rand.Float64()
}
