// Fixture for the httpserver check: http.Server literals must set
// ReadHeaderTimeout, and handler loops doing cancellable work must
// consult the request context (r.Context() directly or via a bound
// ctx variable); cheap loops, consulting loops, non-handlers, and
// suppressed lines are not flagged.
package httpserver

import (
	"context"
	"net/http"
	"time"
)

// certify is a stand-in for the module's context-aware JSR machinery.
func certify(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// noHeaderTimeout leaves the header read unbounded.
func noHeaderTimeout(h http.Handler) *http.Server {
	return &http.Server{ // want "ReadHeaderTimeout"
		Addr:    ":8080",
		Handler: h,
	}
}

// withHeaderTimeout bounds the header read.
func withHeaderTimeout(h http.Handler) *http.Server {
	return &http.Server{
		Addr:              ":8080",
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
}

// grindingHandler batch-certifies in a loop without ever noticing the
// client hung up.
func grindingHandler(w http.ResponseWriter, r *http.Request) {
	total := 0
	for i := 0; i < 1000; i++ { // want "never consults the request context"
		total += certify(context.Background(), i)
	}
	_ = total
}

// nestedLoopHandler has a DFS-style double loop, also unguarded.
func nestedLoopHandler(w http.ResponseWriter, r *http.Request, words [][]int) {
	total := 0
	for _, ws := range words { // want "never consults the request context"
		for _, v := range ws {
			total += v
		}
	}
	_ = total
}

// directConsult calls r.Context() in the loop path.
func directConsult(w http.ResponseWriter, r *http.Request) {
	total := 0
	for i := 0; i < 1000; i++ {
		if r.Context().Err() != nil {
			return
		}
		total += certify(context.Background(), i)
	}
	_ = total
}

// boundConsult binds the request context to a variable first; the loop
// references the context-typed value.
func boundConsult(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	total := 0
	for i := 0; i < 1000; i++ {
		total += certify(ctx, i)
	}
	_ = total
}

// outerConsult polls in the outer loop; the inner loop inherits
// per-iteration cancellation.
func outerConsult(w http.ResponseWriter, r *http.Request, words [][]int) {
	total := 0
	for _, ws := range words {
		if r.Context().Err() != nil {
			return
		}
		for _, v := range ws {
			total += v
		}
	}
	_ = total
}

// cheapScanHandler has no nested loop and no context-aware callee.
func cheapScanHandler(w http.ResponseWriter, r *http.Request, vs []int) {
	total := 0
	for _, v := range vs {
		total += v
	}
	_ = total
}

// handlerLiteral: function literals with the handler shape are in
// scope too.
func handlerLiteral() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		total := 0
		for i := 0; i < 100; i++ { // want "never consults the request context"
			total += certify(context.Background(), i)
		}
		_ = total
	}
}

// suppressedHandler documents why its loop must run to completion.
func suppressedHandler(w http.ResponseWriter, r *http.Request, words [][]int) {
	total := 0
	//lint:ignore httpserver the response is already committed; aborting mid-merge would corrupt it
	for _, ws := range words {
		for _, v := range ws {
			total += v
		}
	}
	_ = total
}

// notAHandler takes neither a ResponseWriter nor a Request: out of
// scope for httpserver (and for ctxloop, having no context parameter).
func notAHandler(words [][]int) int {
	total := 0
	for _, ws := range words {
		for _, v := range ws {
			total += v
		}
	}
	return total
}
