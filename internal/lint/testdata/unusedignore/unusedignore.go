// Fixture for suppression accounting: a //lint:ignore directive must
// earn its keep. One that suppresses nothing is stale armor — the
// finding it was written for moved or was fixed — and one naming an
// unregistered check was never armor at all.
package unusedignore

import "errors"

// ErrProbe is a sentinel so a used suppression can exist below.
var ErrProbe = errors.New("unusedignore: probe")

func probe(n int) error {
	if n < 0 {
		return ErrProbe
	}
	return nil
}

// usedDirective suppresses a real errcompare finding: accounted as
// used, so no unusedignore finding here.
func usedDirective(n int) bool {
	err := probe(n)
	//lint:ignore errcompare fixture: identity comparison is the pattern under test
	return err == ErrProbe
}

// staleDirective guards a line that stopped comparing sentinels long
// ago; errcompare reports nothing, so the directive is dead weight.
// (Expectations live in TestUnusedIgnore — a want comment cannot share
// the directive's line.)
func staleDirective(n int) bool {
	//lint:ignore errcompare nothing on the next line trips errcompare anymore
	return probe(n) == nil
}

// typoDirective names a check that does not exist; it can never have
// suppressed anything.
func typoDirective(n int) bool {
	//lint:ignore errcmp reason text for a check that was never registered
	return probe(n) == nil
}
