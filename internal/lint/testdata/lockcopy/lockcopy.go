// Fixture for the lockcopy check: sync primitives copied by value fork
// their lock state — both copies unlock independently and mutual
// exclusion silently ends.
package lockcopy

import "sync"

// Counter embeds a mutex, like the server's metrics registry.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Registry nests a lock-bearing struct one level down.
type Registry struct {
	counters [4]Counter
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func badAssign(src *Counter) {
	c := *src // want "copies lockcopy.Counter, which contains a sync primitive"
	c.Inc()
}

func badIndexAssign(r *Registry) {
	first := r.counters[0] // want "copies lockcopy.Counter, which contains a sync primitive"
	first.Inc()
}

func badNestedAssign(r *Registry) {
	snapshot := *r // want "copies lockcopy.Registry, which contains a sync primitive"
	snapshot.counters[0].Inc()
}

func badRange(cs []Counter) int {
	total := 0
	for _, c := range cs { // want "range copies each lockcopy.Counter element by value"
		total += c.n
	}
	return total
}

func observe(c Counter) int { return c.n }

func badArg(c *Counter) int {
	return observe(*c) // want "argument passes lockcopy.Counter to observe by value"
}

func goodPointerAssign(src *Counter) {
	c := src
	c.Inc()
}

func goodFreshLiteral() Counter {
	c := Counter{}
	return c
}

func goodPointerRange(cs []*Counter) int {
	total := 0
	for _, c := range cs {
		total += c.n
	}
	return total
}

func goodIndexRange(cs []Counter) int {
	total := 0
	for i := range cs {
		total += cs[i].n
	}
	return total
}

func observePtr(c *Counter) int { return c.n }

func goodPointerArg(c *Counter) int {
	return observePtr(c)
}

func suppressedCopy(src *Counter) int {
	//lint:ignore lockcopy snapshot of a quiesced counter: no goroutine holds the lock during shutdown
	c := *src
	return c.n
}
