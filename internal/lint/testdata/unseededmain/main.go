// Fixture for the unseededrand check in package main: a fixed literal
// seed in an example binary is a deliberate, reproducible choice and
// is not flagged; global-source draws still are.
package main

import "math/rand"

func main() {
	rng := rand.New(rand.NewSource(5)) // fixed documented seed in a main package is allowed
	_ = rng.Float64()
	_ = rand.Float64() // want "draws from the global source"
}
