// Fixture for the driver's directive validation: a //lint:ignore with
// no reason is itself reported and does not suppress the finding it
// sits above. Checked programmatically by TestMalformedIgnore — the
// malformed finding lands on the directive's own line, so the fixture
// carries no want annotations.
package badignore

//lint:ignore floatcompare
func missingReason(x float64) bool {
	return x == 0
}
