// Fixture for the syncrename check: publishing a freshly written file
// via os.Rename is crash-safe only if the data was fsynced first.
// Unsynced handles and os.WriteFile-sourced paths are flagged; synced
// handles, foreign paths, and suppressed lines are not.
package syncrename

import (
	"os"
	"path/filepath"
)

func unsyncedCreate(dir string) error {
	tmp := filepath.Join(dir, "x.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("data")); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "x")) // want "without a Sync on its handle"
}

func unsyncedOpenFile(dir string) error {
	tmp := filepath.Join(dir, "o.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "o")) // want "without a Sync on its handle"
}

func viaWriteFile(dir string) error {
	tmp := filepath.Join(dir, "y.tmp")
	if err := os.WriteFile(tmp, []byte("data"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "y")) // want "os.WriteFile, which never fsyncs"
}

func unsyncedCreateTemp(dir, path string) error {
	tmp, err := os.CreateTemp(dir, "ckpt*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write([]byte("data")); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path) // want "without a Sync on its handle"
}

func syncedCreate(dir string) error {
	tmp := filepath.Join(dir, "z.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("data")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "z")) // flushed before publishing: not flagged
}

func syncedCreateTemp(dir, path string) error {
	tmp, err := os.CreateTemp(dir, "ckpt*")
	if err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path) // flushed before publishing: not flagged
}

// foreign renames a path this function never wrote; whether it was
// synced is the writer's business, so the check stays silent.
func foreign(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath)
}

func suppressedRename(dir string) error {
	tmp := filepath.Join(dir, "s.tmp")
	if err := os.WriteFile(tmp, nil, 0o644); err != nil {
		return err
	}
	//lint:ignore syncrename hint file only; losing it on crash is harmless
	return os.Rename(tmp, filepath.Join(dir, "s"))
}
