// Fixture for the ctxpropagate check: with a context in scope, calling
// the context-free sibling of an API that has a Ctx variant detaches
// the callee from deadlines and cancellation.
package ctxpropagate

import "context"

// Search has a Ctx sibling below; the pair mimics jsr.Gripenberg /
// jsr.GripenbergCtx.
func Search(depth int) (int, error) {
	return SearchCtx(context.Background(), depth)
}

// SearchCtx is the context-aware form.
func SearchCtx(ctx context.Context, depth int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return depth, nil
}

// Solo has no sibling; calling it anywhere is fine.
func Solo(n int) int { return n }

// Engine mimics core.Design's method pair.
type Engine struct{ depth int }

// Run has a Ctx sibling.
func (e *Engine) Run() (int, error) { return e.RunCtx(context.Background()) }

// RunCtx is the context-aware form.
func (e *Engine) RunCtx(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.depth, nil
}

func badCall(ctx context.Context, depth int) (int, error) {
	return Search(depth) // want "Search is called with a context in scope but ignores it; call SearchCtx"
}

func badMethod(ctx context.Context, e *Engine) (int, error) {
	return e.Run() // want "Run is called with a context in scope but ignores it; call RunCtx"
}

func badInClosure(ctx context.Context, depths []int) error {
	for _, d := range depths {
		if err := ctx.Err(); err != nil {
			return err
		}
		run := func() error {
			_, err := Search(d) // want "Search is called with a context in scope but ignores it; call SearchCtx"
			return err
		}
		if err := run(); err != nil {
			return err
		}
	}
	return nil
}

func goodCtxCall(ctx context.Context, depth int) (int, error) {
	return SearchCtx(ctx, depth)
}

func goodSolo(ctx context.Context, n int) int {
	_ = ctx.Err()
	return Solo(n)
}

// goodNoCtx has no context in scope: the non-Ctx form is the only
// honest one to call.
func goodNoCtx(depth int) (int, error) {
	return Search(depth)
}

func suppressedCall(ctx context.Context, depth int) (int, error) {
	//lint:ignore ctxpropagate this probe must complete even after cancellation to flush the checkpoint
	return Search(depth)
}
