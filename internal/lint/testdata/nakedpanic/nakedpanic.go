// Fixture for the nakedpanic check: bare string panics in library
// packages are flagged, fmt.Sprintf panics with dynamic context and
// suppressed lines are not.
package nakedpanic

import "fmt"

func bare(n int) {
	if n < 0 {
		panic("nakedpanic: negative size") // want "panic with a bare string"
	}
}

func withContext(n int) {
	if n < 0 {
		panic(fmt.Sprintf("nakedpanic: negative size %d", n))
	}
}

func nonString(err error) {
	if err != nil {
		panic(err) // non-string panic values carry their own context
	}
}

func suppressedBare(ok bool) {
	if !ok {
		//lint:ignore nakedpanic the empty-input condition has no dynamic values to report
		panic("nakedpanic: empty input")
	}
}
