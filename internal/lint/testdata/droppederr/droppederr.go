// Fixture for the droppederr check: discarded errors from
// module-internal fallible routines are flagged in every discard form;
// handled errors, stdlib calls, and suppressed lines are not.
package droppederr

import "fmt"

func eig() (float64, error) { return 0, nil }

func solve() error { return nil }

func drops() float64 {
	v, _ := eig() // want "error result of eig discarded"
	_ = solve()   // want "error result of solve discarded"
	solve()       // want "all results of solve discarded"
	go solve()    // want "all results of solve discarded"
	defer solve() // want "all results of solve discarded"
	return v
}

func handled() error {
	v, err := eig()
	if err != nil {
		return err
	}
	fmt.Println(v) // stdlib calls are out of scope
	return solve()
}

func suppressedDrop() {
	//lint:ignore droppederr best-effort cleanup, failure is benign here
	_ = solve()
}
