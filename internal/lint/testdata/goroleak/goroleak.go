// Fixture for the goroleak check: goroutines launched per loop
// iteration need a visible exit path — a context, a channel operation,
// or a WaitGroup — or they accrete without bound under sustained load.
package goroleak

import (
	"context"
	"sync"
)

func compute(n int) int { return n * n }

// sink is package state the leaky goroutines write to, so the fixture
// type-checks without channels.
var sink sync.Map

func badLiteral(jobs []int) {
	for _, j := range jobs {
		go func(j int) { // want "goroutine launched per loop iteration has no exit path"
			sink.Store(j, compute(j))
		}(j)
	}
}

func spin(n int) {
	for i := 0; i < n; i++ {
		sink.Store(i, i)
	}
}

func badNamed(jobs []int) {
	for _, j := range jobs {
		go spin(j) // want "runs spin, which has no exit path"
	}
}

func goodWaitGroup(jobs []int) {
	var wg sync.WaitGroup
	results := make([]int, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i, j int) {
			defer wg.Done()
			results[i] = compute(j)
		}(i, j)
	}
	wg.Wait()
}

func goodChannel(jobs []int) []int {
	out := make(chan int, len(jobs))
	for _, j := range jobs {
		go func(j int) {
			out <- compute(j)
		}(j)
	}
	results := make([]int, 0, len(jobs))
	for range jobs {
		results = append(results, <-out)
	}
	return results
}

func goodContext(ctx context.Context, jobs []int) {
	for _, j := range jobs {
		go func(j int) {
			select {
			case <-ctx.Done():
			default:
				sink.Store(j, compute(j))
			}
		}(j)
	}
}

func worker(ctx context.Context, n int) {
	if ctx.Err() == nil {
		sink.Store(n, n)
	}
}

func goodCtxArg(ctx context.Context, jobs []int) {
	for _, j := range jobs {
		go worker(ctx, j)
	}
}

// pool is the worker-pool shape: the exit protocol lives in receiver
// state (quit channel + WaitGroup), not in the launch's argument list.
type pool struct {
	quit chan struct{}
	wg   sync.WaitGroup
}

func (p *pool) run() {
	defer p.wg.Done()
	<-p.quit
}

func goodReceiverState(p *pool, workers int) {
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.run()
	}
}

func goodNotInLoop(j int) {
	go func() {
		sink.Store(j, compute(j))
	}()
}

func suppressedLaunch(jobs []int) {
	for _, j := range jobs {
		//lint:ignore goroleak bounded by len(jobs) <= 4 at every call site; each store is microseconds
		go func(j int) {
			sink.Store(j, compute(j))
		}(j)
	}
}
