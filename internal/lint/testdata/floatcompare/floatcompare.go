// Fixture for the floatcompare check: raw float equality is flagged,
// integer comparisons, constant folds, tolerance helpers and
// suppressed lines are not.
package floatcompare

import "math"

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func compare(a, b float64) bool {
	if a == b { // want "== between floating-point operands"
		return true
	}
	if a != b { // want "!= between floating-point operands"
		return false
	}
	return approxEqual(a, b, 1e-9)
}

func kinds(n int, x float64, f float32, c complex128, s string) bool {
	ints := n == 3   // integers compare exactly
	strs := s == "x" // strings too
	xs := x == 0     // want "== between floating-point operands"
	fs := f != 0     // want "!= between floating-point operands"
	cs := c == 1i    // want "== between floating-point operands"
	const zero = 0.0
	consts := zero == 0.0 // two constants fold at compile time
	return ints && strs && xs && fs && cs && consts
}

func suppressedSameLine(x float64) bool {
	return x == math.Inf(1) //lint:ignore floatcompare IEEE infinity sentinel compares exactly
}

func suppressedLineAbove(x float64) bool {
	//lint:ignore floatcompare structural exact-zero test on a freshly assigned entry
	return x == 0
}
