// Fixture for the maporder check: map iteration feeding an
// order-sensitive sink (slice append, writer, hash, encoder) must
// sort first; the collect-keys-then-sort idiom and per-iteration
// scratch are exempt.
package maporder

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name) // want "appends to names in random order"
	}
	return names
}

func badWrite(m map[string]float64, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s,%g\n", k, v) // want "calls fmt.Fprintf in random order"
	}
}

func badHash(m map[string][]byte) [32]byte {
	h := sha256.New()
	for _, v := range m {
		h.Write(v) // want "Write in random order"
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "calls strings.Builder.WriteString in random order"
	}
	return b.String()
}

// goodCollectAndSort is the canonical fix: the append target is sorted
// before use, so the map's iteration order never escapes.
func goodCollectAndSort(m map[string]int, w io.Writer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s,%d\n", k, m[k])
	}
}

// goodSortSlice sorts row structs by key after collecting.
func goodSortSlice(m map[string]int) []string {
	rows := make([]string, 0, len(m))
	for k := range m {
		rows = append(rows, k)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// goodScratch uses a builder created inside the loop body: the bytes
// written per iteration never observe cross-iteration order.
func goodScratch(m map[string]int, out map[string]string) {
	for k, v := range m {
		var b strings.Builder
		fmt.Fprintf(&b, "%s=%d", k, v)
		out[k] = b.String()
	}
}

// goodReduction accumulates an order-insensitive reduction.
func goodReduction(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// goodLoopLocal appends to a slice declared inside the loop body.
func goodLoopLocal(m map[string][]int, out map[string]int) {
	for k, vs := range m {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		out[k] = len(evens)
	}
}

func suppressedAppend(m map[string]int) []string {
	var names []string
	for name := range m {
		//lint:ignore maporder order is re-established by the caller's stable sort over the full result
		names = append(names, name)
	}
	return names
}
