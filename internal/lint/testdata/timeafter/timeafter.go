// Fixture for the timeafter check: time.After in a select inside a
// loop allocates a timer every iteration that the runtime cannot
// reclaim until it fires; loop-level NewTimer/NewTicker, one-shot
// selects, and per-iteration goroutines are not flagged.
package timeafter

import (
	"context"
	"time"
)

// workerLoop is the classic leak: a long-lived receive loop arming a
// fresh 30s timer on every message.
func workerLoop(ctx context.Context, msgs <-chan int) int {
	total := 0
	for {
		select {
		case m := <-msgs:
			total += m
		case <-time.After(30 * time.Second): // want "time.After in a select inside a loop"
			return total
		case <-ctx.Done():
			return total
		}
	}
}

// rangeLoopAfter leaks the same way from a range loop.
func rangeLoopAfter(items []int, out chan<- int) {
	for _, it := range items {
		select {
		case out <- it:
		case <-time.After(time.Second): // want "time.After in a select inside a loop"
			return
		}
	}
}

// nestedLoopAfter: the select sits one loop deeper; still per-iteration.
func nestedLoopAfter(batches [][]int, out chan<- int) {
	for _, batch := range batches {
		for _, it := range batch {
			select {
			case out <- it:
			case <-time.After(time.Millisecond): // want "time.After in a select inside a loop"
				return
			}
		}
	}
}

// timerLoop is the idiomatic fix: one timer for the loop's life.
func timerLoop(msgs <-chan int) int {
	total := 0
	t := time.NewTimer(30 * time.Second)
	defer t.Stop()
	for {
		select {
		case m := <-msgs:
			total += m
		case <-t.C:
			return total
		}
	}
}

// oneShotSelect arms a single timer: no loop, no buildup.
func oneShotSelect(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	case <-time.After(time.Second):
		return false
	}
}

// plainReceiveInLoop blocks on time.After without a select: the timer
// always fires before the next iteration, so nothing accumulates.
func plainReceiveInLoop(n int) {
	for i := 0; i < n; i++ {
		<-time.After(time.Millisecond)
	}
}

// spawnedSelect runs the select in a per-iteration goroutine that owns
// its own lifetime; its one timer is not a loop-driven buildup.
func spawnedSelect(items []int, out chan<- int) {
	for _, it := range items {
		it := it
		go func() {
			select {
			case out <- it:
			case <-time.After(time.Second):
			}
		}()
	}
}

// suppressed documents a deliberate exception.
func suppressed(msgs <-chan int) int {
	for {
		select {
		case m := <-msgs:
			return m
		//lint:ignore timeafter this loop runs at most twice in tests
		case <-time.After(time.Minute):
			return 0
		}
	}
}
