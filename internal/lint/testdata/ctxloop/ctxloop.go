// Fixture for the ctxloop check: loops in context-accepting functions
// that do cancellable work (nested loops, or calls into module-internal
// context-aware machinery) must consult the context along the loop
// path; cheap scan loops, consulting loops, and suppressed lines are
// not flagged.
package ctxloop

import "context"

// search is a stand-in for the JSR engine's context-aware machinery.
func search(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// accumulate is cheap, context-free work.
func accumulate(vs []int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}

// nestedLoopNoPoll grinds through a DFS-style double loop with the
// caller's ctx in hand but never looks at it.
func nestedLoopNoPoll(ctx context.Context, words [][]int) int {
	total := 0
	for _, w := range words { // want "never consults the context"
		for _, v := range w {
			total += v
		}
	}
	return total
}

// droppedCtx forwards work to context-aware machinery but hands it a
// fresh background context, detaching the loop from cancellation.
func droppedCtx(ctx context.Context, vs []int) int {
	total := 0
	for _, v := range vs { // want "never consults the context"
		total += search(context.Background(), v)
	}
	return total
}

// polledLoop consults ctx.Err each iteration — the canonical pattern.
func polledLoop(ctx context.Context, words [][]int) int {
	total := 0
	for _, w := range words {
		if ctx.Err() != nil {
			return total
		}
		for _, v := range w {
			total += v
		}
	}
	return total
}

// forwardedCtx passes ctx into the callee, which polls it.
func forwardedCtx(ctx context.Context, vs []int) int {
	total := 0
	for _, v := range vs {
		total += search(ctx, v)
	}
	return total
}

// selectDone uses the select form of consulting the context.
func selectDone(ctx context.Context, work chan int) int {
	total := 0
	for i := 0; i < 100; i++ {
		select {
		case v := <-work:
			total += search(context.TODO(), v)
		case <-ctx.Done():
			return total
		}
	}
	return total
}

// innerExempt: the outer loop polls, so the inner merge loop inherits
// per-iteration cancellation and is not flagged.
func innerExempt(ctx context.Context, words [][]int) int {
	total := 0
	for _, w := range words {
		if ctx.Err() != nil {
			return total
		}
		for _, v := range w {
			total += search(context.TODO(), v)
		}
	}
	return total
}

// cheapScan has no nested loop and no context-aware callee: scan and
// merge loops are deliberately out of scope.
func cheapScan(ctx context.Context, vs []int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}

// capturedWorker spawns a literal that captures ctx: the worker's own
// loop must consult it (the enclosing function consulting elsewhere
// does not help a detached goroutine).
func capturedWorker(ctx context.Context, words [][]int) {
	done := make(chan int, 2)
	go func() {
		total := 0
		for _, w := range words { // want "never consults the context"
			for _, v := range w {
				total += v
			}
		}
		done <- total
	}()
	go func() {
		total := 0
		for _, w := range words {
			if ctx.Err() != nil {
				break
			}
			total += accumulate(w)
		}
		done <- total
	}()
	<-done
	<-done
}

// suppressedLoop documents why it must run to completion.
func suppressedLoop(ctx context.Context, words [][]int) int {
	total := 0
	//lint:ignore ctxloop finalization must drain every word to keep the merge deterministic
	for _, w := range words {
		for _, v := range w {
			total += v
		}
	}
	return total
}

// noCtx has no context parameter, so its loops are out of scope.
func noCtx(words [][]int) int {
	total := 0
	for _, w := range words {
		for _, v := range w {
			total += v
		}
	}
	return total
}
