package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop flags worker/DFS-style loops that run inside a function
// accepting a context.Context but never consult the context along the
// loop path. Such a loop keeps grinding after the caller's deadline
// expired or a sibling worker failed — exactly the unbounded-latency
// hazard the interruptible certification pipeline exists to prevent.
//
// A loop counts as "doing cancellable work" when its body (excluding
// nested function literals) contains another loop or calls a
// module-internal function that itself accepts a context — cheap scan
// and merge loops are deliberately out of scope. A loop is exempt when
// it, or an enclosing loop in the same function, references any
// context-typed value: polling ctx.Err(), selecting on ctx.Done(), or
// forwarding ctx into a callee all qualify. Heavy loops that genuinely
// must not be interrupted belong in a context-free helper, which also
// documents the contract.
var CtxLoop = &Check{
	Name: "ctxloop",
	Doc:  "loop in a context-accepting function does cancellable work without ever consulting the context",
	Run:  runCtxLoop,
}

func runCtxLoop(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				obj := p.Info().Defs[fn.Name]
				if fn.Body != nil && obj != nil && signatureHasCtx(obj.Type()) {
					walkCtxScope(p, fn.Body, false)
				}
			case *ast.FuncLit:
				if signatureHasCtx(p.TypeOf(fn)) {
					walkCtxScope(p, fn.Body, false)
				}
			}
			return true
		})
	}
}

// walkCtxScope traverses one function body in which a context parameter
// is in scope. consulted records whether an enclosing loop already
// polls the context: an inner loop then inherits per-iteration
// cancellation from its parent and is not flagged.
func walkCtxScope(p *Pass, n ast.Node, consulted bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch node := c.(type) {
		case *ast.FuncLit:
			if c == n {
				return true
			}
			// A nested literal with its own context parameter is
			// analyzed as a scope of its own by runCtxLoop. One that
			// merely captures ctx runs on its own schedule (typically a
			// spawned worker), so enclosing consults do not cover it.
			if !signatureHasCtx(p.TypeOf(node)) {
				walkCtxScope(p, node.Body, false)
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if c == n {
				return true
			}
			loopConsulted := consulted || referencesCtx(p, node)
			if !loopConsulted && loopDoesCancellableWork(p, node) {
				p.Reportf(node.Pos(), "loop does cancellable work but never consults the context; poll ctx.Err() (or select on ctx.Done()) in the loop, or move it into a context-free helper")
				return false
			}
			walkCtxScope(p, node, loopConsulted)
			return false
		}
		return true
	})
}

// referencesCtx reports whether any identifier of context type occurs
// in n — a poll, a select on Done, or forwarding ctx to a callee.
func referencesCtx(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := p.Info().Uses[id]
		if obj == nil {
			obj = p.Info().Defs[id]
		}
		if obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}

// loopDoesCancellableWork reports whether the loop body (excluding
// nested function literals) contains another loop or a call into
// module-internal context-accepting machinery — the signatures of
// work worth interrupting.
func loopDoesCancellableWork(p *Pass, loop ast.Node) bool {
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	if body == nil {
		return false
	}
	work := false
	ast.Inspect(body, func(c ast.Node) bool {
		if work {
			return false
		}
		switch node := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			work = true
			return false
		case *ast.CallExpr:
			fn := calleeFunc(p, node)
			if fn != nil && p.IsModuleObject(fn) && signatureHasCtx(fn.Type()) {
				work = true
				return false
			}
		}
		return true
	})
	return work
}

// signatureHasCtx reports whether t is a function signature with a
// context.Context parameter.
func signatureHasCtx(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
