package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags map iteration whose body feeds an order-sensitive
// sink: appending to a slice declared outside the loop, writing to an
// io.Writer / strings.Builder / hash / encoder, or formatting output.
// Go randomizes map iteration order per run, so such a loop breaks
// exactly the guarantees this repo stakes its certificates on:
// bit-identical parallel merges, bit-identical checkpoint resume, and
// byte-stable CSV/report/metrics emission.
//
// The canonical fix — collect the keys, sort them, then range over the
// sorted slice — is recognized: an append target that is passed to a
// sort.* or slices.Sort* call anywhere in the same function is exempt,
// so the collect-and-sort idiom is not flagged.
var MapOrder = &Check{
	Name: "maporder",
	Doc:  "map iteration feeds an order-sensitive sink (slice append, writer, hash, encoder) without sorting",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapOrderFunc(p, body)
			}
			return true
		})
	}
}

// checkMapOrderFunc analyzes one function body. Nested function
// literals are visited by runMapOrder as functions of their own; their
// statements are excluded here so sinks and sorts are attributed to
// the right scope.
func checkMapOrderFunc(p *Pass, body *ast.BlockStmt) {
	sorted := sortedObjects(p, body)
	inspectSameFunc(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := p.TypeOf(rng.X); t == nil || !isMapType(t) {
			return true
		}
		reportMapOrderSinks(p, rng, sorted)
		return true
	})
}

// reportMapOrderSinks reports every order-sensitive sink in the body of
// a range-over-map statement.
func reportMapOrderSinks(p *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	inspectSameFunc(rng.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(node.Lhs) {
					continue
				}
				obj := assignTargetObject(p, node.Lhs[i])
				if obj == nil || sorted[obj] {
					continue
				}
				if declaredWithin(obj, rng.Body) {
					continue // loop-local scratch: order cannot escape the iteration
				}
				p.Reportf(node.Pos(), "map iteration appends to %s in random order; sort the keys first (or sort %s before use) — unsorted emission breaks bit-identical merge and resume", obj.Name(), obj.Name())
			}
		case *ast.CallExpr:
			name, ok := orderSensitiveSink(p, node)
			if !ok {
				return true
			}
			// A writer/hash/encoder created inside the loop body is
			// per-iteration scratch; only sinks that outlive an
			// iteration observe map order. The subject is the method
			// receiver, or the writer argument of the fmt.F*/Append*
			// forms.
			var subject ast.Expr
			if sel, isSel := ast.Unparen(node.Fun).(*ast.SelectorExpr); isSel {
				subject = sel.X
			}
			if fn := calleeFunc(p, node); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				subject = nil
				if strings.HasPrefix(fn.Name(), "F") || strings.HasPrefix(fn.Name(), "Append") {
					if len(node.Args) > 0 {
						subject = node.Args[0]
					}
				}
			}
			if subject != nil {
				e := ast.Unparen(subject)
				if u, isAddr := e.(*ast.UnaryExpr); isAddr && u.Op == token.AND {
					e = u.X
				}
				if obj := assignTargetObject(p, e); obj != nil && declaredWithin(obj, rng.Body) {
					return true
				}
			}
			p.Reportf(node.Pos(), "map iteration calls %s in random order; iterate sorted keys so output, hashes, and encodings are byte-stable", name)
		}
		return true
	})
}

// sortedObjects collects every object that is handed to a sorting
// function anywhere in the function body — sort.Strings(keys),
// sort.Slice(rows, ...), slices.Sort(ids), and method forms alike.
func sortedObjects(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	sorted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			e := ast.Unparen(arg)
			if u, ok := e.(*ast.UnaryExpr); ok {
				e = ast.Unparen(u.X)
			}
			if obj := assignTargetObject(p, e); obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	return sorted
}

// orderSensitiveSink reports whether call writes, formats, hashes, or
// encodes — operations whose byte stream depends on invocation order.
func orderSensitiveSink(p *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch name {
		case "Fprintf", "Fprintln", "Fprint", "Printf", "Println", "Print", "Appendf", "Appendln", "Append":
			return "fmt." + name, true
		}
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteRecord", "Encode", "EncodeValue", "Sum":
		return typeString(sig.Recv().Type()) + "." + name, true
	}
	return "", false
}

// assignTargetObject resolves the object behind an assignable
// expression: a plain identifier, or the root identifier of a
// selector/index chain (s.rows, buf[i]).
func assignTargetObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := p.Info().Uses[x]; obj != nil {
				return obj
			}
			return p.Info().Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info().Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// inspectSameFunc walks n but does not descend into nested function
// literals: their bodies belong to a different dynamic scope.
func inspectSameFunc(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return fn(c)
	})
}

// typeString renders a receiver type compactly (package-qualified base
// name, pointer stripped).
func typeString(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}
