package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCompare flags sentinel errors compared with == or != (or matched
// in a switch on an error value) instead of errors.Is. The engine
// composes errors through fmt.Errorf("%w") and errors.Join — a
// jsr.ErrBudget wrapped together with a checkpoint write failure no
// longer satisfies err == jsr.ErrBudget, so an identity comparison
// silently stops recognizing the sentinel and the caller misclassifies
// a loose-but-valid bracket as a hard failure (or vice versa).
//
// A sentinel is any package-level variable of error type, in this
// module or elsewhere (io.EOF composes exactly the same way).
// Comparisons against nil are the idiomatic success test and are not
// flagged.
var ErrCompare = &Check{
	Name: "errcompare",
	Doc:  "sentinel error compared with == / != or switched on; use errors.Is (wrapping and errors.Join break identity)",
	Run:  runErrCompare,
}

func runErrCompare(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				if node.Op != token.EQL && node.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{node.X, node.Y} {
					if name, ok := sentinelError(p, side); ok {
						p.Reportf(node.Pos(), "sentinel error %s compared with %s; use errors.Is (wrapping and errors.Join break ==)", name, node.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if node.Tag == nil || !isErrorType(p.TypeOf(node.Tag)) {
					return true
				}
				for _, stmt := range node.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinelError(p, e); ok {
							p.Reportf(e.Pos(), "switch on an error matches sentinel %s by identity; use an errors.Is chain (switch { case errors.Is(err, %s): ... })", name, name)
						}
					}
				}
			}
			return true
		})
	}
}

// sentinelError reports whether e resolves to a package-level variable
// of error type — the shape of every sentinel (jsr.ErrBudget, io.EOF).
// Locals, fields, and nil do not qualify.
func sentinelError(p *Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	v, ok := p.Info().Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !implementsError(v.Type()) {
		return "", false
	}
	return id.Name, true
}

// implementsError reports whether t satisfies the error interface —
// plain error-typed sentinels and concrete singleton error values
// alike.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return iface != nil && types.Implements(t, iface)
}
