package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Dir        string // absolute directory
	ImportPath string
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error // non-fatal type-check diagnostics
}

// Loader parses and type-checks packages of a single module using only
// the standard library. Imports inside the module are resolved against
// the module directory; everything else is delegated to the stdlib
// source importer (go/importer "source"), which compiles dependencies
// from GOROOT/src and therefore works offline.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std  types.ImporterFrom
	pkgs map[string]*Package // by import path, memoized
}

// NewLoader creates a loader rooted at the module containing dir. It
// walks upward until it finds go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		std:        std,
		pkgs:       map[string]*Package{},
	}, nil
}

func findModule(dir string) (moduleDir, modulePath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// Import implements types.Importer for the type checker: module-local
// import paths are loaded from source, all others go to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleDir, 0)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads and type-checks the package in dir. Dirs with no
// non-test Go files return (nil, nil).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(importPath)
}

func (l *Loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // cycle guard

	dir := l.dirFor(importPath)
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		delete(l.pkgs, importPath)
		return nil, nil
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: importPath,
		ModulePath: l.ModulePath,
		Fset:       l.Fset,
		Info:       info,
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if tpkg == nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", importPath, err)
	}
	pkg.Files = files
	pkg.Types = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// goFileNames lists the non-test Go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ExpandPatterns resolves go-style package patterns ("./...", "dir",
// "dir/...") to package directories. Directories named testdata,
// vendor, or starting with "." or "_" are skipped during ... expansion
// — pass such a directory explicitly to lint it (the linttest harness
// does).
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkGoDirs(root, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if !filepath.IsAbs(base) {
				base = filepath.Join(root, base)
			}
			if err := walkGoDirs(base, add); err != nil {
				return nil, err
			}
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(root, dir)
			}
			if fi, err := os.Stat(dir); err != nil {
				return nil, fmt.Errorf("lint: %s: %v", pat, err)
			} else if !fi.IsDir() {
				return nil, fmt.Errorf("lint: %s is not a directory", pat)
			}
			add(dir)
		}
	}
	return dirs, nil
}

func walkGoDirs(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			add(filepath.Dir(path))
		}
		return nil
	})
}
