// Package lint implements adalint, the project's static-analysis
// driver, and the checks it runs. The stability certificates produced
// by this repository are only as trustworthy as the numerical code that
// computes them: a silent float-equality bug in internal/mat or an
// unseeded RNG in internal/experiments undermines both the certificate
// and the reproducibility of EXPERIMENTS.md. adalint encodes those
// hazards as machine-checked rules.
//
// The driver is built entirely on the Go standard library (go/parser,
// go/ast, go/types with a module-aware importer) so the hermetic
// tier-1 `go build ./... && go test ./...` stays green offline; there
// is no golang.org/x/tools dependency.
//
// Findings are reported as
//
//	file:line:col: [checkname] message
//
// and may be suppressed by a comment on the offending line, or on the
// line immediately above it:
//
//	//lint:ignore <checkname> <reason>
//
// The reason is mandatory: a suppression documents why the flagged
// pattern is correct (e.g. an exact-zero structural test), and a bare
// suppression would defeat that purpose.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Check is one named analysis run over a type-checked package.
type Check struct {
	Name string      // short lowercase identifier used in findings and suppressions
	Doc  string      // one-line description for -list output
	Run  func(*Pass) // invoked once per package
}

// A Finding is one diagnostic produced by a check.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// A Pass carries one check's view of one package.
type Pass struct {
	Check *Check
	Pkg   *Package

	findings *[]Finding
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the parsed files of the package under analysis.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Info returns the type-checker results for the package.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the type checker did not
// record one (malformed code).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// IsModuleObject reports whether obj is declared inside this module
// (as opposed to the standard library).
func (p *Pass) IsModuleObject(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == p.Pkg.ModulePath || strings.HasPrefix(path, p.Pkg.ModulePath+"/")
}

// Checks returns the full registered suite in stable order.
func Checks() []*Check {
	return []*Check{
		FloatCompare,
		UnseededRand,
		MatAlias,
		NakedPanic,
		DroppedErr,
		CtxLoop,
		HTTPServer,
		ClientTimeout,
		ErrCompare,
		MapOrder,
		CtxPropagate,
		LockCopy,
		GoroLeak,
		SyncRename,
		TimeAfter,
		UnusedIgnore,
	}
}

// UnusedIgnore is the suppression-accounting pseudo-check: its
// findings are produced by RunChecks itself, which alone knows which
// directives matched a finding. A //lint:ignore that suppresses
// nothing is dead weight at best — and at worst a directive that
// silently stopped guarding the line it was written for (the code
// moved, the check was renamed, the finding was fixed). Accounting
// findings cannot themselves be suppressed; remove the directive or
// baseline the finding.
var UnusedIgnore = &Check{
	Name: "unusedignore",
	Doc:  "//lint:ignore directive that suppresses nothing, or names an unregistered check",
	Run:  func(*Pass) {}, // implemented inside RunChecks
}

// CheckByName returns the named check, or nil.
func CheckByName(name string) *Check {
	for _, c := range Checks() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	file   string
	line   int
	check  string
	reason string
}

const ignorePrefix = "lint:ignore"

// directives extracts the //lint:ignore directives of a package.
// Malformed directives (missing check name or reason) are returned as
// findings so they cannot silently fail to suppress.
func directives(pkg *Package) ([]ignoreDirective, []Finding) {
	var dirs []ignoreDirective
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:     pos,
						Check:   "adalint",
						Message: "malformed //lint:ignore: want \"//lint:ignore <check> <reason>\" with a non-empty reason",
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{
					pos:    pos,
					file:   pos.Filename,
					line:   pos.Line,
					check:  fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, bad
}

// suppressed reports whether finding f is covered by a directive on the
// same line or the line immediately above, marking every covering
// directive as used in the accounting array.
func suppressed(f Finding, dirs []ignoreDirective, used []bool) bool {
	hit := false
	for i, d := range dirs {
		if d.file != f.Pos.Filename || d.check != f.Check {
			continue
		}
		if d.line == f.Pos.Line || d.line == f.Pos.Line-1 {
			used[i] = true
			hit = true
		}
	}
	return hit
}

// RunChecks runs the given checks over a loaded package and returns the
// unsuppressed findings, sorted by position. When the run set includes
// UnusedIgnore, suppression accounting runs too: a directive naming an
// unregistered check is always reported, and a directive for a check
// that ran without producing a finding on its line is reported as
// unused. Accounting findings bypass suppression — a directive must
// never be able to vouch for itself.
func RunChecks(pkg *Package, checks []*Check) []Finding {
	var raw []Finding
	accounting := false
	ran := map[string]bool{}
	for _, c := range checks {
		if c.Name == UnusedIgnore.Name {
			accounting = true
			continue
		}
		ran[c.Name] = true
		pass := &Pass{Check: c, Pkg: pkg, findings: &raw}
		c.Run(pass)
	}
	dirs, bad := directives(pkg)
	out := append([]Finding(nil), bad...)
	used := make([]bool, len(dirs))
	for _, f := range raw {
		if !suppressed(f, dirs, used) {
			out = append(out, f)
		}
	}
	if accounting {
		for i, d := range dirs {
			switch {
			case CheckByName(d.check) == nil:
				out = append(out, Finding{
					Pos:     d.pos,
					Check:   UnusedIgnore.Name,
					Message: fmt.Sprintf("//lint:ignore names unregistered check %q (typo?); it can never suppress anything", d.check),
				})
			case ran[d.check] && !used[i]:
				out = append(out, Finding{
					Pos:     d.pos,
					Check:   UnusedIgnore.Name,
					Message: fmt.Sprintf("//lint:ignore %s suppresses nothing: %s reported no finding on this or the next line; remove the stale directive", d.check, d.check),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}
