package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

// A Baseline is the set of accepted findings: debt that is
// acknowledged but not yet paid down. Entries match on file, check,
// and message — deliberately not on line or column, so unrelated edits
// above a finding do not un-accept it. Count bounds how many identical
// findings an entry absorbs; the same pattern appearing an extra time
// is a new finding, not covered debt.
//
// The baseline is accounting in both directions: findings it matches
// are filtered from the report, and entries that match nothing are
// reported as stale (check "baseline") so a fixed finding cannot leave
// a hole for a future regression to hide in.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry accepts up to Count findings with this file, check,
// and message. File is module-root-relative with forward slashes, so
// baselines are portable across checkouts.
type BaselineEntry struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Count   int    `json:"count,omitempty"` // 0 means 1
}

func (e BaselineEntry) key() string { return e.File + "\x00" + e.Check + "\x00" + e.Message }

// position anchors a stale-entry finding at the entry's file (line 0:
// the original line is unknown by design).
func (e BaselineEntry) position(moduleDir string) token.Position {
	return token.Position{Filename: filepath.Join(moduleDir, filepath.FromSlash(e.File))}
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %v", path, err)
	}
	return &b, nil
}

// NewBaseline builds a baseline accepting exactly the given findings.
func NewBaseline(findings []Finding, moduleDir string) *Baseline {
	counts := map[string]*BaselineEntry{}
	var order []string
	for _, f := range findings {
		e := BaselineEntry{File: relSlash(f.Pos.Filename, moduleDir), Check: f.Check, Message: f.Message}
		k := e.key()
		if cur, ok := counts[k]; ok {
			cur.Count++
			continue
		}
		e.Count = 1
		counts[k] = &e
		order = append(order, k)
	}
	sort.Strings(order)
	b := &Baseline{}
	for _, k := range order {
		b.Entries = append(b.Entries, *counts[k])
	}
	return b
}

// Write renders the baseline as stable, diff-friendly JSON.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits findings into kept (not in the baseline) and counts
// the baselined remainder, returning also the entries that matched
// fewer findings than they accept — the stale debt.
func (b *Baseline) Filter(findings []Finding, moduleDir string) (kept []Finding, baselined int, stale []BaselineEntry) {
	remaining := map[string]int{}
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		remaining[e.key()] += n
	}
	for _, f := range findings {
		k := BaselineEntry{File: relSlash(f.Pos.Filename, moduleDir), Check: f.Check, Message: f.Message}.key()
		if remaining[k] > 0 {
			remaining[k]--
			baselined++
			continue
		}
		kept = append(kept, f)
	}
	for _, e := range b.Entries {
		if remaining[e.key()] > 0 {
			stale = append(stale, e)
			remaining[e.key()] = 0 // report an over-counted entry once
		}
	}
	return kept, baselined, stale
}

// relSlash renders path relative to moduleDir with forward slashes;
// paths outside the module stay absolute (still slash-normalized).
func relSlash(path, moduleDir string) string {
	if rel, err := filepath.Rel(moduleDir, path); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
