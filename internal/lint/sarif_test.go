package lint_test

import (
	"encoding/json"
	"strings"
	"testing"

	"adaptivertc/internal/lint"
)

// TestSARIFValid renders a real run as SARIF and re-parses it,
// asserting the SARIF 2.1.0 invariants a consumer (GitHub code
// scanning, sarif-tools) relies on: version string, tool name, every
// result's ruleId resolving to a rule, ruleIndex agreement, 1-based
// regions, and relative artifact URIs.
func TestSARIFValid(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(".", []string{"testdata/errcompare", "testdata/lockcopy"}, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("fixtures produced no findings to serialize")
	}
	data, err := lint.ToSARIF(res.Findings, lint.Checks(), "test", loader.ModuleDir)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through a schema-shaped anonymous struct: required
	// properties missing from the output would surface as zero values.
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif") {
		t.Errorf("$schema %q does not reference a sarif schema", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "adalint" {
		t.Errorf("tool name = %q, want adalint", run.Tool.Driver.Name)
	}
	if len(run.Results) != len(res.Findings) {
		t.Errorf("got %d results, want %d", len(run.Results), len(res.Findings))
	}

	ruleAt := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" {
			t.Errorf("rule %d has empty id", i)
		}
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has empty shortDescription", r.ID)
		}
		if _, dup := ruleAt[r.ID]; dup {
			t.Errorf("duplicate rule id %s", r.ID)
		}
		ruleAt[r.ID] = i
	}
	for _, c := range lint.Checks() {
		if _, ok := ruleAt[c.Name]; !ok {
			t.Errorf("check %s missing from rules metadata", c.Name)
		}
	}
	for i, r := range run.Results {
		idx, ok := ruleAt[r.RuleID]
		if !ok {
			t.Errorf("result %d ruleId %q has no rule", i, r.RuleID)
			continue
		}
		if r.RuleIndex != idx {
			t.Errorf("result %d ruleIndex %d, rules[%q] is at %d", i, r.RuleIndex, r.RuleID, idx)
		}
		if r.Level != "error" {
			t.Errorf("result %d level %q, want error", i, r.Level)
		}
		if r.Message.Text == "" {
			t.Errorf("result %d has empty message", i)
		}
		if len(r.Locations) != 1 {
			t.Errorf("result %d has %d locations, want 1", i, len(r.Locations))
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if strings.HasPrefix(loc.ArtifactLocation.URI, "/") || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("result %d artifact URI %q is not a relative slash path", i, loc.ArtifactLocation.URI)
		}
		if loc.Region == nil || loc.Region.StartLine < 1 {
			t.Errorf("result %d region is missing or not 1-based: %+v", i, loc.Region)
		}
	}
}

// TestSARIFCleanRun: zero findings must still produce a valid log with
// an empty (non-null) results array and full rules metadata.
func TestSARIFCleanRun(t *testing.T) {
	data, err := lint.ToSARIF(nil, lint.Checks(), "test", ".")
	if err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}
	runs := log["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"]
	if !ok || results == nil {
		t.Fatal("clean run must serialize results as [] not null")
	}
	if n := len(results.([]any)); n != 0 {
		t.Fatalf("clean run has %d results", n)
	}
}
