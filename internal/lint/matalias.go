package lint

import (
	"go/ast"
	"go/types"
)

// MatAlias flags calls to internal/mat in-place operations whose
// destination aliases a source operand. The mat package documents
// which arguments may not alias (MulVecInto's dst and x share no
// elements; mulInto's c must not alias a or b); violating that silently
// corrupts the result because partially written output feeds back into
// the input. The analysis is syntactic-but-resolved: it reports only
// when destination and source are the same variable or the same field
// chain on the same variables, so it has no false positives.
var MatAlias = &Check{
	Name: "matalias",
	Doc:  "in-place internal/mat operation whose destination aliases a source argument",
	Run:  runMatAlias,
}

// matAliasRules maps function name -> pairs of argument indexes that
// must not alias (destination first).
var matAliasRules = map[string][][2]int{
	"AddInPlace": {{0, 1}}, // a += b is fine elementwise, but a+=a is Scale(2,·) in disguise: flag self-add as a likely copy-paste bug
	"MulVecInto": {{0, 2}}, // dst must not alias x (row dot-products read x after dst[i] is written)
	"mulInto":    {{0, 1}, {0, 2}},
	"MulInto":    {{0, 1}, {0, 2}}, // c = a*b accumulates into c while re-reading a and b rows
	"mulGeneric": {{0, 1}, {0, 2}},
}

func runMatAlias(p *Pass) {
	matPath := p.Pkg.ModulePath + "/internal/mat"
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != matPath {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Method: the only in-place method with an operand is CopyFrom.
				if fn.Name() == "CopyFrom" && len(call.Args) == 1 {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
						sameStorage(p, sel.X, call.Args[0]) {
						p.Reportf(call.Pos(), "CopyFrom copies a matrix onto itself; the call is a no-op and likely names the wrong source")
					}
				}
				return true
			}
			for _, pair := range matAliasRules[fn.Name()] {
				dst, src := pair[0], pair[1]
				if dst < len(call.Args) && src < len(call.Args) &&
					sameStorage(p, call.Args[dst], call.Args[src]) {
					p.Reportf(call.Pos(), "mat.%s destination aliases source argument %d; in-place mat operations require non-aliasing operands", fn.Name(), src)
				}
			}
			return true
		})
	}
}

// sameStorage reports whether a and b statically denote the same
// variable or the same field chain rooted at the same variable.
// Conservative: anything it cannot resolve is assumed distinct.
func sameStorage(p *Pass, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao, bo := p.Info().Uses[ae], p.Info().Uses[be]
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		ao, bo := p.Info().Uses[ae.Sel], p.Info().Uses[be.Sel]
		return ao != nil && ao == bo && sameStorage(p, ae.X, be.X)
	}
	return false
}
