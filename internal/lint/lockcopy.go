package lint

import (
	"go/ast"
	"go/types"
)

// LockCopy flags sync primitives copied by value: assignment from an
// existing value, range over a slice/array/map of lock-bearing
// elements, and lock-bearing arguments passed by value. A copied
// Mutex forks the lock state — both copies unlock independently and
// the critical section silently stops excluding anybody, which in this
// repo means torn checkpoint writes and racy metrics instead of a
// compile error.
//
// A type is lock-bearing when it is (or transitively contains, through
// struct fields and array elements) sync.Mutex, RWMutex, WaitGroup,
// Once, Cond, Pool, or Map. Fresh composite literals are not flagged
// on assignment — initializing a zero value is the one legitimate
// value-copy.
var LockCopy = &Check{
	Name: "lockcopy",
	Doc:  "sync.Mutex/RWMutex (or a struct containing one) copied by value via assignment, range, or call argument",
	Run:  runLockCopy,
}

func runLockCopy(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range node.Rhs {
					if !isValueRead(rhs) {
						continue
					}
					if t := p.TypeOf(rhs); t != nil && containsLock(t, nil) {
						p.Reportf(node.Pos(), "assignment copies %s, which contains a sync primitive; copy a pointer instead (both copies unlock independently)", typeString(t))
					}
				}
			case *ast.RangeStmt:
				if node.Value == nil {
					return true
				}
				// The := form defines the value ident (recorded in
				// Defs); the = form re-assigns an existing expression
				// (recorded in Types). Resolve whichever applies.
				t := p.TypeOf(node.Value)
				if id, ok := node.Value.(*ast.Ident); ok && t == nil {
					if obj := p.Info().Defs[id]; obj != nil {
						t = obj.Type()
					}
				}
				if t != nil && containsLock(t, nil) {
					p.Reportf(node.Value.Pos(), "range copies each %s element by value, forking its sync primitive; range over indices or use pointers", typeString(t))
				}
			case *ast.CallExpr:
				fn := calleeFunc(p, node)
				for _, arg := range node.Args {
					if !isValueRead(arg) {
						continue
					}
					t := p.TypeOf(arg)
					if t == nil || !containsLock(t, nil) {
						continue
					}
					callee := "the callee"
					if fn != nil {
						callee = fn.Name()
					}
					p.Reportf(arg.Pos(), "argument passes %s to %s by value, copying its sync primitive; pass a pointer", typeString(t), callee)
				}
			}
			return true
		})
	}
}

// isValueRead reports whether e reads an existing value — the only
// copies that fork lock state. Fresh composite literals, conversions
// of literals, and address-of expressions are exempt.
func isValueRead(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	default:
		// Composite literals initialize a fresh zero value; &x shares
		// rather than copies; a call's returned copy is the callee's
		// signature problem, not this call site's.
		return false
	}
}

// containsLock reports whether t is or transitively contains one of
// the sync package's non-copyable primitives. seen guards recursive
// types.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}
