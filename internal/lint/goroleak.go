package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags goroutines launched inside loops with no visible exit
// path: the spawned body neither consults a context, nor performs any
// channel operation (a done/work channel), nor signals a
// sync.WaitGroup. One such goroutine per loop iteration is an
// unbounded leak — under sustained traffic the certification service
// would accrete them until the scheduler drowns, long after the
// requests that spawned them were abandoned.
//
// Named-function launches (`go worker(...)`) are exempt when an
// exit path is visible at or behind the call: an argument carrying a
// context, channel, or *sync.WaitGroup; a same-package callee whose
// body contains one; or a method receiver whose struct holds a
// channel, WaitGroup, or context field (the worker-pool shape).
var GoroLeak = &Check{
	Name: "goroleak",
	Doc:  "goroutine launched in a loop with no ctx/channel/WaitGroup exit path",
	Run:  runGoroLeak,
}

func runGoroLeak(p *Pass) {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files() {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.Info().Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ForStmt:
				checkLoopGoStmts(p, node.Body, decls)
			case *ast.RangeStmt:
				checkLoopGoStmts(p, node.Body, decls)
			}
			return true
		})
	}
}

// checkLoopGoStmts flags exit-less go statements in a loop body. Only
// statements of this loop's own dynamic scope count — a nested
// function literal's loops are visited by runGoroLeak on their own.
func checkLoopGoStmts(p *Pass, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl) {
	inspectSameFunc(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if argsCarryExit(p, g.Call) {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			if !hasExitPath(p, lit.Body) {
				p.Reportf(g.Pos(), "goroutine launched per loop iteration has no exit path (no context, channel operation, or WaitGroup); it leaks under sustained load")
			}
			return true
		}
		if fn := calleeFunc(p, g.Call); fn != nil {
			if decl, ok := decls[fn]; ok {
				if !hasExitPath(p, decl.Body) {
					p.Reportf(g.Pos(), "goroutine launched per loop iteration runs %s, which has no exit path (no context, channel operation, or WaitGroup)", fn.Name())
				}
				return true
			}
			if receiverCarriesExit(p, g.Call) {
				return true
			}
		}
		p.Reportf(g.Pos(), "goroutine launched per loop iteration passes no context, channel, or *sync.WaitGroup to its callee; nothing bounds its lifetime")
		return true
	})
}

// receiverCarriesExit reports whether a method launch's receiver
// struct holds a channel, WaitGroup, or context field — the shape of a
// worker pool whose exit protocol lives in shared state rather than in
// the argument list.
func receiverCarriesExit(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isContextType(ft) {
			return true
		}
		switch u := ft.Underlying().(type) {
		case *types.Chan:
			return true
		case *types.Pointer:
			if named, ok := u.Elem().(*types.Named); ok && isWaitGroupNamed(named) {
				return true
			}
		default:
			if named, ok := ft.(*types.Named); ok && isWaitGroupNamed(named) {
				return true
			}
		}
	}
	return false
}

// hasExitPath reports whether a spawned body contains any of the
// recognized liveness signals: a context-typed value, a channel
// operation (send, receive, close, select), or a WaitGroup method
// call.
func hasExitPath(p *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(node.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info().Uses[id].(*types.Builtin); isBuiltin {
					found = true
					break
				}
			}
			if fn := calleeFunc(p, node); fn != nil && isWaitGroupMethod(fn) {
				found = true
			}
		case *ast.Ident:
			obj := p.Info().Uses[node]
			if obj == nil {
				obj = p.Info().Defs[node]
			}
			if obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// argsCarryExit reports whether any call argument is a context, a
// channel, or a *sync.WaitGroup — the shapes through which a callee
// can learn when to stop.
func argsCarryExit(p *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := p.TypeOf(arg)
		if t == nil {
			continue
		}
		if isContextType(t) {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Chan:
			return true
		case *types.Pointer:
			if named, ok := u.Elem().(*types.Named); ok && isWaitGroupNamed(named) {
				return true
			}
		}
	}
	return false
}

// isWaitGroupMethod reports whether fn is a method of sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedRecv(sig.Recv().Type())
	return named != nil && isWaitGroupNamed(named)
}

// isWaitGroupNamed reports whether named is sync.WaitGroup.
func isWaitGroupNamed(named *types.Named) bool {
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
