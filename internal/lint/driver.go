package lint

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Options configures one driver run.
type Options struct {
	// Checks is the suite to run; nil means Checks() (everything).
	Checks []*Check
	// Workers bounds the analysis fan-out; <= 0 means GOMAXPROCS.
	Workers int
	// Baseline holds accepted findings; nil means nothing is accepted.
	Baseline *Baseline
}

// Result is the outcome of a driver run.
type Result struct {
	// Findings are the unsuppressed, unbaselined findings plus one
	// finding per stale baseline entry, in global position order.
	Findings []Finding
	// Baselined counts findings filtered out by the baseline.
	Baselined int
	// Packages counts the packages analyzed.
	Packages int
}

// Run is the adalint driver: it loads every package matched by
// patterns (relative to dir), fans the check suite out across worker
// goroutines — one package per task — and merges the per-package
// findings into one deterministic, position-sorted report.
//
// Loading is serial: the loader memoizes type-checked imports in
// shared state, and most of the module is reached transitively from
// the first few packages anyway. The analysis passes — pure functions
// of one package's immutable syntax trees and type information — are
// where the per-package fan-out is safe and profitable.
func Run(dir string, patterns []string, opt Options) (*Result, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	checks := opt.Checks
	if checks == nil {
		checks = Checks()
	}

	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		pkgs = append(pkgs, pkg)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	perPkg := make([][]Finding, len(pkgs))
	if workers <= 1 {
		for i, pkg := range pkgs {
			perPkg[i] = RunChecks(pkg, checks)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					perPkg[i] = RunChecks(pkgs[i], checks)
				}
			}()
		}
		for i := range pkgs {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	var all []Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	res := &Result{Packages: len(pkgs)}
	if opt.Baseline != nil {
		kept, baselined, stale := opt.Baseline.Filter(all, loader.ModuleDir)
		all = kept
		res.Baselined = baselined
		for _, e := range stale {
			all = append(all, Finding{
				Pos:     e.position(loader.ModuleDir),
				Check:   "baseline",
				Message: fmt.Sprintf("stale baseline entry: no current [%s] finding matches %q; remove it so the baseline cannot mask a regression", e.Check, e.Message),
			})
		}
	}
	sortFindings(all)
	res.Findings = all
	return res, nil
}

// sortFindings orders findings by file, line, column, check, message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if fs[i].Check != fs[j].Check {
			return fs[i].Check < fs[j].Check
		}
		return fs[i].Message < fs[j].Message
	})
}
