// SARIF 2.1.0 serialization for adalint findings, so CI systems (and
// the GitHub code-scanning UI) can ingest the report without parsing
// the human text form. Only the small, mandatory corner of the format
// is emitted; every struct mirrors a property of the OASIS sarif-2.1.0
// schema by its JSON tag.
package lint

import "encoding/json"

// SARIF schema constants.
const (
	SARIFSchema  = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"
	SARIFVersion = "2.1.0"
)

// SARIFLog is the document root.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one tool invocation.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool identifies the producing analyzer.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver carries the tool name, version and rule metadata.
type SARIFDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version,omitempty"`
	Rules   []SARIFRule `json:"rules"`
}

// SARIFRule is one check's metadata.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

// SARIFResult is one finding.
type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
}

// SARIFMessage wraps a plain-text message.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFLocation points a result at a file region.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation is an artifact plus an optional region.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           *SARIFRegion          `json:"region,omitempty"`
}

// SARIFArtifactLocation names the file, module-root-relative.
type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

// SARIFRegion is a 1-based source position.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ToSARIF renders findings as a SARIF 2.1.0 log. Rules cover the
// whole suite that ran (so a clean run still documents what was
// checked); driver-synthesized findings (checks "adalint", "baseline")
// get rules appended on demand. File URIs are moduleDir-relative.
func ToSARIF(findings []Finding, checks []*Check, version, moduleDir string) ([]byte, error) {
	ruleIndex := map[string]int{}
	var rules []SARIFRule
	addRule := func(id, doc string) int {
		if i, ok := ruleIndex[id]; ok {
			return i
		}
		ruleIndex[id] = len(rules)
		rules = append(rules, SARIFRule{ID: id, ShortDescription: SARIFMessage{Text: doc}})
		return len(rules) - 1
	}
	for _, c := range checks {
		addRule(c.Name, c.Doc)
	}

	results := make([]SARIFResult, 0, len(findings))
	for _, f := range findings {
		var region *SARIFRegion
		if f.Pos.Line > 0 {
			region = &SARIFRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column}
		}
		idx := addRule(f.Check, "adalint driver diagnostic")
		results = append(results, SARIFResult{
			RuleID:    f.Check,
			RuleIndex: idx,
			Level:     "error", // every surviving finding fails the gate
			Message:   SARIFMessage{Text: f.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{URI: relSlash(f.Pos.Filename, moduleDir)},
					Region:           region,
				},
			}},
		})
	}

	log := SARIFLog{
		Schema:  SARIFSchema,
		Version: SARIFVersion,
		Runs: []SARIFRun{{
			Tool:    SARIFTool{Driver: SARIFDriver{Name: "adalint", Version: version, Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
