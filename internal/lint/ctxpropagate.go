package lint

import (
	"go/ast"
	"go/types"
)

// CtxPropagate flags call sites that hold a context.Context but invoke
// the context-free sibling of an API that has a Ctx variant — calling
// jsr.Gripenberg where jsr.GripenbergCtx exists, or d.StabilityBounds
// where d.StabilityBoundsCtx exists. The non-Ctx forms run on
// context.Background internally, so the call is a deadline and
// interruption hole: the caller's wall-clock budget, Ctrl-C, and
// client disconnects all stop propagating exactly at that frame.
//
// The sibling convention is the repo-wide one: F and FCtx in the same
// package (or method set), where FCtx's signature accepts a
// context.Context. Only module-internal callees are considered —
// stdlib pairs have different idioms. Function literals that capture
// an enclosing ctx are in scope too: the context is in hand either
// way.
var CtxPropagate = &Check{
	Name: "ctxpropagate",
	Doc:  "context is in scope but the context-free sibling of a Ctx API is called; use the Ctx variant",
	Run:  runCtxPropagate,
}

func runCtxPropagate(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				obj := p.Info().Defs[fn.Name]
				if fn.Body != nil && obj != nil && signatureHasCtx(obj.Type()) {
					checkCtxCalls(p, fn.Body)
					return false
				}
			case *ast.FuncLit:
				if signatureHasCtx(p.TypeOf(fn)) {
					checkCtxCalls(p, fn.Body)
					return false
				}
			}
			return true
		})
	}
}

// checkCtxCalls walks a body in which a context is in scope and flags
// every call whose callee has a Ctx sibling. Nested function literals
// are included: whether they capture the enclosing ctx or declare
// their own, a context is in hand at every call they make.
func checkCtxCalls(p *Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || !p.IsModuleObject(fn) || signatureHasCtx(fn.Type()) {
			return true
		}
		if sibling := ctxSibling(fn); sibling != nil {
			p.Reportf(call.Pos(), "%s is called with a context in scope but ignores it; call %s so deadlines, Ctrl-C, and disconnects propagate", fn.Name(), sibling.Name())
		}
		return true
	})
}

// ctxSibling returns the FCtx counterpart of fn — a function of the
// same package scope, or a method of the same receiver type, named
// fn.Name()+"Ctx" whose signature accepts a context. Returns nil when
// no such sibling exists.
func ctxSibling(fn *types.Func) *types.Func {
	want := fn.Name() + "Ctx"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		named := namedRecv(recv.Type())
		if named == nil {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want && signatureHasCtx(m.Type()) {
				return m
			}
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	if s, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && signatureHasCtx(s.Type()) {
		return s
	}
	return nil
}

// namedRecv unwraps a receiver type to its named base.
func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
