package lint

import (
	"go/ast"
	"go/types"
)

// UnseededRand flags math/rand usage that breaks the repository's
// reproducibility contract: every Monte-Carlo experiment must be
// replayable from a recorded seed (EXPERIMENTS.md), so randomness has
// to flow from a caller-provided seed through an explicit *rand.Rand.
//
// Two patterns are reported:
//
//  1. package-level math/rand functions (rand.Float64, rand.Intn,
//     rand.Shuffle, ...), which draw from the shared global source the
//     caller cannot seed deterministically per run, and
//  2. rand.New(rand.NewSource(<constant>)) in library (non-main)
//     packages, which hard-codes a seed the caller can neither choose
//     nor record. Fixed literal seeds in package main (examples) are
//     deliberate and allowed.
var UnseededRand = &Check{
	Name: "unseededrand",
	Doc:  "math/rand global-source functions, or hard-coded seeds in library packages",
	Run:  runUnseededRand,
}

// randGlobalFuncs are the math/rand (and math/rand/v2) package-level
// functions that consume the process-global source.
var randGlobalFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "N": true,
	"Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func isMathRand(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

func runUnseededRand(p *Pass) {
	isMain := p.Pkg.Types != nil && p.Pkg.Types.Name() == "main"
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || !isMathRand(fn.Pkg()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on *rand.Rand: fine, the Rand was constructed somewhere
			}
			if randGlobalFuncs[fn.Name()] {
				p.Reportf(call.Pos(), "rand.%s draws from the global source; plumb an explicit seed through rand.New(rand.NewSource(seed)) so runs are reproducible", fn.Name())
				return true
			}
			if fn.Name() == "NewSource" && !isMain && len(call.Args) == 1 {
				if tv, ok := p.Info().Types[call.Args[0]]; ok && tv.Value != nil {
					p.Reportf(call.Pos(), "hard-coded rand seed in library package; accept the seed from the caller so experiments are reproducible from a recorded value")
				}
			}
			return true
		})
	}
}

// calleeFunc resolves the called function, seeing through selector and
// plain identifier callees. Returns nil for builtins, type conversions
// and indirect calls.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info().Uses[id].(*types.Func)
	return fn
}
