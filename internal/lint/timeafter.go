package lint

import (
	"go/ast"
)

// TimeAfter flags time.After used in a select statement that runs
// inside a loop. Each iteration allocates a fresh timer that is not
// released until it fires: in a long-lived worker loop with a long
// timeout and a busy channel, the timers pile up — a slow leak the
// runtime never reclaims early. A loop-level time.NewTimer (reset per
// iteration) or time.NewTicker holds one timer for the loop's whole
// life and is the idiom the repo's heartbeat and watch paths use.
// One-shot selects outside loops are fine, as is time.After feeding a
// plain channel receive outside select.
var TimeAfter = &Check{
	Name: "timeafter",
	Doc:  "time.After in a select inside a loop allocates an uncollectable timer per iteration; hoist a time.NewTimer or NewTicker out of the loop",
	Run:  runTimeAfter,
}

func runTimeAfter(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				walkLoopForSelectAfter(p, n)
				return false
			}
			return true
		})
	}
}

// walkLoopForSelectAfter scans one loop (and its nested loops) for
// select statements whose comm clauses call time.After. Function
// literals are skipped: a goroutine spawned per iteration owns its own
// lifetime, and its single select fires exactly one timer.
func walkLoopForSelectAfter(p *Pass, loop ast.Node) {
	ast.Inspect(loop, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			for _, clause := range node.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue
				}
				ast.Inspect(comm.Comm, func(c ast.Node) bool {
					call, ok := c.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil &&
						fn.Pkg().Path() == "time" && fn.Name() == "After" {
						p.Reportf(call.Pos(), "time.After in a select inside a loop allocates a timer every iteration; hoist a time.NewTimer (or NewTicker) out of the loop and reset it")
					}
					return true
				})
			}
		}
		return true
	})
}
