package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"adaptivertc/internal/lint"
)

// TestMalformedIgnore checks that a reason-less //lint:ignore is
// reported by the driver and does not suppress the finding below it.
func TestMalformedIgnore(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/badignore")
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.RunChecks(pkg, []*lint.Check{lint.FloatCompare})
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed directive + unsuppressed floatcompare):\n%v", len(findings), findings)
	}
	if findings[0].Check != "adalint" || !strings.Contains(findings[0].Message, "malformed") {
		t.Errorf("first finding should report the malformed directive, got %s", findings[0])
	}
	if findings[1].Check != "floatcompare" {
		t.Errorf("malformed directive must not suppress the finding below it, got %s", findings[1])
	}
}

// TestExpandPatternsSkipsTestdata checks that "./..." expansion never
// descends into testdata (fixtures would otherwise fail the real run),
// while naming a testdata directory explicitly still works.
func TestExpandPatternsSkipsTestdata(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := lint.ExpandPatterns(loader.ModuleDir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no package dirs found under module root")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("./... expansion descended into %s", d)
		}
	}
	explicit, err := lint.ExpandPatterns(loader.ModuleDir, []string{"internal/lint/testdata/floatcompare"})
	if err != nil {
		t.Fatal(err)
	}
	if len(explicit) != 1 {
		t.Fatalf("explicit testdata dir should resolve, got %v", explicit)
	}
}

// TestCheckByName covers the -checks flag's lookup.
func TestCheckByName(t *testing.T) {
	for _, c := range lint.Checks() {
		if lint.CheckByName(c.Name) != c {
			t.Errorf("CheckByName(%q) did not round-trip", c.Name)
		}
	}
	if lint.CheckByName("nosuchcheck") != nil {
		t.Error("CheckByName of unknown name should be nil")
	}
}

// TestFixturesAllFlagged is the integration contract behind
// scripts/check.sh: scanning any violation fixture must produce
// findings (a clean fixture scan would mean adalint silently rotted).
func TestFixturesAllFlagged(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range lint.Checks() {
		dir := filepath.Join("testdata", c.Name)
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if n := len(lint.RunChecks(pkg, []*lint.Check{c})); n == 0 {
			t.Errorf("check %s found nothing in its own fixture %s", c.Name, dir)
		}
	}
}
