package lint

import (
	"go/ast"
	"go/types"
)

// SyncRename flags the torn atomic-write pattern: an os.Rename that
// publishes a file whose bytes were written in the same function but
// never fsynced. Write-then-rename only guarantees readers never see a
// partial file *in a running process*; across a crash, the rename (a
// metadata operation) can reach the disk before the data does, and the
// final name then reveals an empty or truncated file. The store and
// checkpoint layers' durability contracts ("acknowledged means it
// survives a crash") rest on the discipline this check enforces: flush
// the file, rename it, then fsync the parent directory so the rename
// itself — a directory-entry update — is durable too.
var SyncRename = &Check{
	Name: "syncrename",
	Doc:  "os.Rename publishing a file written without fsync — atomic in name only; a crash can reveal an empty or torn file",
	Run:  runSyncRename,
}

// renameSrc tracks one file produced inside the function under
// analysis: how it was written, through which handle, and whether that
// handle was fsynced.
type renameSrc struct {
	fileVar *types.Var // handle variable; nil when written via os.WriteFile
	synced  bool
}

func runSyncRename(p *Pass) {
	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				syncRenameScope(p, fd.Body)
			}
		}
	}
}

// syncRenameScope walks one function body in source order, tracking
// the files it creates, Sync calls on their handles, and renames of
// their paths. Nested function literals share the scope, so a helper
// closure that syncs the handle counts. The path match is syntactic
// (identical source expressions), which keeps the check precise:
// renaming a path this function never wrote says nothing about
// durability here and is out of scope.
func syncRenameScope(p *Pass, body *ast.BlockStmt) {
	byPath := map[string]*renameSrc{}
	byVar := map[*types.Var]*renameSrc{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// f, err := os.Create(path) / os.OpenFile(...) / os.CreateTemp(...)
			if len(st.Rhs) != 1 || len(st.Lhs) == 0 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			switch fn.Name() {
			case "Create", "OpenFile", "CreateTemp":
				s := &renameSrc{}
				if fn.Name() != "CreateTemp" && len(call.Args) > 0 {
					byPath[types.ExprString(call.Args[0])] = s
				}
				if v := identVar(p, st.Lhs[0]); v != nil {
					s.fileVar = v
					byVar[v] = s
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(p, st)
			if fn == nil {
				return true
			}
			// f.Sync() makes everything written through f durable.
			if fn.Name() == "Sync" && len(st.Args) == 0 {
				if v := receiverVar(p, st); v != nil {
					if s, ok := byVar[v]; ok {
						s.synced = true
					}
				}
				return true
			}
			if fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			switch fn.Name() {
			case "WriteFile":
				// os.WriteFile offers no handle to fsync: a file written
				// this way can never be durably renamed in-function.
				if len(st.Args) > 0 {
					byPath[types.ExprString(st.Args[0])] = &renameSrc{}
				}
			case "Rename":
				if len(st.Args) != 2 {
					return true
				}
				s := lookupRenameSrc(p, st.Args[0], byPath, byVar)
				if s == nil || s.synced {
					return true
				}
				old := types.ExprString(st.Args[0])
				if s.fileVar == nil {
					p.Reportf(st.Pos(), "os.Rename publishes %s, written by os.WriteFile, which never fsyncs: a crash can reveal an empty or torn file under the final name; write through a handle, Sync it, rename, then fsync the parent directory", old)
				} else {
					p.Reportf(st.Pos(), "os.Rename publishes %s without a Sync on its handle: the rename can reach the disk before the data, so a crash reveals an empty or torn file; Sync before renaming, then fsync the parent directory so the rename itself is durable", old)
				}
			}
		}
		return true
	})
}

// lookupRenameSrc resolves a rename's old-path argument to a tracked
// file: either the same source expression that created it, or
// f.Name() on a tracked handle (the os.CreateTemp idiom).
func lookupRenameSrc(p *Pass, old ast.Expr, byPath map[string]*renameSrc, byVar map[*types.Var]*renameSrc) *renameSrc {
	if s, ok := byPath[types.ExprString(old)]; ok {
		return s
	}
	if call, ok := ast.Unparen(old).(*ast.CallExpr); ok && len(call.Args) == 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Name" {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, ok := p.Info().Uses[id].(*types.Var); ok {
					return byVar[v]
				}
			}
		}
	}
	return nil
}

// receiverVar returns the variable a method call's receiver resolves
// to, when the receiver is a plain identifier.
func receiverVar(p *Pass, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := p.Info().Uses[id].(*types.Var)
	return v
}

// identVar resolves an identifier expression to its variable object,
// whether the identifier defines it (:=) or reuses it (=).
func identVar(p *Pass, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := p.Info().Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := p.Info().Uses[id].(*types.Var)
	return v
}
