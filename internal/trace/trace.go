// Package trace renders scheduler traces as ASCII timelines in the
// style of the paper's Figure 1: a sensing row ticking at the sensor
// period Ts, a computing row showing the control jobs' execution slices
// (with preemption gaps), and release/finish markers that make the
// period-adaptation rule visible — after an overrun, the next release
// snaps to the first sensor tick past the finish.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adaptivertc/internal/sched"
)

// TimelineOptions configures rendering.
type TimelineOptions struct {
	Task    string  // task whose jobs are drawn on the computing row
	Ts      float64 // sensor sampling period for the sensing row
	Horizon float64 // rendered time span [0, Horizon]
	Width   int     // columns; default 100
}

// Timeline renders the trace. Legend:
//
//	sensing row:   '|' at sensor sampling instants, '·' elsewhere
//	computing row: '#' executing, '-' released but not executing
//	               (preempted or queued)
//	marker row:    'R' release, 'F' finish, 'X' release and finish in
//	               the same column
func Timeline(res *sched.Result, opt TimelineOptions) (string, error) {
	if opt.Width <= 0 {
		opt.Width = 100
	}
	if opt.Horizon <= 0 {
		return "", fmt.Errorf("trace: non-positive horizon %g", opt.Horizon)
	}
	if opt.Ts <= 0 {
		return "", fmt.Errorf("trace: non-positive sensor period %g", opt.Ts)
	}
	jobs, ok := res.Jobs[opt.Task]
	if !ok {
		return "", fmt.Errorf("trace: no jobs recorded for task %q", opt.Task)
	}

	col := func(t float64) int {
		c := int(t / opt.Horizon * float64(opt.Width))
		if c < 0 {
			c = 0
		}
		if c >= opt.Width {
			c = opt.Width - 1
		}
		return c
	}

	sensing := make([]byte, opt.Width)
	for i := range sensing {
		sensing[i] = '.'
	}
	for k := 0; ; k++ {
		t := float64(k) * opt.Ts
		if t > opt.Horizon {
			break
		}
		sensing[col(t)] = '|'
	}

	computing := make([]byte, opt.Width)
	markers := make([]byte, opt.Width)
	for i := range computing {
		computing[i] = ' '
		markers[i] = ' '
	}
	for _, j := range jobs {
		if j.Release > opt.Horizon {
			continue
		}
		// Pending/preempted span.
		for c := col(j.Release); c <= col(math.Min(j.Finish, opt.Horizon)); c++ {
			if computing[c] == ' ' {
				computing[c] = '-'
			}
		}
		// Execution slices overwrite the pending marks.
		for _, s := range j.Slices {
			if s.Start > opt.Horizon {
				continue
			}
			for c := col(s.Start); c <= col(math.Min(s.End, opt.Horizon)); c++ {
				computing[c] = '#'
			}
		}
		rc, fc := col(j.Release), col(math.Min(j.Finish, opt.Horizon))
		setMarker(markers, rc, 'R')
		if j.Finish <= opt.Horizon {
			setMarker(markers, fc, 'F')
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time      0%*s%.4g\n", opt.Width-len(fmt.Sprintf("%.4g", opt.Horizon)), "", opt.Horizon)
	fmt.Fprintf(&b, "sensing   %s\n", sensing)
	fmt.Fprintf(&b, "computing %s\n", computing)
	fmt.Fprintf(&b, "markers   %s\n", markers)
	return b.String(), nil
}

func setMarker(row []byte, c int, m byte) {
	switch {
	case row[c] == ' ':
		row[c] = m
	case row[c] != m:
		row[c] = 'X'
	}
}

// GanttOptions configures the multi-task renderer.
type GanttOptions struct {
	Tasks   []string // row order; empty = all tasks sorted by name
	Horizon float64
	Width   int // default 100
}

// Gantt renders one execution row per task ('#' executing, '-' pending)
// over a shared time axis — the full-system view complementing the
// single-task Timeline.
func Gantt(res *sched.Result, opt GanttOptions) (string, error) {
	if opt.Width <= 0 {
		opt.Width = 100
	}
	if opt.Horizon <= 0 {
		return "", fmt.Errorf("trace: non-positive horizon %g", opt.Horizon)
	}
	tasks := opt.Tasks
	if len(tasks) == 0 {
		for name := range res.Jobs {
			tasks = append(tasks, name)
		}
		sort.Strings(tasks)
	}
	if len(tasks) == 0 {
		return "", fmt.Errorf("trace: no tasks recorded")
	}
	nameW := 0
	for _, t := range tasks {
		if len(t) > nameW {
			nameW = len(t)
		}
	}
	col := func(t float64) int {
		c := int(t / opt.Horizon * float64(opt.Width))
		if c < 0 {
			c = 0
		}
		if c >= opt.Width {
			c = opt.Width - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s 0%*s%.4g\n", nameW, "time", opt.Width-len(fmt.Sprintf("%.4g", opt.Horizon)), "", opt.Horizon)
	for _, name := range tasks {
		jobs, ok := res.Jobs[name]
		if !ok {
			return "", fmt.Errorf("trace: no jobs recorded for task %q", name)
		}
		row := make([]byte, opt.Width)
		for i := range row {
			row[i] = ' '
		}
		for _, j := range jobs {
			if j.Release > opt.Horizon {
				continue
			}
			for c := col(j.Release); c <= col(math.Min(j.Finish, opt.Horizon)); c++ {
				if row[c] == ' ' {
					row[c] = '-'
				}
			}
			for _, s := range j.Slices {
				if s.Start > opt.Horizon {
					continue
				}
				for c := col(s.Start); c <= col(math.Min(s.End, opt.Horizon)); c++ {
					row[c] = '#'
				}
			}
		}
		fmt.Fprintf(&b, "%-*s %s\n", nameW, name, row)
	}
	return b.String(), nil
}

// JobTable renders the jobs of a task as a fixed-width text table with
// release, finish, response time and the overrun flag — the numeric
// companion to the timeline.
func JobTable(res *sched.Result, task string, period float64) (string, error) {
	jobs, ok := res.Jobs[task]
	if !ok {
		return "", fmt.Errorf("trace: no jobs recorded for task %q", task)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %12s %12s %12s %12s %8s\n", "job", "release", "start", "finish", "response", "overrun")
	for _, j := range jobs {
		over := ""
		if j.Response > period {
			over = "yes"
		}
		fmt.Fprintf(&b, "%4d %12.6g %12.6g %12.6g %12.6g %8s\n",
			j.Index, j.Release, j.Start, j.Finish, j.Response, over)
	}
	return b.String(), nil
}
