package trace

import (
	"math/rand"
	"strings"
	"testing"

	"adaptivertc/internal/core"
	"adaptivertc/internal/sched"
)

func figure1Result(t *testing.T) *sched.Result {
	t.Helper()
	// One control task with the paper's release rule; an interference
	// task occasionally preempts it to cause an overrun.
	tm := core.MustTiming(1, 8, 0.1, 2)
	seq := []float64{0.4, 1.3, 0.4, 0.4, 0.4}
	i := 0
	tasks := []*sched.Task{{
		Name:     "ctl",
		Period:   1,
		Priority: 1,
		Exec:     seqExec{seq: seq, i: &i},
		Release:  tm.NextRelease,
	}}
	res, err := sched.Simulate(tasks, sched.Options{Horizon: 5})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// seqExec replays a fixed execution-time sequence, cycling at the end.
type seqExec struct {
	seq []float64
	i   *int
}

func (s seqExec) Sample(*rand.Rand) float64 {
	v := s.seq[*s.i%len(s.seq)]
	*s.i++
	return v
}

func (s seqExec) Bounds() (float64, float64) { return 0.1, 10 }

func TestTimelineRendersRows(t *testing.T) {
	res := figure1Result(t)
	out, err := Timeline(res, TimelineOptions{Task: "ctl", Ts: 0.125, Horizon: 5, Width: 120})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"time", "sensing", "computing", "markers"} {
		if !strings.Contains(out, row) {
			t.Fatalf("missing row %q in:\n%s", row, out)
		}
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no execution rendered")
	}
	if !strings.Contains(out, "|") {
		t.Fatal("no sensor ticks rendered")
	}
	if !strings.Contains(out, "R") {
		t.Fatal("no release markers rendered")
	}
}

func TestTimelineBadArgs(t *testing.T) {
	res := figure1Result(t)
	if _, err := Timeline(res, TimelineOptions{Task: "nope", Ts: 0.1, Horizon: 5}); err == nil {
		t.Fatal("unknown task accepted")
	}
	if _, err := Timeline(res, TimelineOptions{Task: "ctl", Ts: 0, Horizon: 5}); err == nil {
		t.Fatal("zero Ts accepted")
	}
	if _, err := Timeline(res, TimelineOptions{Task: "ctl", Ts: 0.1, Horizon: 0}); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestJobTable(t *testing.T) {
	res := figure1Result(t)
	out, err := JobTable(res, "ctl", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "overrun") {
		t.Fatal("missing header")
	}
	// The second job (index 1) overran (exec 1.3 > T = 1).
	if !strings.Contains(out, "yes") {
		t.Fatalf("no overrun flagged:\n%s", out)
	}
	if _, err := JobTable(res, "nope", 1); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestGanttAllTasks(t *testing.T) {
	tasks := []*sched.Task{
		{Name: "hi", Period: 1, Priority: 1, Exec: sched.ConstantExec{C: 0.2}},
		{Name: "lo", Period: 2, Priority: 2, Exec: sched.ConstantExec{C: 0.9}},
	}
	res, err := sched.Simulate(tasks, sched.Options{Horizon: 6})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Gantt(res, GanttOptions{Horizon: 6, Width: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hi") || !strings.Contains(out, "lo") {
		t.Fatalf("missing task rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no execution rendered")
	}
	// The preempted low task must show pending dashes.
	if !strings.Contains(out, "-") {
		t.Fatalf("no pending time rendered:\n%s", out)
	}
}

func TestGanttValidation(t *testing.T) {
	res := figure1Result(t)
	if _, err := Gantt(res, GanttOptions{Horizon: 0}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := Gantt(res, GanttOptions{Tasks: []string{"nope"}, Horizon: 5}); err == nil {
		t.Fatal("unknown task accepted")
	}
}
