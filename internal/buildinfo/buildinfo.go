// Package buildinfo surfaces the build metadata Go embeds in every
// binary (module version, VCS revision, toolchain) in one canonical
// line. The CLIs print it behind -version, the certification service
// reports it from /healthz and stamps it into response headers, and
// the experiment report records it in its header — so a verdict or a
// table can always be traced back to the exact build that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Version returns the best available version string for the running
// binary: the module version when built from a tagged module, else
// "devel" decorated with the VCS revision and dirty flag when the
// build embedded VCS metadata, else plain "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		// Pseudo-versions (v0.0.0-<time>-<rev>[+dirty]) already carry
		// the revision; only decorate versions that don't.
		if !strings.Contains(v, rev) {
			v += "+" + rev + dirty
		}
	}
	return v
}

// Line renders the one-line -version output for the named tool, e.g.
//
//	adaserved devel+1a2b3c4d5e6f (go1.24.0 linux/amd64)
func Line(tool string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)", tool, Version(), goVersion(), runtime.GOOS, runtime.GOARCH)
}

func goVersion() string {
	// runtime.Version already looks like "go1.24.0"; guard against
	// exotic toolchains that embed spaces (gccgo).
	v := runtime.Version()
	if i := strings.IndexByte(v, ' '); i >= 0 {
		v = v[:i]
	}
	return v
}
