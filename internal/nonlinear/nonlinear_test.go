package nonlinear

import (
	"math"
	"math/rand"
	"testing"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/mat"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, 1, 1); err == nil {
		t.Fatal("nil dynamics accepted")
	}
	if _, err := NewSystem(func(x, u []float64) []float64 { return x }, 0, 1); err == nil {
		t.Fatal("zero state dim accepted")
	}
	bad := func(x, u []float64) []float64 { return make([]float64, 3) }
	if _, err := NewSystem(bad, 2, 1); err == nil {
		t.Fatal("wrong derivative length accepted")
	}
}

func TestLinearizePendulumUpright(t *testing.T) {
	m, l, b := 0.5, 0.4, 0.1
	p := Pendulum(m, l, b)
	sys, err := p.Linearize([]float64{0, 0}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: A = [[0,1],[g/l, -b]], B = [0; 1/(m l²)].
	wantA := mat.FromRows([][]float64{{0, 1}, {9.81 / l, -b}})
	wantB := mat.ColVec(0, 1/(m*l*l))
	if !sys.A.EqualApprox(wantA, 1e-4) {
		t.Fatalf("A = %v, want %v", sys.A, wantA)
	}
	if !sys.B.EqualApprox(wantB, 1e-4) {
		t.Fatalf("B = %v, want %v", sys.B, wantB)
	}
	stable, err := sys.IsStable()
	if err != nil || stable {
		t.Fatal("upright pendulum linearization should be unstable")
	}
}

func TestLinearizeMatchesLinearSystem(t *testing.T) {
	// A plant that is already linear: the Jacobians must recover it
	// anywhere, not just at the origin.
	a := [][]float64{{0.3, -1.2}, {2.0, 0.1}}
	b := [][]float64{{0.5}, {-0.7}}
	f := func(x, u []float64) []float64 {
		return []float64{
			a[0][0]*x[0] + a[0][1]*x[1] + b[0][0]*u[0],
			a[1][0]*x[0] + a[1][1]*x[1] + b[1][0]*u[0],
		}
	}
	s, err := NewSystem(f, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := s.Linearize([]float64{3, -2}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if !lin.A.EqualApprox(mat.FromRows(a), 1e-6) {
		t.Fatalf("A = %v", lin.A)
	}
	if !lin.B.EqualApprox(mat.FromRows(b), 1e-6) {
		t.Fatalf("B = %v", lin.B)
	}
}

func TestRK4AccuracyOnLinearSystem(t *testing.T) {
	// Compare RK4 against the exact matrix-exponential solution.
	aRows := [][]float64{{0, 1}, {-4, -0.5}}
	f := func(x, u []float64) []float64 {
		return []float64{
			x[1] + u[0]*0,
			-4*x[0] - 0.5*x[1] + u[0],
		}
	}
	s, err := NewSystem(f, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := s.Linearize([]float64{0, 0}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	_ = aRows
	x0 := []float64{1, -0.3}
	u := []float64{0.7}
	h := 0.2
	exact, err := lin.Step(x0, u, h)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Integrate(x0, u, h, 64)
	for i := range exact {
		if math.Abs(got[i]-exact[i]) > 1e-8 {
			t.Fatalf("RK4 = %v, exact %v", got, exact)
		}
	}
	// Convergence order: quartering the step should shrink the error by
	// ~4⁴ = 256; accept anything above 100.
	coarse := s.Integrate(x0, u, h, 2)
	fine := s.Integrate(x0, u, h, 8)
	errC := math.Abs(coarse[0]-exact[0]) + math.Abs(coarse[1]-exact[1])
	errF := math.Abs(fine[0]-exact[0]) + math.Abs(fine[1]-exact[1])
	if errF <= 0 {
		return // already exact to machine precision
	}
	if errC/errF < 100 {
		t.Fatalf("RK4 order too low: coarse %v, fine %v (ratio %v)", errC, errF, errC/errF)
	}
}

func pendulumDesign(t *testing.T) (*System, *core.Design) {
	t.Helper()
	p := Pendulum(0.5, 0.4, 0.1)
	lin, err := p.Linearize([]float64{0, 0}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	tm := core.MustTiming(0.02, 5, 0.002, 1.6*0.02)
	w := control.LQRWeights{Q: mat.Diag(20, 1), R: mat.Diag(0.1)}
	d, err := core.NewDesign(lin, tm, func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(lin, w, h)
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, d
}

func TestNonlinearLoopBalancesPendulumUnderOverruns(t *testing.T) {
	p, d := pendulumDesign(t)
	loop, err := NewLoop(p, d, []float64{0.3, 0}, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	maxTheta := 0.0
	for k := 0; k < 400; k++ {
		// Random response times over the full admissible range.
		r := d.Timing.Rmin + rng.Float64()*(d.Timing.Rmax-d.Timing.Rmin)
		loop.StepResponse(r)
		if th := math.Abs(loop.State()[0]); th > maxTheta {
			maxTheta = th
		}
	}
	x := loop.State()
	if math.Abs(x[0]) > 1e-4 || math.Abs(x[1]) > 1e-3 {
		t.Fatalf("pendulum not balanced: θ=%v ω=%v", x[0], x[1])
	}
	if maxTheta > math.Pi/2 {
		t.Fatalf("transient left the linearization's sanity region: max |θ| = %v", maxTheta)
	}
}

func TestNonlinearLoopMatchesLinearLoopNearOrigin(t *testing.T) {
	// For tiny deviations the nonlinear runtime must track the linear
	// one closely over a short horizon.
	p, d := pendulumDesign(t)
	x0 := []float64{1e-4, 0}
	nl, err := NewLoop(p, d, x0, 32)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := core.NewLoop(d, x0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		nl.StepResponse(d.Timing.Rmin)
		lin.Step(0)
		a, b := nl.State(), lin.State()
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-7*(1+math.Abs(b[i]))+1e-12 {
				t.Fatalf("step %d: nonlinear %v vs linear %v", k, a, b)
			}
		}
	}
}

func TestNewLoopValidation(t *testing.T) {
	p, d := pendulumDesign(t)
	if _, err := NewLoop(p, d, []float64{1}, 4); err == nil {
		t.Fatal("short x0 accepted")
	}
	other := Pendulum(1, 1, 0)
	otherBig, err := NewSystem(func(x, u []float64) []float64 { return make([]float64, 3) }, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoop(otherBig, d, []float64{0, 0, 0}, 4); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	_ = other
}
