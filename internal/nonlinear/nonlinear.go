// Package nonlinear exercises the paper's §III remark that the
// proposal "could be extended to nonlinear systems via hybridisation of
// the system dynamics": it provides numerical linearization of smooth
// plants, a fixed-step RK4 integrator with held inputs, and an adaptive
// runtime that executes a core.Design (built on a linearization)
// against the true nonlinear dynamics — so the overrun-tolerant
// controller can be validated beyond the LTI model it was designed on.
package nonlinear

import (
	"fmt"
	"math"

	"adaptivertc/internal/core"
	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
)

// Dynamics is the right-hand side of ẋ = f(x, u). Implementations must
// not retain or mutate the argument slices.
type Dynamics func(x, u []float64) []float64

// System is a continuous-time nonlinear plant with full state output.
type System struct {
	F        Dynamics
	StateDim int
	InputDim int
}

// NewSystem validates dimensions against a probe evaluation of F.
func NewSystem(f Dynamics, stateDim, inputDim int) (*System, error) {
	if f == nil {
		return nil, fmt.Errorf("nonlinear: nil dynamics")
	}
	if stateDim <= 0 || inputDim <= 0 {
		return nil, fmt.Errorf("nonlinear: non-positive dimensions %d, %d", stateDim, inputDim)
	}
	probe := f(make([]float64, stateDim), make([]float64, inputDim))
	if len(probe) != stateDim {
		return nil, fmt.Errorf("nonlinear: dynamics returned %d derivatives for %d states", len(probe), stateDim)
	}
	return &System{F: f, StateDim: stateDim, InputDim: inputDim}, nil
}

// Linearize returns the LTI approximation around an operating point
// (x0, u0) with full state output, using central-difference Jacobians.
// The point need not be an equilibrium, but the linear model then omits
// the constant drift f(x0, u0).
func (s *System) Linearize(x0, u0 []float64) (*lti.System, error) {
	if len(x0) != s.StateDim || len(u0) != s.InputDim {
		return nil, fmt.Errorf("nonlinear: operating point dims (%d,%d), want (%d,%d)",
			len(x0), len(u0), s.StateDim, s.InputDim)
	}
	a := mat.New(s.StateDim, s.StateDim)
	b := mat.New(s.StateDim, s.InputDim)
	for j := 0; j < s.StateDim; j++ {
		h := jacStep(x0[j])
		xp := append([]float64(nil), x0...)
		xm := append([]float64(nil), x0...)
		xp[j] += h
		xm[j] -= h
		fp := s.F(xp, u0)
		fm := s.F(xm, u0)
		for i := 0; i < s.StateDim; i++ {
			a.Set(i, j, (fp[i]-fm[i])/(2*h))
		}
	}
	for j := 0; j < s.InputDim; j++ {
		h := jacStep(u0[j])
		up := append([]float64(nil), u0...)
		um := append([]float64(nil), u0...)
		up[j] += h
		um[j] -= h
		fp := s.F(x0, up)
		fm := s.F(x0, um)
		for i := 0; i < s.StateDim; i++ {
			b.Set(i, j, (fp[i]-fm[i])/(2*h))
		}
	}
	return lti.NewSystem(a, b, mat.Eye(s.StateDim))
}

// jacStep picks a central-difference step scaled to the operating
// point.
func jacStep(v float64) float64 {
	return 1e-6 * (1 + math.Abs(v))
}

// RK4Step advances the plant by dt under constant input u with one
// classical Runge–Kutta step.
func (s *System) RK4Step(x, u []float64, dt float64) []float64 {
	add := func(a []float64, scale float64, b []float64) []float64 {
		out := make([]float64, len(a))
		for i := range a {
			out[i] = a[i] + scale*b[i]
		}
		return out
	}
	k1 := s.F(x, u)
	k2 := s.F(add(x, dt/2, k1), u)
	k3 := s.F(add(x, dt/2, k2), u)
	k4 := s.F(add(x, dt, k3), u)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + dt/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
	return out
}

// Integrate advances the plant over an interval h under constant input,
// splitting it into the given number of RK4 substeps (≥ 1).
func (s *System) Integrate(x, u []float64, h float64, substeps int) []float64 {
	if substeps < 1 {
		substeps = 1
	}
	dt := h / float64(substeps)
	cur := append([]float64(nil), x...)
	for i := 0; i < substeps; i++ {
		cur = s.RK4Step(cur, u, dt)
	}
	return cur
}

// Loop mirrors core.Loop but propagates the true nonlinear plant
// between releases: the controller (and its mode table) comes from a
// core.Design built on a linearization, while the state evolves under
// f. Substeps controls the RK4 resolution per inter-release interval.
type Loop struct {
	sys      *System
	design   *core.Design
	substeps int

	x     []float64
	z     []float64
	uApp  []float64
	uNext []float64
}

// NewLoop initializes the nonlinear runtime at x0. The design's plant
// must have full state output (C = I behaviourally), matching the
// linearization produced by Linearize.
func NewLoop(sys *System, design *core.Design, x0 []float64, substeps int) (*Loop, error) {
	if design.Plant.StateDim() != sys.StateDim || design.Plant.InputDim() != sys.InputDim {
		return nil, fmt.Errorf("nonlinear: design dims (%d,%d) do not match plant (%d,%d)",
			design.Plant.StateDim(), design.Plant.InputDim(), sys.StateDim, sys.InputDim)
	}
	if design.Plant.OutputDim() != sys.StateDim {
		return nil, fmt.Errorf("nonlinear: design must use full state output")
	}
	if len(x0) != sys.StateDim {
		return nil, fmt.Errorf("nonlinear: x0 has %d entries, want %d", len(x0), sys.StateDim)
	}
	if substeps < 1 {
		substeps = 8
	}
	l := &Loop{
		sys:      sys,
		design:   design,
		substeps: substeps,
		x:        append([]float64(nil), x0...),
		z:        make([]float64, design.Modes[0].Ctrl.StateDim()),
		uApp:     make([]float64, sys.InputDim),
	}
	l.compute(0)
	return l, nil
}

func (l *Loop) compute(idx int) {
	m := l.design.Modes[idx]
	e := make([]float64, len(l.x))
	for i, v := range l.x {
		e[i] = -v
	}
	l.z, l.uNext = m.Ctrl.Step(l.z, e)
}

// StepResponse advances across one interval selected by the response
// time r of the job whose interval is being closed.
func (l *Loop) StepResponse(r float64) {
	idx := l.design.Timing.IntervalIndex(r)
	h := l.design.Timing.T + float64(idx)*l.design.Timing.Ts()
	l.x = l.sys.Integrate(l.x, l.uApp, h, l.substeps)
	l.uApp = l.uNext
	l.compute(idx)
}

// State returns a copy of the current plant state.
func (l *Loop) State() []float64 { return append([]float64(nil), l.x...) }

// Applied returns a copy of the currently applied command.
func (l *Loop) Applied() []float64 { return append([]float64(nil), l.uApp...) }

// Pendulum returns the classic damped pendulum actuated at the pivot,
// with the UPRIGHT position as the origin (θ measured from vertical):
//
//	θ̈ = (g/l)·sin θ - b·θ̇ + u/(m·l²)
//
// States [θ, θ̇], one torque input. The upright equilibrium is
// unstable, so the adaptive controller must actively balance it — the
// natural nonlinear companion to the paper's unstable linear example.
func Pendulum(massKg, lengthM, damping float64) *System {
	const g = 9.81
	s, err := NewSystem(func(x, u []float64) []float64 {
		theta, omega := x[0], x[1]
		return []float64{
			omega,
			(g/lengthM)*math.Sin(theta) - damping*omega + u[0]/(massKg*lengthM*lengthM),
		}
	}, 2, 1)
	if err != nil {
		panic(err)
	}
	return s
}
