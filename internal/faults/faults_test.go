package faults

import (
	"math/rand"
	"reflect"
	"testing"
)

// uniform is a minimal stand-in for sim.UniformResponse, avoiding an
// import cycle in this package's tests.
type uniform struct{ lo, hi float64 }

func (u uniform) Sequence(rng *rand.Rand, m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = u.lo + rng.Float64()*(u.hi-u.lo)
	}
	return out
}

func fullProfile() Profile {
	return Profile{
		Excursion: 0.2, ExcursionFactor: 2,
		Drop: 0.1, Stuck: 0.05, StuckLen: 3,
		Noise: 0.1, NoiseAmp: 0.2,
		ActHold: 0.1, JitterAmp: 0.25,
	}
}

// TestPlanDeterministic pins the contract the Monte-Carlo merge rests
// on: the same seed yields a bit-identical plan.
func TestPlanDeterministic(t *testing.T) {
	p := fullProfile()
	base := uniform{lo: 0.01, hi: 0.16}
	a, err := p.Plan(rand.New(rand.NewSource(7)), base, 0.16, 40, 2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Plan(rand.New(rand.NewSource(7)), base, 0.16, 40, 2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("plans from identical seeds differ")
	}
	c, err := p.Plan(rand.New(rand.NewSource(8)), base, 0.16, 40, 2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Resp, c.Resp) {
		t.Fatal("plans from different seeds are identical — RNG not threaded through")
	}
}

// TestOverrunExcursion verifies the excursion overlay: with Prob 1
// every response escapes the certified Rmax, with Prob 0 the base
// sequence passes through untouched.
func TestOverrunExcursion(t *testing.T) {
	base := uniform{lo: 0.01, hi: 0.16}
	all := OverrunExcursion{Base: base, Rmax: 0.16, Prob: 1, MaxFactor: 1.5}
	seq := all.Sequence(rand.New(rand.NewSource(1)), 100)
	for i, r := range seq {
		if r <= 0.16 || r > 0.16*1.5 {
			t.Fatalf("job %d: excursion %g outside (Rmax, 1.5·Rmax]", i, r)
		}
	}
	none := OverrunExcursion{Base: base, Rmax: 0.16, Prob: 0, MaxFactor: 1.5}
	got := none.Sequence(rand.New(rand.NewSource(1)), 100)
	want := base.Sequence(rand.New(rand.NewSource(1)), 100)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("job %d: Prob=0 overlay altered the base draw %g → %g", i, want[i], got[i])
		}
	}
}

// TestSensorHookSemantics drives a hand-written schedule through the
// hook and checks each fault class against its specified behaviour.
func TestSensorHookSemantics(t *testing.T) {
	pl := &Plan{
		Sensor: []SensorFault{
			{Kind: SensorOK},
			{Kind: SensorDrop},
			{Kind: SensorStuck},
			{Kind: SensorStuck},
			{Kind: SensorNoise, Noise: []float64{0.5, -0.5}},
			{Kind: SensorOK},
		},
	}
	hook := pl.SensorHook()
	sample := func(job int, y []float64) []float64 {
		v := append([]float64(nil), y...)
		hook(job, v)
		return v
	}
	// Hook jobs are loop jobs: plan entry k fires at job k+1. Job 0
	// (taken inside NewLoop) passes through untouched.
	if got := sample(0, []float64{9, 9}); got[0] != 9 || got[1] != 9 {
		t.Fatalf("job 0 must be untouched, got %v", got)
	}
	if got := sample(1, []float64{1, 2}); got[0] != 1 || got[1] != 2 {
		t.Fatalf("ok sample altered: %v", got)
	}
	// Drop with hold-last: the register holds the previous delivered
	// sample [1, 2] even though the true sample moved on.
	if got := sample(2, []float64{3, 4}); got[0] != 1 || got[1] != 2 {
		t.Fatalf("hold-last drop delivered %v, want [1 2]", got)
	}
	// Stuck freezes at the onset value and persists.
	if got := sample(3, []float64{5, 6}); got[0] != 5 || got[1] != 6 {
		t.Fatalf("stuck onset delivered %v, want [5 6]", got)
	}
	if got := sample(4, []float64{7, 8}); got[0] != 5 || got[1] != 6 {
		t.Fatalf("persisting stuck delivered %v, want frozen [5 6]", got)
	}
	// Noise adds the pre-drawn per-channel perturbation.
	if got := sample(5, []float64{1, 1}); got[0] != 1.5 || got[1] != 0.5 {
		t.Fatalf("noise delivered %v, want [1.5 0.5]", got)
	}
	// Past the schedule: untouched.
	if got := sample(7, []float64{2, 2}); got[0] != 2 || got[1] != 2 {
		t.Fatalf("out-of-schedule job altered: %v", got)
	}

	// Zero-substitute variant.
	zp := &Plan{Sensor: []SensorFault{{Kind: SensorDrop}}, DropZero: true}
	zh := zp.SensorHook()
	y := []float64{3, -3}
	zh(1, y)
	if y[0] != 0 || y[1] != 0 {
		t.Fatalf("zero-substitute drop delivered %v, want zeros", y)
	}
}

// TestActuatorHook checks the job-index mapping of the latch-fault
// hook.
func TestActuatorHook(t *testing.T) {
	pl := &Plan{ActHold: []bool{false, true, false}}
	hook := pl.ActuatorHook()
	want := map[int]bool{0: false, 1: false, 2: true, 3: false, 4: false, 99: false}
	for job, w := range want {
		if got := hook(job); got != w {
			t.Errorf("hook(%d) = %v, want %v", job, got, w)
		}
	}
}

// TestPlanStuckPersistence verifies a drawn stuck fault spans StuckLen
// jobs.
func TestPlanStuckPersistence(t *testing.T) {
	p := Profile{Stuck: 1, StuckLen: 4}
	pl, err := p.Plan(rand.New(rand.NewSource(3)), uniform{lo: 0.01, hi: 0.1}, 0.16, 8, 1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if pl.Sensor[k].Kind != SensorStuck {
			t.Fatalf("job %d: kind %v, want stuck (Stuck=1 with StuckLen=4 must tile the sequence)", k, pl.Sensor[k].Kind)
		}
	}
}

// TestProfileValidate rejects out-of-range parameters.
func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{Excursion: -0.1},
		{Drop: 1.5},
		{Drop: 0.6, Stuck: 0.5},
		{Excursion: 0.1, ExcursionFactor: 0.9},
		{JitterAmp: 1},
		{NoiseAmp: -1},
		{StuckLen: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d (%+v) passed validation", i, p)
		}
	}
	if err := (Profile{}).Validate(); err != nil {
		t.Errorf("zero profile must validate: %v", err)
	}
	if _, err := fullProfile().Plan(rand.New(rand.NewSource(1)), uniform{lo: 0.01, hi: 0.1}, 0.16, 0, 1, 0.02); err == nil {
		t.Error("Plan with zero jobs must error")
	}
}
