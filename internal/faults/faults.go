// Package faults provides composable, deterministic fault injectors
// for the adaptive runtime: response-time excursions beyond the
// certified Rmax, sensor-sample dropout (hold-last or zero-substitute),
// stuck and noisy measurements, actuator hold faults, and release
// jitter. Everything is drawn from a caller-supplied RNG in a fixed
// order, so — like the rest of the simulation stack — results are
// bit-identical for every worker count given the same per-sequence
// seed.
//
// The injectors split along the two surfaces where the paper's
// assumptions can break:
//
//   - timing faults enter as response times: OverrunExcursion wraps any
//     response model and pushes draws beyond Rmax, violating the §V-B
//     coverage condition the stability certificate rests on;
//   - signal faults enter through the core.Loop hooks: a Profile draws
//     a complete per-job Plan, whose SensorHook/ActuatorHook adapters
//     plug into Loop.SetSensorHook and Loop.SetActuatorHook, and whose
//     Jitter entries drive Loop.StepJittered.
package faults

import (
	"fmt"
	"math/rand"
)

// ResponseModel matches sim.ResponseModel structurally, so injectors
// wrap any of the sim package's response-time generators without this
// package importing sim (sim layers the fault-aware Monte-Carlo on top
// of this package).
type ResponseModel interface {
	Sequence(rng *rand.Rand, m int) []float64
}

// OverrunExcursion wraps a response model and, with probability Prob
// per job, replaces the drawn response time with an excursion beyond
// the certified worst case: R uniform in (Rmax, MaxFactor·Rmax]. These
// are exactly the draws Timing.IntervalIndex silently clamps and the
// guard must detect.
type OverrunExcursion struct {
	Base      ResponseModel
	Rmax      float64
	Prob      float64
	MaxFactor float64 // excursion ceiling as a multiple of Rmax (> 1)
}

// Sequence implements ResponseModel. The base sequence is drawn first,
// then the excursion overlay, keeping the draw order independent of
// which jobs end up faulted.
func (o OverrunExcursion) Sequence(rng *rand.Rand, m int) []float64 {
	out := o.Base.Sequence(rng, m)
	for i := range out {
		if rng.Float64() < o.Prob {
			out[i] = o.Rmax * (1 + rng.Float64()*(o.MaxFactor-1))
		}
	}
	return out
}

// SensorKind labels the measurement fault injected at one job.
type SensorKind uint8

const (
	// SensorOK delivers the true sample.
	SensorOK SensorKind = iota
	// SensorDrop loses the sample: the register holds its previous
	// value (hold-last) or reads zero (zero-substitute), per
	// Plan.DropZero.
	SensorDrop
	// SensorStuck freezes the transducer at the value it shows when the
	// fault begins; the freeze persists for Profile.StuckLen jobs.
	SensorStuck
	// SensorNoise adds the per-channel perturbations in
	// SensorFault.Noise to the true sample.
	SensorNoise
)

// String renders the fault kind for reports.
func (k SensorKind) String() string {
	switch k {
	case SensorOK:
		return "ok"
	case SensorDrop:
		return "drop"
	case SensorStuck:
		return "stuck"
	case SensorNoise:
		return "noise"
	}
	return fmt.Sprintf("SensorKind(%d)", uint8(k))
}

// SensorFault is the measurement fault scheduled for one job.
type SensorFault struct {
	Kind  SensorKind
	Noise []float64 // per-channel additive noise when Kind == SensorNoise
}

// Plan is the fully drawn per-job fault schedule for one simulated
// sequence. Entry k of every slice applies to the job closing interval
// k, i.e. the k-th call into the runtime. A Plan is deterministic given
// the RNG it was drawn from and is consumed by exactly one loop run
// (the hook adapters carry hold-last state).
type Plan struct {
	Resp     []float64 // response times, excursions included
	Sensor   []SensorFault
	ActHold  []bool    // actuator misses the latch at this release
	Jitter   []float64 // additive release jitter in seconds
	DropZero bool      // dropped samples read zero instead of holding
}

// Jobs returns the number of scheduled jobs.
func (pl *Plan) Jobs() int { return len(pl.Resp) }

// SensorHook adapts the plan to core.Loop.SetSensorHook. The loop
// numbers hook invocations by its job counter: job 0 is sampled inside
// core.NewLoop before any hook can be installed, so plan entry k fires
// at hook job k+1. The returned closure carries the sample-register
// state for hold-last and stuck faults and must not be shared between
// loops.
func (pl *Plan) SensorHook() func(job int, y []float64) {
	var register []float64 // last value the controller saw
	var frozen []float64   // value captured at stuck-fault onset
	stuckActive := false
	return func(job int, y []float64) {
		k := job - 1
		if k < 0 || k >= len(pl.Sensor) {
			return
		}
		f := pl.Sensor[k]
		if f.Kind != SensorStuck {
			stuckActive = false
		}
		switch f.Kind {
		case SensorOK:
			// true sample delivered
		case SensorDrop:
			if pl.DropZero || register == nil {
				for i := range y {
					y[i] = 0
				}
			} else {
				copy(y, register)
			}
		case SensorStuck:
			if !stuckActive {
				frozen = append(frozen[:0], y...)
				stuckActive = true
			}
			copy(y, frozen)
		case SensorNoise:
			for i := range y {
				if i < len(f.Noise) {
					y[i] += f.Noise[i]
				}
			}
		}
		register = append(register[:0], y...)
	}
}

// ActuatorHook adapts the plan to core.Loop.SetActuatorHook, using the
// same job numbering as SensorHook.
func (pl *Plan) ActuatorHook() func(job int) bool {
	return func(job int) bool {
		k := job - 1
		return k >= 0 && k < len(pl.ActHold) && pl.ActHold[k]
	}
}

// Profile parameterizes the fault mix. Zero value = no faults. All
// probabilities are per job; the sensor fault classes are mutually
// exclusive within a job (Drop + Stuck + Noise ≤ 1).
type Profile struct {
	// Timing faults.
	Excursion       float64 // P(response time beyond the certified Rmax)
	ExcursionFactor float64 // excursion ceiling as a multiple of Rmax (default 1.5)

	// Sensor faults.
	Drop     float64 // P(sample lost)
	DropZero bool    // lost samples read zero instead of holding the last value
	Stuck    float64 // P(transducer freezes at the current value)
	StuckLen int     // jobs a stuck fault persists (default 5)
	Noise    float64 // P(noisy sample)
	NoiseAmp float64 // uniform per-channel noise amplitude

	// Actuator and timing-grid faults.
	ActHold   float64 // P(actuator misses a latch)
	JitterAmp float64 // release jitter amplitude as a fraction of Ts (< 1)
}

// Validate checks the profile's parameters.
func (p Profile) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"Excursion", p.Excursion}, {"Drop", p.Drop}, {"Stuck", p.Stuck},
		{"Noise", p.Noise}, {"ActHold", p.ActHold},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: probability %s = %g outside [0, 1]", pr.name, pr.v)
		}
	}
	if s := p.Drop + p.Stuck + p.Noise; s > 1 {
		return fmt.Errorf("faults: sensor fault probabilities sum to %g > 1", s)
	}
	if p.Excursion > 0 && p.ExcursionFactor > 0 && p.ExcursionFactor <= 1 {
		return fmt.Errorf("faults: ExcursionFactor = %g must exceed 1", p.ExcursionFactor)
	}
	if p.JitterAmp < 0 || p.JitterAmp >= 1 {
		return fmt.Errorf("faults: JitterAmp = %g outside [0, 1)", p.JitterAmp)
	}
	if p.NoiseAmp < 0 {
		return fmt.Errorf("faults: negative NoiseAmp = %g", p.NoiseAmp)
	}
	if p.StuckLen < 0 {
		return fmt.Errorf("faults: negative StuckLen = %d", p.StuckLen)
	}
	return nil
}

// Plan draws the complete fault schedule for one m-job sequence with q
// measured outputs on a sensor grid of ts seconds: first the response
// times (base model plus excursion overlay), then per job the sensor
// fault, the actuator latch fault and the release jitter. All
// randomness comes from rng in this fixed order, so a Plan — and hence
// an entire fault-injected Monte-Carlo — is reproducible from the
// per-sequence seed alone.
func (p Profile) Plan(rng *rand.Rand, base ResponseModel, rmax float64, m, q int, ts float64) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m <= 0 || q <= 0 {
		return nil, fmt.Errorf("faults: need positive jobs and outputs, got %d, %d", m, q)
	}
	exc := OverrunExcursion{Base: base, Rmax: rmax, Prob: p.Excursion, MaxFactor: p.ExcursionFactor}
	if exc.MaxFactor <= 1 {
		exc.MaxFactor = 1.5
	}
	stuckLen := p.StuckLen
	if stuckLen <= 0 {
		stuckLen = 5
	}
	pl := &Plan{
		Resp:     exc.Sequence(rng, m),
		Sensor:   make([]SensorFault, m),
		ActHold:  make([]bool, m),
		Jitter:   make([]float64, m),
		DropZero: p.DropZero,
	}
	stuckLeft := 0
	for k := 0; k < m; k++ {
		if stuckLeft > 0 {
			pl.Sensor[k] = SensorFault{Kind: SensorStuck}
			stuckLeft--
		} else {
			switch u := rng.Float64(); {
			case u < p.Drop:
				pl.Sensor[k] = SensorFault{Kind: SensorDrop}
			case u < p.Drop+p.Stuck:
				pl.Sensor[k] = SensorFault{Kind: SensorStuck}
				stuckLeft = stuckLen - 1
			case u < p.Drop+p.Stuck+p.Noise:
				noise := make([]float64, q)
				for i := range noise {
					noise[i] = p.NoiseAmp * (2*rng.Float64() - 1)
				}
				pl.Sensor[k] = SensorFault{Kind: SensorNoise, Noise: noise}
			}
		}
		pl.ActHold[k] = p.ActHold > 0 && rng.Float64() < p.ActHold
		if p.JitterAmp > 0 {
			pl.Jitter[k] = p.JitterAmp * ts * (2*rng.Float64() - 1)
		}
	}
	return pl, nil
}
