package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// File is an append-only file handle the log writes segments through.
// The interface is deliberately tiny — write, make durable, close — so
// the chaos harness can count and fail individual writes and syncs,
// which is exactly the granularity at which real crashes happen.
type File interface {
	// Write appends p. A short write (n < len(p)) leaves a torn frame
	// the log repairs by truncation before the next append.
	Write(p []byte) (int, error)
	// Sync flushes the file to stable storage; a record is acknowledged
	// only after Sync returns nil.
	Sync() error
	// Close releases the handle. Close does not imply Sync.
	Close() error
}

// FS is the filesystem seam the segmented log runs on. OSFS is the
// production implementation; internal/chaos wraps an FS with seeded
// faults and crash points (fail or die after the Nth write or sync,
// truncated appends, bit-flipped frames) so crash recovery is testable
// at every instruction boundary the log cares about.
//
// Durability contract: OpenAppend+Write+Sync make record bytes
// durable; Rename must be atomic (POSIX rename semantics); SyncDir
// makes directory entries (created, renamed, removed files) durable.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenAppend opens path for appending, creating it if absent, and
	// returns the current file size.
	OpenAppend(path string) (File, int64, error)
	// ReadDir returns the names (not paths) of dir's entries in
	// lexical order. A missing dir returns os.ErrNotExist.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// ReadAt fills p from path starting at off; a partial read is an
	// error.
	ReadAt(path string, p []byte, off int64) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes (torn-tail repair).
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory entry table for dir.
	SyncDir(dir string) error
}

// OSFS is the production FS: the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadAt implements FS.
func (OSFS) ReadAt(path string, p []byte, off int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.ReadAt(p, off); err != nil {
		return fmt.Errorf("store: read %s @%d+%d: %w", path, off, len(p), err)
	}
	return nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir implements FS. Directory fsync is what makes a created,
// renamed, or removed segment survive a power cut; on filesystems that
// reject fsync on directories the error is surfaced to the caller.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", filepath.Clean(dir), err)
	}
	return nil
}
