package store

import "errors"

// hookFS wraps OSFS with per-operation hooks so tests can fail one
// precise filesystem step. A nil hook is a passthrough. The fuller
// crash-point injector lives in internal/chaos; this one stays here so
// the store's own tests need no import.
type hookFS struct {
	OSFS
	onWrite   func(p []byte) (int, error) // non-nil return intercepts the write
	onSync    func() error
	onRename  func(oldpath, newpath string) error
	onRemove  func(path string) error
	onSyncDir func(dir string) error
}

var errHook = errors.New("injected fault")

func (h *hookFS) OpenAppend(path string) (File, int64, error) {
	f, size, err := h.OSFS.OpenAppend(path)
	if err != nil {
		return nil, 0, err
	}
	return &hookFile{File: f, fs: h}, size, nil
}

func (h *hookFS) Rename(oldpath, newpath string) error {
	if h.onRename != nil {
		if err := h.onRename(oldpath, newpath); err != nil {
			return err
		}
	}
	return h.OSFS.Rename(oldpath, newpath)
}

func (h *hookFS) Remove(path string) error {
	if h.onRemove != nil {
		if err := h.onRemove(path); err != nil {
			return err
		}
	}
	return h.OSFS.Remove(path)
}

func (h *hookFS) SyncDir(dir string) error {
	if h.onSyncDir != nil {
		if err := h.onSyncDir(dir); err != nil {
			return err
		}
	}
	return h.OSFS.SyncDir(dir)
}

type hookFile struct {
	File
	fs *hookFS
}

func (f *hookFile) Write(p []byte) (int, error) {
	if f.fs.onWrite != nil {
		if n, err := f.fs.onWrite(p); err != nil {
			if n > 0 {
				// A short write leaves the prefix on disk, exactly like a
				// crashed kernel buffer flush would.
				if wn, werr := f.File.Write(p[:n]); werr != nil {
					return wn, werr
				}
			}
			return n, err
		}
	}
	return f.File.Write(p)
}

func (f *hookFile) Sync() error {
	if f.fs.onSync != nil {
		if err := f.fs.onSync(); err != nil {
			return err
		}
	}
	return f.File.Sync()
}
