package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// tornFixture builds a log whose final frame has a known location, so
// corruption tests can surgically damage exactly that frame. Layout:
// one segment holding "alpha" and "beta" (both fsync-acknowledged),
// then a final "tail" record whose frame spans [tailOff, fileSize).
type tornFixture struct {
	dir      string
	segPath  string
	tailOff  int64
	fileSize int64
	acked    map[string][]byte
	tailVal  []byte
}

func makeTornFixture(t *testing.T) tornFixture {
	t.Helper()
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{NoAutoCompact: true})
	fx := tornFixture{
		dir:     dir,
		acked:   map[string][]byte{"alpha": []byte("alpha-value-0123456789"), "beta": []byte("beta-value")},
		tailVal: []byte("tail-record-value"),
	}
	mustPut(t, l, "alpha", fx.acked["alpha"])
	mustPut(t, l, "beta", fx.acked["beta"])
	mustPut(t, l, "tail", fx.tailVal)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("fixture wants one segment, got %v", segs)
	}
	fx.segPath = filepath.Join(dir, segs[0])
	st, err := os.Stat(fx.segPath)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	fx.fileSize = st.Size()
	tailFrame := int64(len(encodePut("tail", fx.tailVal)))
	fx.tailOff = fx.fileSize - tailFrame
	return fx
}

// assertAckedSurvive reopens the fixture and checks that every record
// acknowledged before the damage is byte-identical, the tail record's
// presence matches wantTail, and no partial value is ever visible.
func (fx tornFixture) assertAckedSurvive(t *testing.T, wantTail bool, wantTorn int64) {
	t.Helper()
	l := mustOpen(t, fx.dir, Options{NoAutoCompact: true})
	defer l.Close()
	for key, val := range fx.acked {
		if got := mustGet(t, l, key); !bytes.Equal(got, val) {
			t.Fatalf("acked record %q = %q, want %q", key, got, val)
		}
	}
	v, ok, err := l.Get("tail")
	if err != nil {
		t.Fatalf("Get(tail): %v", err)
	}
	if ok != wantTail {
		t.Fatalf("tail present = %v, want %v", ok, wantTail)
	}
	if ok && !bytes.Equal(v, fx.tailVal) {
		// The one thing recovery may never do: surface a record whose
		// bytes differ from what was written.
		t.Fatalf("tail half-visible: %q", v)
	}
	if torn := l.Stats().TornBytes; torn != wantTorn {
		t.Fatalf("TornBytes = %d, want %d", torn, wantTorn)
	}
	// Recovery must leave the store appendable.
	mustPut(t, l, "post-recovery", []byte("writable"))
}

func corrupt(t *testing.T, path string, mutate func(data []byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

// TestTornTailTruncateEveryByte cuts the file at every byte of the
// final frame: each prefix must recover to "acked records intact, tail
// gone" with the partial bytes counted as torn.
func TestTornTailTruncateEveryByte(t *testing.T) {
	base := makeTornFixture(t)
	raw, err := os.ReadFile(base.segPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for cut := base.tailOff; cut < base.fileSize; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut-base.tailOff), func(t *testing.T) {
			fx := makeTornFixture(t)
			// Same workload, deterministic encoding ⇒ identical layout.
			if fx.fileSize != base.fileSize {
				t.Fatalf("fixture layout drifted: %d vs %d bytes", fx.fileSize, base.fileSize)
			}
			if err := os.WriteFile(fx.segPath, raw[:cut], 0o644); err != nil {
				t.Fatalf("truncating copy: %v", err)
			}
			fx.assertAckedSurvive(t, false, cut-fx.tailOff)
		})
	}
}

func TestTornTailCleanCutAtFrameBoundary(t *testing.T) {
	fx := makeTornFixture(t)
	if err := os.Truncate(fx.segPath, fx.tailOff); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	// The cut lands exactly on a frame boundary: nothing is torn, the
	// tail record simply never made it.
	fx.assertAckedSurvive(t, false, 0)
}

func TestTornTailCRCFlip(t *testing.T) {
	fx := makeTornFixture(t)
	corrupt(t, fx.segPath, func(data []byte) []byte {
		data[fx.tailOff+4] ^= 0x01 // one bit of the stored CRC
		return data
	})
	fx.assertAckedSurvive(t, false, fx.fileSize-fx.tailOff)
}

func TestTornTailPayloadBitFlip(t *testing.T) {
	fx := makeTornFixture(t)
	corrupt(t, fx.segPath, func(data []byte) []byte {
		data[fx.fileSize-1] ^= 0x80 // last payload byte
		return data
	})
	fx.assertAckedSurvive(t, false, fx.fileSize-fx.tailOff)
}

func TestTornTailZeroFill(t *testing.T) {
	t.Run("appended-zeros", func(t *testing.T) {
		// Journal replay on some filesystems extends a file with zeros.
		fx := makeTornFixture(t)
		corrupt(t, fx.segPath, func(data []byte) []byte {
			return append(data, make([]byte, 512)...)
		})
		fx.assertAckedSurvive(t, true, 512)
	})
	t.Run("tail-overwritten-with-zeros", func(t *testing.T) {
		fx := makeTornFixture(t)
		corrupt(t, fx.segPath, func(data []byte) []byte {
			for i := fx.tailOff; i < fx.fileSize; i++ {
				data[i] = 0
			}
			return data
		})
		fx.assertAckedSurvive(t, false, fx.fileSize-fx.tailOff)
	})
}

func TestTornTailLengthFieldGarbage(t *testing.T) {
	// A length field pointing far past EOF must not drive a huge
	// allocation or a false record; it is torn, full stop.
	fx := makeTornFixture(t)
	corrupt(t, fx.segPath, func(data []byte) []byte {
		data[fx.tailOff+0] = 0xff
		data[fx.tailOff+1] = 0xff
		data[fx.tailOff+2] = 0xff
		data[fx.tailOff+3] = 0x7f
		return data
	})
	fx.assertAckedSurvive(t, false, fx.fileSize-fx.tailOff)
}

// TestCorruptionInSealedSegmentRefusesOpen: damage anywhere but the
// final segment's tail means fsync-acknowledged data rotted; the store
// must refuse to open rather than silently drop records.
func TestCorruptionInSealedSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 128, NoAutoCompact: true})
	for i := 0; l.Stats().Rotations < 2; i++ {
		mustPut(t, l, fmt.Sprintf("k%d", i), bytes.Repeat([]byte("v"), 48))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := segFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥ 3 segments, got %v", segs)
	}
	first := filepath.Join(dir, segs[0])
	corrupt(t, first, func(data []byte) []byte {
		data[len(data)-1] ^= 0x01 // inside the sealed segment's last frame
		return data
	})
	if _, err := Open(dir, Options{NoAutoCompact: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over rotted sealed segment = %v, want ErrCorrupt", err)
	}
}

// TestHeaderlessNewestSegmentRemoved: rotation can crash between
// creating the next segment file and making its header durable; the
// empty shell must be discarded and the previous segment resumed.
func TestHeaderlessNewestSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{NoAutoCompact: true})
	mustPut(t, l, "k", []byte("v"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	shell := filepath.Join(dir, segName(2))
	if err := os.WriteFile(shell, []byte{0x01, 0x02}, 0o644); err != nil {
		t.Fatalf("planting shell: %v", err)
	}
	l2 := mustOpen(t, dir, Options{NoAutoCompact: true})
	defer l2.Close()
	if got := mustGet(t, l2, "k"); string(got) != "v" {
		t.Fatalf("Get(k) = %q", got)
	}
	if _, err := os.Stat(shell); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("headerless shell survived: %v", err)
	}
	mustPut(t, l2, "k2", []byte("v2"))
}

// TestGetVerifiesChecksumOnRead: bit rot after open surfaces as
// ErrCorrupt on Get, never as silently wrong bytes.
func TestGetVerifiesChecksumOnRead(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{NoAutoCompact: true})
	defer l.Close()
	mustPut(t, l, "rot", bytes.Repeat([]byte("r"), 64))
	segs := segFiles(t, dir)
	corrupt(t, filepath.Join(dir, segs[0]), func(data []byte) []byte {
		data[len(data)-1] ^= 0xff
		return data
	})
	_, ok, err := l.Get("rot")
	if !ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get over rotted bytes = ok=%v err=%v, want ok && ErrCorrupt", ok, err)
	}
}
