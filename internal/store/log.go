// Package store is a crash-safe, stdlib-only key→bytes store built on
// an append-only segmented log. It replaces the one-file-per-entry
// layouts the certificate cache and job checkpoints started with: at
// millions of cached certificates a file per entry is a filesystem
// DoS, and a crash mid-write can only be detected per file, never
// repaired as a unit.
//
// Design, in one paragraph: records (puts and tombstones) are appended
// to the active segment as length+CRC32C-framed blobs and fsynced
// before Put returns — a record is *acknowledged* only once its bytes
// are durable. When the active segment passes the size threshold the
// log rotates: the old segment is sealed (fsynced, closed, immutable
// forever after) and a fresh one begins. Startup rebuilds the
// in-memory key→(segment, offset) index by replaying every segment in
// sequence order; a torn tail on the final segment — the only place an
// honest crash can leave one — is truncated away, while corruption
// anywhere else refuses to open (acknowledged data rotted; that is an
// operator problem, not something to paper over). Background
// compaction rewrites the live records of all sealed segments into one
// new segment and publishes it with a single atomic rename; a crash at
// any instruction before the rename leaves the old segments
// authoritative, and a crash after it leaves stale segments that the
// next open provably identifies (via the covers field in each
// segment's header) and deletes. Compaction failure degrades the store
// — appends keep working, health reports the condition, and retries
// back off exponentially — it never takes writes down with it.
package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrCorrupt is wrapped by Get when a record's stored bytes fail their
// checksum, and by Open when a non-final segment does not replay. For
// Get, callers should treat it as "this key is damaged": delete and
// recompute.
var ErrCorrupt = errors.New("store: corrupt record")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("store: closed")

// Store is the storage interface shared by the certificate cache and
// job-checkpoint persistence (and, later, the distributed tier). A
// *Log is the canonical implementation.
type Store interface {
	// Get returns the value for key. ok reports presence; a non-nil
	// error wrapping ErrCorrupt means the key exists but its bytes are
	// damaged.
	Get(key string) (value []byte, ok bool, err error)
	// Put durably records key→value: when Put returns nil the record
	// is fsynced (acknowledged) and must survive any crash.
	Put(key string, value []byte) error
	// Delete durably removes key. Deleting an absent key is a no-op.
	Delete(key string) error
	// Keys returns every live key in lexical order.
	Keys() []string
	// Sync flushes any unacknowledged appends.
	Sync() error
	// Close flushes and releases the log.
	Close() error
}

// Stats is a snapshot of the log's counters and health.
type Stats struct {
	Appends        int64 // put/tombstone frames written
	AppendBytes    int64 // bytes appended (incl. framing)
	Syncs          int64 // fsyncs issued on segment files
	Reads          int64 // Get calls served from disk
	Compactions    int64 // completed compactions
	CompactionErrs int64 // failed compaction attempts
	Rotations      int64 // segment rotations
	TornBytes      int64 // bytes truncated from a torn tail at open
	Migrated       int64 // records imported from a legacy layout

	Segments   int   // current segment files
	Records    int   // live keys
	LiveBytes  int64 // bytes of frames the index references
	TotalBytes int64 // bytes across all segments

	// CompactionDegraded is true while compaction is failing;
	// appends still work, retries back off, and the reason names the
	// last error. This must surface as degraded-not-dead in /healthz.
	CompactionDegraded bool
	CompactionReason   string
}

// Options configures Open.
type Options struct {
	// FS is the filesystem seam; nil selects OSFS. The chaos harness
	// substitutes a crash-injecting FS.
	FS FS
	// SegmentBytes is the rotation threshold; ≤ 0 selects 64 MiB.
	SegmentBytes int64
	// NoSyncOnPut disables the per-Put fsync. Only tests that measure
	// the sync discipline itself set this; both production users
	// require acknowledged-means-durable.
	NoSyncOnPut bool
	// CompactFraction is the dead/total ratio among sealed segments
	// that triggers compaction; ≤ 0 selects 0.5.
	CompactFraction float64
	// CompactMinBytes is the minimum dead bytes before compaction is
	// worth the rewrite; ≤ 0 selects 1 MiB.
	CompactMinBytes int64
	// NoAutoCompact disables the background compactor; tests drive
	// Compact explicitly.
	NoAutoCompact bool
	// Now is the clock used for compaction backoff; nil selects
	// time.Now.
	Now func() time.Time
}

const (
	defaultSegmentBytes    = 64 << 20
	defaultCompactFraction = 0.5
	defaultCompactMinBytes = 1 << 20
	compactBackoffInitial  = time.Second
	compactBackoffMax      = 5 * time.Minute
	segSuffix              = ".seg"
	tmpSuffix              = ".cmp"
)

// segment is one on-disk log file.
type segment struct {
	seq    uint64
	covers uint64
	path   string
	size   int64 // logical size: bytes of complete frames
	live   int64 // bytes of frames the index currently references
}

// loc addresses one live record.
type loc struct {
	seg *segment
	off int64 // frame start
	n   int64 // payload length
}

func (l loc) frameLen() int64 { return frameHeaderSize + l.n }

// Log is the append-only segmented key→bytes store.
type Log struct {
	dir string
	opt Options
	fs  FS

	mu     sync.Mutex
	segs   []*segment // ascending seq; last is active
	active File
	index  map[string]loc
	stats  Stats
	dirty  bool // active tail holds an incomplete frame; repair before next append
	closed bool

	compacting       bool
	compactWG        sync.WaitGroup
	compactNotBefore time.Time
	compactBackoff   time.Duration
}

var _ Store = (*Log)(nil)

// segName renders the canonical file name for a sequence number.
func segName(seq uint64) string { return fmt.Sprintf("%016x%s", seq, segSuffix) }

// segSeqFromName parses the sequence number out of a segment file
// name; ok is false for foreign files.
func segSeqFromName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	base := strings.TrimSuffix(name, segSuffix)
	if len(base) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 16, 64)
	return seq, err == nil && seq != 0
}

// Open opens (or creates) the log rooted at dir, rebuilding the index
// by replaying every segment and repairing a torn tail on the final
// one. Files in dir that are not segments (legacy cache shards,
// leftover compaction temporaries) are ignored — temporaries are
// deleted, everything else is left for the caller's migration logic.
func Open(dir string, opt Options) (*Log, error) {
	if opt.FS == nil {
		opt.FS = OSFS{}
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	if opt.CompactFraction <= 0 {
		opt.CompactFraction = defaultCompactFraction
	}
	if opt.CompactMinBytes <= 0 {
		opt.CompactMinBytes = defaultCompactMinBytes
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	l := &Log{dir: dir, opt: opt, fs: opt.FS, index: make(map[string]loc)}
	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	if err := l.load(); err != nil {
		return nil, err
	}
	return l, nil
}

// load scans dir, drops obsolete and temporary files, replays the
// surviving segments in sequence order, and opens the active segment.
func (l *Log) load() error {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", l.dir, err)
	}
	type rawSeg struct {
		name string
		seq  uint64 // from the file name
	}
	var raws []rawSeg
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			// A compaction temporary is never authoritative: the rename
			// that would have published it did not happen.
			//lint:ignore droppederr best-effort cleanup of an unpublished temporary; a lingering one is re-deleted next open
			l.fs.Remove(filepath.Join(l.dir, name))
			continue
		}
		if seq, ok := segSeqFromName(name); ok {
			raws = append(raws, rawSeg{name: name, seq: seq})
		}
	}
	sort.Slice(raws, func(i, j int) bool { return raws[i].seq < raws[j].seq })

	// Read headers. A segment whose meta frame does not parse is
	// tolerable only as the newest file — rotation crashed between
	// creating the file and making its header durable — in which case
	// the empty shell is deleted and the previous segment resumes as
	// active. Anywhere else it is corruption of acknowledged data.
	type loaded struct {
		seg  *segment
		data []byte
	}
	var segsData []loaded
	for i, r := range raws {
		path := filepath.Join(l.dir, r.name)
		data, rerr := l.fs.ReadFile(path)
		var seq, covers uint64
		var merr error
		if rerr == nil {
			var payload []byte
			var n int64
			payload, n, merr = parseFrame(data)
			if merr == nil {
				seq, covers, merr = parseMeta(payload)
				_ = n
			}
		} else {
			merr = rerr
		}
		if merr != nil {
			if i == len(raws)-1 {
				l.stats.TornBytes += int64(len(data))
				if err := l.fs.Remove(path); err != nil {
					return fmt.Errorf("store: removing headerless segment %s: %w", path, err)
				}
				continue
			}
			return fmt.Errorf("%w: segment %s has no valid header: %v", ErrCorrupt, path, merr)
		}
		if seq != r.seq {
			return fmt.Errorf("%w: segment %s header claims seq %d", ErrCorrupt, path, seq)
		}
		segsData = append(segsData, loaded{seg: &segment{seq: seq, covers: covers, path: path}, data: data})
	}

	// Drop segments superseded by a compacted one: S is obsolete when
	// another segment T with T.seq ≤ S.seq covers through S.seq. (The
	// compacted segment atomically replaced the file of the first
	// segment it merged; a crash between that rename and the removal
	// of the rest leaves exactly this signature.)
	kept := segsData[:0]
	for i, s := range segsData {
		obsolete := false
		for j, t := range segsData {
			if i != j && t.seg.seq <= s.seg.seq && t.seg.covers >= s.seg.seq {
				obsolete = true
				break
			}
		}
		if obsolete {
			if err := l.fs.Remove(s.seg.path); err != nil {
				return fmt.Errorf("store: removing superseded segment %s: %w", s.seg.path, err)
			}
			continue
		}
		kept = append(kept, s)
	}
	segsData = kept

	// Replay in sequence order; later records win.
	for i, s := range segsData {
		final := i == len(segsData)-1
		if err := l.replaySegment(s.seg, s.data, final); err != nil {
			return err
		}
		l.segs = append(l.segs, s.seg)
	}

	// Open (or create) the active segment.
	if len(l.segs) == 0 {
		return l.createSegmentLocked(1)
	}
	act := l.segs[len(l.segs)-1]
	f, size, err := l.fs.OpenAppend(act.path)
	if err != nil {
		return fmt.Errorf("store: opening active segment %s: %w", act.path, err)
	}
	if size != act.size {
		//lint:ignore droppederr error path: the corrupt-size diagnostic is the answer; a close failure adds nothing
		f.Close()
		return fmt.Errorf("%w: active segment %s is %d bytes after truncating to %d", ErrCorrupt, act.path, size, act.size)
	}
	l.active = f
	return nil
}

// replaySegment indexes every frame of one segment. On the final
// segment a torn tail is truncated away; anywhere else it is an error.
func (l *Log) replaySegment(seg *segment, data []byte, final bool) error {
	off := int64(0)
	// Leading meta frame was already parsed by load.
	_, n, err := parseFrame(data)
	if err != nil {
		return fmt.Errorf("%w: segment %s: unreadable header on replay", ErrCorrupt, seg.path)
	}
	off += n
	for off < int64(len(data)) {
		payload, n, err := parseFrame(data[off:])
		var rec record
		if err == nil {
			rec, err = parseRecord(payload)
		}
		if err != nil {
			if !final {
				return fmt.Errorf("%w: segment %s: bad frame at offset %d", ErrCorrupt, seg.path, off)
			}
			// Torn tail: everything from off on is a crashed append that
			// was never acknowledged. Cut it.
			torn := int64(len(data)) - off
			if terr := l.fs.Truncate(seg.path, off); terr != nil {
				return fmt.Errorf("store: truncating torn tail of %s at %d: %w", seg.path, off, terr)
			}
			l.stats.TornBytes += torn
			break
		}
		l.applyLocked(rec, loc{seg: seg, off: off, n: int64(len(payload))})
		off += n
	}
	seg.size = off
	return nil
}

// applyLocked applies one replayed or freshly appended record to the
// index, maintaining per-segment live-byte accounting.
func (l *Log) applyLocked(rec record, at loc) {
	if old, ok := l.index[rec.key]; ok {
		old.seg.live -= old.frameLen()
	}
	switch rec.op {
	case opPut:
		l.index[rec.key] = at
		at.seg.live += at.frameLen()
	case opDelete:
		delete(l.index, rec.key)
	}
}

// createSegmentLocked creates segment seq, writes and syncs its
// header, makes its directory entry durable, and installs it as the
// active segment. The caller holds l.mu (or is inside Open).
func (l *Log) createSegmentLocked(seq uint64) error {
	if err := l.fs.MkdirAll(l.dir); err != nil {
		return fmt.Errorf("store: creating %s: %w", l.dir, err)
	}
	path := filepath.Join(l.dir, segName(seq))
	f, size, err := l.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("store: creating segment %s: %w", path, err)
	}
	if size != 0 {
		//lint:ignore droppederr error path: the corrupt-segment diagnostic is the answer; a close failure adds nothing
		f.Close()
		return fmt.Errorf("%w: new segment %s already holds %d bytes", ErrCorrupt, path, size)
	}
	hdr := encodeMeta(seq, seq)
	if _, err := f.Write(hdr); err != nil {
		//lint:ignore droppederr error path: the header-write error is the diagnostic; a close failure adds nothing
		f.Close()
		//lint:ignore droppederr the half-written shell is re-detected and removed by the next open
		l.fs.Remove(path)
		return fmt.Errorf("store: writing segment header %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore droppederr error path: the sync error is the diagnostic; a close failure adds nothing
		f.Close()
		return fmt.Errorf("store: syncing segment header %s: %w", path, err)
	}
	l.stats.Syncs++
	if err := l.fs.SyncDir(l.dir); err != nil {
		//lint:ignore droppederr error path: the dir-sync error is the diagnostic; a close failure adds nothing
		f.Close()
		return fmt.Errorf("store: publishing segment %s: %w", path, err)
	}
	seg := &segment{seq: seq, covers: seq, path: path, size: int64(len(hdr))}
	l.segs = append(l.segs, seg)
	l.active = f
	return nil
}

// rotateLocked seals the active segment and starts the next one. On
// failure the old active segment stays writable, so the caller's
// append fails cleanly and a later call retries the rotation.
func (l *Log) rotateLocked() error {
	act := l.activeSegLocked()
	next := act.seq + 1
	old := l.active
	if err := old.Sync(); err != nil {
		return fmt.Errorf("store: sealing segment %s: %w", act.path, err)
	}
	l.stats.Syncs++
	if err := l.createSegmentLocked(next); err != nil {
		return err
	}
	//lint:ignore droppederr the sealed handle was just fsynced; close failure cannot lose data and the fd is abandoned either way
	old.Close()
	l.stats.Rotations++
	return nil
}

func (l *Log) activeSegLocked() *segment { return l.segs[len(l.segs)-1] }

// prepareAppendLocked repairs a torn in-memory tail and rotates when
// the active segment is full, leaving the log ready for one append.
func (l *Log) prepareAppendLocked() error {
	if l.closed {
		return ErrClosed
	}
	act := l.activeSegLocked()
	if l.dirty {
		// A previous append failed partway: the file holds a torn frame
		// past the logical size. Cut it before writing anything else, or
		// the new frame would be unreachable behind garbage.
		if err := l.fs.Truncate(act.path, act.size); err != nil {
			return fmt.Errorf("store: repairing torn tail of %s: %w", act.path, err)
		}
		l.dirty = false
	}
	if act.size >= l.opt.SegmentBytes && act.size > int64(frameHeaderSize+metaPayloadSize) {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// appendLocked writes one frame to the active segment and, unless
// disabled, fsyncs it. The index is updated only after the bytes are
// fully written.
func (l *Log) appendLocked(frame []byte, rec record) error {
	act := l.activeSegLocked()
	off := act.size
	n, err := l.active.Write(frame)
	l.stats.AppendBytes += int64(n)
	if err != nil || n != len(frame) {
		// Torn append: the file now ends in a partial frame. Mark it for
		// truncation; the logical size still ends at the last good frame.
		l.dirty = true
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(frame))
		}
		return fmt.Errorf("store: append to %s: %w", act.path, err)
	}
	act.size += int64(n)
	l.stats.Appends++
	l.applyLocked(rec, loc{seg: act, off: off, n: int64(len(frame)) - frameHeaderSize})
	if !l.opt.NoSyncOnPut {
		if err := l.active.Sync(); err != nil {
			// The frame is complete on the page cache but not durable:
			// the caller must not treat it as acknowledged. The in-memory
			// state keeps the record (it may well survive), which is
			// exactly the may-or-may-not persistence an errored Put
			// promises.
			return fmt.Errorf("store: sync %s: %w", act.path, err)
		}
		l.stats.Syncs++
	}
	return nil
}

// Put implements Store.
func (l *Log) Put(key string, value []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if len(value) > maxValueLen {
		return fmt.Errorf("store: value for %q is %d bytes (max %d)", key, len(value), maxValueLen)
	}
	frame := encodePut(key, value)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.prepareAppendLocked(); err != nil {
		return err
	}
	if err := l.appendLocked(frame, record{op: opPut, key: key}); err != nil {
		return err
	}
	l.maybeCompactLocked()
	return nil
}

// Delete implements Store. Deleting a key the index does not hold is a
// no-op — no tombstone is written, so probes cannot bloat the log.
func (l *Log) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, ok := l.index[key]; !ok {
		return nil
	}
	frame := encodeDelete(key)
	if err := l.prepareAppendLocked(); err != nil {
		return err
	}
	if err := l.appendLocked(frame, record{op: opDelete, key: key}); err != nil {
		return err
	}
	l.maybeCompactLocked()
	return nil
}

// Get implements Store. The returned bytes are verified against the
// frame's checksum on every read, so bit rot between writes and reads
// surfaces as ErrCorrupt instead of a silently wrong certificate.
func (l *Log) Get(key string) ([]byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, false, ErrClosed
	}
	at, ok := l.index[key]
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, at.frameLen())
	if err := l.fs.ReadAt(at.seg.path, buf, at.off); err != nil {
		return nil, true, fmt.Errorf("store: get %q: %w", key, err)
	}
	payload, _, err := parseFrame(buf)
	var rec record
	if err == nil {
		rec, err = parseRecord(payload)
	}
	if err != nil || rec.op != opPut || rec.key != key {
		return nil, true, fmt.Errorf("%w: key %q at %s+%d", ErrCorrupt, key, at.seg.path, at.off)
	}
	l.stats.Reads++
	out := make([]byte, len(rec.value))
	copy(out, rec.value)
	return out, true, nil
}

// Keys implements Store.
func (l *Log) Keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.index))
	for k := range l.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of live keys.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.index)
}

// Sync implements Store.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	l.stats.Syncs++
	return nil
}

// Close implements Store. It waits for an in-flight compaction, then
// syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.compactWG.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	var errSync error
	if l.active != nil {
		errSync = l.active.Sync()
		if cerr := l.active.Close(); errSync == nil {
			errSync = cerr
		}
		l.active = nil
	}
	if errSync != nil {
		return fmt.Errorf("store: close: %w", errSync)
	}
	return nil
}

// Stats returns a snapshot of the counters and health.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.segs)
	s.Records = len(l.index)
	for _, seg := range l.segs {
		s.TotalBytes += seg.size
		s.LiveBytes += seg.live
	}
	return s
}

// Dir returns the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// AddMigrated counts records imported from a legacy one-file-per-entry
// layout; the certcache and job-checkpoint migration paths call it so
// operators can see a one-shot migration happened.
func (l *Log) AddMigrated(n int64) {
	l.mu.Lock()
	l.stats.Migrated += n
	l.mu.Unlock()
}

// validKey bounds keys: non-empty, printable-agnostic, and small.
func validKey(key string) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	if len(key) > maxKeyLen {
		return fmt.Errorf("store: key is %d bytes (max %d)", len(key), maxKeyLen)
	}
	return nil
}
