package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func mustPut(t *testing.T, l *Log, key string, value []byte) {
	t.Helper()
	if err := l.Put(key, value); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func mustGet(t *testing.T, l *Log, key string) []byte {
	t.Helper()
	v, ok, err := l.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get(%q) = ok=%v err=%v, want present", key, ok, err)
	}
	return v
}

func mustAbsent(t *testing.T, l *Log, key string) {
	t.Helper()
	if _, ok, err := l.Get(key); ok || err != nil {
		t.Fatalf("Get(%q) = ok=%v err=%v, want absent", key, ok, err)
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segSuffix) {
			segs = append(segs, e.Name())
		}
	}
	return segs
}

func TestBasicOpsAndReopen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{NoAutoCompact: true})
	want := map[string][]byte{}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%03d", i)
		val := bytes.Repeat([]byte{byte(i)}, 10+i)
		mustPut(t, l, key, val)
		want[key] = val
	}
	// Overwrite a few, delete a few.
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("key-%03d", i)
		val := []byte(fmt.Sprintf("rewritten-%d", i))
		mustPut(t, l, key, val)
		want[key] = val
	}
	for i := 40; i < 45; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if err := l.Delete(key); err != nil {
			t.Fatalf("Delete(%q): %v", key, err)
		}
		delete(want, key)
	}
	if err := l.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of absent key: %v", err)
	}
	check := func(l *Log) {
		t.Helper()
		if l.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", l.Len(), len(want))
		}
		for key, val := range want {
			if got := mustGet(t, l, key); !bytes.Equal(got, val) {
				t.Fatalf("Get(%q) = %q, want %q", key, got, val)
			}
		}
		keys := l.Keys()
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("Keys not sorted: %q >= %q", keys[i-1], keys[i])
			}
		}
	}
	check(l)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Put("after-close", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}

	l2 := mustOpen(t, dir, Options{NoAutoCompact: true})
	defer l2.Close()
	check(l2)
	if torn := l2.Stats().TornBytes; torn != 0 {
		t.Fatalf("clean reopen truncated %d bytes", torn)
	}
}

func TestEmptyAndInvalidKeys(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{NoAutoCompact: true})
	defer l.Close()
	if err := l.Put("", []byte("x")); err == nil {
		t.Fatal("Put with empty key succeeded")
	}
	if err := l.Put(strings.Repeat("k", maxKeyLen+1), nil); err == nil {
		t.Fatal("Put with oversized key succeeded")
	}
	// Empty values are legal: a cached artifact can be zero bytes.
	mustPut(t, l, "empty", nil)
	if got := mustGet(t, l, "empty"); len(got) != 0 {
		t.Fatalf("empty value round-tripped as %q", got)
	}
}

func TestRotationAndReplayAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 256, NoAutoCompact: true})
	want := map[string][]byte{}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k%02d", i)
		val := bytes.Repeat([]byte{byte('a' + i%26)}, 32)
		mustPut(t, l, key, val)
		want[key] = val
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations with 256-byte segments, got %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{SegmentBytes: 256, NoAutoCompact: true})
	defer l2.Close()
	for key, val := range want {
		if got := mustGet(t, l2, key); !bytes.Equal(got, val) {
			t.Fatalf("Get(%q) after reopen = %q, want %q", key, got, val)
		}
	}
}

func TestDuplicateKeyAcrossSegmentsLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 128, NoAutoCompact: true})
	mustPut(t, l, "dup", []byte("first"))
	// Pad until the log rotates, then overwrite in the newer segment.
	for i := 0; l.Stats().Rotations == 0; i++ {
		mustPut(t, l, fmt.Sprintf("pad%d", i), bytes.Repeat([]byte("p"), 40))
	}
	mustPut(t, l, "dup", []byte("second"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := len(segFiles(t, dir)); n < 2 {
		t.Fatalf("want ≥ 2 segments on disk, got %d", n)
	}
	l2 := mustOpen(t, dir, Options{SegmentBytes: 128, NoAutoCompact: true})
	defer l2.Close()
	if got := mustGet(t, l2, "dup"); string(got) != "second" {
		t.Fatalf("Get(dup) = %q, want the later write", got)
	}
}

func TestShortWriteMarksDirtyAndRepairs(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	l := mustOpen(t, dir, Options{FS: fs, NoAutoCompact: true})
	defer l.Close()
	mustPut(t, l, "good", []byte("payload"))

	fs.onWrite = func(p []byte) (int, error) { return len(p) / 2, errHook }
	if err := l.Put("torn", []byte("never-acked")); err == nil {
		t.Fatal("Put through failing write succeeded")
	}
	fs.onWrite = nil
	mustAbsent(t, l, "torn")

	// The next append must truncate the torn bytes before writing, or
	// this record would sit unreachable behind garbage.
	mustPut(t, l, "after", []byte("recovered"))
	if got := mustGet(t, l, "after"); string(got) != "recovered" {
		t.Fatalf("Get(after) = %q", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{NoAutoCompact: true})
	defer l2.Close()
	if got := mustGet(t, l2, "good"); string(got) != "payload" {
		t.Fatalf("Get(good) after reopen = %q", got)
	}
	if got := mustGet(t, l2, "after"); string(got) != "recovered" {
		t.Fatalf("Get(after) after reopen = %q", got)
	}
	mustAbsent(t, l2, "torn")
	if torn := l2.Stats().TornBytes; torn != 0 {
		t.Fatalf("repair left %d torn bytes for reopen to find", torn)
	}
}

func TestSyncFailureMeansMaybePersisted(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	l := mustOpen(t, dir, Options{FS: fs, NoAutoCompact: true})
	fs.onSync = func() error { return errHook }
	err := l.Put("unacked", []byte("v"))
	if err == nil || !errors.Is(err, errHook) {
		t.Fatalf("Put with failing sync = %v, want injected fault", err)
	}
	fs.onSync = nil
	// The write itself completed, so after a clean reopen the record is
	// allowed to be present — errored Put promises may-or-may-not, and
	// here the bytes did reach the file.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{NoAutoCompact: true})
	defer l2.Close()
	if got := mustGet(t, l2, "unacked"); string(got) != "v" {
		t.Fatalf("Get(unacked) = %q", got)
	}
}

func TestCompactionReclaimsAndPreservesBytes(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 512, NoAutoCompact: true})
	want := map[string][]byte{}
	for round := 0; round < 6; round++ {
		for i := 0; i < 12; i++ {
			key := fmt.Sprintf("k%02d", i)
			val := []byte(fmt.Sprintf("round-%d-key-%02d-%s", round, i, strings.Repeat("x", 40)))
			mustPut(t, l, key, val)
			want[key] = val
		}
	}
	if err := l.Delete("k11"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(want, "k11")
	before := l.Stats()
	if before.Segments < 3 {
		t.Fatalf("test needs several sealed segments, got %d", before.Segments)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := l.Stats()
	if after.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", after.Compactions)
	}
	if after.Segments >= before.Segments {
		t.Fatalf("compaction did not reduce segments: %d -> %d", before.Segments, after.Segments)
	}
	if after.TotalBytes >= before.TotalBytes {
		t.Fatalf("compaction did not reclaim bytes: %d -> %d", before.TotalBytes, after.TotalBytes)
	}
	for key, val := range want {
		if got := mustGet(t, l, key); !bytes.Equal(got, val) {
			t.Fatalf("Get(%q) after compaction = %q, want %q", key, got, val)
		}
	}
	mustAbsent(t, l, "k11")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{NoAutoCompact: true})
	defer l2.Close()
	for key, val := range want {
		if got := mustGet(t, l2, key); !bytes.Equal(got, val) {
			t.Fatalf("Get(%q) after compaction+reopen = %q, want %q", key, got, val)
		}
	}
	mustAbsent(t, l2, "k11")
}

func TestAutoCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 512, CompactMinBytes: 1, CompactFraction: 0.3})
	defer l.Close()
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			mustPut(t, l, fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(round)}, 64))
		}
	}
	l.compactWG.Wait()
	if st := l.Stats(); st.Compactions == 0 {
		t.Fatalf("auto compaction never ran: %+v", st)
	}
	for i := 0; i < 8; i++ {
		if got := mustGet(t, l, fmt.Sprintf("k%d", i)); !bytes.Equal(got, bytes.Repeat([]byte{9}, 64)) {
			t.Fatalf("k%d lost its last write after auto compaction", i)
		}
	}
}

func TestCompactionFailureDegradesNotDead(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	l := mustOpen(t, dir, Options{FS: fs, SegmentBytes: 256, NoAutoCompact: true})
	defer l.Close()
	for round := 0; round < 4; round++ {
		for i := 0; i < 8; i++ {
			mustPut(t, l, fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(round)}, 32))
		}
	}
	fs.onRename = func(_, _ string) error { return errHook }
	if err := l.Compact(); err == nil {
		t.Fatal("Compact with failing rename succeeded")
	}
	st := l.Stats()
	if !st.CompactionDegraded || st.CompactionErrs != 1 || st.CompactionReason == "" {
		t.Fatalf("degraded state not recorded: %+v", st)
	}
	// Appends must keep working while compaction is degraded.
	mustPut(t, l, "while-degraded", []byte("still-writable"))
	if got := mustGet(t, l, "while-degraded"); string(got) != "still-writable" {
		t.Fatalf("append while degraded = %q", got)
	}
	// Heal; an explicit retry succeeds and clears the condition.
	fs.onRename = nil
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact after heal: %v", err)
	}
	st = l.Stats()
	if st.CompactionDegraded || st.CompactionReason != "" {
		t.Fatalf("degraded state not cleared: %+v", st)
	}
	if got := mustGet(t, l, "while-degraded"); string(got) != "still-writable" {
		t.Fatalf("record written while degraded lost by recovery compaction: %q", got)
	}
}

func TestCompactionBackoffGatesRetries(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	l := &Log{opt: Options{Now: func() time.Time { return now }}}
	l.finishCompact(errHook)
	if l.compactBackoff != compactBackoffInitial {
		t.Fatalf("first failure backoff = %v, want %v", l.compactBackoff, compactBackoffInitial)
	}
	if got := l.compactNotBefore; !got.Equal(now.Add(compactBackoffInitial)) {
		t.Fatalf("compactNotBefore = %v", got)
	}
	for i := 0; i < 20; i++ {
		l.finishCompact(errHook)
	}
	if l.compactBackoff != compactBackoffMax {
		t.Fatalf("backoff did not cap: %v", l.compactBackoff)
	}
	if !l.stats.CompactionDegraded || l.stats.CompactionErrs != 21 {
		t.Fatalf("stats after repeated failures: %+v", l.stats)
	}
	l.finishCompact(nil)
	if l.stats.CompactionDegraded || l.compactBackoff != 0 {
		t.Fatalf("success did not clear degraded state")
	}
}

func TestReopenCleansCompactionLeftovers(t *testing.T) {
	// Simulate a crash after the compacted segment was published but
	// before the superseded originals were removed: compaction runs with
	// removals failing, leaving stale .seg files for the next open.
	dir := t.TempDir()
	fs := &hookFS{}
	l := mustOpen(t, dir, Options{FS: fs, SegmentBytes: 256, NoAutoCompact: true})
	want := map[string][]byte{}
	for round := 0; round < 4; round++ {
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("k%d", i)
			val := bytes.Repeat([]byte{byte('A' + round)}, 48)
			mustPut(t, l, key, val)
			want[key] = val
		}
	}
	fs.onRemove = func(path string) error {
		if strings.HasSuffix(path, segSuffix) {
			return errHook
		}
		return nil
	}
	segsBefore := len(segFiles(t, dir))
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact (removal failures are tolerable): %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := len(segFiles(t, dir)); n != segsBefore {
		t.Fatalf("expected stale segments to linger (got %d, had %d)", n, segsBefore)
	}
	l2 := mustOpen(t, dir, Options{NoAutoCompact: true})
	defer l2.Close()
	for key, val := range want {
		if got := mustGet(t, l2, key); !bytes.Equal(got, val) {
			t.Fatalf("Get(%q) after leftover cleanup = %q, want %q", key, got, val)
		}
	}
	// The covers rule must have deleted every superseded file.
	for _, name := range segFiles(t, dir) {
		seq, ok := segSeqFromName(name)
		if !ok {
			t.Fatalf("foreign file %q", name)
		}
		for _, s := range l2.segs {
			if s.seq != seq && s.seq <= seq && s.covers >= seq {
				t.Fatalf("superseded segment %q survived reopen", name)
			}
		}
	}
}

func TestCompactionTempIgnoredOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{NoAutoCompact: true})
	mustPut(t, l, "k", []byte("v"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crashed compaction leaves an unpublished temporary.
	tmp := filepath.Join(dir, "0000000000000001"+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatalf("planting temp: %v", err)
	}
	l2 := mustOpen(t, dir, Options{NoAutoCompact: true})
	defer l2.Close()
	if got := mustGet(t, l2, "k"); string(got) != "v" {
		t.Fatalf("Get(k) = %q", got)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("compaction temp not cleaned: %v", err)
	}
}

func TestMigratedCounter(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{NoAutoCompact: true})
	defer l.Close()
	l.AddMigrated(7)
	if got := l.Stats().Migrated; got != 7 {
		t.Fatalf("Migrated = %d", got)
	}
}
