package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk frame format. Every segment is a sequence of frames:
//
//	offset 0  u32 LE  payload length n
//	offset 4  u32 LE  CRC32C (Castagnoli) of the payload bytes
//	offset 8  payload (n bytes)
//
// and every payload starts with a one-byte opcode:
//
//	opMeta   (first frame of every segment)
//	         8-byte magic "ADASEGv1", u64 LE seq, u64 LE covers
//	opPut    u32 LE key length k, key (k bytes), value (rest)
//	opDelete u32 LE key length k, key (k bytes)
//
// The CRC is the torn-write detector: a frame whose stored checksum
// does not match its bytes — truncated mid-frame, zero-filled by a
// journal replay, bit-flipped by the medium — is not a frame at all.
// Startup truncates such a tail from the final segment (the only place
// an honest crash can produce one) and refuses to open when it appears
// anywhere else, because that would mean acknowledged data rotted.

const (
	frameHeaderSize = 8
	segMagic        = "ADASEGv1"
	metaPayloadSize = 1 + len(segMagic) + 8 + 8

	opPut    byte = 1
	opDelete byte = 2
	opMeta   byte = 3

	// maxKeyLen and maxValueLen bound a single record; both are far
	// beyond anything the certificate cache or job checkpoints store,
	// and small enough that a corrupt length field cannot drive a
	// multi-gigabyte allocation during a scan.
	maxKeyLen   = 1 << 12
	maxValueLen = 1 << 28
	maxPayload  = 1 + 4 + maxKeyLen + maxValueLen
)

// castagnoli is the CRC32C table (iSCSI polynomial), hardware
// accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the framed payload to dst and returns it.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// encodePut renders a put record frame.
func encodePut(key string, value []byte) []byte {
	payload := make([]byte, 0, 1+4+len(key)+len(value))
	payload = append(payload, opPut)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(key)))
	payload = append(payload, key...)
	payload = append(payload, value...)
	return appendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload)
}

// encodeDelete renders a tombstone frame.
func encodeDelete(key string) []byte {
	payload := make([]byte, 0, 1+4+len(key))
	payload = append(payload, opDelete)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(key)))
	payload = append(payload, key...)
	return appendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload)
}

// encodeMeta renders a segment's leading meta frame.
func encodeMeta(seq, covers uint64) []byte {
	payload := make([]byte, 0, metaPayloadSize)
	payload = append(payload, opMeta)
	payload = append(payload, segMagic...)
	payload = binary.LittleEndian.AppendUint64(payload, seq)
	payload = binary.LittleEndian.AppendUint64(payload, covers)
	return appendFrame(make([]byte, 0, frameHeaderSize+metaPayloadSize), payload)
}

// errTorn marks bytes that do not parse as a complete, checksummed
// frame — the scan's "stop here" signal, distinguished from a frame
// that parses but holds nonsense.
var errTorn = fmt.Errorf("torn or corrupt frame")

// parseFrame reads one frame from b. It returns the payload (aliasing
// b) and the total frame length, or errTorn when b does not begin with
// a complete frame whose checksum matches.
func parseFrame(b []byte) (payload []byte, frameLen int64, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n == 0 || n > maxPayload || int64(n) > int64(len(b)-frameHeaderSize) {
		return nil, 0, errTorn
	}
	payload = b[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, errTorn
	}
	return payload, frameHeaderSize + int64(n), nil
}

// record is one decoded put/delete payload.
type record struct {
	op    byte
	key   string
	value []byte // aliases the scanned buffer; copy before retaining
}

// parseRecord decodes a put or delete payload.
func parseRecord(payload []byte) (record, error) {
	if len(payload) < 1+4 {
		return record{}, errTorn
	}
	op := payload[0]
	if op != opPut && op != opDelete {
		return record{}, errTorn
	}
	k := binary.LittleEndian.Uint32(payload[1:5])
	if k == 0 || k > maxKeyLen || int(k) > len(payload)-5 {
		return record{}, errTorn
	}
	r := record{op: op, key: string(payload[5 : 5+k])}
	if op == opPut {
		r.value = payload[5+k:]
	} else if len(payload) != 5+int(k) {
		return record{}, errTorn
	}
	return r, nil
}

// parseMeta decodes a segment's leading meta payload.
func parseMeta(payload []byte) (seq, covers uint64, err error) {
	if len(payload) != metaPayloadSize || payload[0] != opMeta ||
		string(payload[1:1+len(segMagic)]) != segMagic {
		return 0, 0, errTorn
	}
	seq = binary.LittleEndian.Uint64(payload[1+len(segMagic):])
	covers = binary.LittleEndian.Uint64(payload[1+len(segMagic)+8:])
	if seq == 0 || covers < seq {
		return 0, 0, errTorn
	}
	return seq, covers, nil
}
