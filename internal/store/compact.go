package store

import (
	"fmt"
	"path/filepath"
)

// Compaction. The live records of every sealed segment are rewritten
// into one new segment file whose header says "I cover sequence
// numbers [first..last]", and that file is published by atomically
// renaming it over the first sealed segment. The rename is the commit
// point:
//
//   - crash before it: the temporary (.cmp) file is ignored and
//     deleted by the next open; the old segments are authoritative.
//   - crash after it: the remaining old segments have seq numbers the
//     new header covers, so the next open identifies them as
//     superseded and deletes them. Their contents are stale copies of
//     records the compacted segment already carries (or records that
//     were since overwritten in the active segment, which replays
//     later and wins), so dropping them loses nothing.
//
// Only sealed segments compact; the active segment keeps taking
// appends throughout, and lookups of records being moved stay valid
// because the old files are removed only under the log's mutex, after
// the index has been repointed.

// maybeCompactLocked starts a background compaction when the dead
// fraction among sealed segments crosses the threshold. Failures put
// the compactor in a degraded state with exponential backoff —
// subsequent appends retry it once the backoff expires, so a disk that
// heals gets compaction back without operator action.
func (l *Log) maybeCompactLocked() {
	if l.opt.NoAutoCompact || l.compacting || l.closed {
		return
	}
	if !l.compactNotBefore.IsZero() && l.opt.Now().Before(l.compactNotBefore) {
		return
	}
	if !l.compactNeededLocked() {
		return
	}
	l.compacting = true
	l.compactWG.Add(1)
	go func() {
		defer l.compactWG.Done()
		l.finishCompact(l.compactOnce())
	}()
}

// compactNeededLocked applies the dead-bytes policy to the sealed
// segments.
func (l *Log) compactNeededLocked() bool {
	if len(l.segs) < 2 {
		return false
	}
	var dead, total int64
	for _, s := range l.segs[:len(l.segs)-1] {
		dead += s.size - s.live
		total += s.size
	}
	return total > 0 && dead >= l.opt.CompactMinBytes &&
		float64(dead)/float64(total) >= l.opt.CompactFraction
}

// Compact runs one synchronous compaction of all sealed segments,
// regardless of the dead-bytes policy. It shares the degraded-state
// bookkeeping with the background path, so a failing explicit
// compaction surfaces in Stats the same way.
func (l *Log) Compact() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.compacting {
		l.mu.Unlock()
		l.compactWG.Wait()
		l.mu.Lock()
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.compacting = true
	l.compactWG.Add(1)
	l.mu.Unlock()
	defer l.compactWG.Done()
	err := l.compactOnce()
	l.finishCompact(err)
	return err
}

// finishCompact records the outcome: success clears the degraded
// state; failure degrades the store (appends continue!) and doubles
// the retry backoff up to a cap.
func (l *Log) finishCompact(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compacting = false
	if err == nil {
		l.stats.CompactionDegraded = false
		l.stats.CompactionReason = ""
		l.compactBackoff = 0
		l.compactNotBefore = l.opt.Now() // zero value would disable backoff gating; any past time works
		return
	}
	l.stats.CompactionErrs++
	l.stats.CompactionDegraded = true
	l.stats.CompactionReason = err.Error()
	if l.compactBackoff == 0 {
		l.compactBackoff = compactBackoffInitial
	} else {
		l.compactBackoff *= 2
		if l.compactBackoff > compactBackoffMax {
			l.compactBackoff = compactBackoffMax
		}
	}
	l.compactNotBefore = l.opt.Now().Add(l.compactBackoff)
}

// compactOnce rewrites the live records of all sealed segments into
// one new segment and atomically swaps it in. Returns nil when there
// is nothing to compact.
func (l *Log) compactOnce() error {
	// Phase 1 (under the lock): snapshot the sealed set and the live
	// records inside it. Sealed segments are immutable, so the
	// snapshot stays valid while we copy bytes without the lock.
	l.mu.Lock()
	if len(l.segs) < 2 {
		l.mu.Unlock()
		return nil
	}
	sealed := make([]*segment, len(l.segs)-1)
	copy(sealed, l.segs[:len(l.segs)-1])
	sealedSet := make(map[*segment]bool, len(sealed))
	for _, s := range sealed {
		sealedSet[s] = true
	}
	type moveRec struct {
		key string
		old loc
	}
	var moves []moveRec
	for key, at := range l.index {
		if sealedSet[at.seg] {
			//lint:ignore maporder sortMoves below orders moves by (segment, offset) before anything is emitted
			moves = append(moves, moveRec{key: key, old: at})
		}
	}
	first, last := sealed[0].seq, sealed[len(sealed)-1].seq
	l.mu.Unlock()

	// Deterministic copy order: by original (segment, offset).
	sortMoves(moves, func(a, b moveRec) bool {
		if a.old.seg.seq != b.old.seg.seq {
			return a.old.seg.seq < b.old.seg.seq
		}
		return a.old.off < b.old.off
	})

	// Phase 2 (no lock): stream the live frames into a temporary file.
	tmp := filepath.Join(l.dir, fmt.Sprintf("%016x%s", first, tmpSuffix))
	//lint:ignore droppederr a stale temporary from a crashed compaction is overwritten or re-deleted; removal here is only hygiene
	l.fs.Remove(tmp)
	f, size, err := l.fs.OpenAppend(tmp)
	if err != nil {
		return fmt.Errorf("store: compaction temp %s: %w", tmp, err)
	}
	if size != 0 {
		//lint:ignore droppederr error path: the non-empty temp is the diagnostic; a close failure adds nothing
		f.Close()
		return fmt.Errorf("store: compaction temp %s not empty (%d bytes)", tmp, size)
	}
	cleanup := func(err error) error {
		//lint:ignore droppederr error path: err is the diagnostic and the temp is deleted right after
		f.Close()
		//lint:ignore droppederr the temp is advisory garbage; the next open deletes leftovers
		l.fs.Remove(tmp)
		return err
	}
	hdr := encodeMeta(first, last)
	if _, err := f.Write(hdr); err != nil {
		return cleanup(fmt.Errorf("store: compaction header: %w", err))
	}
	written := int64(len(hdr))
	newOff := make(map[string]int64, len(moves))
	for _, m := range moves {
		buf := make([]byte, m.old.frameLen())
		if err := l.fs.ReadAt(m.old.seg.path, buf, m.old.off); err != nil {
			return cleanup(fmt.Errorf("store: compaction read %q: %w", m.key, err))
		}
		// Copying the frame verbatim preserves its checksum; verify it
		// here so compaction can never launder a rotted record into a
		// fresh-looking segment.
		if payload, _, err := parseFrame(buf); err != nil {
			return cleanup(fmt.Errorf("%w: compaction found key %q rotted at %s+%d", ErrCorrupt, m.key, m.old.seg.path, m.old.off))
		} else if rec, err := parseRecord(payload); err != nil || rec.op != opPut || rec.key != m.key {
			return cleanup(fmt.Errorf("%w: compaction found key %q inconsistent at %s+%d", ErrCorrupt, m.key, m.old.seg.path, m.old.off))
		}
		if n, err := f.Write(buf); err != nil || n != len(buf) {
			if err == nil {
				err = fmt.Errorf("short write (%d of %d bytes)", n, len(buf))
			}
			return cleanup(fmt.Errorf("store: compaction write %q: %w", m.key, err))
		}
		newOff[m.key] = written
		written += int64(len(buf))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: compaction sync: %w", err))
	}
	if err := f.Close(); err != nil {
		//lint:ignore droppederr the temp is advisory garbage; the next open deletes leftovers
		l.fs.Remove(tmp)
		return fmt.Errorf("store: compaction close: %w", err)
	}

	// Phase 3 (under the lock): publish. Rename is the commit point;
	// everything after it is recoverable cleanup.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		//lint:ignore droppederr closing raced the swap; the unpublished temp is deleted by the next open anyway
		l.fs.Remove(tmp)
		return nil
	}
	newSeg := &segment{seq: first, covers: last, path: filepath.Join(l.dir, segName(first)), size: written}
	if err := l.fs.Rename(tmp, newSeg.path); err != nil {
		//lint:ignore droppederr the temp is advisory garbage; the next open deletes leftovers
		l.fs.Remove(tmp)
		return fmt.Errorf("store: compaction publish: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		// The rename happened; a crash here is the crash-after-commit
		// case the header's covers field already handles. Degrade
		// rather than pretend the swap is fully durable.
		return fmt.Errorf("store: compaction publish sync: %w", err)
	}
	// Old segments: the first was just replaced by the rename; the
	// rest are now superseded. Removal failures are tolerable — the
	// next open deletes them by the covers rule.
	removeFailed := false
	for _, s := range sealed[1:] {
		if err := l.fs.Remove(s.path); err != nil {
			removeFailed = true
		}
	}
	if !removeFailed {
		//lint:ignore droppederr entry-table durability for the removals is an optimization; covers-based cleanup handles a crash
		l.fs.SyncDir(l.dir)
	}
	// Repoint the index. A key that was overwritten or deleted while
	// we copied has moved out of the sealed set; its stale copy in the
	// new segment is dead weight the next compaction reclaims.
	for _, m := range moves {
		cur, ok := l.index[m.key]
		if ok && cur.seg == m.old.seg && cur.off == m.old.off {
			at := loc{seg: newSeg, off: newOff[m.key], n: cur.n}
			l.index[m.key] = at
			newSeg.live += at.frameLen()
		}
	}
	l.segs = append([]*segment{newSeg}, l.segs[len(sealed):]...)
	l.stats.Compactions++
	return nil
}

// sortMoves is sort.Slice without the interface allocation noise in
// the hot path; compaction is rare, this is just tidier.
func sortMoves[T any](s []T, less func(a, b T) bool) {
	// insertion sort is fine: moves is small relative to IO cost, and
	// the input is already mostly ordered (index iteration aside).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
