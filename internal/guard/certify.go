// Per-tier stability certification: every rung of the degradation
// ladder is a switched linear system in the same lifted coordinates
// ξ = [x; z~; u~; u] as the paper's Eq. 8, so the same JSR machinery
// that certifies the nominal design certifies the degraded regimes.
package guard

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"adaptivertc/internal/core"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
)

// CertifyOptions configures the ladder certification.
type CertifyOptions struct {
	// BruteLen is the brute-force JSR product depth (as in
	// Design.StabilityBounds).
	BruteLen int
	// Grip configures the Gripenberg refinement.
	Grip jsr.GripenbergOptions
	// ExtraSteps is the excursion coverage of the degraded tiers: how
	// many sensor periods beyond the certified MaxDelaySteps the Clamp
	// and SafeMode matrix sets include (default 2). Excursions that
	// postpone the release further than this leave even the degraded
	// certificate.
	ExtraSteps int
	// Fallback selects the SafeMode actuator policy to certify.
	Fallback Fallback
}

func (o CertifyOptions) withDefaults() CertifyOptions {
	if o.ExtraSteps <= 0 {
		o.ExtraSteps = 2
	}
	if o.BruteLen <= 0 {
		o.BruteLen = 4
	}
	return o
}

// TierCert is one rung's certificate.
type TierCert struct {
	Tier      Tier
	Bounds    jsr.Bounds
	BudgetHit bool // bracket valid but looser than requested
	Matrices  int  // size of the certified switched set
}

// Stable reports that the tier's switched dynamics are proven
// asymptotically stable under arbitrary admissible switching.
func (tc TierCert) Stable() bool { return tc.Bounds.CertifiesStable() }

// LadderCert certifies the whole degradation ladder.
type LadderCert struct {
	Certs      [NumTiers]TierCert
	ExtraSteps int
	Fallback   Fallback
}

// AllStable reports that every rung carries a strict certificate.
func (lc LadderCert) AllStable() bool {
	for _, tc := range lc.Certs {
		if !tc.Stable() {
			return false
		}
	}
	return true
}

// Cert returns the certificate of one tier.
func (lc LadderCert) Cert(t Tier) TierCert { return lc.Certs[t] }

// Report renders the ladder certification for humans.
func (lc LadderCert) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "degradation-ladder certification (excursion coverage: +%d sensor periods, fallback: %s)\n",
		lc.ExtraSteps, lc.Fallback)
	for _, tc := range lc.Certs {
		verdict := "NOT certified"
		if tc.Stable() {
			verdict = "certified stable"
		}
		fmt.Fprintf(&b, "  %-8s  %d matrices, JSR bracket %s — %s", tc.Tier, tc.Matrices, tc.Bounds, verdict)
		if tc.BudgetHit {
			b.WriteString(" (bracket looser than requested)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// excursionIntervals returns the off-certificate intervals
// h = T + (imax+e)·Ts, e = 1..extra, that the degraded tiers cover.
func excursionIntervals(d *core.Design, extra int) []float64 {
	tm := d.Timing
	base := tm.MaxDelaySteps()
	out := make([]float64, extra)
	for e := 1; e <= extra; e++ {
		out[e-1] = tm.T + float64(base+e)*tm.Ts()
	}
	return out
}

// fallbackOmega builds the lifted one-step matrix of the SafeMode
// fallback over one interval, in the same coordinates as core.Omega so
// tier sets are directly comparable:
//
//	zero: x⁺ = Φ(h) x, everything else cleared — open-loop decay.
//	hold: x⁺ = Φ(h) x + Γ(h) u, u⁺ = u — the held command is an exact
//	      eigenvalue 1, so a hold fallback is at best marginal.
func fallbackOmega(disc *lti.Discrete, stateDim int, hold bool) *mat.Dense {
	n := disc.Phi.Rows()
	r := disc.Gamma.Cols()
	s := stateDim
	dim := n + s + 2*r
	out := mat.New(dim, dim)
	out.SetBlock(0, 0, disc.Phi)
	if hold {
		out.SetBlock(0, dim-r, disc.Gamma)
		out.SetBlock(dim-r, dim-r, mat.Eye(r))
	}
	return out
}

// TierMatrixSet assembles the switched matrix set whose JSR decides the
// asymptotic stability of one tier:
//
//   - Nominal: the design's Ω(h) family (Eq. 8) — the paper's set.
//   - Clamp: the Ω family extended with excursion matrices: plant
//     discretized over each off-certificate interval, controller
//     clamped to the largest certified mode — exactly what the monitor
//     executes during an R > Rmax job.
//   - SafeMode: the lifted fallback dynamics over every interval the
//     degraded loop can experience (H plus the excursion intervals).
func TierMatrixSet(d *core.Design, t Tier, opt CertifyOptions) ([]*mat.Dense, error) {
	opt = opt.withDefaults()
	ext := excursionIntervals(d, opt.ExtraSteps)
	switch t {
	case Nominal:
		return d.OmegaSet(), nil
	case Clamp:
		set := d.OmegaSet()
		last := d.ModeByIndex(d.NumModes() - 1)
		for _, h := range ext {
			disc, err := d.Plant.Discretize(h)
			if err != nil {
				return nil, fmt.Errorf("guard: discretizing excursion interval %g: %w", h, err)
			}
			set = append(set, core.Omega(disc, last.Ctrl))
		}
		return set, nil
	case SafeMode:
		s := d.ModeByIndex(0).Ctrl.StateDim()
		hold := opt.Fallback == FallbackHold
		var set []*mat.Dense
		for _, m := range d.Modes {
			set = append(set, fallbackOmega(m.Disc, s, hold))
		}
		for _, h := range ext {
			disc, err := d.Plant.Discretize(h)
			if err != nil {
				return nil, fmt.Errorf("guard: discretizing excursion interval %g: %w", h, err)
			}
			set = append(set, fallbackOmega(disc, s, hold))
		}
		return set, nil
	}
	return nil, fmt.Errorf("guard: unknown tier %d", int(t))
}

// CertifyLadder brackets the JSR of every tier's switched set with a
// background context; see CertifyLadderCtx for the interruptible form.
func CertifyLadder(d *core.Design, opt CertifyOptions) (LadderCert, error) {
	return CertifyLadderCtx(context.Background(), d, opt)
}

// CertifyLadderCtx brackets the JSR of every tier's switched set. A
// jsr.ErrBudget from the estimator is absorbed into the tier's
// BudgetHit flag (the bracket stays valid, just looser); any other
// error aborts. The context bounds each tier's JSR search — on expiry
// the error wraps jsr.ErrDeadline and no ladder certificate is issued,
// since a partially-certified ladder must not be mistaken for a
// certified one.
func CertifyLadderCtx(ctx context.Context, d *core.Design, opt CertifyOptions) (LadderCert, error) {
	opt = opt.withDefaults()
	lc := LadderCert{ExtraSteps: opt.ExtraSteps, Fallback: opt.Fallback}
	for t := Nominal; t < NumTiers; t++ {
		set, err := TierMatrixSet(d, t, opt)
		if err != nil {
			return LadderCert{}, err
		}
		bounds, err := jsr.EstimateCtx(ctx, set, opt.BruteLen, opt.Grip)
		if err != nil && !errors.Is(err, jsr.ErrBudget) {
			return LadderCert{}, fmt.Errorf("guard: certifying tier %s: %w", t, err)
		}
		lc.Certs[t] = TierCert{
			Tier:      t,
			Bounds:    bounds,
			BudgetHit: errors.Is(err, jsr.ErrBudget),
			Matrices:  len(set),
		}
	}
	return lc, nil
}
