package guard

import (
	"math"
	"sync"
	"testing"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
	"adaptivertc/internal/sched"
)

// testDesign builds the well-damped open-loop-stable plant used across
// the guard tests: open-loop stability is what lets the zero-input
// SafeMode tier carry a strict certificate.
func testDesign(t testing.TB) *core.Design {
	t.Helper()
	plant := lti.MustSystem(
		mat.FromRows([][]float64{{-4, 1}, {0, -6}}),
		mat.FromRows([][]float64{{0}, {2}}),
		mat.Eye(2),
	)
	tm, err := core.NewTiming(0.100, 4, 0.010, 0.150)
	if err != nil {
		t.Fatal(err)
	}
	w := control.LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.1)}
	d, err := core.NewDesign(plant, tm, func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

var certOpts = CertifyOptions{
	BruteLen:   4,
	Grip:       jsr.GripenbergOptions{Delta: 1e-3, MaxDepth: 25, MaxNodes: 100_000},
	ExtraSteps: 2,
	Fallback:   FallbackZero,
}

// The ladder certification is the slow part of these tests; compute it
// once and share.
var (
	ladderOnce sync.Once
	ladderCert LadderCert
	ladderErr  error
)

func certifiedLadder(t *testing.T) LadderCert {
	t.Helper()
	ladderOnce.Do(func() {
		// The sync.Once closure cannot use t, so capture the error.
		var d *core.Design
		d, ladderErr = buildDesign()
		if ladderErr != nil {
			return
		}
		ladderCert, ladderErr = CertifyLadder(d, certOpts)
	})
	if ladderErr != nil {
		t.Fatal(ladderErr)
	}
	return ladderCert
}

// buildDesign is testDesign without the testing.TB plumbing, for use
// inside sync.Once.
func buildDesign() (*core.Design, error) {
	plant := lti.MustSystem(
		mat.FromRows([][]float64{{-4, 1}, {0, -6}}),
		mat.FromRows([][]float64{{0}, {2}}),
		mat.Eye(2),
	)
	tm, err := core.NewTiming(0.100, 4, 0.010, 0.150)
	if err != nil {
		return nil, err
	}
	w := control.LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.1)}
	return core.NewDesign(plant, tm, func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	})
}

// TestLadderCertAllStable checks that every rung of the ladder carries
// a strict JSR certificate with the zero fallback, and that the hold
// fallback is honestly reported as uncertifiable (the held input is an
// exact eigenvalue 1 of the lifted SafeMode dynamics).
func TestLadderCertAllStable(t *testing.T) {
	lc := certifiedLadder(t)
	for tier := Nominal; tier < NumTiers; tier++ {
		tc := lc.Cert(tier)
		if !tc.Stable() {
			t.Errorf("tier %s not certified: bracket %v", tier, tc.Bounds)
		}
		if tc.Matrices == 0 {
			t.Errorf("tier %s has an empty matrix set", tier)
		}
	}
	if !lc.AllStable() {
		t.Error("AllStable() = false with every tier certified")
	}

	d := testDesign(t)
	holdOpts := certOpts
	holdOpts.Fallback = FallbackHold
	hold, err := CertifyLadder(d, holdOpts)
	if err != nil {
		t.Fatal(err)
	}
	if hold.Cert(SafeMode).Stable() {
		t.Error("hold fallback SafeMode certified stable; the held-input eigenvalue 1 makes that impossible")
	}
	if hold.Cert(SafeMode).Bounds.Lower < 1-1e-6 {
		t.Errorf("hold fallback JSR lower bound %g, want ≥ 1 (exact eigenvalue 1)", hold.Cert(SafeMode).Bounds.Lower)
	}
	if hold.AllStable() {
		t.Error("AllStable() = true with an uncertified SafeMode tier")
	}
}

// TestEscalationEndToEnd is the acceptance scenario: a burst of
// R > Rmax excursions drives the guard Nominal → Clamp → SafeMode,
// hysteresis walks it back down one tier at a time, and every tier the
// trajectory passed through is backed by a JSR certificate.
func TestEscalationEndToEnd(t *testing.T) {
	lc := certifiedLadder(t)
	if !lc.AllStable() {
		t.Fatalf("ladder not fully certified:\n%s", lc.Report())
	}

	d := testDesign(t)
	mon, err := New(d, []float64{1, -0.5}, Contract{
		M: 1, K: 4, RecoverAfter: 3, DivergeLimit: 1e6, Fallback: FallbackZero,
	})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 28
	tiers := make([]Tier, jobs)
	for k := 0; k < jobs; k++ {
		r := d.Timing.Rmin
		if k >= 8 && k < 14 {
			r = 2 * d.Timing.Rmax // far beyond the certified envelope
		}
		tiers[k], err = mon.StepJittered(r, 0)
		if err != nil {
			t.Fatalf("job %d: %v", k, err)
		}
	}

	// The first excursion escalates to Clamp immediately; exhausting the
	// (1,4) budget escalates to SafeMode; after the burst the 3-job
	// hysteresis steps back down SafeMode → Clamp → Nominal.
	if tiers[7] != Nominal {
		t.Errorf("job 7 (pre-burst) at %s, want Nominal", tiers[7])
	}
	if tiers[8] != Clamp {
		t.Errorf("job 8 (first excursion) at %s, want Clamp", tiers[8])
	}
	reachedSafe := false
	for k := 9; k < 14; k++ {
		if tiers[k] == SafeMode {
			reachedSafe = true
			break
		}
	}
	if !reachedSafe {
		t.Error("burst never reached SafeMode despite exhausting the (1,4) budget")
	}
	if mon.Tier() != Nominal {
		t.Errorf("final tier %s, want Nominal after hysteresis recovery", mon.Tier())
	}

	// The event log must show the full ladder walk in order.
	var walk []Tier
	for _, e := range mon.Events() {
		walk = append(walk, e.To)
	}
	want := []Tier{Clamp, SafeMode, Clamp, Nominal}
	if len(walk) != len(want) {
		t.Fatalf("transitions %v, want targets %v", mon.Events(), want)
	}
	for i := range want {
		if walk[i] != want[i] {
			t.Fatalf("transition %d target %s, want %s (events: %v)", i, walk[i], want[i], mon.Events())
		}
	}

	m := mon.Metrics()
	if m.Jobs != jobs {
		t.Errorf("Jobs = %d, want %d", m.Jobs, jobs)
	}
	if m.Violations != 6 {
		t.Errorf("Violations = %d, want 6 (the burst length)", m.Violations)
	}
	if m.Escalations != 2 || m.SafeModeEntries != 1 {
		t.Errorf("Escalations = %d, SafeModeEntries = %d, want 2 and 1", m.Escalations, m.SafeModeEntries)
	}
	if m.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", m.Recoveries)
	}
	if m.RecoveryJobs <= 0 || math.IsNaN(m.MeanRecoveryJobs()) {
		t.Errorf("recovery latency not recorded: RecoveryJobs = %d", m.RecoveryJobs)
	}
	sum := 0
	for _, n := range m.JobsInTier {
		sum += n
	}
	if sum != jobs {
		t.Errorf("JobsInTier sums to %d, want %d", sum, jobs)
	}
	if m.JobsInTier[SafeMode] == 0 || m.JobsInTier[Clamp] == 0 {
		t.Errorf("degraded tiers never executed: JobsInTier = %v", m.JobsInTier)
	}

	// The guarded trajectory must stay bounded — each tier it executed
	// in is certified stable, so the lifted state cannot blow up.
	for _, v := range mon.Loop().Lifted() {
		if math.IsNaN(v) || math.Abs(v) > 1e3 {
			t.Fatalf("lifted state unbounded after certified degradation: %v", mon.Loop().Lifted())
		}
	}
}

// TestBudgetBreachesMatchOffline cross-checks the monitor's online
// weakly-hard accounting against offline sliding-window evaluation of
// the same response sequence.
func TestBudgetBreachesMatchOffline(t *testing.T) {
	d := testDesign(t)
	c := Contract{M: 2, K: 5, RecoverAfter: 3, Fallback: FallbackZero}
	mon, err := New(d, []float64{0.5, 0.5}, c)
	if err != nil {
		t.Fatal(err)
	}

	// A response pattern mixing overruns (R > T) inside the envelope
	// with clean jobs: overruns at 2,3,4 then 9,10 then 15,16,17.
	resp := make([]float64, 20)
	for i := range resp {
		resp[i] = d.Timing.Rmin
	}
	for _, k := range []int{2, 3, 4, 9, 10, 15, 16, 17} {
		resp[k] = d.Timing.Rmax // overrun but within the certificate
	}

	for k, r := range resp {
		if _, err := mon.Step(r); err != nil {
			t.Fatalf("job %d: %v", k, err)
		}
	}

	wantBreaches := 0
	for k := range resp {
		lo := k + 1 - c.K
		if lo < 0 {
			lo = 0
		}
		ok, err := sched.SatisfiesWeaklyHard(resp[lo:k+1], d.Timing.T, c.M, c.K)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			wantBreaches++
		}
	}
	if got := mon.Metrics().BudgetBreaches; got != wantBreaches {
		t.Errorf("online BudgetBreaches = %d, offline sliding windows give %d", got, wantBreaches)
	}
	if mon.Metrics().Violations != 0 {
		t.Errorf("Violations = %d, want 0 (all responses within Rmax)", mon.Metrics().Violations)
	}
}

// TestDivergenceForcesSafeMode checks the third contract clause: a
// lifted state past DivergeLimit jumps straight to SafeMode even with a
// clean response.
func TestDivergenceForcesSafeMode(t *testing.T) {
	d := testDesign(t)
	mon, err := New(d, []float64{1, 0}, Contract{
		M: 3, K: 4, DivergeLimit: 1e-9, Fallback: FallbackZero,
	})
	if err != nil {
		t.Fatal(err)
	}
	tier, err := mon.Step(d.Timing.Rmin)
	if err != nil {
		t.Fatal(err)
	}
	if tier != SafeMode {
		t.Fatalf("tier %s after divergence, want SafeMode", tier)
	}
	m := mon.Metrics()
	if m.Divergences != 1 || m.SafeModeEntries != 1 {
		t.Errorf("Divergences = %d, SafeModeEntries = %d, want 1 and 1", m.Divergences, m.SafeModeEntries)
	}
}

// TestContractValidate rejects malformed contracts at construction.
func TestContractValidate(t *testing.T) {
	d := testDesign(t)
	bad := []Contract{
		{M: 1, K: 0},
		{M: -1, K: 4},
		{M: 1, K: 4, DivergeLimit: -1},
	}
	for i, c := range bad {
		if _, err := New(d, []float64{1, 0}, c); err == nil {
			t.Errorf("contract %d (%+v) accepted", i, c)
		}
	}
	if _, err := New(d, []float64{1, 0}, Contract{M: 1, K: 4}); err != nil {
		t.Errorf("valid contract rejected: %v", err)
	}
}

// TestMetricsAdd checks the associative merge the Monte-Carlo relies
// on.
func TestMetricsAdd(t *testing.T) {
	a := Metrics{Jobs: 3, Violations: 1, Escalations: 1, Recoveries: 1, RecoveryJobs: 4, JobsInTier: [NumTiers]int{2, 1, 0}}
	b := Metrics{Jobs: 5, BudgetBreaches: 2, SafeModeEntries: 1, JobsInTier: [NumTiers]int{1, 1, 3}}
	var sum Metrics
	sum.Add(a)
	sum.Add(b)
	if sum.Jobs != 8 || sum.Violations != 1 || sum.BudgetBreaches != 2 ||
		sum.SafeModeEntries != 1 || sum.JobsInTier != [NumTiers]int{3, 2, 3} {
		t.Errorf("merged metrics wrong: %+v", sum)
	}
	if sum.MeanRecoveryJobs() != 4 {
		t.Errorf("MeanRecoveryJobs = %g, want 4", sum.MeanRecoveryJobs())
	}
}
