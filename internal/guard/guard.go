// Package guard implements certified graceful degradation for the
// adaptive runtime: a monitor that checks every job against the
// deployment contract the stability certificate rests on — observed
// response times within the certified Rmax, the weakly-hard (m, K)
// overrun budget, boundedness of the lifted state — and escalates
// through a degradation ladder when the contract is violated:
//
//	Nominal  → the paper's adaptive loop, certified by the Ω(h) JSR.
//	Clamp    → an R > Rmax excursion was observed: the controller runs
//	           the largest certified mode while the plant evolves the
//	           true (off-certificate) interval; the violation is
//	           recorded instead of silently clamped.
//	SafeMode → the overrun budget is exhausted or the lifted state
//	           crossed the divergence threshold: the control job is
//	           abandoned for a fallback actuator policy (zero or held
//	           input) until the contract holds again.
//
// Recovery is hysteresis-based: RecoverAfter consecutive clean jobs
// step the ladder down one tier at a time, so a single good job inside
// a fault burst cannot bounce the system back into a regime it is about
// to violate again. Each tier's switched closed-loop matrix set is
// certified up front by CertifyLadder, so even the degraded loop
// carries its own JSR stability certificate.
package guard

import (
	"fmt"
	"math"

	"adaptivertc/internal/core"
	"adaptivertc/internal/sched"
)

// Tier is a rung of the degradation ladder, ordered by severity.
type Tier int

const (
	// Nominal runs the certified adaptive loop unmodified.
	Nominal Tier = iota
	// Clamp runs the largest certified mode through excursions,
	// recording contract violations.
	Clamp
	// SafeMode abandons the control job for the fallback actuator
	// policy.
	SafeMode

	// NumTiers is the ladder length.
	NumTiers = 3
)

// String renders the tier name.
func (t Tier) String() string {
	switch t {
	case Nominal:
		return "Nominal"
	case Clamp:
		return "Clamp"
	case SafeMode:
		return "SafeMode"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Fallback selects SafeMode's actuator policy.
type Fallback int

const (
	// FallbackZero applies u = 0. For an open-loop stable plant the
	// safe-mode tier then carries a strict JSR certificate.
	FallbackZero Fallback = iota
	// FallbackHold keeps the last command latched. The held input makes
	// the lifted safe-mode dynamics marginal (an exact eigenvalue 1),
	// so this policy can be bounded but never strictly certified to the
	// origin — CertifyLadder reports that honestly.
	FallbackHold
)

// String renders the fallback policy name.
func (f Fallback) String() string {
	if f == FallbackHold {
		return "hold"
	}
	return "zero"
}

// Contract is the deployment contract the monitor enforces at runtime.
// The response-time envelope itself (R ≤ Rmax) comes from the design's
// Timing and needs no field here.
type Contract struct {
	// M, K is the weakly-hard overrun budget: at most M overruns
	// (R > T) in any K consecutive jobs, checked each job on the
	// trailing window via the sched package. K ≥ 1; M < K for the
	// budget to ever bind.
	M, K int
	// DivergeLimit forces SafeMode when the ∞-norm of the lifted state
	// exceeds it (0 disables the check).
	DivergeLimit float64
	// RecoverAfter is the hysteresis: consecutive clean jobs required
	// before de-escalating one tier (default 5).
	RecoverAfter int
	// Fallback is SafeMode's actuator policy.
	Fallback Fallback
}

// withDefaults fills unset tunables.
func (c Contract) withDefaults() Contract {
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 5
	}
	return c
}

// Validate checks the contract parameters.
func (c Contract) Validate() error {
	if c.K < 1 || c.M < 0 {
		return fmt.Errorf("guard: invalid weakly-hard budget (M=%d, K=%d)", c.M, c.K)
	}
	if c.DivergeLimit < 0 {
		return fmt.Errorf("guard: negative divergence limit %g", c.DivergeLimit)
	}
	return nil
}

// Event records one ladder transition.
type Event struct {
	Job      int // job index at which the transition happened
	From, To Tier
	Reason   string
}

// Metrics is the guard's degradation accounting. All fields are plain
// sums, so metrics from independent sequences merge associatively —
// the fault-injected Monte-Carlo stays worker-count invariant.
type Metrics struct {
	Jobs            int
	Violations      int // R > Rmax excursions (or r ≤ 0) observed
	BudgetBreaches  int // jobs on which the (M, K) budget was exhausted
	Divergences     int // jobs on which the lifted state crossed DivergeLimit
	Escalations     int // upward ladder transitions
	SafeModeEntries int
	Recoveries      int // completed returns to Nominal
	RecoveryJobs    int // degraded jobs summed over completed recoveries
	JobsInTier      [NumTiers]int
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.Jobs += other.Jobs
	m.Violations += other.Violations
	m.BudgetBreaches += other.BudgetBreaches
	m.Divergences += other.Divergences
	m.Escalations += other.Escalations
	m.SafeModeEntries += other.SafeModeEntries
	m.Recoveries += other.Recoveries
	m.RecoveryJobs += other.RecoveryJobs
	for i := range m.JobsInTier {
		m.JobsInTier[i] += other.JobsInTier[i]
	}
}

// MeanRecoveryJobs returns the average number of degraded jobs per
// completed recovery (NaN when none completed).
func (m Metrics) MeanRecoveryJobs() float64 {
	if m.Recoveries == 0 {
		return math.NaN()
	}
	return float64(m.RecoveryJobs) / float64(m.Recoveries)
}

// Monitor wraps a core.Loop with the runtime assumption guard. It owns
// the loop: drive it exclusively through Step/StepJittered.
type Monitor struct {
	d    *core.Design
	loop *core.Loop
	c    Contract

	tier          Tier
	window        []float64 // trailing response times, oldest first
	clean         int       // consecutive jobs without a violation signal
	degradedSince int       // job index of the last Nominal departure (-1 when nominal)
	maxIdx        int       // largest certified mode index

	metrics Metrics
	events  []Event
}

// New builds a monitor around a fresh loop at initial plant state x0.
func New(d *core.Design, x0 []float64, c Contract) (*Monitor, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	loop, err := core.NewLoop(d, x0)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		d:             d,
		loop:          loop,
		c:             c.withDefaults(),
		window:        make([]float64, 0, c.K),
		degradedSince: -1,
		maxIdx:        d.NumModes() - 1,
	}, nil
}

// Loop exposes the wrapped loop for state inspection and fault-hook
// installation. Stepping it directly bypasses the guard.
func (m *Monitor) Loop() *core.Loop { return m.loop }

// Tier returns the current ladder rung.
func (m *Monitor) Tier() Tier { return m.tier }

// Metrics returns the accumulated degradation accounting.
func (m *Monitor) Metrics() Metrics { return m.metrics }

// Events returns the recorded ladder transitions.
func (m *Monitor) Events() []Event { return m.events }

// Step checks response time r against the contract, updates the ladder
// and advances the loop one interval at the resulting tier.
func (m *Monitor) Step(r float64) (Tier, error) { return m.StepJittered(r, 0) }

// StepJittered is Step with an additive release-jitter perturbation (in
// seconds) on the interval the plant physically evolves — the guard
// counterpart of Loop.StepJittered.
func (m *Monitor) StepJittered(r, jitter float64) (Tier, error) {
	tm := m.d.Timing
	idx, violated := tm.IntervalIndexChecked(r)
	if violated {
		m.metrics.Violations++
	}

	// Weakly-hard budget over the trailing K-job window, delegated to
	// the sched package's reference implementation.
	if len(m.window) == m.c.K {
		copy(m.window, m.window[1:])
		m.window = m.window[:m.c.K-1]
	}
	m.window = append(m.window, r)
	budgetOK, err := sched.SatisfiesWeaklyHard(m.window, tm.T, m.c.M, m.c.K)
	if err != nil {
		return m.tier, err
	}
	if !budgetOK {
		m.metrics.BudgetBreaches++
	}

	// Lifted-state divergence.
	diverged := false
	if m.c.DivergeLimit > 0 {
		for _, v := range m.loop.Lifted() {
			if math.IsNaN(v) || math.Abs(v) > m.c.DivergeLimit {
				diverged = true
				break
			}
		}
		if diverged {
			m.metrics.Divergences++
		}
	}

	m.updateTier(violated, !budgetOK, diverged)

	// Execute the job at the (possibly new) tier. The plant always
	// evolves the physically true interval: the sensor-grid instant the
	// adaptation rule produces for r — beyond the certified grid during
	// an excursion — plus release jitter.
	trueH := tm.GridInterval(r) + jitter
	if trueH <= 0 {
		return m.tier, fmt.Errorf("guard: jitter %g pushes interval %g below zero", jitter, tm.GridInterval(r))
	}
	offGrid := violated || math.Abs(jitter) > 0
	switch m.tier {
	case SafeMode:
		err = m.loop.StepFallback(trueH, m.c.Fallback == FallbackHold)
	default:
		// Nominal and Clamp run the certified mode table; during an
		// excursion idx is already clamped to the largest certified
		// mode and the plant evolves the true interval.
		if offGrid {
			err = m.loop.StepJittered(idx, trueH)
		} else {
			err = m.loop.TryStep(idx)
		}
	}
	if err != nil {
		return m.tier, err
	}
	m.metrics.JobsInTier[m.tier]++
	m.metrics.Jobs++
	return m.tier, nil
}

// updateTier applies the escalation and hysteresis rules for one job.
func (m *Monitor) updateTier(violated, budgetBreach, diverged bool) {
	target := m.tier
	reason := ""
	if violated && target < Clamp {
		target = Clamp
		reason = "R > Rmax excursion"
	}
	if (budgetBreach || diverged) && target < SafeMode {
		target = SafeMode
		switch {
		case budgetBreach && diverged:
			reason = "overrun budget exhausted and state divergence"
		case budgetBreach:
			reason = "weakly-hard overrun budget exhausted"
		default:
			reason = "lifted state crossed divergence limit"
		}
	}
	switch {
	case target > m.tier:
		m.events = append(m.events, Event{Job: m.metrics.Jobs, From: m.tier, To: target, Reason: reason})
		m.metrics.Escalations++
		if target == SafeMode {
			m.metrics.SafeModeEntries++
		}
		if m.tier == Nominal {
			m.degradedSince = m.metrics.Jobs
		}
		m.tier = target
		m.clean = 0
	case violated || budgetBreach || diverged:
		m.clean = 0
	default:
		m.clean++
		if m.tier > Nominal && m.clean >= m.c.RecoverAfter {
			m.events = append(m.events, Event{
				Job: m.metrics.Jobs, From: m.tier, To: m.tier - 1,
				Reason: fmt.Sprintf("%d clean jobs", m.clean),
			})
			m.tier--
			m.clean = 0
			if m.tier == Nominal {
				m.metrics.Recoveries++
				m.metrics.RecoveryJobs += m.metrics.Jobs - m.degradedSince
				m.degradedSince = -1
			}
		}
	}
}
