package control

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"

	"adaptivertc/internal/mat"
)

func closedLoopPoles(t *testing.T, a, b, k *mat.Dense) []complex128 {
	t.Helper()
	cl := mat.Sub(a, mat.Mul(b, k))
	eigs, err := mat.Eigenvalues(cl)
	if err != nil {
		t.Fatal(err)
	}
	return eigs
}

func polesMatch(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	sortC := func(s []complex128) {
		sort.Slice(s, func(i, j int) bool {
			if real(s[i]) != real(s[j]) {
				return real(s[i]) < real(s[j])
			}
			return imag(s[i]) < imag(s[j])
		})
	}
	sortC(got)
	sortC(want)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("poles = %v, want %v", got, want)
		}
	}
}

func TestPolePlaceRealPoles(t *testing.T) {
	a := mat.FromRows([][]float64{{0, 1}, {20, -2}}) // unstable plant
	b := mat.ColVec(0, 1)
	want := []complex128{-3, -5}
	k, err := PolePlace(a, b, want)
	if err != nil {
		t.Fatal(err)
	}
	polesMatch(t, closedLoopPoles(t, a, b, k), want, 1e-8)
}

func TestPolePlaceComplexPair(t *testing.T) {
	a := mat.FromRows([][]float64{{0, 1, 0}, {0, 0, 1}, {1, 2, 3}})
	b := mat.ColVec(0, 0, 1)
	want := []complex128{complex(-2, 3), complex(-2, -3), -4}
	k, err := PolePlace(a, b, want)
	if err != nil {
		t.Fatal(err)
	}
	polesMatch(t, closedLoopPoles(t, a, b, k), want, 1e-6)
}

func TestPolePlaceDiscreteDeadbeat(t *testing.T) {
	// Deadbeat: all poles at the origin → Aᶜˡ nilpotent.
	a := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	b := mat.ColVec(0.005, 0.1)
	k, err := PolePlace(a, b, []complex128{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	cl := mat.Sub(a, mat.Mul(b, k))
	if mat.MaxAbs(mat.Mul(cl, cl)) > 1e-9 {
		t.Fatalf("deadbeat closed loop not nilpotent: %v", mat.Mul(cl, cl))
	}
}

func TestPolePlaceValidation(t *testing.T) {
	a := mat.Eye(2)
	b := mat.ColVec(0, 1)
	if _, err := PolePlace(mat.New(2, 3), b, []complex128{-1, -2}); err == nil {
		t.Fatal("non-square A accepted")
	}
	if _, err := PolePlace(a, mat.Eye(2), []complex128{-1, -2}); err == nil {
		t.Fatal("multi-input B accepted")
	}
	if _, err := PolePlace(a, b, []complex128{-1}); err == nil {
		t.Fatal("wrong pole count accepted")
	}
	if _, err := PolePlace(a, b, []complex128{complex(-1, 2), -3}); err == nil {
		t.Fatal("unpaired complex pole accepted")
	}
	// Uncontrollable pair: A diagonal, B touching only one state.
	if _, err := PolePlace(mat.Diag(1, 2), mat.ColVec(1, 0), []complex128{-1, -2}); err == nil {
		t.Fatal("uncontrollable pair accepted")
	}
}

func TestPolePlaceCrossChecksLQR(t *testing.T) {
	// Place the closed-loop poles exactly where an LQR design put them;
	// the two gains must then coincide (for single-input systems the
	// gain achieving a given pole set is unique).
	a := mat.FromRows([][]float64{{1, 0.05}, {0, 0.9}})
	b := mat.ColVec(0.01, 0.05)
	kLQR, _, err := DLQR(a, b, mat.Eye(2), mat.Diag(0.5))
	if err != nil {
		t.Fatal(err)
	}
	lqrPoles, err := mat.Eigenvalues(mat.Sub(a, mat.Mul(b, kLQR)))
	if err != nil {
		t.Fatal(err)
	}
	kPP, err := PolePlace(a, b, lqrPoles)
	if err != nil {
		t.Fatal(err)
	}
	if !kPP.EqualApprox(kLQR, 1e-6*(1+mat.MaxAbs(kLQR))) {
		t.Fatalf("Ackermann gain %v != LQR gain %v for identical poles", kPP, kLQR)
	}
}

func TestPolePlaceDeadbeatRegulatesInNSteps(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 0.05}, {0, 0.9}})
	b := mat.ColVec(0, 0.05)
	kd, err := PolePlace(a, b, []complex128{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1}
	cl := mat.Sub(a, mat.Mul(b, kd))
	for i := 0; i < 2; i++ {
		x = mat.MulVec(cl, x)
	}
	if math.Abs(x[0])+math.Abs(x[1]) > 1e-9 {
		t.Fatalf("deadbeat did not finish in n steps: %v", x)
	}
}
