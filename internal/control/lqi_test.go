package control

import (
	"math"
	"testing"

	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
)

func lqiPlant(t *testing.T) *lti.System {
	t.Helper()
	// Double integrator with full state output.
	return lti.MustSystem(
		mat.FromRows([][]float64{{0, 1}, {0, 0}}),
		mat.ColVec(0, 1),
		mat.Eye(2),
	)
}

func TestLQIValidation(t *testing.T) {
	sys := lqiPlant(t)
	w := LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.5)}
	ct := mat.RowVec(1, 0)
	if _, err := LQI(sys, w, nil, ct, 0.1); err == nil {
		t.Fatal("nil Qi accepted")
	}
	if _, err := LQI(sys, w, mat.Diag(1), mat.RowVec(1), 0.1); err == nil {
		t.Fatal("wrong Ct width accepted")
	}
	if _, err := LQI(sys, w, mat.Diag(-1), ct, 0.1); err == nil {
		t.Fatal("indefinite Qi accepted")
	}
	if _, err := LQI(sys, w, mat.Eye(2), ct, 0.1); err == nil {
		t.Fatal("Qi/Ct size mismatch accepted")
	}
}

func TestLQIStructure(t *testing.T) {
	sys := lqiPlant(t)
	c, err := LQI(sys, LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.5)}, mat.Diag(2), mat.RowVec(1, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// State = [u_prev (1); xi (1)].
	if c.StateDim() != 2 || c.InputDim() != 2 || c.OutputDim() != 1 {
		t.Fatalf("dims = (%d,%d,%d)", c.StateDim(), c.InputDim(), c.OutputDim())
	}
}

// simulateLQITracking runs the single-mode loop with constant input
// disturbance dist and reference position ref, returning the final
// position.
func simulateLQITracking(t *testing.T, c *StateSpace, h, ref, dist float64, steps int) float64 {
	t.Helper()
	sys := lqiPlant(t)
	d, err := sys.Discretize(h)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0, 0}
	z := make([]float64, c.StateDim())
	uApp, uNext := 0.0, 0.0
	for k := 0; k < steps; k++ {
		e := []float64{ref - x[0], 0 - x[1]}
		var uv []float64
		z, uv = c.Step(z, e)
		// Plant over one interval under held input + disturbance.
		xn := mat.MulVec(d.Phi, x)
		g := d.Gamma
		for i := range xn {
			xn[i] += g.At(i, 0) * (uApp + dist)
		}
		x = xn
		uApp = uNext
		uNext = uv[0]
		if math.Abs(x[0]) > 1e6 {
			t.Fatalf("diverged at step %d: %v", k, x)
		}
	}
	return x[0]
}

func TestLQITracksStepReference(t *testing.T) {
	sys := lqiPlant(t)
	h := 0.05
	c, err := LQI(sys, LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.5)}, mat.Diag(2), mat.RowVec(1, 0), h)
	if err != nil {
		t.Fatal(err)
	}
	final := simulateLQITracking(t, c, h, 1.5, 0, 3000)
	if math.Abs(final-1.5) > 1e-6 {
		t.Fatalf("final position %v, want 1.5", final)
	}
}

func TestLQIRejectsConstantDisturbance(t *testing.T) {
	sys := lqiPlant(t)
	h := 0.05
	c, err := LQI(sys, LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.5)}, mat.Diag(2), mat.RowVec(1, 0), h)
	if err != nil {
		t.Fatal(err)
	}
	// Constant input disturbance: the integral action must remove the
	// steady-state offset entirely.
	final := simulateLQITracking(t, c, h, 0, 0.8, 3000)
	if math.Abs(final) > 1e-6 {
		t.Fatalf("steady-state offset %v under constant disturbance", final)
	}
	// A plain delay-LQR (no integrator) cannot: sanity-check the
	// comparison the integral action wins.
	g, err := DelayLQR(sys, LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.5)}, h)
	if err != nil {
		t.Fatal(err)
	}
	plain := simulateLQITracking(t, g.Controller(), h, 0, 0.8, 3000)
	if math.Abs(plain) < 10*math.Abs(final)+1e-9 {
		t.Fatalf("plain LQR offset %v unexpectedly as good as LQI %v", plain, final)
	}
}

func TestLQIModeTableUnderOverruns(t *testing.T) {
	// LQI modes per interval form a stable adaptive design (smoke-level:
	// simulate switching and require convergence).
	sys := lqiPlant(t)
	w := LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.5)}
	hs := []float64{0.05, 0.06, 0.07, 0.08}
	ctrls := make([]*StateSpace, len(hs))
	discs := make([]*lti.Discrete, len(hs))
	for i, h := range hs {
		c, err := LQI(sys, w, mat.Diag(2), mat.RowVec(1, 0), h)
		if err != nil {
			t.Fatal(err)
		}
		ctrls[i] = c
		d, err := sys.Discretize(h)
		if err != nil {
			t.Fatal(err)
		}
		discs[i] = d
	}
	x := []float64{1, 0}
	z := make([]float64, ctrls[0].StateDim())
	uApp, uNext := 0.0, 0.0
	idx := 0
	for k := 0; k < 2000; k++ {
		e := []float64{-x[0], -x[1]}
		var u []float64
		z, u = ctrls[idx].Step(z, e)
		xn := mat.MulVec(discs[idx].Phi, x)
		for i := range xn {
			xn[i] += discs[idx].Gamma.At(i, 0) * uApp
		}
		x = xn
		uApp = uNext
		uNext = u[0]
		idx = (k*7 + 3) % len(hs) // deterministic pseudo-random switching
	}
	if math.Abs(x[0]) > 1e-6 || math.Abs(x[1]) > 1e-6 {
		t.Fatalf("switched LQI loop did not converge: %v", x)
	}
}
