package control

import (
	"fmt"

	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
)

// LQRWeights carries the quadratic stage cost x'Qx + u'Ru used by the
// LQR/LQG designs. Q must be PSD and R PD.
type LQRWeights struct {
	Q *mat.Dense
	R *mat.Dense
}

// Validate checks the weight dimensions against a plant.
func (w LQRWeights) Validate(sys *lti.System) error {
	n, r := sys.StateDim(), sys.InputDim()
	if w.Q == nil || !w.Q.IsSquare() || w.Q.Rows() != n {
		return fmt.Errorf("control: Q must be %d×%d", n, n)
	}
	if w.R == nil || !w.R.IsSquare() || w.R.Rows() != r {
		return fmt.Errorf("control: R must be %d×%d", r, r)
	}
	if !mat.IsPosSemiDef(w.Q, 1e-9) {
		return fmt.Errorf("control: Q must be positive semi-definite")
	}
	if !mat.IsPosDef(w.R) {
		return fmt.Errorf("control: R must be positive definite")
	}
	return nil
}

// DLQR computes the discrete LQR gain for x[k+1] = Phi x[k] + Gamma u[k]
// with stage cost x'Qx + u'Ru; the optimal law is u[k] = -K x[k].
func DLQR(phi, gamma, q, r *mat.Dense) (k *mat.Dense, p *mat.Dense, err error) {
	p, err = SolveDARE(phi, gamma, q, r)
	if err != nil {
		return nil, nil, err
	}
	k, err = DAREGain(phi, gamma, r, p)
	if err != nil {
		return nil, nil, err
	}
	return k, p, nil
}

// DelayLQRGains are the feedback gains of the delay-aware LQR: the
// command issued at release k is v[k] = -Kx x[k] - Ku u[k], where u[k]
// is the command currently applied to the plant (issued by job k-1).
type DelayLQRGains struct {
	Kx *mat.Dense // r×n
	Ku *mat.Dense // r×r
	P  *mat.Dense // (n+r)×(n+r) Riccati solution on the augmented state
	H  float64    // interval the design assumed
}

// DelayLQR designs the LQR that is optimal for input-output delay h in
// the paper's execution model: the measurement sampled at a_k produces a
// command applied from a_{k+1} = a_k + h on. The design plant is the
// delay-augmented system
//
//	[x;u][k+1] = [Phi(h) Gamma(h); 0 0] [x;u][k] + [0; I] v[k]
//
// with stage cost x'Qx + u'Ru carried inside the augmented state weight
// (the applied input is a state of the augmented plant), so no
// additional penalty is placed on the raw decision variable v.
func DelayLQR(sys *lti.System, w LQRWeights, h float64) (*DelayLQRGains, error) {
	if err := w.Validate(sys); err != nil {
		return nil, err
	}
	d, err := sys.Discretize(h)
	if err != nil {
		return nil, err
	}
	n, r := sys.StateDim(), sys.InputDim()
	aAug := mat.Block([][]*mat.Dense{
		{d.Phi, d.Gamma},
		{mat.New(r, n), mat.New(r, r)},
	})
	bAug := mat.VStack(mat.New(n, r), mat.Eye(r))
	qAug := mat.BlockDiag(w.Q, w.R)
	rAug := mat.New(r, r) // zero: the applied input is already weighted in qAug
	p, err := SolveDARE(aAug, bAug, qAug, rAug)
	if err != nil {
		return nil, fmt.Errorf("control: DelayLQR(h=%g): %w", h, err)
	}
	k, err := DAREGain(aAug, bAug, rAug, p)
	if err != nil {
		return nil, err
	}
	return &DelayLQRGains{
		Kx: k.Slice(0, r, 0, n),
		Ku: k.Slice(0, r, n, n+r),
		P:  p,
		H:  h,
	}, nil
}

// Controller packages the delay-aware LQR as a paper-form controller
// acting on the error e[k] = r_ref - x[k] (full state measurement,
// r_ref = 0 in the stability analysis). The controller remembers its own
// previously issued command as its internal state z[k] = u[k]:
//
//	u[k+1] = Kx e[k] - Ku z[k]
//	z[k+1] = u[k+1]
//
// With e = -x this realizes v = -Kx x - Ku u, the optimal law.
func (g *DelayLQRGains) Controller() *StateSpace {
	c, err := NewStateSpace(
		mat.Neg(g.Ku), // Ac
		g.Kx,          // Bc
		mat.Neg(g.Ku), // Cc
		g.Kx,          // Dc
	)
	if err != nil {
		panic(err)
	}
	return c
}

// PeriodLQR designs a conventional (no extra delay) discrete LQR for
// sampling period h and returns it as a static error-feedback
// controller u[k+1] = K e[k] (with e = -x this is u = -K x). This is
// the "controller designed as if the period were h" baseline in the
// paper's comparisons; it ignores the one-interval input-output delay.
func PeriodLQR(sys *lti.System, w LQRWeights, h float64) (*StateSpace, error) {
	if err := w.Validate(sys); err != nil {
		return nil, err
	}
	d, err := sys.Discretize(h)
	if err != nil {
		return nil, err
	}
	k, _, err := DLQR(d.Phi, d.Gamma, w.Q, w.R)
	if err != nil {
		return nil, fmt.Errorf("control: PeriodLQR(h=%g): %w", h, err)
	}
	return Static(k), nil
}
