package control

import (
	"fmt"
	"math"

	"adaptivertc/internal/mat"
)

// BalancedTruncation reduces a Schur-stable discrete-time state-space
// model (A, B, C) to the given order by balancing the controllability
// and observability Gramians and discarding the states with the
// smallest Hankel singular values — the standard route to smaller
// controller tables when the observer-based modes are too large for the
// target hardware. It returns the reduced (Ar, Br, Cr) together with
// the discarded Hankel singular values, whose sum bounds the H∞ error
// (×2).
//
// The balancing transform uses the square-root method: with Wc = L Lᵀ
// and M = Lᵀ Wo L = U Σ² Uᵀ, the transform T = L U Σ^{-1/2} balances
// both Gramians to Σ.
func BalancedTruncation(a, b, c *mat.Dense, order int) (ar, br, cr *mat.Dense, discarded []float64, err error) {
	n := a.Rows()
	if order < 1 || order >= n {
		return nil, nil, nil, nil, fmt.Errorf("control: reduction order %d out of range [1, %d)", order, n)
	}
	wc, err := ControllabilityGramian(a, b)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	wo, err := ObservabilityGramian(a, c)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// Wc = L Lᵀ. The Gramian can be numerically semi-definite; nudge it.
	l, err := mat.Cholesky(mat.Add(wc, mat.Scale(1e-12*(1+mat.MaxAbs(wc)), mat.Eye(n))))
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("control: controllability Gramian not PD: %w", err)
	}
	m := mat.MulMany(l.T(), wo, l)
	// Symmetric eigendecomposition via SVD (M is symmetric PSD, so the
	// singular vectors are eigenvectors and σᵢ = λᵢ).
	u, sig2, _, err := mat.SVD(mat.Symmetrize(m))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	hsv := make([]float64, n)
	for i, v := range sig2 {
		hsv[i] = math.Sqrt(math.Max(v, 0))
	}
	// T = L U Σ^{-1/2}, T⁻¹ = Σ^{1/2} Uᵀ L⁻¹ (then Wc_b = Wo_b = Σ);
	// columns ordered by decreasing HSV already (SVD returns sorted σ).
	tEig := mat.Mul(l, u)
	tInvLeft := u.T() // Σ^{1/2} applied row-wise below
	for j := 0; j < n; j++ {
		s := math.Sqrt(hsv[j])
		if s < 1e-150 {
			return nil, nil, nil, nil, fmt.Errorf("control: Hankel singular value %d vanishes; system not minimal at this precision", j)
		}
		for i := 0; i < n; i++ {
			tEig.Set(i, j, tEig.At(i, j)/s)
		}
		for i := 0; i < n; i++ {
			tInvLeft.Set(j, i, tInvLeft.At(j, i)*s)
		}
	}
	lInv, err := mat.Inverse(l)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tInv := mat.Mul(tInvLeft, lInv)
	// Balanced realization.
	ab := mat.MulMany(tInv, a, tEig)
	bb := mat.Mul(tInv, b)
	cb := mat.Mul(c, tEig)
	// Truncate.
	ar = ab.Slice(0, order, 0, order)
	br = bb.Slice(0, order, 0, bb.Cols())
	cr = cb.Slice(0, cb.Rows(), 0, order)
	return ar, br, cr, hsv[order:], nil
}
