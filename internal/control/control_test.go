package control

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
)

func TestNewStateSpaceValidation(t *testing.T) {
	if _, err := NewStateSpace(nil, nil, nil, nil); err == nil {
		t.Fatal("nil Dc accepted")
	}
	if _, err := NewStateSpace(mat.Eye(2), nil, nil, mat.Eye(1)); err == nil {
		t.Fatal("partial dynamic controller accepted")
	}
	if _, err := NewStateSpace(mat.New(2, 3), mat.New(2, 1), mat.New(1, 2), mat.Eye(1)); err == nil {
		t.Fatal("non-square Ac accepted")
	}
	if _, err := NewStateSpace(mat.Eye(2), mat.New(3, 1), mat.New(1, 2), mat.Eye(1)); err == nil {
		t.Fatal("Bc row mismatch accepted")
	}
	if _, err := NewStateSpace(mat.Eye(2), mat.New(2, 1), mat.New(1, 3), mat.Eye(1)); err == nil {
		t.Fatal("Cc col mismatch accepted")
	}
	if _, err := NewStateSpace(mat.Eye(2), mat.New(2, 1), mat.New(2, 2), mat.Eye(1)); err == nil {
		t.Fatal("Cc/Dc output mismatch accepted")
	}
	if _, err := NewStateSpace(mat.Eye(2), mat.New(2, 2), mat.New(1, 2), mat.Eye(1)); err == nil {
		t.Fatal("Bc/Dc input mismatch accepted")
	}
	c, err := NewStateSpace(mat.Eye(2), mat.New(2, 1), mat.New(1, 2), mat.Eye(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.StateDim() != 2 || c.InputDim() != 1 || c.OutputDim() != 1 {
		t.Fatalf("dims = (%d,%d,%d)", c.StateDim(), c.InputDim(), c.OutputDim())
	}
}

func TestStaticControllerStep(t *testing.T) {
	c := Static(mat.FromRows([][]float64{{2, -1}}))
	z, u := c.Step(nil, []float64{3, 1})
	if z != nil {
		t.Fatal("static controller returned state")
	}
	if len(u) != 1 || u[0] != 5 {
		t.Fatalf("u = %v", u)
	}
}

func TestDynamicControllerStep(t *testing.T) {
	// z' = 0.5 z + e; u = 2 z + 3 e
	c, err := NewStateSpace(
		mat.FromRows([][]float64{{0.5}}),
		mat.FromRows([][]float64{{1}}),
		mat.FromRows([][]float64{{2}}),
		mat.FromRows([][]float64{{3}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	z, u := c.Step([]float64{4}, []float64{1})
	if u[0] != 2*4+3*1 {
		t.Fatalf("u = %v", u)
	}
	if z[0] != 0.5*4+1 {
		t.Fatalf("z = %v", z)
	}
}

func TestSolveDAREScalarGoldenRatio(t *testing.T) {
	// a=b=q=r=1: P² - P - 1 = 0 → P = (1+√5)/2.
	one := mat.Eye(1)
	p, err := SolveDARE(one, one, one, one)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + math.Sqrt(5)) / 2
	if math.Abs(p.At(0, 0)-want) > 1e-9 {
		t.Fatalf("P = %v, want %v", p.At(0, 0), want)
	}
}

func TestSolveDAREResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		b := mat.New(n, 1)
		for i := 0; i < n; i++ {
			b.Set(i, 0, rng.NormFloat64()+0.1)
		}
		q := mat.Eye(n)
		r := mat.Eye(1)
		p, err := SolveDARE(a, b, q, r)
		if err != nil {
			return true // some random draws are not stabilizable
		}
		return DAREResidual(a, b, q, r, p) < 1e-7*(1+mat.MaxAbs(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDAREDimChecks(t *testing.T) {
	if _, err := SolveDARE(mat.New(2, 3), mat.New(2, 1), mat.Eye(2), mat.Eye(1)); err == nil {
		t.Fatal("non-square A accepted")
	}
	if _, err := SolveDARE(mat.Eye(2), mat.New(2, 1), mat.Eye(3), mat.Eye(1)); err == nil {
		t.Fatal("bad Q accepted")
	}
	if _, err := SolveDARE(mat.Eye(2), mat.New(2, 1), mat.Eye(2), mat.Eye(2)); err == nil {
		t.Fatal("bad R accepted")
	}
}

func TestDLQRStabilizesUnstablePlant(t *testing.T) {
	// Unstable discrete plant.
	phi := mat.FromRows([][]float64{{1.2, 0.1}, {0, 0.9}})
	gamma := mat.ColVec(0, 1)
	k, p, err := DLQR(phi, gamma, mat.Eye(2), mat.Eye(1))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.IsPosDef(p) {
		t.Fatal("Riccati solution not PD")
	}
	cl := mat.Sub(phi, mat.Mul(gamma, k))
	stable, err := mat.IsSchurStable(cl)
	if err != nil || !stable {
		t.Fatalf("closed loop unstable, K = %v", k)
	}
}

func testPlant(t *testing.T) *lti.System {
	t.Helper()
	// Lightly damped unstable second-order plant.
	return lti.MustSystem(
		mat.FromRows([][]float64{{0, 1}, {2, -0.5}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
}

func TestDelayLQRClosedLoopStable(t *testing.T) {
	sys := testPlant(t)
	w := LQRWeights{Q: mat.Eye(2), R: mat.Eye(1)}
	for _, h := range []float64{0.05, 0.1, 0.3} {
		g, err := DelayLQR(sys, w, h)
		if err != nil {
			t.Fatalf("h=%v: %v", h, err)
		}
		if g.H != h {
			t.Fatalf("gain interval = %v", g.H)
		}
		// Closed loop of the augmented design plant.
		d, _ := sys.Discretize(h)
		aAug := mat.Block([][]*mat.Dense{
			{d.Phi, d.Gamma},
			{mat.New(1, 2), mat.New(1, 1)},
		})
		bAug := mat.VStack(mat.New(2, 1), mat.Eye(1))
		kFull := mat.HStack(g.Kx, g.Ku)
		cl := mat.Sub(aAug, mat.Mul(bAug, kFull))
		stable, err := mat.IsSchurStable(cl)
		if err != nil || !stable {
			t.Fatalf("h=%v: delay-augmented closed loop unstable", h)
		}
	}
}

func TestDelayLQRControllerRealizesGains(t *testing.T) {
	sys := testPlant(t)
	g, err := DelayLQR(sys, LQRWeights{Q: mat.Eye(2), R: mat.Eye(1)}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Controller()
	// With e = -x, the command must equal -Kx x - Ku u_prev.
	x := []float64{0.7, -0.3}
	uprev := 0.25
	e := []float64{-x[0], -x[1]}
	z, u := c.Step([]float64{uprev}, e)
	want := -(g.Kx.At(0, 0)*x[0] + g.Kx.At(0, 1)*x[1]) - g.Ku.At(0, 0)*uprev
	if math.Abs(u[0]-want) > 1e-12 {
		t.Fatalf("u = %v, want %v", u[0], want)
	}
	// Internal state must track the issued command.
	if math.Abs(z[0]-u[0]) > 1e-12 {
		t.Fatalf("z = %v, want %v", z[0], u[0])
	}
}

func TestPeriodLQRStatic(t *testing.T) {
	sys := testPlant(t)
	c, err := PeriodLQR(sys, LQRWeights{Q: mat.Eye(2), R: mat.Eye(1)}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.StateDim() != 0 {
		t.Fatal("PeriodLQR should be static")
	}
	// u = K e with e = -x must stabilize the no-delay loop: Phi - Gamma K.
	d, _ := sys.Discretize(0.1)
	cl := mat.Sub(d.Phi, mat.Mul(d.Gamma, c.Dc))
	stable, err := mat.IsSchurStable(cl)
	if err != nil || !stable {
		t.Fatal("PeriodLQR loop unstable")
	}
}

func TestLQRWeightsValidate(t *testing.T) {
	sys := testPlant(t)
	if err := (LQRWeights{Q: mat.Eye(2), R: mat.Eye(1)}).Validate(sys); err != nil {
		t.Fatal(err)
	}
	if err := (LQRWeights{Q: mat.Eye(3), R: mat.Eye(1)}).Validate(sys); err == nil {
		t.Fatal("wrong Q accepted")
	}
	if err := (LQRWeights{Q: mat.Eye(2), R: mat.Diag(-1)}).Validate(sys); err == nil {
		t.Fatal("indefinite R accepted")
	}
	if err := (LQRWeights{Q: mat.Diag(1, -1), R: mat.Eye(1)}).Validate(sys); err == nil {
		t.Fatal("indefinite Q accepted")
	}
}

func TestKalmanPredictorStableErrorDynamics(t *testing.T) {
	sys := testPlant(t)
	d, _ := sys.Discretize(0.1)
	nw := NoiseWeights{Rw: mat.Scale(0.01, mat.Eye(2)), Rv: mat.Diag(0.1)}
	l, p, err := KalmanPredictor(d.Phi, d.C, nw)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.IsPosDef(p) {
		t.Fatal("filter covariance not PD")
	}
	errDyn := mat.Sub(d.Phi, mat.Mul(l, d.C))
	stable, err := mat.IsSchurStable(errDyn)
	if err != nil || !stable {
		t.Fatal("estimator error dynamics unstable")
	}
}

func TestKalmanPredictorDimChecks(t *testing.T) {
	sys := testPlant(t)
	d, _ := sys.Discretize(0.1)
	if _, _, err := KalmanPredictor(d.Phi, d.C, NoiseWeights{Rw: mat.Eye(3), Rv: mat.Eye(1)}); err == nil {
		t.Fatal("bad Rw accepted")
	}
	if _, _, err := KalmanPredictor(d.Phi, d.C, NoiseWeights{Rw: mat.Eye(2), Rv: mat.Eye(2)}); err == nil {
		t.Fatal("bad Rv accepted")
	}
}

func TestLQGDimensions(t *testing.T) {
	sys := testPlant(t)
	c, err := LQG(sys, LQRWeights{Q: mat.Eye(2), R: mat.Eye(1)},
		NoiseWeights{Rw: mat.Scale(0.01, mat.Eye(2)), Rv: mat.Diag(0.1)}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// State = [x̂ (2); u_prev (1)].
	if c.StateDim() != 3 || c.InputDim() != 1 || c.OutputDim() != 1 {
		t.Fatalf("LQG dims = (%d,%d,%d)", c.StateDim(), c.InputDim(), c.OutputDim())
	}
}

func TestLQGFullInfoMatchesDelayLQR(t *testing.T) {
	sys := testPlant(t)
	w := LQRWeights{Q: mat.Eye(2), R: mat.Eye(1)}
	a, err := LQGFullInfo(sys, w, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DelayLQR(sys, w, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Controller()
	if !a.Dc.EqualApprox(b.Dc, 1e-14) || !a.Ac.EqualApprox(b.Ac, 1e-14) {
		t.Fatal("LQGFullInfo differs from DelayLQR controller")
	}
}

func stableFirstOrder(t *testing.T) *lti.System {
	t.Helper()
	return lti.MustSystem(
		mat.FromRows([][]float64{{-1}}),
		mat.FromRows([][]float64{{1}}),
		mat.Eye(1),
	)
}

func TestTunePIFirstOrder(t *testing.T) {
	sys := stableFirstOrder(t)
	g, err := TunePI(sys, 0.1, PITuneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.H != 0.1 {
		t.Fatalf("H = %v", g.H)
	}
	// The tuned loop must settle: simulate and check the final error.
	d, _ := sys.Discretize(0.1)
	cost := piStepCost(d, g, 300)
	if math.IsInf(cost, 1) {
		t.Fatal("tuned gains diverge")
	}
	// Tuned gains must strictly beat the open loop (KP = KI = 0 leaves
	// the stable plant to decay on its own).
	open := piStepCost(d, PIGains{H: 0.1}, 300)
	if cost >= open {
		t.Fatalf("tuned cost %v not better than open loop %v", cost, open)
	}
}

func TestTunePIRejectsMIMO(t *testing.T) {
	sys := lti.MustSystem(mat.Eye(2), mat.Eye(2), mat.Eye(2))
	if _, err := TunePI(sys, 0.1, PITuneOptions{}); err == nil {
		t.Fatal("MIMO plant accepted by PI tuner")
	}
}

func TestPIControllerForm(t *testing.T) {
	g := PIGains{KP: 2, KI: 3, H: 0.5}
	c := g.Controller()
	// z' = z + h e; u = KP e + KI z.
	z, u := c.Step([]float64{4}, []float64{1})
	if math.Abs(u[0]-(2*1+3*4)) > 1e-15 {
		t.Fatalf("u = %v", u[0])
	}
	if math.Abs(z[0]-(4+0.5*1)) > 1e-15 {
		t.Fatalf("z = %v", z[0])
	}
}

func TestPiStepCostPenalizesUnstable(t *testing.T) {
	sys := stableFirstOrder(t)
	d, _ := sys.Discretize(0.1)
	// Ridiculous positive-feedback gains must be Inf.
	if c := piStepCost(d, PIGains{KP: -500, KI: -500, H: 0.1}, 300); !math.IsInf(c, 1) {
		t.Fatalf("unstable candidate cost = %v, want +Inf", c)
	}
}

func TestStepIntoMatchesStep(t *testing.T) {
	// The allocation-free variant must agree with Step exactly.
	rng := rand.New(rand.NewSource(13))
	c, err := NewStateSpace(
		randomDense(rng, 3, 3), randomDense(rng, 3, 2),
		randomDense(rng, 2, 3), randomDense(rng, 2, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	z := []float64{0.3, -0.7, 1.1}
	e := []float64{0.5, -0.2}
	zWant, uWant := c.Step(z, e)
	zGot := make([]float64, 3)
	uGot := make([]float64, 2)
	c.StepInto(zGot, uGot, z, e)
	for i := range zWant {
		if math.Abs(zGot[i]-zWant[i]) > 1e-15 {
			t.Fatalf("z: %v vs %v", zGot, zWant)
		}
	}
	for i := range uWant {
		if math.Abs(uGot[i]-uWant[i]) > 1e-15 {
			t.Fatalf("u: %v vs %v", uGot, uWant)
		}
	}
	// Static controller path.
	s := Static(randomDense(rng, 2, 2))
	_, uw := s.Step(nil, e)
	ug := make([]float64, 2)
	s.StepInto(nil, ug, nil, e)
	for i := range uw {
		if ug[i] != uw[i] {
			t.Fatalf("static: %v vs %v", ug, uw)
		}
	}
}

func TestStepIntoValidation(t *testing.T) {
	c, err := NewStateSpace(mat.Eye(2), mat.New(2, 1), mat.New(1, 2), mat.Eye(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short znext accepted")
		}
	}()
	c.StepInto(make([]float64, 1), make([]float64, 1), make([]float64, 2), []float64{1})
}
