package control

import (
	"fmt"
	"math"
	"math/cmplx"

	"adaptivertc/internal/mat"
)

// PolePlace computes the state-feedback gain K (1×n) such that the
// closed loop A - B K has the desired eigenvalues, for a single-input
// controllable pair, via Ackermann's formula
//
//	K = [0 … 0 1] 𝒞⁻¹ φ_d(A)
//
// where 𝒞 is the controllability matrix and φ_d the desired
// characteristic polynomial. The desired poles must be closed under
// complex conjugation (so that φ_d has real coefficients). Used both as
// a design tool and as an independent cross-check of the Riccati-based
// designs in the tests.
func PolePlace(a, b *mat.Dense, poles []complex128) (*mat.Dense, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("control: PolePlace needs square A, got %d×%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	if b.Rows() != n || b.Cols() != 1 {
		return nil, fmt.Errorf("control: PolePlace needs single-input B (%d×1), got %d×%d", n, b.Rows(), b.Cols())
	}
	if len(poles) != n {
		return nil, fmt.Errorf("control: %d desired poles for an order-%d system", len(poles), n)
	}
	coeffs, err := realPolyFromRoots(poles)
	if err != nil {
		return nil, err
	}
	// φ_d(A) = Aⁿ + c_{n-1} A^{n-1} + … + c₀ I  (coeffs[i] multiplies Aⁱ).
	phi := mat.New(n, n)
	power := mat.Eye(n)
	for i := 0; i <= n; i++ {
		mat.AddInPlace(phi, mat.Scale(coeffs[i], power))
		if i < n {
			power = mat.Mul(power, a)
		}
	}
	// Controllability matrix and its last inverse row.
	ctrb := b.Clone()
	cur := b.Clone()
	for i := 1; i < n; i++ {
		cur = mat.Mul(a, cur)
		ctrb = mat.HStack(ctrb, cur)
	}
	en := mat.New(1, n)
	en.Set(0, n-1, 1)
	// row = en 𝒞⁻¹  ⇔  𝒞ᵀ rowᵀ = enᵀ.
	rowT, err := mat.Solve(ctrb.T(), en.T())
	if err != nil {
		return nil, fmt.Errorf("control: pair (A, B) is not controllable: %w", err)
	}
	return mat.Mul(rowT.T(), phi), nil
}

// realPolyFromRoots expands Π (x - rᵢ) into real monomial coefficients
// (index i multiplies xⁱ; the leading coefficient is 1). It fails when
// the root set is not closed under conjugation.
func realPolyFromRoots(roots []complex128) ([]float64, error) {
	n := len(roots)
	// Verify conjugate closure.
	used := make([]bool, n)
	for i, r := range roots {
		//lint:ignore floatcompare classifying caller-specified poles: a real pole is one whose imaginary part is exactly zero
		if used[i] || imag(r) == 0 {
			continue
		}
		found := false
		for j := i + 1; j < n; j++ {
			if !used[j] && cmplx.Abs(roots[j]-cmplx.Conj(r)) < 1e-9*(1+cmplx.Abs(r)) {
				used[i], used[j] = true, true
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("control: pole %v lacks its complex conjugate", r)
		}
	}
	coeffs := make([]complex128, n+1)
	coeffs[0] = 1
	deg := 0
	for _, r := range roots {
		// poly *= (x - r)
		next := make([]complex128, deg+2)
		for i := 0; i <= deg; i++ {
			next[i+1] += coeffs[i]
			next[i] -= coeffs[i] * r
		}
		copy(coeffs, next)
		deg++
	}
	out := make([]float64, n+1)
	for i, c := range coeffs {
		if math.Abs(imag(c)) > 1e-8*(1+cmplx.Abs(c)) {
			return nil, fmt.Errorf("control: non-real polynomial coefficient %v", c)
		}
		out[i] = real(c)
	}
	return out, nil
}
