package control

import (
	"math"
	"math/rand"
	"testing"

	"adaptivertc/internal/mat"
)

// stableRandom returns a random Schur-stable (A, B, C).
func stableRandom(rng *rand.Rand, n, m, p int) (*mat.Dense, *mat.Dense, *mat.Dense) {
	a := randomDense(rng, n, n)
	if rho, err := mat.SpectralRadius(a); err == nil && rho > 0 {
		a = mat.Scale(0.75/rho, a)
	}
	return a, randomDense(rng, n, m), randomDense(rng, p, n)
}

func TestBalancedTruncationValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b, c := stableRandom(rng, 4, 1, 1)
	if _, _, _, _, err := BalancedTruncation(a, b, c, 0); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, _, _, _, err := BalancedTruncation(a, b, c, 4); err == nil {
		t.Fatal("order = n accepted")
	}
	if _, _, _, _, err := BalancedTruncation(mat.Diag(1.2, 0.5), mat.ColVec(1, 1), mat.RowVec(1, 1), 1); err == nil {
		t.Fatal("unstable system accepted")
	}
}

func TestBalancedTruncationBalancesGramians(t *testing.T) {
	// The truncated subsystem's Gramians equal the leading HSV block up
	// to corrections of the discarded tail, so use a system whose tail
	// is weak and scale tolerances by it.
	a := mat.BlockDiag(mat.Diag(0.9, 0.7, -0.6), mat.Diag(0.05, -0.03))
	b := mat.VStack(mat.ColVec(1, 0.8, 0.6), mat.ColVec(0.01, 0.02))
	c := mat.HStack(mat.RowVec(1, -0.7, 0.5), mat.RowVec(0.02, 0.01))
	ar, br, cr, discarded, err := BalancedTruncation(a, b, c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Rows() != 3 || br.Rows() != 3 || cr.Cols() != 3 {
		t.Fatalf("reduced dims: A %dx%d", ar.Rows(), ar.Cols())
	}
	if len(discarded) != 2 {
		t.Fatalf("discarded = %v", discarded)
	}
	stable, err := mat.IsSchurStable(ar)
	if err != nil || !stable {
		t.Fatal("reduced system unstable (balanced truncation preserves stability)")
	}
	tail := 0.0
	for _, s := range discarded {
		tail += s
	}
	wc, err := ControllabilityGramian(ar, br)
	if err != nil {
		t.Fatal(err)
	}
	wo, err := ObservabilityGramian(ar, cr)
	if err != nil {
		t.Fatal(err)
	}
	hsvFull, err := HankelSingularValues(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	tol := 10*tail + 1e-9
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = hsvFull[i]
			}
			if math.Abs(wc.At(i, j)-want) > tol*(1+want) {
				t.Fatalf("Wc not balanced: %v (tol %v)", wc, tol)
			}
			if math.Abs(wo.At(i, j)-want) > tol*(1+want) {
				t.Fatalf("Wo not balanced: %v (tol %v)", wo, tol)
			}
		}
	}
}

func TestBalancedTruncationPreservesDominantResponse(t *testing.T) {
	// A system with one dominant mode and tiny parasitic modes: the
	// order-1 reduction must track the impulse response closely.
	a := mat.BlockDiag(mat.Diag(0.9), mat.Diag(0.1, -0.05))
	b := mat.ColVec(1, 0.01, 0.02)
	c := mat.RowVec(1, 0.02, 0.01)
	ar, br, cr, discarded, err := BalancedTruncation(a, b, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Discarded HSVs are tiny by construction.
	for _, s := range discarded {
		if s > 1e-2 {
			t.Fatalf("unexpectedly large discarded HSV %v", s)
		}
	}
	// Impulse responses match to within the 2·Σ discarded bound.
	bound := 0.0
	for _, s := range discarded {
		bound += 2 * s
	}
	gFull := b.Clone()
	gRed := br.Clone()
	maxErr := 0.0
	for k := 0; k < 100; k++ {
		yF := mat.Mul(c, gFull).At(0, 0)
		yR := mat.Mul(cr, gRed).At(0, 0)
		if e := math.Abs(yF - yR); e > maxErr {
			maxErr = e
		}
		gFull = mat.Mul(a, gFull)
		gRed = mat.Mul(ar, gRed)
	}
	if maxErr > bound+1e-9 {
		t.Fatalf("impulse error %v exceeds HSV bound %v", maxErr, bound)
	}
}

func TestBalancedTruncationH2ErrorSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b, c := stableRandom(rng, 6, 1, 1)
	hsv, err := HankelSingularValues(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	// Reduce by one state: the H2 norm changes by a bounded amount.
	ar, br, cr, _, err := BalancedTruncation(a, b, c, 5)
	if err != nil {
		t.Fatal(err)
	}
	h2Full, err := H2NormDiscrete(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	h2Red, err := H2NormDiscrete(ar, br, cr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h2Full-h2Red) > 4*hsv[5]+1e-9 {
		t.Fatalf("H2 changed by %v, tail HSV %v", math.Abs(h2Full-h2Red), hsv[5])
	}
}
