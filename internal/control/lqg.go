package control

import (
	"fmt"

	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
)

// LQG designs the output-feedback Linear Quadratic Gaussian compensator
// that is optimal for input-output interval h in the paper's execution
// model: a steady-state Kalman predictor estimates the plant state from
// the measurement sampled at each release, and the delay-aware LQR
// gains act on the estimate. The controller state is z = [x̂; u_prev]
// where u_prev is the command currently applied to the plant.
//
// In the error convention (input e[k] = r - y[k], r = 0 for analysis):
//
//	x̂[k+1]    = (Phi - L C) x̂[k] + Gamma u_prev[k] - L e[k]
//	u_prev[k+1] = -Kx x̂[k] - Ku u_prev[k]
//	u[k+1]      = -Kx x̂[k] - Ku u_prev[k]
//
// This is exactly the paper's "if the state is not measurable, an
// observer is added" construction (§IV-B): Cc carries the regulator
// gains acting on the estimate, and the controller state reflects the
// observer behaviour.
func LQG(sys *lti.System, w LQRWeights, nw NoiseWeights, h float64) (*StateSpace, error) {
	g, err := DelayLQR(sys, w, h)
	if err != nil {
		return nil, err
	}
	d, err := sys.Discretize(h)
	if err != nil {
		return nil, err
	}
	l, _, err := KalmanPredictor(d.Phi, d.C, nw)
	if err != nil {
		return nil, fmt.Errorf("control: LQG(h=%g): %w", h, err)
	}
	r := sys.InputDim()

	phiLC := mat.Sub(d.Phi, mat.Mul(l, d.C))
	ac := mat.Block([][]*mat.Dense{
		{phiLC, d.Gamma},
		{mat.Neg(g.Kx), mat.Neg(g.Ku)},
	})
	bc := mat.VStack(mat.Neg(l), mat.New(r, l.Cols()))
	cc := mat.HStack(mat.Neg(g.Kx), mat.Neg(g.Ku))
	dc := mat.New(r, l.Cols())
	return NewStateSpace(ac, bc, cc, dc)
}

// LQGFullInfo is the state-feedback specialization used when the full
// state is measurable (C = I behaviourally): no observer, the
// controller keeps only its previously issued command as state. This is
// the paper's "e[k] = x[k], Ac = Bc = Cc = 0 except the delay
// compensation" LQG variant, realized with the delay-aware gains.
func LQGFullInfo(sys *lti.System, w LQRWeights, h float64) (*StateSpace, error) {
	g, err := DelayLQR(sys, w, h)
	if err != nil {
		return nil, err
	}
	return g.Controller(), nil
}
