package control

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivertc/internal/mat"
)

func randomDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestControllabilityGramianScalar(t *testing.T) {
	// x⁺ = a x + b u: Wc = b²/(1-a²).
	a, b := 0.5, 2.0
	wc, err := ControllabilityGramian(mat.Diag(a), mat.FromRows([][]float64{{b}}))
	if err != nil {
		t.Fatal(err)
	}
	want := b * b / (1 - a*a)
	if math.Abs(wc.At(0, 0)-want) > 1e-10 {
		t.Fatalf("Wc = %v, want %v", wc.At(0, 0), want)
	}
}

func TestGramianLyapunovResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a := mat.Scale(0.4, randomDense(rng, n, n))
		b := randomDense(rng, n, 1)
		c := randomDense(rng, 1, n)
		wc, err := ControllabilityGramian(a, b)
		if errors.Is(err, ErrUnstable) {
			return true // unlucky draw; nothing to check
		}
		if err != nil {
			return false
		}
		resC := mat.Add(mat.Sub(mat.MulMany(a, wc, a.T()), wc), mat.Mul(b, b.T()))
		if mat.MaxAbs(resC) > 1e-8*(1+mat.MaxAbs(wc)) {
			return false
		}
		wo, err := ObservabilityGramian(a, c)
		if err != nil {
			return false
		}
		resO := mat.Add(mat.Sub(mat.MulMany(a.T(), wo, a), wo), mat.Mul(c.T(), c))
		return mat.MaxAbs(resO) <= 1e-8*(1+mat.MaxAbs(wo))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGramianRejectsUnstable(t *testing.T) {
	a := mat.Diag(1.1)
	if _, err := ControllabilityGramian(a, mat.Eye(1)); !errors.Is(err, ErrUnstable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ObservabilityGramian(a, mat.Eye(1)); !errors.Is(err, ErrUnstable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := H2NormDiscrete(a, mat.Eye(1), mat.Eye(1)); !errors.Is(err, ErrUnstable) {
		t.Fatalf("err = %v", err)
	}
}

func TestH2NormScalar(t *testing.T) {
	// ‖G‖₂² = c² b²/(1-a²).
	a, b, c := 0.8, 1.5, 2.0
	got, err := H2NormDiscrete(mat.Diag(a), mat.FromRows([][]float64{{b}}), mat.FromRows([][]float64{{c}}))
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(c * c * b * b / (1 - a*a))
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("H2 = %v, want %v", got, want)
	}
}

func TestH2NormMatchesImpulseEnergy(t *testing.T) {
	// ‖G‖₂² = Σ_k ‖C Aᵏ B‖F² (impulse-response energy).
	rng := rand.New(rand.NewSource(12))
	a := mat.Scale(0.3, randomDense(rng, 3, 3))
	b := randomDense(rng, 3, 2)
	c := randomDense(rng, 2, 3)
	h2, err := H2NormDiscrete(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	g := b.Clone()
	for k := 0; k < 200; k++ {
		cg := mat.Mul(c, g)
		f := mat.FroNorm(cg)
		sum += f * f
		g = mat.Mul(a, g)
	}
	if math.Abs(h2*h2-sum) > 1e-9*(1+sum) {
		t.Fatalf("H2² = %v, impulse energy = %v", h2*h2, sum)
	}
}

func TestHankelSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(rng, 3, 3)
	if rho, err := mat.SpectralRadius(a); err == nil {
		a = mat.Scale(0.7/rho, a) // guarantee Schur stability
	}
	b := randomDense(rng, 3, 1)
	c := randomDense(rng, 1, 3)
	hsv, err := HankelSingularValues(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(hsv) != 3 {
		t.Fatalf("hsv = %v", hsv)
	}
	for i := 1; i < len(hsv); i++ {
		if hsv[i] > hsv[i-1]+1e-12 {
			t.Fatalf("not sorted: %v", hsv)
		}
	}
	// Hankel singular values are similarity invariants: check under a
	// random state transform T: (TAT⁻¹, TB, CT⁻¹).
	tr := mat.Add(randomDense(rng, 3, 3), mat.Scale(4, mat.Eye(3)))
	trInv, err := mat.Inverse(tr)
	if err != nil {
		t.Fatal(err)
	}
	hsv2, err := HankelSingularValues(mat.MulMany(tr, a, trInv), mat.Mul(tr, b), mat.Mul(c, trInv))
	if err != nil {
		t.Fatal(err)
	}
	for i := range hsv {
		if math.Abs(hsv[i]-hsv2[i]) > 1e-6*(1+hsv[i]) {
			t.Fatalf("HSV not invariant: %v vs %v", hsv, hsv2)
		}
	}
}
