package control

import (
	"fmt"

	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
)

// LQI designs an integral-action (servo) variant of the delay-aware
// LQR for interval h: the design plant augments the delay state with a
// forward-Euler integral of the tracked-output error,
//
//	x[k+1]  = Φ(h) x[k] + Γ(h) u[k]
//	xi[k+1] = xi[k] + h (r_t - Ct x[k])
//
// so the resulting mode rejects constant disturbances and tracks
// constant references on y_t = Ct x with zero steady-state error — the
// MIMO counterpart of the paper's PI controller, with the same Eq. 7
// integrator-step adaptation per interval. Ct (q_t×n) selects the
// tracked outputs; Qi (q_t×q_t, PD) weights the integral states.
//
// The returned controller follows the package convention (input
// e[k] = r - x[k], full state measurement): its internal state is
// z = [u_prev; xi].
func LQI(sys *lti.System, w LQRWeights, qi, ct *mat.Dense, h float64) (*StateSpace, error) {
	if err := w.Validate(sys); err != nil {
		return nil, err
	}
	n, r := sys.StateDim(), sys.InputDim()
	if ct == nil || ct.Cols() != n {
		return nil, fmt.Errorf("control: Ct must have %d columns", n)
	}
	qt := ct.Rows()
	if qi == nil || !qi.IsSquare() || qi.Rows() != qt {
		return nil, fmt.Errorf("control: Qi must be %d×%d", qt, qt)
	}
	if !mat.IsPosDef(qi) {
		return nil, fmt.Errorf("control: Qi must be positive definite")
	}
	d, err := sys.Discretize(h)
	if err != nil {
		return nil, err
	}
	// Augmented state χ = [x; u_prev; xi].
	aAug := mat.Block([][]*mat.Dense{
		{d.Phi, d.Gamma, mat.New(n, qt)},
		{mat.New(r, n), mat.New(r, r), mat.New(r, qt)},
		{mat.Scale(-h, ct), mat.New(qt, r), mat.Eye(qt)},
	})
	bAug := mat.VStack(mat.New(n, r), mat.Eye(r), mat.New(qt, r))
	qAug := mat.BlockDiag(w.Q, w.R, qi)
	rAug := mat.New(r, r)
	p, err := SolveDARE(aAug, bAug, qAug, rAug)
	if err != nil {
		return nil, fmt.Errorf("control: LQI(h=%g): %w", h, err)
	}
	k, err := DAREGain(aAug, bAug, rAug, p)
	if err != nil {
		return nil, err
	}
	kx := k.Slice(0, r, 0, n)
	ku := k.Slice(0, r, n, n+r)
	ki := k.Slice(0, r, n+r, n+r+qt)

	// Paper-form realization with e = r_ref - x:
	//   u[k+1]   = Kx e - Ku u_prev - Ki xi
	//   u_prev⁺  = u[k+1]
	//   xi⁺      = xi + h Ct e
	ac := mat.Block([][]*mat.Dense{
		{mat.Neg(ku), mat.Neg(ki)},
		{mat.New(qt, r), mat.Eye(qt)},
	})
	bc := mat.VStack(kx, mat.Scale(h, ct))
	cc := mat.HStack(mat.Neg(ku), mat.Neg(ki))
	return NewStateSpace(ac, bc, cc, kx)
}
