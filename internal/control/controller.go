// Package control implements the controller syntheses the paper
// instantiates in its evaluation: discrete LQR via the algebraic
// Riccati equation, a delay-aware LQR for plants whose command takes a
// full inter-release interval to reach the actuator, a steady-state
// Kalman filter and the resulting LQG compensator, and a PI controller
// with gains tuned per input-output interval.
//
// Sign convention: every controller consumes the error e[k] = r - y[k]
// (negative feedback written explicitly). The paper's Eq. 8 prints the
// closed-loop matrix with positive feedback blocks, absorbing the sign
// of e into Bc and Dc; package core carries the sign explicitly when it
// assembles Omega, so the two formulations describe the same closed
// loop.
package control

import (
	"fmt"

	"adaptivertc/internal/mat"
)

// StateSpace is a discrete-time dynamic output-feedback controller in
// the paper's Eq. 6 form:
//
//	z[k+1] = Ac z[k] + Bc e[k]
//	u[k+1] = Cc z[k] + Dc e[k]
//
// where e is the tracking error and u the command that the runtime will
// apply one release interval later. A static controller has StateDim 0
// and nil Ac, Bc, Cc.
type StateSpace struct {
	Ac *mat.Dense // s×s, nil when s == 0
	Bc *mat.Dense // s×q, nil when s == 0
	Cc *mat.Dense // r×s, nil when s == 0
	Dc *mat.Dense // r×q
}

// NewStateSpace validates controller dimensions. For a static gain pass
// nil Ac, Bc, Cc.
func NewStateSpace(ac, bc, cc, dc *mat.Dense) (*StateSpace, error) {
	if dc == nil {
		return nil, fmt.Errorf("control: Dc is required")
	}
	c := &StateSpace{Ac: ac, Bc: bc, Cc: cc, Dc: dc}
	if ac == nil && bc == nil && cc == nil {
		return c, nil
	}
	if ac == nil || bc == nil || cc == nil {
		return nil, fmt.Errorf("control: Ac, Bc, Cc must be all nil or all present")
	}
	if !ac.IsSquare() {
		return nil, fmt.Errorf("control: Ac must be square, got %d×%d", ac.Rows(), ac.Cols())
	}
	s := ac.Rows()
	if bc.Rows() != s {
		return nil, fmt.Errorf("control: Bc has %d rows, want %d", bc.Rows(), s)
	}
	if cc.Cols() != s {
		return nil, fmt.Errorf("control: Cc has %d cols, want %d", cc.Cols(), s)
	}
	if cc.Rows() != dc.Rows() {
		return nil, fmt.Errorf("control: Cc has %d outputs but Dc has %d", cc.Rows(), dc.Rows())
	}
	if bc.Cols() != dc.Cols() {
		return nil, fmt.Errorf("control: Bc has %d inputs but Dc has %d", bc.Cols(), dc.Cols())
	}
	return c, nil
}

// StateDim returns s, the controller state dimension (0 for static).
func (c *StateSpace) StateDim() int {
	if c.Ac == nil {
		return 0
	}
	return c.Ac.Rows()
}

// InputDim returns q, the number of error inputs.
func (c *StateSpace) InputDim() int { return c.Dc.Cols() }

// OutputDim returns r, the number of command outputs.
func (c *StateSpace) OutputDim() int { return c.Dc.Rows() }

// Step advances the controller one job: given the current controller
// state z (len s; may be nil when s == 0) and error sample e, it
// returns the next state and the command u[k+1].
func (c *StateSpace) Step(z, e []float64) (znext, u []float64) {
	if len(e) != c.InputDim() {
		panic(fmt.Sprintf("control: Step with %d errors, want %d", len(e), c.InputDim()))
	}
	u = mat.MulVec(c.Dc, e)
	if c.StateDim() == 0 {
		return nil, u
	}
	if len(z) != c.StateDim() {
		panic(fmt.Sprintf("control: Step with %d states, want %d", len(z), c.StateDim()))
	}
	cz := mat.MulVec(c.Cc, z)
	for i := range u {
		u[i] += cz[i]
	}
	znext = mat.MulVec(c.Ac, z)
	be := mat.MulVec(c.Bc, e)
	for i := range znext {
		znext[i] += be[i]
	}
	return znext, u
}

// StepInto is the allocation-free variant of Step for runtime hot
// paths: it writes the next controller state into znext and the command
// into u. znext must not alias z; lengths must match StateDim and
// OutputDim (znext may be nil for a static controller).
func (c *StateSpace) StepInto(znext, u, z, e []float64) {
	if len(e) != c.InputDim() || len(u) != c.OutputDim() {
		panic(fmt.Sprintf("control: StepInto dims e=%d u=%d, want %d, %d", len(e), len(u), c.InputDim(), c.OutputDim()))
	}
	mat.MulVecInto(u, c.Dc, e)
	s := c.StateDim()
	if s == 0 {
		return
	}
	if len(z) != s || len(znext) != s {
		panic(fmt.Sprintf("control: StepInto states z=%d znext=%d, want %d", len(z), len(znext), s))
	}
	for i := 0; i < c.Cc.Rows(); i++ {
		acc := u[i]
		for j := 0; j < s; j++ {
			acc += c.Cc.At(i, j) * z[j]
		}
		u[i] = acc
	}
	mat.MulVecInto(znext, c.Ac, z)
	for i := 0; i < s; i++ {
		acc := znext[i]
		for j := 0; j < len(e); j++ {
			acc += c.Bc.At(i, j) * e[j]
		}
		znext[i] = acc
	}
}

// Static returns a memoryless controller u[k+1] = Dc e[k].
func Static(dc *mat.Dense) *StateSpace {
	c, err := NewStateSpace(nil, nil, nil, dc)
	if err != nil {
		panic(err)
	}
	return c
}
