package control

import (
	"fmt"

	"adaptivertc/internal/mat"
)

// NoiseWeights carries the process and measurement noise covariances
// used by the Kalman filter design. Rw (n×n) must be PSD, Rv (q×q) PD.
type NoiseWeights struct {
	Rw *mat.Dense // process noise covariance
	Rv *mat.Dense // measurement noise covariance
}

// KalmanPredictor computes the steady-state one-step predictor gain L
// for x[k+1] = Phi x[k] + Gamma u[k] + w, y = C x + v:
//
//	x̂[k+1] = Phi x̂[k] + Gamma u[k] + L (y[k] - C x̂[k])
//
// L = Phi P Cᵀ (C P Cᵀ + Rv)⁻¹ with P the stabilizing solution of the
// dual Riccati equation.
func KalmanPredictor(phi, c *mat.Dense, nw NoiseWeights) (l, p *mat.Dense, err error) {
	n := phi.Rows()
	q := c.Rows()
	if nw.Rw == nil || nw.Rw.Rows() != n || !nw.Rw.IsSquare() {
		return nil, nil, fmt.Errorf("control: Rw must be %d×%d", n, n)
	}
	if nw.Rv == nil || nw.Rv.Rows() != q || !nw.Rv.IsSquare() {
		return nil, nil, fmt.Errorf("control: Rv must be %d×%d", q, q)
	}
	// Duality: the filtering DARE is the control DARE on (Phiᵀ, Cᵀ).
	p, err = SolveDARE(phi.T(), c.T(), nw.Rw, nw.Rv)
	if err != nil {
		return nil, nil, fmt.Errorf("control: Kalman DARE: %w", err)
	}
	s := mat.Add(nw.Rv, mat.MulMany(c, p, c.T()))
	// L = Phi P Cᵀ S⁻¹ computed via Sᵀ Lᵀ = (Phi P Cᵀ)ᵀ.
	lt, err := mat.Solve(s.T(), mat.MulMany(phi, p, c.T()).T())
	if err != nil {
		return nil, nil, fmt.Errorf("control: Kalman gain solve: %w", err)
	}
	return lt.T(), p, nil
}
