package control

import (
	"errors"
	"fmt"
	"math"

	"adaptivertc/internal/mat"
)

// ErrUnstable is returned by Gramian and H2 computations on systems
// whose dynamics matrix is not Schur stable (the defining Lyapunov
// series diverges).
var ErrUnstable = errors.New("control: system is not Schur stable")

// ControllabilityGramian returns the discrete-time controllability
// Gramian Wc = Σ Aᵏ B Bᵀ (Aᵀ)ᵏ, the solution of A Wc Aᵀ - Wc + BBᵀ = 0,
// for Schur-stable A.
func ControllabilityGramian(a, b *mat.Dense) (*mat.Dense, error) {
	if ok, err := mat.IsSchurStable(a); err != nil || !ok {
		if err != nil {
			return nil, err
		}
		return nil, ErrUnstable
	}
	// AᵀXA - X + Q = 0 solves the *observability* form; transpose maps
	// the controllability equation onto it.
	return mat.SolveLyapunovDiscrete(a.T(), mat.Mul(b, b.T()))
}

// ObservabilityGramian returns Wo = Σ (Aᵀ)ᵏ CᵀC Aᵏ, the solution of
// Aᵀ Wo A - Wo + CᵀC = 0, for Schur-stable A.
func ObservabilityGramian(a, c *mat.Dense) (*mat.Dense, error) {
	if ok, err := mat.IsSchurStable(a); err != nil || !ok {
		if err != nil {
			return nil, err
		}
		return nil, ErrUnstable
	}
	return mat.SolveLyapunovDiscrete(a, mat.Mul(c.T(), c))
}

// H2NormDiscrete returns the H2 norm of the discrete-time system
// (A, B, C): ‖G‖₂ = √trace(C Wc Cᵀ). It equals the RMS output energy
// under unit white process noise — the steady-state cost surrogate used
// to compare closed-loop designs analytically.
func H2NormDiscrete(a, b, c *mat.Dense) (float64, error) {
	wc, err := ControllabilityGramian(a, b)
	if err != nil {
		return 0, err
	}
	tr := mat.MulMany(c, wc, c.T()).Trace()
	if tr < 0 {
		if tr > -1e-12 {
			tr = 0
		} else {
			return 0, fmt.Errorf("control: negative H2 trace %g (ill-conditioned Gramian)", tr)
		}
	}
	return math.Sqrt(tr), nil
}

// HankelSingularValues returns the Hankel singular values
// σᵢ = √λᵢ(Wc Wo) of a Schur-stable discrete system — the standard
// measure of state importance (used e.g. to decide how many controller
// states a reduced implementation needs).
func HankelSingularValues(a, b, c *mat.Dense) ([]float64, error) {
	wc, err := ControllabilityGramian(a, b)
	if err != nil {
		return nil, err
	}
	wo, err := ObservabilityGramian(a, c)
	if err != nil {
		return nil, err
	}
	eigs, err := mat.Eigenvalues(mat.Mul(wc, wo))
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(eigs))
	for i, l := range eigs {
		re := real(l)
		if re < 0 && re > -1e-12 {
			re = 0
		}
		if re < 0 || math.Abs(imag(l)) > 1e-8*(1+math.Abs(re)) {
			return nil, fmt.Errorf("control: Wc·Wo produced non-real eigenvalue %v", l)
		}
		out[i] = math.Sqrt(re)
	}
	// Non-increasing order.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] > out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out, nil
}
