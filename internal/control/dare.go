package control

import (
	"errors"
	"fmt"

	"adaptivertc/internal/mat"
)

// ErrDARENotConverged is returned when the Riccati iteration fails to
// reach a fixed point, which in practice indicates an unstabilizable
// pair (A, B) or an undetectable cost.
var ErrDARENotConverged = errors.New("control: DARE iteration did not converge (unstabilizable system?)")

// SolveDARE solves the discrete-time algebraic Riccati equation
//
//	P = AᵀPA - AᵀPB (R + BᵀPB)⁻¹ BᵀPA + Q
//
// for the stabilizing solution P, by the monotone fixed-point
// (Riccati difference equation) iteration started at P = Q. Q must be
// PSD. R may be merely PSD provided R + BᵀPB stays invertible along the
// iteration (this holds, e.g., for the delay-augmented problems in this
// package where the applied-input weight sits inside Q).
func SolveDARE(a, b, q, r *mat.Dense) (*mat.Dense, error) {
	n := a.Rows()
	if !a.IsSquare() || b.Rows() != n {
		return nil, fmt.Errorf("control: DARE dimension mismatch A %d×%d, B %d×%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	m := b.Cols()
	if !q.IsSquare() || q.Rows() != n {
		return nil, fmt.Errorf("control: DARE Q must be %d×%d", n, n)
	}
	if !r.IsSquare() || r.Rows() != m {
		return nil, fmt.Errorf("control: DARE R must be %d×%d", m, m)
	}

	const (
		maxIter = 200000
		tol     = 1e-13
	)
	at := a.T()
	bt := b.T()
	p := mat.Symmetrize(q)
	for iter := 0; iter < maxIter; iter++ {
		pa := mat.Mul(p, a)                     // P A
		pb := mat.Mul(p, b)                     // P B
		s := mat.Add(r, mat.Mul(bt, pb))        // R + BᵀPB
		k, err := mat.Solve(s, mat.Mul(bt, pa)) // (R+BᵀPB)⁻¹ BᵀPA
		if err != nil {
			return nil, fmt.Errorf("control: DARE inner solve: %w", err)
		}
		next := mat.Add(q, mat.Mul(at, pa))
		next = mat.Sub(next, mat.MulMany(at, pb, k))
		next = mat.Symmetrize(next)
		diff := mat.MaxAbs(mat.Sub(next, p))
		scale := 1 + mat.MaxAbs(next)
		p = next
		if diff <= tol*scale {
			return p, nil
		}
		if p.HasNaN() {
			return nil, ErrDARENotConverged
		}
	}
	return nil, ErrDARENotConverged
}

// DAREGain returns the optimal state-feedback gain
// K = (R + BᵀPB)⁻¹ BᵀPA for a DARE solution P; the optimal control is
// u = -K x.
func DAREGain(a, b, r, p *mat.Dense) (*mat.Dense, error) {
	bt := b.T()
	s := mat.Add(r, mat.MulMany(bt, p, b))
	k, err := mat.Solve(s, mat.MulMany(bt, p, a))
	if err != nil {
		return nil, fmt.Errorf("control: DARE gain solve: %w", err)
	}
	return k, nil
}

// DAREResidual returns max |AᵀPA - P - AᵀPB(R+BᵀPB)⁻¹BᵀPA + Q| for
// diagnostics and tests.
func DAREResidual(a, b, q, r, p *mat.Dense) float64 {
	bt := b.T()
	s := mat.Add(r, mat.MulMany(bt, p, b))
	k, err := mat.Solve(s, mat.MulMany(bt, p, a))
	if err != nil {
		return mat.MaxAbs(p) // grossly wrong; surfaces in tests
	}
	res := mat.Add(q, mat.MulMany(a.T(), p, a))
	res = mat.Sub(res, mat.MulMany(a.T(), p, mat.Mul(b, k)))
	res = mat.Sub(res, p)
	return mat.MaxAbs(res)
}
