package control

import (
	"fmt"
	"math"

	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
	"adaptivertc/internal/optimize"
)

// PIGains holds the proportional and integral gains of the paper's
// Eq. 7 controller for a given input-output interval h:
//
//	z[k+1] = z[k] + h·e[k]          (forward-Euler error integral)
//	u[k+1] = KP e[k] + KI z[k]
type PIGains struct {
	KP float64
	KI float64
	H  float64
}

// Controller returns the PI law as a paper-form state-space controller
// (SISO: s = q = r = 1).
func (g PIGains) Controller() *StateSpace {
	c, err := NewStateSpace(
		mat.FromRows([][]float64{{1}}),
		mat.FromRows([][]float64{{g.H}}),
		mat.FromRows([][]float64{{g.KI}}),
		mat.FromRows([][]float64{{g.KP}}),
	)
	if err != nil {
		panic(err)
	}
	return c
}

// PITuneOptions configures TunePI. Zero values select defaults.
type PITuneOptions struct {
	Horizon int       // closed-loop steps per candidate, default 300
	Starts  []PIGains // initial guesses; default is a small spread
}

// TunePI tunes (KP, KI) for a SISO plant at input-output interval h by
// minimizing the integral squared error of the nominal single-mode
// closed-loop step response (the "standard heuristic procedure" of
// §IV-B), using Nelder–Mead from several starts. Unstable candidates
// are penalized by their divergence.
func TunePI(sys *lti.System, h float64, opts PITuneOptions) (PIGains, error) {
	if sys.InputDim() != 1 || sys.OutputDim() != 1 {
		return PIGains{}, fmt.Errorf("control: TunePI requires a SISO plant, got %d inputs, %d outputs", sys.InputDim(), sys.OutputDim())
	}
	d, err := sys.Discretize(h)
	if err != nil {
		return PIGains{}, err
	}
	if opts.Horizon == 0 {
		opts.Horizon = 300
	}
	if len(opts.Starts) == 0 {
		opts.Starts = []PIGains{
			{KP: 1, KI: 0.1},
			{KP: 10, KI: 1},
			{KP: 100, KI: 10},
			{KP: -1, KI: -0.1},
			{KP: 1000, KI: 100},
		}
	}

	objective := func(x []float64) float64 {
		g := PIGains{KP: x[0], KI: x[1], H: h}
		return piStepCost(d, g, opts.Horizon)
	}
	best := PIGains{H: h}
	bestF := math.Inf(1)
	for _, s := range opts.Starts {
		res := optimize.NelderMead(objective, []float64{s.KP, s.KI}, optimize.NelderMeadOptions{MaxIter: 2000})
		if res.F < bestF {
			bestF = res.F
			best = PIGains{KP: res.X[0], KI: res.X[1], H: h}
		}
	}
	if math.IsInf(bestF, 1) {
		return PIGains{}, fmt.Errorf("control: TunePI found no stabilizing gains for h=%g", h)
	}
	return best, nil
}

// piStepCost simulates the nominal single-mode closed loop regulating a
// unit initial output deviation to zero (the protocol of the paper's
// Table I evaluation) and returns the accumulated squared sampled error
// Σ e[k]². Divergence yields +Inf.
func piStepCost(d *lti.Discrete, g PIGains, horizon int) float64 {
	n := d.Phi.Rows()
	// Least-norm initial state with unit output: x0 = Cᵀ/(CCᵀ).
	x := make([]float64, n)
	den := 0.0
	for j := 0; j < n; j++ {
		den += d.C.At(0, j) * d.C.At(0, j)
	}
	for j := 0; j < n; j++ {
		x[j] = d.C.At(0, j) / den
	}
	z := 0.0
	u := 0.0     // applied during the current interval
	unext := 0.0 // computed by the previous job, applied next
	cost := 0.0
	for k := 0; k < horizon; k++ {
		y := mat.MulVec(d.C, x)[0]
		e := -y // regulation: r = 0
		cost += e * e
		// Job k computes the command applied from the next release.
		uNew := g.KP*e + g.KI*z
		z += g.H * e
		// Plant evolves over [a_k, a_{k+1}) under the held input.
		u = unext
		unext = uNew
		xn := mat.MulVec(d.Phi, x)
		for i := range xn {
			xn[i] += d.Gamma.At(i, 0) * u
		}
		x = xn
		if math.Abs(e) > 1e6 || anyAbsOver(x, 1e9) {
			return math.Inf(1)
		}
	}
	// Require the loop to have settled; otherwise slow or oscillatory
	// candidates with a lucky truncation window would win.
	yEnd := mat.MulVec(d.C, x)[0]
	if math.Abs(yEnd) > 0.05 {
		return cost * 10
	}
	return cost
}

func anyAbsOver(xs []float64, lim float64) bool {
	for _, v := range xs {
		if math.Abs(v) > lim {
			return true
		}
	}
	return false
}
