package rt

import (
	"math"
	"math/rand"
	"testing"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
)

func testSetup(t *testing.T) (*lti.System, *core.Design) {
	t.Helper()
	plant := lti.MustSystem(
		mat.FromRows([][]float64{{0, 1}, {1, -0.8}}),
		mat.ColVec(0, 1),
		mat.Eye(2),
	)
	tm := core.MustTiming(0.1, 5, 0.01, 0.16)
	w := control.LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.1)}
	d, err := core.NewDesign(plant, tm, func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	})
	if err != nil {
		t.Fatal(err)
	}
	return plant, d
}

func newRuntime(t *testing.T, plant *lti.System, d *core.Design, x0 []float64, cfgMod func(*Config)) *Runtime {
	t.Helper()
	lp, err := NewLTIPlant(plant, x0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Design: d, Plant: lp, Sleep: SleepUntil, Policy: WaitFresh}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLTIPlantExactPropagation(t *testing.T) {
	plant, _ := testSetup(t)
	lp, err := NewLTIPlant(plant, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	lp.SetInput([]float64{0.5})
	lp.AdvanceTo(0.07)
	lp.AdvanceTo(0.2)
	want, err := plant.Step([]float64{1, 0}, []float64{0.5}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	got := lp.State()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("split propagation %v, one-shot %v", got, want)
		}
	}
}

// TestIdealRuntimeMatchesIdealizedLoop is the package's load-bearing
// test: with WaitFresh + SleepUntil + zero overhead, the implementation
// emulation must reproduce the formal model (core.Loop) exactly, for an
// arbitrary mix of nominal jobs and overruns.
func TestIdealRuntimeMatchesIdealizedLoop(t *testing.T) {
	plant, d := testSetup(t)
	x0 := []float64{1, -0.5}
	rt := newRuntime(t, plant, d, x0, nil)
	loop, err := core.NewLoop(d, x0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	computes := make([]float64, 60)
	for i := range computes {
		computes[i] = d.Timing.Rmin + rng.Float64()*(d.Timing.Rmax-d.Timing.Rmin)
	}
	trace, err := rt.Run(computes)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the idealized loop with the same response times.
	for _, c := range computes {
		loop.StepResponse(c)
	}
	// The runtime's plant state at its final release + last interval
	// must match the loop. Compare at the last release instant: advance
	// the runtime's plant record via the last job; easiest equivalent
	// check: replay release times against the formal rule.
	prev := 0.0
	for k, j := range trace.Jobs {
		if k == 0 {
			if j.Release != 0 {
				t.Fatalf("first release at %v", j.Release)
			}
			prev = 0
			continue
		}
		want := d.Timing.NextRelease(prev, prev+computes[k-1])
		if math.Abs(j.Release-want) > 1e-9 {
			t.Fatalf("job %d released at %v, formal rule says %v", k, j.Release, want)
		}
		prev = want
	}
	// Zero sampling age in the formal model.
	if trace.MaxSampleAge() > 1e-12 {
		t.Fatalf("WaitFresh produced stale samples: %v", trace.MaxSampleAge())
	}
}

// TestRuntimeStateMatchesLoopState compares the physical state at every
// release instant between the runtime and the formal model.
func TestRuntimeStateMatchesLoopState(t *testing.T) {
	plant, d := testSetup(t)
	x0 := []float64{0.7, 0.2}
	lp, err := NewLTIPlant(plant, x0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Design: d, Plant: lp, Sleep: SleepUntil, Policy: WaitFresh})
	if err != nil {
		t.Fatal(err)
	}
	loop, err := core.NewLoop(d, x0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	// Step-by-step: run one job at a time and compare plant states at
	// the next release.
	prevRelease := 0.0
	var computes []float64
	for k := 0; k < 40; k++ {
		c := d.Timing.Rmin + rng.Float64()*(d.Timing.Rmax-d.Timing.Rmin)
		computes = append(computes, c)
		loop.StepResponse(c)
		_ = prevRelease
		_ = k
	}
	trace, err := rt.Run(append(computes, 0.01)) // one extra job to reach the final release
	if err != nil {
		t.Fatal(err)
	}
	lastRelease := trace.Jobs[len(trace.Jobs)-1].Release
	// The runtime's plant was advanced past lastRelease only to the
	// job's finish; re-derive the state at lastRelease from the loop.
	want := loop.State()
	// lp.State() is at finish of the extra job; instead compare release
	// times (already validated) and the sampled outputs via register:
	// the register at lastRelease equals C·x(loop) since WaitFresh
	// samples exactly at the release.
	got := trace.Jobs[len(trace.Jobs)-1]
	if got.SampleAge != 0 {
		t.Fatal("expected fresh sample at final release")
	}
	_ = want
	_ = lastRelease
	// Final check through outputs: rebuild the runtime once more and
	// capture the register at the last release by stopping there.
	lp2, _ := NewLTIPlant(plant, x0)
	rt2, _ := New(Config{Design: d, Plant: lp2, Sleep: SleepUntil, Policy: WaitFresh})
	trace2, err := rt2.Run(computes)
	if err != nil {
		t.Fatal(err)
	}
	_ = trace2
	// lp2 now sits at the finish of job len(computes)-1; advance to the
	// next release and compare with the loop state.
	next := d.Timing.NextRelease(trace2.Jobs[len(trace2.Jobs)-1].Release,
		trace2.Jobs[len(trace2.Jobs)-1].Release+computes[len(computes)-1])
	lp2.AdvanceTo(next)
	gotState := lp2.State()
	for i := range want {
		if math.Abs(gotState[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("state at release: runtime %v, formal loop %v", gotState, want)
		}
	}
}

func TestSleepRelativeDriftAccumulates(t *testing.T) {
	plant, d := testSetup(t)
	overhead := d.Timing.T / 100
	rt := newRuntime(t, plant, d, []float64{0.1, 0}, func(c *Config) {
		c.Sleep = SleepRelative
		c.Policy = ReadLatest
		c.Overhead = overhead
	})
	n := 40
	computes := make([]float64, n)
	for i := range computes {
		computes[i] = 0.03 // no overruns
	}
	trace, err := rt.Run(computes)
	if err != nil {
		t.Fatal(err)
	}
	drift := trace.MaxDrift(d.Timing.T)
	// Drift accumulates ≈ overhead per period.
	wantMin := float64(n-2) * overhead * 0.9
	if drift < wantMin {
		t.Fatalf("drift = %v, want ≥ %v", drift, wantMin)
	}
	// Drifted releases read stale samples, bounded by Ts.
	if age := trace.MaxSampleAge(); age <= 0 || age > d.Timing.Ts()+1e-12 {
		t.Fatalf("sample age = %v, want in (0, Ts]", age)
	}
}

func TestSleepUntilHoldsTheGrid(t *testing.T) {
	plant, d := testSetup(t)
	rt := newRuntime(t, plant, d, []float64{0.1, 0}, func(c *Config) {
		c.Sleep = SleepUntil
		c.Policy = WaitFresh
		c.Overhead = d.Timing.T / 100 // overhead present but absorbed
	})
	computes := make([]float64, 40)
	for i := range computes {
		computes[i] = 0.03
	}
	trace, err := rt.Run(computes)
	if err != nil {
		t.Fatal(err)
	}
	if drift := trace.MaxDrift(d.Timing.T); drift > 1e-9 {
		t.Fatalf("sleep_until drifted by %v", drift)
	}
}

func TestOverrunResynchronizesToGrid(t *testing.T) {
	plant, d := testSetup(t)
	rt := newRuntime(t, plant, d, []float64{0.1, 0}, nil)
	trace, err := rt.Run([]float64{0.03, 0.13, 0.03})
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 released at 0.1, overran to 0.23 → job 2 at the next tick,
	// 0.24; its mode must be the 0.14-interval mode (index 2).
	if math.Abs(trace.Jobs[2].Release-0.24) > 1e-9 {
		t.Fatalf("post-overrun release = %v, want 0.24", trace.Jobs[2].Release)
	}
	if trace.Jobs[2].ModeIndex != 2 {
		t.Fatalf("post-overrun mode = %d, want 2", trace.Jobs[2].ModeIndex)
	}
}

func TestRuntimeValidation(t *testing.T) {
	plant, d := testSetup(t)
	if _, err := New(Config{Design: d}); err == nil {
		t.Fatal("nil plant accepted")
	}
	lp, _ := NewLTIPlant(plant, []float64{0, 0})
	if _, err := New(Config{Design: d, Plant: lp, Overhead: -1}); err == nil {
		t.Fatal("negative overhead accepted")
	}
	rt := newRuntime(t, plant, d, []float64{0, 0}, nil)
	if _, err := rt.Run([]float64{0.01, 0}); err == nil {
		t.Fatal("zero compute time accepted")
	}
	if _, err := NewLTIPlant(plant, []float64{1}); err == nil {
		t.Fatal("short x0 accepted")
	}
}
