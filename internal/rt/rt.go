// Package rt emulates the paper's §IV implementation listing at the
// level an embedded engineer would deploy it:
//
//	while(true) {
//	  if (new_data) {          // fresh sensor sample in the register
//	    t_start = get_time();
//	    y = read_data(); u = compute_ctl(y, h);
//	    h = get_time() - t_start;
//	    if (h < period) sleep(period - h);
//	  }
//	}
//
// The formal model of §IV-A idealizes this loop: releases coincide with
// sensor ticks and samples are taken exactly at the release. The
// listing differs in two practically important ways the paper remarks
// on: a relative sleep(period - h) accumulates drift when each
// iteration carries overhead ("the sleep primitive is not ideal …
// sleep_until would be a better choice"), and read_data() returns the
// *latest stored* register value, which can be up to Ts stale. This
// package makes those fidelity gaps measurable: a virtual-time runtime
// with a sensor register updated on the Ts grid, selectable sleep
// primitive, release policy and per-iteration overhead — validated to
// match the idealized core.Loop exactly when configured ideally.
package rt

import (
	"fmt"
	"math"

	"adaptivertc/internal/core"
	"adaptivertc/internal/lti"
)

// Plant is the physical system the runtime acts on: it evolves in
// continuous time under a zero-order-held input.
type Plant interface {
	// AdvanceTo moves the plant to absolute time t (monotone calls).
	AdvanceTo(t float64)
	// SetInput latches a new actuator value (takes effect immediately).
	SetInput(u []float64)
	// Output returns y at the plant's current time.
	Output() []float64
	// State returns the current state (diagnostics).
	State() []float64
}

// LTIPlant implements Plant for a continuous LTI system using exact
// ZOH propagation between events.
type LTIPlant struct {
	sys *lti.System
	x   []float64
	u   []float64
	t   float64
}

// NewLTIPlant wraps a continuous plant starting at x0 with zero input.
func NewLTIPlant(sys *lti.System, x0 []float64) (*LTIPlant, error) {
	if len(x0) != sys.StateDim() {
		return nil, fmt.Errorf("rt: x0 has %d entries, plant has %d states", len(x0), sys.StateDim())
	}
	return &LTIPlant{
		sys: sys,
		x:   append([]float64(nil), x0...),
		u:   make([]float64, sys.InputDim()),
	}, nil
}

// AdvanceTo implements Plant.
func (p *LTIPlant) AdvanceTo(t float64) {
	// Steps within ±timeJitterEps of zero are round-off from interval
	// arithmetic on release instants, not real time advances.
	const timeJitterEps = 1e-12
	dt := t - p.t
	if dt < 0 {
		if dt > -timeJitterEps {
			return // round-off; stay put
		}
		panic(fmt.Sprintf("rt: time moved backwards (%g -> %g)", p.t, t))
	}
	if dt < timeJitterEps {
		return
	}
	x, err := p.sys.Step(p.x, p.u, dt)
	if err != nil {
		panic(err) // dt > 0 by construction
	}
	p.x = x
	p.t = t
}

// SetInput implements Plant.
func (p *LTIPlant) SetInput(u []float64) {
	if len(u) != len(p.u) {
		panic(fmt.Sprintf("rt: input has %d entries, want %d", len(u), len(p.u)))
	}
	copy(p.u, u)
}

// Output implements Plant.
func (p *LTIPlant) Output() []float64 { return p.sys.Output(p.x) }

// State implements Plant.
func (p *LTIPlant) State() []float64 { return append([]float64(nil), p.x...) }

// SleepMode selects the timer primitive of the control loop.
type SleepMode int

const (
	// SleepUntil targets absolute instants: releases stay on the
	// nominal grid (the primitive the paper recommends).
	SleepUntil SleepMode = iota
	// SleepRelative emulates sleep(period - h): each iteration's
	// overhead pushes the next release later, accumulating drift (the
	// primitive "extremely common … in industrial and off-the-shelf
	// controllers").
	SleepRelative
)

// ReleasePolicy selects how a job release relates to sensor ticks.
type ReleasePolicy int

const (
	// WaitFresh delays the release to the next sensor tick and samples
	// there — the formal model of §IV-A (zero sampling age).
	WaitFresh ReleasePolicy = iota
	// ReadLatest releases as soon as the loop is ready (provided the
	// register holds a sample it has not consumed yet) and reads the
	// newest stored value, which may be up to Ts old — the listing's
	// behaviour.
	ReadLatest
)

// Config assembles a runtime.
type Config struct {
	Design   *core.Design
	Plant    Plant
	Sleep    SleepMode
	Policy   ReleasePolicy
	Overhead float64 // per-iteration loop overhead added after the sleep [s]
}

// JobRecord captures one executed control job.
type JobRecord struct {
	Index     int
	Release   float64 // read_data instant
	SampleAge float64 // age of the register value consumed
	Compute   float64 // execution duration of this job
	Finish    float64
	ModeIndex int // controller mode selected (from the previous interval)
}

// Trace is the outcome of a run.
type Trace struct {
	Jobs       []JobRecord
	FinalState []float64
	FinalTime  float64
}

// MaxDrift returns the largest deviation of a release from the nominal
// grid k·T anchored at the first release. Only meaningful for runs
// without overruns (the drift experiment's setting).
func (tr *Trace) MaxDrift(period float64) float64 {
	if len(tr.Jobs) == 0 {
		return 0
	}
	t0 := tr.Jobs[0].Release
	max := 0.0
	for k, j := range tr.Jobs {
		nominal := t0 + float64(k)*period
		if d := math.Abs(j.Release - nominal); d > max {
			max = d
		}
	}
	return max
}

// MaxSampleAge returns the worst staleness of consumed samples.
func (tr *Trace) MaxSampleAge() float64 {
	max := 0.0
	for _, j := range tr.Jobs {
		if j.SampleAge > max {
			max = j.SampleAge
		}
	}
	return max
}

// Runtime executes the control loop against the plant in virtual time,
// emulating the sensor hardware task (register updated every Ts) and
// the instantaneous actuator task of the paper's system model.
type Runtime struct {
	cfg Config

	z     []float64
	uNext []float64

	register     []float64
	registerTime float64
	tickIdx      int // index of the next sensor tick
	lastConsumed float64
}

// New validates the configuration and builds a runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Design == nil || cfg.Plant == nil {
		return nil, fmt.Errorf("rt: nil design or plant")
	}
	if cfg.Overhead < 0 {
		return nil, fmt.Errorf("rt: negative overhead %g", cfg.Overhead)
	}
	return &Runtime{
		cfg:          cfg,
		z:            make([]float64, cfg.Design.Modes[0].Ctrl.StateDim()),
		lastConsumed: -1,
	}, nil
}

func (r *Runtime) ts() float64 { return r.cfg.Design.Timing.Ts() }

// tickTime returns the absolute time of sensor tick i (exact, no
// accumulation).
func (r *Runtime) tickTime(i int) float64 { return float64(i) * r.ts() }

// advanceTo moves the plant to time t, updating the sensor register at
// every tick crossed. A tick within relative round-off of t counts as
// crossed: a release arithmetically "at" a tick must see that tick's
// sample.
func (r *Runtime) advanceTo(t float64) {
	tol := 1e-9 * r.ts()
	for r.tickTime(r.tickIdx) <= t+tol {
		at := r.tickTime(r.tickIdx)
		r.cfg.Plant.AdvanceTo(math.Min(at, t))
		r.register = r.cfg.Plant.Output()
		r.registerTime = at
		r.tickIdx++
	}
	r.cfg.Plant.AdvanceTo(t)
}

// Run executes the loop for the given per-job compute durations and
// returns the trace. Compute durations play the role of response times
// (the loop itself is not preempted; feed response times from
// sched.Simulate to model interference).
func (r *Runtime) Run(computeTimes []float64) (*Trace, error) {
	d := r.cfg.Design
	ts := r.ts()
	tr := &Trace{}

	ready := 0.0 // when the loop reaches the new_data check
	prevRelease := math.NaN()
	for k, c := range computeTimes {
		if c <= 0 {
			return nil, fmt.Errorf("rt: job %d has non-positive compute time %g", k, c)
		}
		// new_data gate: the register must hold a sample newer than the
		// last one consumed. The earliest such instant at or after
		// `ready`:
		release := ready
		firstFresh := r.lastConsumed + ts // first tick with unconsumed data
		if firstFresh > release+1e-15 {
			release = firstFresh
		}
		if r.cfg.Policy == WaitFresh {
			// Align to the next tick so the sample is taken at the
			// release itself.
			release = math.Ceil(release/ts-1e-9) * ts
		}
		r.advanceTo(release)
		// Actuator task: latch the previous job's command at release.
		if k > 0 {
			r.cfg.Plant.SetInput(r.uNext)
		}
		y := append([]float64(nil), r.register...)
		age := math.Max(0, release-r.registerTime)
		r.lastConsumed = r.registerTime

		// Mode selection by the previous inter-release interval.
		modeIdx := 0
		if !math.IsNaN(prevRelease) {
			modeIdx = d.Timing.IntervalIndex(release - prevRelease)
		}
		m := d.Modes[modeIdx]
		e := make([]float64, len(y))
		for i, v := range y {
			e[i] = -v
		}
		r.z, r.uNext = m.Ctrl.Step(r.z, e)

		finish := release + c
		r.advanceTo(finish)
		tr.Jobs = append(tr.Jobs, JobRecord{
			Index: k, Release: release, SampleAge: age, Compute: c,
			Finish: finish, ModeIndex: modeIdx,
		})

		// Timer per the listing.
		if c < d.Timing.T {
			switch r.cfg.Sleep {
			case SleepUntil:
				ready = release + d.Timing.T
			default:
				ready = finish + (d.Timing.T - c) + r.cfg.Overhead
			}
		} else {
			ready = finish + r.cfg.Overhead
		}
		prevRelease = release
	}
	tr.FinalState = r.cfg.Plant.State()
	tr.FinalTime = ready
	return tr, nil
}
