package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
	"adaptivertc/internal/sched"
)

func testDesign(t *testing.T) *core.Design {
	t.Helper()
	plant := lti.MustSystem(
		mat.FromRows([][]float64{{0, 1}, {1, -0.8}}),
		mat.ColVec(0, 1),
		mat.Eye(2),
	)
	tm := core.MustTiming(0.1, 5, 0.01, 0.16)
	w := control.LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.1)}
	d, err := core.NewDesign(plant, tm, func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestResponseModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := UniformResponse{Rmin: 0.01, Rmax: 0.16}
	seq := u.Sequence(rng, 500)
	if len(seq) != 500 {
		t.Fatal("wrong length")
	}
	for _, r := range seq {
		if r < 0.01 || r > 0.16 {
			t.Fatalf("uniform draw %v out of range", r)
		}
	}
	s := SporadicResponse{Rmin: 0.01, T: 0.1, Rmax: 0.16, OverrunProb: 0.2}
	seq = s.Sequence(rng, 5000)
	overruns := 0
	for _, r := range seq {
		if r < 0.01 || r > 0.16 {
			t.Fatalf("sporadic draw %v out of range", r)
		}
		if r > 0.1 {
			overruns++
		}
	}
	frac := float64(overruns) / 5000
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("overrun fraction = %v, want ≈ 0.2", frac)
	}
	c := ConstantResponse(0.05)
	seq = c.Sequence(rng, 3)
	for _, r := range seq {
		if r != 0.05 {
			t.Fatalf("constant draw %v", r)
		}
	}
}

func TestErrorCost(t *testing.T) {
	c := ErrorCost()
	got := c(StepInfo{Err: []float64{3, 4}})
	if got != 25 {
		t.Fatalf("ErrorCost = %v, want 25", got)
	}
}

func TestQuadCost(t *testing.T) {
	c := QuadCost(mat.Eye(2), mat.Diag(2))
	got := c(StepInfo{H: 0.5, State: []float64{1, 2}, Input: []float64{3}})
	want := 0.5 * (1 + 4 + 2*9)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("QuadCost = %v, want %v", got, want)
	}
}

func TestEvaluateSequenceConverges(t *testing.T) {
	d := testDesign(t)
	seq := make([]float64, 100)
	rng := rand.New(rand.NewSource(2))
	for i := range seq {
		seq[i] = 0.01 + rng.Float64()*0.15
	}
	cost, err := EvaluateSequence(d, []float64{1, 0}, seq, ErrorCost())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(cost, 1) || cost <= 0 {
		t.Fatalf("cost = %v", cost)
	}
	// A longer tail adds almost nothing once regulated: stability check.
	longer := append(append([]float64(nil), seq...), seq...)
	cost2, err := EvaluateSequence(d, []float64{1, 0}, longer, ErrorCost())
	if err != nil {
		t.Fatal(err)
	}
	if cost2 > cost*1.01+1e-9 {
		t.Fatalf("cost grew from %v to %v on the regulated tail", cost, cost2)
	}
}

func TestEvaluateSequenceDivergenceDetection(t *testing.T) {
	// A positive-feedback "controller" destabilizes the loop.
	plant := lti.MustSystem(
		mat.FromRows([][]float64{{0, 1}, {1, -0.8}}),
		mat.ColVec(0, 1),
		mat.Eye(2),
	)
	tm := core.MustTiming(0.1, 2, 0.01, 0.15)
	bad := control.Static(mat.RowVec(-80, -40)) // wrong sign, large gain
	d, err := core.NewDesign(plant, tm, core.FixedDesigner(bad))
	if err != nil {
		t.Fatal(err)
	}
	seq := ConstantResponse(0.05).Sequence(nil, 400)
	cost, err := EvaluateSequence(d, []float64{1, 0}, seq, ErrorCost())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(cost, 1) {
		t.Fatalf("cost = %v, want +Inf for diverging loop", cost)
	}
}

func TestMonteCarloBasic(t *testing.T) {
	d := testDesign(t)
	m, err := MonteCarlo(d, []float64{1, 0}, UniformResponse{Rmin: 0.01, Rmax: 0.16}, ErrorCost(),
		MonteCarloOptions{Sequences: 200, Jobs: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.Divergent != 0 {
		t.Fatalf("%d divergent sequences for a certified-stable design", m.Divergent)
	}
	if m.WorstCost < m.MeanCost {
		t.Fatalf("worst %v < mean %v", m.WorstCost, m.MeanCost)
	}
	if len(m.WorstSeq) != 50 {
		t.Fatalf("worst sequence length = %d", len(m.WorstSeq))
	}
	if m.Sequences != 200 {
		t.Fatalf("sequences = %d", m.Sequences)
	}
}

func TestMonteCarloWorkerIndependence(t *testing.T) {
	d := testDesign(t)
	run := func(workers int) Metrics {
		m, err := MonteCarlo(d, []float64{1, 0}, UniformResponse{Rmin: 0.01, Rmax: 0.16}, ErrorCost(),
			MonteCarloOptions{Sequences: 64, Jobs: 30, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(1), run(7)
	if math.Abs(a.WorstCost-b.WorstCost) > 1e-12 {
		t.Fatalf("worst differs across worker counts: %v vs %v", a.WorstCost, b.WorstCost)
	}
	if math.Abs(a.MeanCost-b.MeanCost) > 1e-9*(1+a.MeanCost) {
		t.Fatalf("mean differs across worker counts: %v vs %v", a.MeanCost, b.MeanCost)
	}
}

func TestMonteCarloRejectsBadOptions(t *testing.T) {
	d := testDesign(t)
	if _, err := MonteCarlo(d, []float64{1, 0}, ConstantResponse(0.05), ErrorCost(),
		MonteCarloOptions{Sequences: 0, Jobs: 10}); err == nil {
		t.Fatal("zero sequences accepted")
	}
	if _, err := MonteCarlo(d, []float64{1, 0}, ConstantResponse(0.05), ErrorCost(),
		MonteCarloOptions{Sequences: 10, Jobs: 0}); err == nil {
		t.Fatal("zero jobs accepted")
	}
}

func TestNoOverrunCostIsLowerThanWorstCase(t *testing.T) {
	d := testDesign(t)
	ideal, err := NoOverrunCost(d, []float64{1, 0}, 50, ErrorCost())
	if err != nil {
		t.Fatal(err)
	}
	m, err := MonteCarlo(d, []float64{1, 0}, UniformResponse{Rmin: 0.01, Rmax: 0.16}, ErrorCost(),
		MonteCarloOptions{Sequences: 500, Jobs: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if ideal > m.WorstCost {
		t.Fatalf("no-overrun cost %v exceeds worst-case with overruns %v", ideal, m.WorstCost)
	}
}

func TestWorstCostMonotoneInRmaxProperty(t *testing.T) {
	// Larger delay ranges cannot make the worst case better (checked on
	// the evaluation side by nesting the response supports).
	d := testDesign(t) // designed for Rmax = 0.16, covers all smaller ranges
	f := func(seed int64) bool {
		small, err := MonteCarlo(d, []float64{1, 0}, UniformResponse{Rmin: 0.01, Rmax: 0.1}, ErrorCost(),
			MonteCarloOptions{Sequences: 50, Jobs: 30, Seed: seed})
		if err != nil {
			return false
		}
		// Same seeds, wider support that includes the smaller draws is
		// not guaranteed sample-wise, so compare against the nominal-only
		// lower envelope instead: worst with overruns ≥ worst without.
		nominal, err := MonteCarlo(d, []float64{1, 0}, ConstantResponse(0.05), ErrorCost(),
			MonteCarloOptions{Sequences: 1, Jobs: 30, Seed: seed})
		if err != nil {
			return false
		}
		return small.WorstCost >= nominal.WorstCost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestResponsesFromSched(t *testing.T) {
	tasks := []*sched.Task{{Name: "ctl", Period: 1, Priority: 1, Exec: sched.ConstantExec{C: 0.3}}}
	res, err := sched.Simulate(tasks, sched.Options{Horizon: 5})
	if err != nil {
		t.Fatal(err)
	}
	rts := ResponsesFromSched(res, "ctl")
	if len(rts) != 5 {
		t.Fatalf("responses = %v", rts)
	}
	for _, r := range rts {
		if math.Abs(r-0.3) > 1e-9 {
			t.Fatalf("response = %v", r)
		}
	}
}

func TestBurstResponseModel(t *testing.T) {
	m := BurstResponse{Rmin: 0.01, T: 0.1, Rmax: 0.16, PEnter: 0.1, PExit: 0.4}
	rng := rand.New(rand.NewSource(5))
	overruns, transitions := 0, 0
	prev := false
	const total = 100000
	seq := m.Sequence(rng, total)
	for i, r := range seq {
		if r < 0.01 || r > 0.16 {
			t.Fatalf("draw %v out of range", r)
		}
		isOver := r > 0.1
		if isOver {
			overruns++
		}
		if i > 0 && isOver != prev {
			transitions++
		}
		prev = isOver
	}
	frac := float64(overruns) / total
	if frac < 0.15 || frac > 0.25 { // stationary 0.1/0.5 = 0.2
		t.Fatalf("overrun fraction = %v, want ≈ 0.2", frac)
	}
	iid := 2 * frac * (1 - frac) * total
	if float64(transitions) > 0.85*iid {
		t.Fatalf("burst model produced i.i.d.-like switching (%d vs %v)", transitions, iid)
	}
}

func TestBurstResponseDeterministicPerSeed(t *testing.T) {
	m := BurstResponse{Rmin: 0.01, T: 0.1, Rmax: 0.16, PEnter: 0.1, PExit: 0.4}
	a := m.Sequence(rand.New(rand.NewSource(7)), 50)
	b := m.Sequence(rand.New(rand.NewSource(7)), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different sequence")
		}
	}
}
