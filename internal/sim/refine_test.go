package sim

import (
	"math"
	"testing"
)

func TestRefineWorstNeverDecreases(t *testing.T) {
	d := testDesign(t)
	responses := ConstantResponse(0.05).Sequence(nil, 30)
	base, err := EvaluateSequence(d, []float64{1, 0}, responses, ErrorCost())
	if err != nil {
		t.Fatal(err)
	}
	seq, refined, err := RefineWorst(d, []float64{1, 0}, responses, ErrorCost(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if refined < base-1e-12 {
		t.Fatalf("refinement decreased cost: %v -> %v", base, refined)
	}
	if len(seq) != len(responses) {
		t.Fatalf("sequence length changed: %d", len(seq))
	}
	// Refined sequence attains the reported cost.
	check, err := EvaluateSequence(d, []float64{1, 0}, seq, ErrorCost())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(check-refined) > 1e-9*(1+refined) {
		t.Fatalf("reported %v, replay %v", refined, check)
	}
	// Every refined entry lies on the interval grid.
	hs := d.Timing.Intervals()
	for _, h := range seq {
		ok := false
		for _, want := range hs {
			if math.Abs(h-want) < 1e-12 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("off-grid interval %v", h)
		}
	}
}

func TestRefineWorstIdempotentAtLocalMax(t *testing.T) {
	d := testDesign(t)
	responses := UniformResponse{Rmin: 0.01, Rmax: 0.16}.Sequence(newSeqRand(3, 0), 20)
	seq1, c1, err := RefineWorst(d, []float64{1, 0}, responses, ErrorCost(), 10)
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := RefineWorst(d, []float64{1, 0}, seq1, ErrorCost(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c1-c2) > 1e-9*(1+c1) {
		t.Fatalf("refinement of a local max changed cost: %v -> %v", c1, c2)
	}
}

func TestWorstCaseBeatsPlainMonteCarlo(t *testing.T) {
	d := testDesign(t)
	model := UniformResponse{Rmin: 0.01, Rmax: 0.16}
	opt := MonteCarloOptions{Sequences: 100, Jobs: 30, Seed: 5}
	plain, err := MonteCarlo(d, []float64{1, 0}, model, ErrorCost(), opt)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := WorstCase(d, []float64{1, 0}, model, ErrorCost(), opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if combined.WorstCost < plain.WorstCost-1e-12 {
		t.Fatalf("refined worst %v below sampled worst %v", combined.WorstCost, plain.WorstCost)
	}
}

func TestRefineWorstValidation(t *testing.T) {
	d := testDesign(t)
	if _, _, err := RefineWorst(d, []float64{1, 0}, nil, ErrorCost(), 3); err == nil {
		t.Fatal("empty sequence accepted")
	}
}
