// Package sim evaluates closed-loop designs under random overrun
// patterns, reproducing the paper's experimental protocol: for each
// configuration, generate random sequences of job response times
// (50 000 sequences of m = 50 jobs in the paper), drive the adaptive
// runtime through each sequence, and report the worst-case cost
//
//	Jw = max_σm Σ_k ‖e[k]‖²
//
// (§VI) or a quadratic LQG cost. Sequence generation is deterministic
// given a seed, and evaluation parallelizes across sequences without
// changing the result.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"adaptivertc/internal/core"
	"adaptivertc/internal/mat"
	"adaptivertc/internal/sched"
)

// ResponseModel draws random job response-time sequences.
type ResponseModel interface {
	// Sequence fills a length-m response-time sequence.
	Sequence(rng *rand.Rand, m int) []float64
}

// UniformResponse draws each response time uniformly from [Rmin, Rmax]
// — the least-informative model consistent with the paper's "no
// stochastic characterization" stance.
type UniformResponse struct {
	Rmin, Rmax float64
}

// Sequence implements ResponseModel.
func (u UniformResponse) Sequence(rng *rand.Rand, m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = u.Rmin + rng.Float64()*(u.Rmax-u.Rmin)
	}
	return out
}

// SporadicResponse models the paper's motivating scenario: jobs respond
// in [Rmin, T] most of the time and overrun into (T, Rmax] with
// probability OverrunProb.
type SporadicResponse struct {
	Rmin, T, Rmax float64
	OverrunProb   float64
}

// Sequence implements ResponseModel.
func (s SporadicResponse) Sequence(rng *rand.Rand, m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		if rng.Float64() < s.OverrunProb && s.Rmax > s.T {
			out[i] = s.T + rng.Float64()*(s.Rmax-s.T)
		} else {
			out[i] = s.Rmin + rng.Float64()*(s.T-s.Rmin)
		}
	}
	return out
}

// BurstResponse is a two-state Markov-modulated response-time model:
// calm jobs respond in [Rmin, T], burst jobs in (T, Rmax], and the
// regime persists across jobs with the given transition probabilities —
// overruns cluster, the paper's "bursts of interrupts" pattern. The
// regime chain restarts from its stationary distribution for every
// sequence, so sequences stay exchangeable and seed-deterministic.
type BurstResponse struct {
	Rmin, T, Rmax float64
	PEnter        float64 // P(calm → burst) per job
	PExit         float64 // P(burst → calm) per job
}

// Sequence implements ResponseModel.
func (m BurstResponse) Sequence(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	den := m.PEnter + m.PExit
	inBurst := false
	if den > 0 {
		inBurst = rng.Float64() < m.PEnter/den
	}
	for i := range out {
		if i > 0 {
			if inBurst {
				if rng.Float64() < m.PExit {
					inBurst = false
				}
			} else if rng.Float64() < m.PEnter {
				inBurst = true
			}
		}
		if inBurst && m.Rmax > m.T {
			out[i] = m.T + rng.Float64()*(m.Rmax-m.T)
		} else {
			out[i] = m.Rmin + rng.Float64()*(m.T-m.Rmin)
		}
	}
	return out
}

// ConstantResponse always returns the same response time (e.g. for the
// no-overrun ideal or the fixed-period baseline).
type ConstantResponse float64

// Sequence implements ResponseModel.
func (c ConstantResponse) Sequence(_ *rand.Rand, m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = float64(c)
	}
	return out
}

// StepInfo is passed to cost functions once per job, sampled at the
// release instant before the interval elapses.
type StepInfo struct {
	K     int       // job index
	H     float64   // inter-release interval h_k about to elapse
	Err   []float64 // e[k] = -y[k] (regulation)
	State []float64 // x[k]
	Input []float64 // command applied during [a_k, a_{k+1})
}

// CostFunc accumulates a scalar stage cost.
type CostFunc func(StepInfo) float64

// ErrorCost returns the paper's Σ‖e[k]‖² stage cost.
func ErrorCost() CostFunc {
	return func(s StepInfo) float64 {
		c := 0.0
		for _, e := range s.Err {
			c += e * e
		}
		return c
	}
}

// QuadCost returns the LQG stage cost h·(xᵀQx + uᵀRu), a Riemann
// approximation of the continuous quadratic cost over the interval.
func QuadCost(q, r *mat.Dense) CostFunc {
	return func(s StepInfo) float64 {
		qx := mat.MulVec(q, s.State)
		ru := mat.MulVec(r, s.Input)
		return s.H * (mat.Dot(s.State, qx) + mat.Dot(s.Input, ru))
	}
}

// divergeLimit declares a trajectory numerically divergent.
const divergeLimit = 1e12

// defaultWorkers returns the degree of parallelism used when
// MonteCarloOptions.Workers is unset.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// newSeqRand returns the RNG owned by sequence i: results never depend
// on how sequences are distributed over workers.
func newSeqRand(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(i)))
}

// EvaluateSequence runs one response-time sequence through the adaptive
// runtime and returns the accumulated cost. A diverging trajectory
// yields +Inf.
func EvaluateSequence(d *core.Design, x0 []float64, responses []float64, cost CostFunc) (float64, error) {
	loop, err := core.NewLoop(d, x0)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for k, r := range responses {
		h := d.Timing.IntervalFor(r)
		y := loop.Output()
		e := make([]float64, len(y))
		for i, v := range y {
			e[i] = -v
		}
		total += cost(StepInfo{K: k, H: h, Err: e, State: loop.State(), Input: loop.Applied()})
		loop.StepResponse(r)
		for _, v := range loop.State() {
			if math.Abs(v) > divergeLimit || math.IsNaN(v) {
				return math.Inf(1), nil
			}
		}
	}
	return total, nil
}

// Metrics summarizes a Monte-Carlo evaluation.
type Metrics struct {
	WorstCost float64
	MeanCost  float64 // over non-divergent sequences
	Divergent int     // sequences that blew past the divergence limit
	Sequences int
	WorstSeq  []float64 // the response-time sequence attaining WorstCost
}

// Unstable reports whether any sequence diverged.
func (m Metrics) Unstable() bool { return m.Divergent > 0 }

// MonteCarloOptions configures a Monte-Carlo run.
type MonteCarloOptions struct {
	Sequences int   // number of random sequences (paper: 50 000)
	Jobs      int   // jobs per sequence (paper: 50)
	Seed      int64 // base seed; sequence i uses Seed+i
	Workers   int   // default: GOMAXPROCS
}

// ctxInterrupted reports whether err carries nothing but a context
// cancellation or deadline (including wrapped forms).
func ctxInterrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// MonteCarlo evaluates the design over random response-time sequences
// with a background context; see MonteCarloCtx.
func MonteCarlo(d *core.Design, x0 []float64, model ResponseModel, cost CostFunc, opt MonteCarloOptions) (Metrics, error) {
	return MonteCarloCtx(context.Background(), d, x0, model, cost, opt)
}

// MonteCarloCtx evaluates the design over random response-time
// sequences. Results are independent of Workers: sequence i is
// generated from its own rand.Rand seeded Seed+i, and max/mean
// reductions commute. Cancellation aborts the sweep and returns the
// context's error: a mean over a partial sample set would be biased, so
// no partial Metrics are reported.
func MonteCarloCtx(ctx context.Context, d *core.Design, x0 []float64, model ResponseModel, cost CostFunc, opt MonteCarloOptions) (Metrics, error) {
	if opt.Sequences <= 0 || opt.Jobs <= 0 {
		return Metrics{}, fmt.Errorf("sim: need positive Sequences and Jobs, got %d, %d", opt.Sequences, opt.Jobs)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Sequences {
		workers = opt.Sequences
	}

	type partial struct {
		worst     float64
		worstSeq  []float64
		sum       float64
		divergent int
		count     int
		err       error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &parts[w]
			p.worst = math.Inf(-1)
			for i := w; i < opt.Sequences; i += workers {
				if cerr := ctx.Err(); cerr != nil {
					p.err = cerr
					return
				}
				rng := rand.New(rand.NewSource(opt.Seed + int64(i)))
				seq := model.Sequence(rng, opt.Jobs)
				c, err := EvaluateSequence(d, x0, seq, cost)
				if err != nil {
					p.err = err
					return
				}
				if math.IsInf(c, 1) {
					p.divergent++
					if !math.IsInf(p.worst, 1) {
						p.worst = c
						p.worstSeq = seq
					}
					continue
				}
				p.count++
				p.sum += c
				if c > p.worst {
					p.worst = c
					p.worstSeq = seq
				}
			}
		}(w)
	}
	wg.Wait()

	// Real failures take precedence over cancellation noise; both scans
	// walk workers in index order so the reported error is deterministic.
	var ctxErr error
	for _, p := range parts {
		if p.err == nil {
			continue
		}
		if ctxInterrupted(p.err) {
			if ctxErr == nil {
				ctxErr = p.err
			}
			continue
		}
		return Metrics{}, p.err
	}
	if ctxErr != nil {
		return Metrics{}, ctxErr
	}

	m := Metrics{Sequences: opt.Sequences, WorstCost: math.Inf(-1)}
	total, count := 0.0, 0
	for _, p := range parts {
		m.Divergent += p.divergent
		total += p.sum
		count += p.count
		if p.worst > m.WorstCost || (math.IsInf(p.worst, 1) && !math.IsInf(m.WorstCost, 1)) {
			m.WorstCost = p.worst
			m.WorstSeq = p.worstSeq
		}
	}
	if count > 0 {
		m.MeanCost = total / float64(count)
	}
	return m, nil
}

// NoOverrunCost evaluates the ideal run where every job completes
// within its period (h = T throughout) — the paper's "Cost with No
// Overruns" column.
func NoOverrunCost(d *core.Design, x0 []float64, jobs int, cost CostFunc) (float64, error) {
	return EvaluateSequence(d, x0, ConstantResponse(d.Timing.Rmin).Sequence(nil, jobs), cost)
}

// ResponsesFromSched extracts a task's response-time sequence from a
// scheduler simulation, bridging the real-time substrate and the
// control evaluation.
func ResponsesFromSched(res *sched.Result, task string) []float64 {
	return res.ResponseTimes(task)
}
