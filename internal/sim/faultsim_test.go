package sim

import (
	"math"
	"reflect"
	"testing"

	"adaptivertc/internal/faults"
	"adaptivertc/internal/guard"
)

func faultProfile() faults.Profile {
	return faults.Profile{
		Excursion: 0.05, ExcursionFactor: 1.5,
		Drop: 0.05, Stuck: 0.01, StuckLen: 3,
		Noise: 0.05, NoiseAmp: 0.05,
		ActHold: 0.02, JitterAmp: 0.1,
	}
}

func faultContract() guard.Contract {
	return guard.Contract{M: 2, K: 5, RecoverAfter: 3, DivergeLimit: 1e9, Fallback: guard.FallbackZero}
}

// TestFaultMonteCarloWorkerInvariance is the acceptance check for the
// fault-injected Monte-Carlo: every metric — costs, worst sequence and
// all guard counters — must be bit-identical for every worker count.
// Run under -race this also exercises the partial-merge concurrency.
func TestFaultMonteCarloWorkerInvariance(t *testing.T) {
	d := testDesign(t)
	base := UniformResponse{Rmin: d.Timing.Rmin, Rmax: d.Timing.Rmax}
	x0 := []float64{1, 0}

	var ref GuardMetrics
	for i, workers := range []int{1, 2, 3, 5} {
		opt := FaultOptions{
			MonteCarloOptions: MonteCarloOptions{Sequences: 40, Jobs: 25, Seed: 11, Workers: workers},
			Profile:           faultProfile(),
			Contract:          faultContract(),
		}
		m, err := FaultMonteCarlo(d, x0, base, ErrorCost(), opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = m
			if m.Guard.Jobs != 40*25 {
				t.Fatalf("guard saw %d jobs, want %d", m.Guard.Jobs, 40*25)
			}
			if m.Guard.Violations == 0 || m.Guard.Escalations == 0 {
				t.Fatalf("fault profile injected no contract violations: %+v", m.Guard)
			}
			continue
		}
		if !reflect.DeepEqual(m, ref) {
			t.Errorf("workers=%d diverges from workers=1:\n got %+v\nwant %+v", workers, m, ref)
		}
	}
}

// TestFaultMonteCarloZeroProfile checks the degenerate case: with no
// faults injected and a never-binding contract the guarded Monte-Carlo
// must reproduce the plain Monte-Carlo bit for bit, and the guard must
// report an entirely nominal run.
func TestFaultMonteCarloZeroProfile(t *testing.T) {
	d := testDesign(t)
	base := UniformResponse{Rmin: d.Timing.Rmin, Rmax: d.Timing.Rmax}
	x0 := []float64{1, 0}
	// Plain MonteCarlo's mean depends on its worker count (per-worker
	// partial sums); with one worker it sums in sequence order, which is
	// exactly the order FaultMonteCarlo's reduction uses for any worker
	// count.
	plain, err := MonteCarlo(d, x0, base, ErrorCost(),
		MonteCarloOptions{Sequences: 30, Jobs: 25, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := FaultMonteCarlo(d, x0, base, ErrorCost(), FaultOptions{
		MonteCarloOptions: MonteCarloOptions{Sequences: 30, Jobs: 25, Seed: 3, Workers: 2},
		Profile:           faults.Profile{}, // nothing injected
		// M = K can never be exceeded and DivergeLimit 0 disables the
		// divergence clause: the contract never binds.
		Contract: guard.Contract{M: 5, K: 5, Fallback: guard.FallbackZero},
	})
	if err != nil {
		t.Fatal(err)
	}

	if guarded.WorstCost != plain.WorstCost {
		t.Errorf("WorstCost %v != plain %v", guarded.WorstCost, plain.WorstCost)
	}
	if guarded.MeanCost != plain.MeanCost {
		t.Errorf("MeanCost %v != plain %v", guarded.MeanCost, plain.MeanCost)
	}
	if !reflect.DeepEqual(guarded.WorstSeq, plain.WorstSeq) {
		t.Error("worst sequences differ between guarded and plain runs")
	}
	g := guarded.Guard
	if g.Violations != 0 || g.BudgetBreaches != 0 || g.Escalations != 0 || g.Divergences != 0 {
		t.Errorf("clean run reported contract activity: %+v", g)
	}
	if g.JobsInTier[guard.Nominal] != g.Jobs || g.JobsInTier[guard.Clamp] != 0 || g.JobsInTier[guard.SafeMode] != 0 {
		t.Errorf("clean run left Nominal: JobsInTier = %v", g.JobsInTier)
	}
	if !math.IsNaN(g.MeanRecoveryJobs()) {
		t.Errorf("MeanRecoveryJobs = %g, want NaN with no recoveries", g.MeanRecoveryJobs())
	}
}

// TestFaultMonteCarloValidation rejects malformed options.
func TestFaultMonteCarloValidation(t *testing.T) {
	d := testDesign(t)
	base := UniformResponse{Rmin: d.Timing.Rmin, Rmax: d.Timing.Rmax}
	cases := []FaultOptions{
		{MonteCarloOptions: MonteCarloOptions{Sequences: 0, Jobs: 10}, Contract: faultContract()},
		{MonteCarloOptions: MonteCarloOptions{Sequences: 10, Jobs: 10},
			Profile: faults.Profile{Drop: 2}, Contract: faultContract()},
		{MonteCarloOptions: MonteCarloOptions{Sequences: 10, Jobs: 10},
			Contract: guard.Contract{M: 1, K: 0}},
	}
	for i, opt := range cases {
		if _, err := FaultMonteCarlo(d, []float64{1, 0}, base, ErrorCost(), opt); err == nil {
			t.Errorf("case %d accepted invalid options", i)
		}
	}
}
