package sim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"adaptivertc/internal/core"
	"adaptivertc/internal/faults"
	"adaptivertc/internal/guard"
)

// FaultOptions configures a fault-injected Monte-Carlo run: the usual
// sequence/job/seed/worker knobs plus the fault mix and the deployment
// contract the guard enforces.
type FaultOptions struct {
	MonteCarloOptions
	Profile  faults.Profile
	Contract guard.Contract
}

// GuardMetrics summarizes a fault-injected Monte-Carlo evaluation:
// the cost metrics of the guarded closed loop plus the degradation
// accounting summed over all sequences.
type GuardMetrics struct {
	Metrics
	Guard guard.Metrics
}

// String renders the fault-injection summary for reports.
func (g GuardMetrics) String() string {
	mean := g.Guard.MeanRecoveryJobs()
	meanStr := "n/a"
	if !math.IsNaN(mean) {
		meanStr = fmt.Sprintf("%.2f", mean)
	}
	return fmt.Sprintf(
		"sequences: %d (divergent: %d)\nworst cost: %.6g  mean cost: %.6g\n"+
			"jobs in tier: Nominal %d / Clamp %d / SafeMode %d\n"+
			"violations (R > Rmax): %d  budget breaches: %d  divergences: %d\n"+
			"escalations: %d (SafeMode entries: %d)  recoveries: %d  mean recovery latency: %s jobs",
		g.Sequences, g.Divergent, g.WorstCost, g.MeanCost,
		g.Guard.JobsInTier[guard.Nominal], g.Guard.JobsInTier[guard.Clamp], g.Guard.JobsInTier[guard.SafeMode],
		g.Guard.Violations, g.Guard.BudgetBreaches, g.Guard.Divergences,
		g.Guard.Escalations, g.Guard.SafeModeEntries, g.Guard.Recoveries, meanStr)
}

// EvaluateGuarded drives one fault plan through a fresh guarded loop
// and returns the accumulated cost plus the run's guard metrics. A
// trajectory that blows past the divergence limit yields +Inf cost;
// the guard metrics cover the jobs executed up to that point.
func EvaluateGuarded(d *core.Design, x0 []float64, plan *faults.Plan, contract guard.Contract, cost CostFunc) (float64, guard.Metrics, error) {
	mon, err := guard.New(d, x0, contract)
	if err != nil {
		return 0, guard.Metrics{}, err
	}
	loop := mon.Loop()
	loop.SetSensorHook(plan.SensorHook())
	loop.SetActuatorHook(plan.ActuatorHook())
	total := 0.0
	for k, r := range plan.Resp {
		h := d.Timing.GridInterval(r) + plan.Jitter[k]
		y := loop.Output()
		e := make([]float64, len(y))
		for i, v := range y {
			e[i] = -v
		}
		total += cost(StepInfo{K: k, H: h, Err: e, State: loop.State(), Input: loop.Applied()})
		if _, err := mon.StepJittered(r, plan.Jitter[k]); err != nil {
			return 0, guard.Metrics{}, err
		}
		for _, v := range loop.State() {
			if math.Abs(v) > divergeLimit || math.IsNaN(v) {
				return math.Inf(1), mon.Metrics(), nil
			}
		}
	}
	return total, mon.Metrics(), nil
}

// FaultMonteCarlo evaluates the guarded design over random
// fault-injected sequences with a background context; see
// FaultMonteCarloCtx.
func FaultMonteCarlo(d *core.Design, x0 []float64, base ResponseModel, cost CostFunc, opt FaultOptions) (GuardMetrics, error) {
	return FaultMonteCarloCtx(context.Background(), d, x0, base, cost, opt)
}

// FaultMonteCarloCtx evaluates the guarded design over random
// fault-injected sequences. Sequence i draws its response times AND its
// entire fault plan from the single RNG seeded Seed+i, and the final
// reduction walks sequences in index order over per-sequence costs —
// every float is added in the same order no matter how sequences were
// distributed over workers — so results (costs, worst sequence and
// every guard counter) are bit-identical for every worker count.
// Cancellation aborts the sweep with the context's error and no partial
// metrics.
func FaultMonteCarloCtx(ctx context.Context, d *core.Design, x0 []float64, base ResponseModel, cost CostFunc, opt FaultOptions) (GuardMetrics, error) {
	if opt.Sequences <= 0 || opt.Jobs <= 0 {
		return GuardMetrics{}, fmt.Errorf("sim: need positive Sequences and Jobs, got %d, %d", opt.Sequences, opt.Jobs)
	}
	if err := opt.Profile.Validate(); err != nil {
		return GuardMetrics{}, err
	}
	if err := opt.Contract.Validate(); err != nil {
		return GuardMetrics{}, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > opt.Sequences {
		workers = opt.Sequences
	}

	q := d.Plant.OutputDim()
	ts := d.Timing.Ts()

	// Workers write disjoint indices (sequence i belongs to worker
	// i%workers), so the slices need no locking; guard counters merge
	// associatively per worker.
	costs := make([]float64, opt.Sequences)
	guards := make([]guard.Metrics, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < opt.Sequences; i += workers {
				if cerr := ctx.Err(); cerr != nil {
					errs[w] = cerr
					return
				}
				rng := newSeqRand(opt.Seed, i)
				plan, err := opt.Profile.Plan(rng, base, d.Timing.Rmax, opt.Jobs, q, ts)
				if err != nil {
					errs[w] = err
					return
				}
				c, gm, err := EvaluateGuarded(d, x0, plan, opt.Contract, cost)
				if err != nil {
					errs[w] = err
					return
				}
				costs[i] = c
				guards[w].Add(gm)
			}
		}(w)
	}
	wg.Wait()
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if ctxInterrupted(err) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return GuardMetrics{}, err
	}
	if ctxErr != nil {
		return GuardMetrics{}, ctxErr
	}

	m := GuardMetrics{Metrics: Metrics{Sequences: opt.Sequences, WorstCost: math.Inf(-1)}}
	for _, g := range guards {
		m.Guard.Add(g)
	}
	total, count, worstIdx := 0.0, 0, -1
	for i, c := range costs {
		if math.IsInf(c, 1) {
			m.Divergent++
			if !math.IsInf(m.WorstCost, 1) {
				m.WorstCost = c
				worstIdx = i
			}
			continue
		}
		count++
		total += c
		if c > m.WorstCost {
			m.WorstCost = c
			worstIdx = i
		}
	}
	if count > 0 {
		m.MeanCost = total / float64(count)
	}
	if worstIdx >= 0 {
		// Regenerate the worst plan instead of retaining every response
		// sequence during the sweep.
		rng := newSeqRand(opt.Seed, worstIdx)
		plan, err := opt.Profile.Plan(rng, base, d.Timing.Rmax, opt.Jobs, q, ts)
		if err != nil {
			return GuardMetrics{}, err
		}
		m.WorstSeq = plan.Resp
	}
	return m, nil
}
