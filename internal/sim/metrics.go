package sim

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"

	"adaptivertc/internal/core"
)

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of the samples using
// linear interpolation between order statistics. NaN for empty input.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return minOf(samples)
	}
	if p >= 1 {
		return maxOf(samples)
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

func minOf(s []float64) float64 {
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(s []float64) float64 {
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// CostDistribution evaluates the design over random sequences with a
// background context; see CostDistributionCtx.
func CostDistribution(d *core.Design, x0 []float64, model ResponseModel, cost CostFunc, opt MonteCarloOptions) ([]float64, error) {
	return CostDistributionCtx(context.Background(), d, x0, model, cost, opt)
}

// CostDistributionCtx evaluates the design over random sequences like
// MonteCarloCtx but returns every per-sequence cost (index i is the
// cost of the sequence generated from Seed+i), enabling percentile and
// histogram analyses. Divergent sequences carry +Inf. Cancellation
// aborts the sweep with the context's error and no partial slice.
func CostDistributionCtx(ctx context.Context, d *core.Design, x0 []float64, model ResponseModel, cost CostFunc, opt MonteCarloOptions) ([]float64, error) {
	if opt.Sequences <= 0 || opt.Jobs <= 0 {
		return nil, fmt.Errorf("sim: need positive Sequences and Jobs, got %d, %d", opt.Sequences, opt.Jobs)
	}
	costs := make([]float64, opt.Sequences)
	err := forEachSequence(ctx, opt, func(i int, seq []float64) error {
		c, err := EvaluateSequence(d, x0, seq, cost)
		if err != nil {
			return err
		}
		costs[i] = c
		return nil
	}, model)
	if err != nil {
		return nil, err
	}
	return costs, nil
}

// Trajectory is a recorded closed-loop run: one row per job, sampled at
// the release instants.
type Trajectory struct {
	Time     []float64   // release instants a_k
	Interval []float64   // h_k about to elapse
	Output   [][]float64 // y[k]
	Input    [][]float64 // command applied during [a_k, a_{k+1})
	State    [][]float64 // x[k]
}

// Len returns the number of recorded jobs.
func (tr *Trajectory) Len() int { return len(tr.Time) }

// RecordTrajectory runs one response-time sequence through the adaptive
// runtime, recording the sampled trajectory.
func RecordTrajectory(d *core.Design, x0 []float64, responses []float64) (*Trajectory, error) {
	loop, err := core.NewLoop(d, x0)
	if err != nil {
		return nil, err
	}
	tr := &Trajectory{}
	now := 0.0
	for _, r := range responses {
		h := d.Timing.IntervalFor(r)
		tr.Time = append(tr.Time, now)
		tr.Interval = append(tr.Interval, h)
		tr.Output = append(tr.Output, loop.Output())
		tr.Input = append(tr.Input, loop.Applied())
		tr.State = append(tr.State, loop.State())
		loop.StepResponse(r)
		now += h
	}
	return tr, nil
}

// WriteCSV renders the trajectory with a header row; columns are
// t, h, y0…, u0…, x0….
func (tr *Trajectory) WriteCSV(w io.Writer) error {
	if tr.Len() == 0 {
		return fmt.Errorf("sim: empty trajectory")
	}
	cw := csv.NewWriter(w)
	header := []string{"t", "h"}
	for i := range tr.Output[0] {
		header = append(header, fmt.Sprintf("y%d", i))
	}
	for i := range tr.Input[0] {
		header = append(header, fmt.Sprintf("u%d", i))
	}
	for i := range tr.State[0] {
		header = append(header, fmt.Sprintf("x%d", i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	fm := func(v float64) string { return strconv.FormatFloat(v, 'g', 12, 64) }
	for k := 0; k < tr.Len(); k++ {
		row := []string{fm(tr.Time[k]), fm(tr.Interval[k])}
		for _, v := range tr.Output[k] {
			row = append(row, fm(v))
		}
		for _, v := range tr.Input[k] {
			row = append(row, fm(v))
		}
		for _, v := range tr.State[k] {
			row = append(row, fm(v))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// forEachSequence generates the deterministic per-index sequences and
// invokes fn for each, in parallel, aborting on the first error or on
// cancellation. Errors are reported from the lowest-indexed failing
// worker, real failures taking precedence over cancellation, so the
// returned error does not depend on scheduling.
func forEachSequence(ctx context.Context, opt MonteCarloOptions, fn func(i int, seq []float64) error, model ResponseModel) error {
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > opt.Sequences {
		workers = opt.Sequences
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < opt.Sequences; i += workers {
				if cerr := ctx.Err(); cerr != nil {
					errs[w] = cerr
					return
				}
				seq := model.Sequence(newSeqRand(opt.Seed, i), opt.Jobs)
				if err := fn(i, seq); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if ctxInterrupted(err) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return err
	}
	return ctxErr
}
