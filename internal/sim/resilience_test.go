package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// cancelledCtx returns an already-cancelled context.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestMonteCarloCtxCancelled: a cancelled context aborts the sweep with
// the context's error for every worker count.
func TestMonteCarloCtxCancelled(t *testing.T) {
	d := testDesign(t)
	model := UniformResponse{Rmin: d.Timing.Rmin, Rmax: d.Timing.Rmax}
	for _, w := range []int{1, 2, 4} {
		_, err := MonteCarloCtx(cancelledCtx(), d, []float64{1, 0}, model, ErrorCost(),
			MonteCarloOptions{Sequences: 100, Jobs: 20, Seed: 1, Workers: w})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
	}
}

// TestMonteCarloCtxMatchesWrapper: with a live context the ctx variant
// must be bit-identical to the ctx-less wrapper.
func TestMonteCarloCtxMatchesWrapper(t *testing.T) {
	d := testDesign(t)
	model := UniformResponse{Rmin: d.Timing.Rmin, Rmax: d.Timing.Rmax}
	opt := MonteCarloOptions{Sequences: 60, Jobs: 20, Seed: 7, Workers: 3}
	a, err := MonteCarlo(d, []float64{1, 0}, model, ErrorCost(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloCtx(context.Background(), d, []float64{1, 0}, model, ErrorCost(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ctx variant diverges:\n got %+v\nwant %+v", b, a)
	}
}

func TestCostDistributionCtxCancelled(t *testing.T) {
	d := testDesign(t)
	model := UniformResponse{Rmin: d.Timing.Rmin, Rmax: d.Timing.Rmax}
	_, err := CostDistributionCtx(cancelledCtx(), d, []float64{1, 0}, model, ErrorCost(),
		MonteCarloOptions{Sequences: 100, Jobs: 20, Seed: 1, Workers: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFaultMonteCarloCtxCancelled(t *testing.T) {
	d := testDesign(t)
	base := UniformResponse{Rmin: d.Timing.Rmin, Rmax: d.Timing.Rmax}
	_, err := FaultMonteCarloCtx(cancelledCtx(), d, []float64{1, 0}, base, ErrorCost(), FaultOptions{
		MonteCarloOptions: MonteCarloOptions{Sequences: 100, Jobs: 20, Seed: 1, Workers: 2},
		Profile:           faultProfile(),
		Contract:          faultContract(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRefineWorstCtxCancelled: coordinate ascent only ever improves on
// its starting sequence, so cancellation returns the partial refinement
// (still a valid worst-case estimate) alongside the context error.
func TestRefineWorstCtxCancelled(t *testing.T) {
	d := testDesign(t)
	responses := []float64{0.12, 0.05, 0.15, 0.08, 0.11, 0.06}
	seq, best, err := RefineWorstCtx(cancelledCtx(), d, []float64{1, 0}, responses, ErrorCost(), 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(seq) != len(responses) {
		t.Fatalf("partial sequence has length %d, want %d", len(seq), len(responses))
	}
	start, eerr := EvaluateSequence(d, []float64{1, 0}, seq, ErrorCost())
	if eerr != nil {
		t.Fatal(eerr)
	}
	if best < start {
		t.Fatalf("partial refinement %v below its own sequence's cost %v", best, start)
	}
}

func TestWorstCaseCtxCancelled(t *testing.T) {
	d := testDesign(t)
	model := UniformResponse{Rmin: d.Timing.Rmin, Rmax: d.Timing.Rmax}
	_, err := WorstCaseCtx(cancelledCtx(), d, []float64{1, 0}, model, ErrorCost(),
		MonteCarloOptions{Sequences: 50, Jobs: 20, Seed: 1, Workers: 2}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
