package sim

import (
	"context"
	"fmt"
	"math"

	"adaptivertc/internal/core"
)

// RefineWorst sharpens a worst-case estimate by coordinate ascent over
// the switching sequence: starting from the interval pattern induced by
// `responses`, each position is replaced in turn by every achievable
// interval and the most expensive choice is kept, until a full pass
// yields no improvement (or maxPasses is hit). The result is a local
// maximum of the cost over the discrete switching space — by
// construction at least as expensive as the starting sequence.
//
// Monte-Carlo sampling alone (the paper's 50 000 random sequences)
// explores the space blindly; a few refinement passes on the sampled
// worst typically push `Jw` a further few percent toward the true
// supremum.
func RefineWorst(d *core.Design, x0 []float64, responses []float64, cost CostFunc, maxPasses int) ([]float64, float64, error) {
	return RefineWorstCtx(context.Background(), d, x0, responses, cost, maxPasses)
}

// RefineWorstCtx is RefineWorst honoring a context. Cancellation
// returns the sequence and cost refined so far — coordinate ascent only
// ever improves on its start, so the partial result is still a valid
// (if less sharpened) worst-case estimate — together with the context's
// error.
func RefineWorstCtx(ctx context.Context, d *core.Design, x0 []float64, responses []float64, cost CostFunc, maxPasses int) ([]float64, float64, error) {
	if len(responses) == 0 {
		return nil, 0, fmt.Errorf("sim: empty sequence")
	}
	if maxPasses <= 0 {
		maxPasses = 5
	}
	hs := d.Timing.Intervals()
	// Work on interval values directly (a response equal to the
	// interval maps back to the same index).
	seq := make([]float64, len(responses))
	for i, r := range responses {
		seq[i] = d.Timing.IntervalFor(r)
	}
	best, err := EvaluateSequence(d, x0, seq, cost)
	if err != nil {
		return nil, 0, err
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for k := range seq {
			if cerr := ctx.Err(); cerr != nil {
				return seq, best, cerr
			}
			orig := seq[k]
			for _, h := range hs {
				//lint:ignore floatcompare set-membership test: both values come verbatim from the same Intervals() grid
				if h == orig {
					continue
				}
				seq[k] = h
				c, err := EvaluateSequence(d, x0, seq, cost)
				if err != nil {
					return nil, 0, err
				}
				if c > best && !math.IsInf(c, 1) {
					best = c
					orig = h
					improved = true
				}
			}
			seq[k] = orig
		}
		if !improved {
			break
		}
	}
	return seq, best, nil
}

// WorstCase combines sampling and refinement: a Monte-Carlo sweep
// followed by coordinate ascent from the worst sample. With
// refinePasses <= 0 it reduces to plain MonteCarlo (the paper's
// sampling-only protocol).
func WorstCase(d *core.Design, x0 []float64, model ResponseModel, cost CostFunc, opt MonteCarloOptions, refinePasses int) (Metrics, error) {
	return WorstCaseCtx(context.Background(), d, x0, model, cost, opt, refinePasses)
}

// WorstCaseCtx is WorstCase honoring a context; cancellation during
// either phase aborts with the context's error.
func WorstCaseCtx(ctx context.Context, d *core.Design, x0 []float64, model ResponseModel, cost CostFunc, opt MonteCarloOptions, refinePasses int) (Metrics, error) {
	m, err := MonteCarloCtx(ctx, d, x0, model, cost, opt)
	if err != nil {
		return Metrics{}, err
	}
	if refinePasses <= 0 || m.Unstable() || len(m.WorstSeq) == 0 {
		return m, nil
	}
	seq, refined, err := RefineWorstCtx(ctx, d, x0, m.WorstSeq, cost, refinePasses)
	if err != nil {
		return Metrics{}, err
	}
	if refined > m.WorstCost {
		m.WorstCost = refined
		m.WorstSeq = seq
	}
	return m, nil
}
