package sim

import (
	"math"
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	s := []float64{4, 1, 3, 2, 5}
	if got := Percentile(s, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(s, 1); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(s, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(s, 0.25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 0.75); math.Abs(got-7.5) > 1e-12 {
		t.Fatalf("interpolated p75 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Input must not be mutated.
	if s[0] != 4 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestCostDistributionMatchesMonteCarlo(t *testing.T) {
	d := testDesign(t)
	model := UniformResponse{Rmin: 0.01, Rmax: 0.16}
	opt := MonteCarloOptions{Sequences: 120, Jobs: 30, Seed: 21}
	costs, err := CostDistribution(d, []float64{1, 0}, model, ErrorCost(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 120 {
		t.Fatalf("costs = %d", len(costs))
	}
	m, err := MonteCarlo(d, []float64{1, 0}, model, ErrorCost(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds → same worst case and mean.
	if math.Abs(Percentile(costs, 1)-m.WorstCost) > 1e-12 {
		t.Fatalf("max of distribution %v != MonteCarlo worst %v", Percentile(costs, 1), m.WorstCost)
	}
	sum := 0.0
	for _, c := range costs {
		sum += c
	}
	if math.Abs(sum/float64(len(costs))-m.MeanCost) > 1e-9*(1+m.MeanCost) {
		t.Fatal("mean mismatch between CostDistribution and MonteCarlo")
	}
	// Percentiles are monotone.
	if Percentile(costs, 0.5) > Percentile(costs, 0.95) {
		t.Fatal("median above p95")
	}
}

func TestCostDistributionWorkerIndependence(t *testing.T) {
	d := testDesign(t)
	model := UniformResponse{Rmin: 0.01, Rmax: 0.16}
	run := func(workers int) []float64 {
		costs, err := CostDistribution(d, []float64{1, 0}, model, ErrorCost(),
			MonteCarloOptions{Sequences: 64, Jobs: 30, Seed: 21, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return costs
	}
	// Sequence i gets its own RNG derived from (Seed, i), so the cost
	// vector must be bit-identical no matter how sequences are spread
	// over workers.
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cost[%d] differs across worker counts: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCostDistributionValidation(t *testing.T) {
	d := testDesign(t)
	if _, err := CostDistribution(d, []float64{1, 0}, ConstantResponse(0.05), ErrorCost(),
		MonteCarloOptions{Sequences: 0, Jobs: 5}); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestRecordTrajectoryAndCSV(t *testing.T) {
	d := testDesign(t)
	responses := []float64{0.05, 0.13, 0.05, 0.16, 0.05}
	tr, err := RecordTrajectory(d, []float64{1, 0}, responses)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Time axis accumulates the actual intervals.
	if tr.Time[0] != 0 {
		t.Fatal("trajectory must start at t=0")
	}
	wantT1 := d.Timing.IntervalFor(0.05)
	if math.Abs(tr.Time[1]-wantT1) > 1e-12 {
		t.Fatalf("t1 = %v, want %v", tr.Time[1], wantT1)
	}
	// Overrun at job 1 stretches the second interval.
	if tr.Interval[1] <= tr.Interval[0] {
		t.Fatalf("interval after overrun = %v, nominal %v", tr.Interval[1], tr.Interval[0])
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Count(strings.TrimSpace(out), "\n") + 1
	if lines != 6 { // header + 5 rows
		t.Fatalf("CSV has %d lines:\n%s", lines, out)
	}
	if !strings.HasPrefix(out, "t,h,y0,y1,u0,x0,x1") {
		t.Fatalf("CSV header: %q", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestWriteCSVEmptyTrajectory(t *testing.T) {
	tr := &Trajectory{}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err == nil {
		t.Fatal("empty trajectory accepted")
	}
}
