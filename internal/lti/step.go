package lti

import (
	"fmt"
	"math"
)

// StepSample is one point of a sampled step response.
type StepSample struct {
	T float64
	Y float64
}

// StepResponse simulates the SISO unit step response over [0, tFinal]
// sampled every dt, using the exact ZOH solution per sample (no
// integration error).
func (s *System) StepResponse(tFinal, dt float64) ([]StepSample, error) {
	if s.r != 1 || s.q != 1 {
		return nil, fmt.Errorf("lti: StepResponse requires a SISO system, got %d×%d", s.q, s.r)
	}
	if tFinal <= 0 || dt <= 0 || dt > tFinal {
		return nil, fmt.Errorf("lti: bad horizon %g / step %g", tFinal, dt)
	}
	d, err := s.Discretize(dt)
	if err != nil {
		return nil, err
	}
	n := s.n
	x := make([]float64, n)
	var out []StepSample
	for t := 0.0; t <= tFinal+dt/2; t += dt {
		y := 0.0
		for j := 0; j < n; j++ {
			y += s.C.At(0, j) * x[j]
		}
		out = append(out, StepSample{T: t, Y: y})
		// Advance with u ≡ 1.
		xn := make([]float64, n)
		for i := 0; i < n; i++ {
			acc := d.Gamma.At(i, 0)
			for j := 0; j < n; j++ {
				acc += d.Phi.At(i, j) * x[j]
			}
			xn[i] = acc
		}
		x = xn
	}
	return out, nil
}

// StepMetrics summarizes a step response against its final value.
type StepMetrics struct {
	FinalValue   float64
	RiseTime     float64 // 10% → 90% of the final value
	SettlingTime float64 // last entry into the ±2% band
	Overshoot    float64 // fraction of the final value (0 = none)
	SteadyError  float64 // |1 - FinalValue| for a unit step
}

// AnalyzeStep computes classic time-domain metrics from a sampled step
// response. The final value is taken from the trailing 5% of samples.
func AnalyzeStep(samples []StepSample) (StepMetrics, error) {
	if len(samples) < 10 {
		return StepMetrics{}, fmt.Errorf("lti: need at least 10 samples, got %d", len(samples))
	}
	tail := samples[len(samples)-len(samples)/20-1:]
	final := 0.0
	for _, s := range tail {
		final += s.Y
	}
	final /= float64(len(tail))
	m := StepMetrics{FinalValue: final, SteadyError: math.Abs(1 - final)}
	if math.Abs(final) < 1e-12 {
		return m, fmt.Errorf("lti: near-zero final value %g; relative metrics undefined", final)
	}

	// Rise time: first crossing of 10% to first crossing of 90%.
	t10, t90 := math.NaN(), math.NaN()
	for _, s := range samples {
		v := s.Y / final
		if math.IsNaN(t10) && v >= 0.1 {
			t10 = s.T
		}
		if math.IsNaN(t90) && v >= 0.9 {
			t90 = s.T
			break
		}
	}
	if !math.IsNaN(t10) && !math.IsNaN(t90) {
		m.RiseTime = t90 - t10
	} else {
		m.RiseTime = math.NaN()
	}

	// Overshoot.
	peak := 0.0
	for _, s := range samples {
		if v := s.Y / final; v > peak {
			peak = v
		}
	}
	if peak > 1 {
		m.Overshoot = peak - 1
	}

	// Settling time: last time the response leaves the ±2% band.
	m.SettlingTime = 0
	for _, s := range samples {
		if math.Abs(s.Y/final-1) > 0.02 {
			m.SettlingTime = s.T
		}
	}
	return m, nil
}
