package lti

import (
	"math"
	"testing"

	"adaptivertc/internal/mat"
)

func TestStepResponseFirstOrder(t *testing.T) {
	// G(s) = 1/(s+1): y(t) = 1 - e^{-t}.
	s := MustSystem(mat.Diag(-1), mat.Eye(1), mat.Eye(1))
	samples, err := s.StepResponse(5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range samples {
		want := 1 - math.Exp(-p.T)
		if math.Abs(p.Y-want) > 1e-10 {
			t.Fatalf("y(%v) = %v, want %v", p.T, p.Y, want)
		}
	}
}

func TestStepResponseValidation(t *testing.T) {
	s := MustSystem(mat.Diag(-1, -2), mat.Eye(2), mat.Eye(2))
	if _, err := s.StepResponse(1, 0.01); err == nil {
		t.Fatal("MIMO step accepted")
	}
	siso := MustSystem(mat.Diag(-1), mat.Eye(1), mat.Eye(1))
	if _, err := siso.StepResponse(0, 0.01); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := siso.StepResponse(1, 2); err == nil {
		t.Fatal("dt > horizon accepted")
	}
}

func TestAnalyzeStepFirstOrder(t *testing.T) {
	// First order lag, unit DC gain: no overshoot, rise time
	// = ln(9)·τ ≈ 2.197 for τ = 1, settling (2%) ≈ 3.91.
	s := MustSystem(mat.Diag(-1), mat.Eye(1), mat.Eye(1))
	samples, err := s.StepResponse(10, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	m, err := AnalyzeStep(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.FinalValue-1) > 1e-3 {
		t.Fatalf("final = %v", m.FinalValue)
	}
	if math.Abs(m.RiseTime-math.Log(9)) > 0.01 {
		t.Fatalf("rise = %v, want %v", m.RiseTime, math.Log(9))
	}
	// The final value is estimated from the trailing samples, which sit
	// slightly below the asymptote, so allow measurement-level slack.
	if m.Overshoot > 1e-4 {
		t.Fatalf("overshoot = %v for a first-order lag", m.Overshoot)
	}
	if math.Abs(m.SettlingTime-math.Log(50)) > 0.05 {
		t.Fatalf("settling = %v, want %v", m.SettlingTime, math.Log(50))
	}
	if m.SteadyError > 1e-3 {
		t.Fatalf("steady error = %v", m.SteadyError)
	}
}

func TestAnalyzeStepUnderdampedOvershoot(t *testing.T) {
	// ζ = 0.2, ωn = 1: overshoot = exp(-πζ/√(1-ζ²)) ≈ 0.527.
	zeta := 0.2
	s := MustSystem(
		mat.FromRows([][]float64{{0, 1}, {-1, -2 * zeta}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
	samples, err := s.StepResponse(60, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	m, err := AnalyzeStep(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-math.Pi * zeta / math.Sqrt(1-zeta*zeta))
	if math.Abs(m.Overshoot-want) > 0.01 {
		t.Fatalf("overshoot = %v, want %v", m.Overshoot, want)
	}
}

func TestAnalyzeStepValidation(t *testing.T) {
	if _, err := AnalyzeStep(nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	flat := make([]StepSample, 50)
	if _, err := AnalyzeStep(flat); err == nil {
		t.Fatal("zero final value accepted")
	}
}
