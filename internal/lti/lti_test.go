package lti

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivertc/internal/mat"
)

func doubleIntegrator(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(
		mat.FromRows([][]float64{{0, 1}, {0, 0}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	_, err := NewSystem(mat.New(2, 3), mat.New(2, 1), mat.New(1, 2))
	if err == nil {
		t.Fatal("non-square A accepted")
	}
	_, err = NewSystem(mat.Eye(2), mat.New(3, 1), mat.New(1, 2))
	if err == nil {
		t.Fatal("mismatched B accepted")
	}
	_, err = NewSystem(mat.Eye(2), mat.New(2, 1), mat.New(1, 3))
	if err == nil {
		t.Fatal("mismatched C accepted")
	}
}

func TestDims(t *testing.T) {
	s := doubleIntegrator(t)
	if s.StateDim() != 2 || s.InputDim() != 1 || s.OutputDim() != 1 {
		t.Fatalf("dims = (%d,%d,%d)", s.StateDim(), s.InputDim(), s.OutputDim())
	}
}

func TestNewSystemClonesInputs(t *testing.T) {
	a := mat.Eye(2)
	s, err := NewSystem(a, mat.ColVec(0, 1), mat.RowVec(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	a.Set(0, 0, 99)
	if s.A.At(0, 0) != 1 {
		t.Fatal("System shares caller's matrices")
	}
}

func TestDiscretizeDoubleIntegrator(t *testing.T) {
	s := doubleIntegrator(t)
	h := 0.1
	d, err := s.Discretize(h)
	if err != nil {
		t.Fatal(err)
	}
	wantPhi := mat.FromRows([][]float64{{1, h}, {0, 1}})
	wantGamma := mat.ColVec(h*h/2, h)
	if !d.Phi.EqualApprox(wantPhi, 1e-13) {
		t.Fatalf("Phi = %v", d.Phi)
	}
	if !d.Gamma.EqualApprox(wantGamma, 1e-13) {
		t.Fatalf("Gamma = %v", d.Gamma)
	}
}

func TestDiscretizeFirstOrderLag(t *testing.T) {
	s := MustSystem(
		mat.FromRows([][]float64{{-2}}),
		mat.FromRows([][]float64{{2}}),
		mat.Eye(1),
	)
	h := 0.25
	d, err := s.Discretize(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Phi.At(0, 0)-math.Exp(-2*h)) > 1e-13 {
		t.Fatalf("Phi = %v", d.Phi.At(0, 0))
	}
	if math.Abs(d.Gamma.At(0, 0)-(1-math.Exp(-2*h))) > 1e-13 {
		t.Fatalf("Gamma = %v", d.Gamma.At(0, 0))
	}
}

func TestDiscretizeRejectsBadInterval(t *testing.T) {
	s := doubleIntegrator(t)
	if _, err := s.Discretize(0); err == nil {
		t.Fatal("h=0 accepted")
	}
	if _, err := s.Discretize(-1); err == nil {
		t.Fatal("h<0 accepted")
	}
}

func TestDiscretizePreservesStability(t *testing.T) {
	// A Hurwitz-stable plant discretizes to a Schur-stable one for any h>0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)-3-float64(n)) // diagonally dominant negative
		}
		s := MustSystem(a, mat.New(n, 1), mat.New(1, n))
		h := 0.01 + rng.Float64()
		d, err := s.Discretize(h)
		if err != nil {
			return false
		}
		ok, err := d.IsStable()
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestControllabilityObservability(t *testing.T) {
	s := doubleIntegrator(t)
	if !s.IsControllable() {
		t.Fatal("double integrator should be controllable")
	}
	if !s.IsObservable() {
		t.Fatal("double integrator with position output should be observable")
	}
	// Uncontrollable: input only drives the first state, states decoupled.
	u := MustSystem(
		mat.Diag(-1, -2),
		mat.ColVec(1, 0),
		mat.RowVec(1, 1),
	)
	if u.IsControllable() {
		t.Fatal("decoupled plant reported controllable")
	}
	// Unobservable: output reads only state 1 of a decoupled pair.
	o := MustSystem(
		mat.Diag(-1, -2),
		mat.ColVec(1, 1),
		mat.RowVec(1, 0),
	)
	if o.IsObservable() {
		t.Fatal("decoupled plant reported observable")
	}
}

func TestPolesAndStability(t *testing.T) {
	s := MustSystem(
		mat.FromRows([][]float64{{0, 1}, {-2, -3}}), // poles -1, -2
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
	poles, err := s.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 2 {
		t.Fatalf("poles = %v", poles)
	}
	stable, err := s.IsStable()
	if err != nil || !stable {
		t.Fatalf("stable plant misreported (err=%v)", err)
	}
	unstable := doubleIntegrator(t)
	st, err := unstable.IsStable()
	if err != nil || st {
		t.Fatal("double integrator reported stable")
	}
}

func TestStepMatchesDiscretize(t *testing.T) {
	s := MustSystem(
		mat.FromRows([][]float64{{0, 1}, {-2, -1}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
	x := []float64{1, -0.5}
	u := []float64{0.7}
	dt := 0.05
	got, err := s.Step(x, u, dt)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.Discretize(dt)
	want := mat.MulVec(d.Phi, x)
	gu := mat.MulVec(d.Gamma, u)
	for i := range want {
		want[i] += gu[i]
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-13 {
			t.Fatalf("Step = %v, want %v", got, want)
		}
	}
}

func TestStepComposition(t *testing.T) {
	// Two half steps equal one full step under constant input.
	s := MustSystem(
		mat.FromRows([][]float64{{0, 1}, {-5, -2}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
	x := []float64{0.3, 0.1}
	u := []float64{1}
	full, err := s.Step(x, u, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	half, err := s.Step(x, u, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	half2, err := s.Step(half, u, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if math.Abs(full[i]-half2[i]) > 1e-12 {
			t.Fatalf("composition mismatch: %v vs %v", full, half2)
		}
	}
}

func TestOutput(t *testing.T) {
	s := doubleIntegrator(t)
	y := s.Output([]float64{3, 9})
	if len(y) != 1 || y[0] != 3 {
		t.Fatalf("Output = %v", y)
	}
}

func TestDiscretePoles(t *testing.T) {
	s := MustSystem(mat.FromRows([][]float64{{-1}}), mat.Eye(1), mat.Eye(1))
	d, _ := s.Discretize(0.5)
	poles, err := d.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(poles[0])-math.Exp(-0.5)) > 1e-13 {
		t.Fatalf("discrete pole = %v", poles[0])
	}
}
