package lti

import (
	"math"
	"math/cmplx"
	"testing"

	"adaptivertc/internal/mat"
)

func firstOrderLag(t *testing.T) *System {
	t.Helper()
	// G(s) = 2/(s+2).
	return MustSystem(
		mat.FromRows([][]float64{{-2}}),
		mat.FromRows([][]float64{{2}}),
		mat.Eye(1),
	)
}

func TestFreqResponseFirstOrder(t *testing.T) {
	s := firstOrderLag(t)
	for _, w := range []float64{0.1, 2, 10, 100} {
		g, err := s.FreqResponse(w)
		if err != nil {
			t.Fatal(err)
		}
		got := g[0][0]
		want := complex(2, 0) / complex(2, w) // 2/(jw+2)
		if cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("G(j%v) = %v, want %v", w, got, want)
		}
	}
}

func TestFreqResponseDoubleIntegrator(t *testing.T) {
	s := MustSystem(
		mat.FromRows([][]float64{{0, 1}, {0, 0}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
	g, err := s.FreqResponse(3)
	if err != nil {
		t.Fatal(err)
	}
	// G(jω) = 1/(jω)² = -1/ω².
	want := complex(-1.0/9, 0)
	if cmplx.Abs(g[0][0]-want) > 1e-12 {
		t.Fatalf("G = %v, want %v", g[0][0], want)
	}
}

func TestFreqResponseAtPoleFails(t *testing.T) {
	// jωI - A singular at ω = 1 for a pure oscillator.
	s := MustSystem(
		mat.FromRows([][]float64{{0, 1}, {-1, 0}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
	if _, err := s.FreqResponse(1); err == nil {
		t.Fatal("response at an imaginary-axis pole should fail")
	}
}

func TestBodeSISO(t *testing.T) {
	s := firstOrderLag(t)
	pts, err := s.Bode([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	// At the corner frequency: |G| = 2/√8 = 1/√2 → -3.01 dB, phase -45°.
	if math.Abs(pts[0].MagDB-(-3.0103)) > 1e-3 {
		t.Fatalf("corner magnitude = %v dB", pts[0].MagDB)
	}
	if math.Abs(pts[0].Phase-(-45)) > 1e-9 {
		t.Fatalf("corner phase = %v°", pts[0].Phase)
	}
}

func TestBodeRejectsMIMO(t *testing.T) {
	s := MustSystem(mat.Diag(-1, -2), mat.Eye(2), mat.Eye(2))
	if _, err := s.Bode([]float64{1}); err == nil {
		t.Fatal("MIMO Bode accepted")
	}
}

func TestDCGain(t *testing.T) {
	s := firstOrderLag(t)
	g, err := s.DCGain()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.At(0, 0)-1) > 1e-12 {
		t.Fatalf("DC gain = %v, want 1", g.At(0, 0))
	}
	di := MustSystem(
		mat.FromRows([][]float64{{0, 1}, {0, 0}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
	if _, err := di.DCGain(); err == nil {
		t.Fatal("DC gain of an integrator should fail")
	}
}

func TestDCGainMatchesFreqResponseLimit(t *testing.T) {
	s := MustSystem(
		mat.FromRows([][]float64{{0, 1}, {-4, -3}}),
		mat.ColVec(0, 2),
		mat.RowVec(1, 0),
	)
	dc, err := s.DCGain()
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.FreqResponse(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(g[0][0])-dc.At(0, 0)) > 1e-6 {
		t.Fatalf("G(j·0⁺) = %v vs DC %v", g[0][0], dc.At(0, 0))
	}
}

func TestLogSpace(t *testing.T) {
	ws := LogSpace(-1, 2, 4)
	want := []float64{0.1, 1, 10, 100}
	for i := range want {
		if math.Abs(ws[i]-want[i]) > 1e-9*want[i] {
			t.Fatalf("LogSpace = %v", ws)
		}
	}
	if got := LogSpace(0, 3, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("LogSpace n=1 = %v", got)
	}
}
