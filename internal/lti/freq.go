package lti

import (
	"fmt"
	"math"
	"math/cmplx"

	"adaptivertc/internal/mat"
)

// FreqResponse evaluates the transfer matrix G(jω) = C (jωI - A)⁻¹ B at
// a single angular frequency ω [rad/s], returning the q×r complex gain
// matrix. The complex solve is carried out on the equivalent real
// 2n×2n block system, keeping the package free of complex matrix
// machinery.
func (s *System) FreqResponse(w float64) ([][]complex128, error) {
	n, r, q := s.n, s.r, s.q
	// (jωI - A)(xr + j xi) = b  ⇔  [ -A  -ωI ; ωI  -A ] [xr; xi] = [b; 0]
	block := mat.Block([][]*mat.Dense{
		{mat.Neg(s.A), mat.Scale(-w, mat.Eye(n))},
		{mat.Scale(w, mat.Eye(n)), mat.Neg(s.A)},
	})
	rhs := mat.VStack(s.B, mat.New(n, r))
	x, err := mat.Solve(block, rhs)
	if err != nil {
		return nil, fmt.Errorf("lti: frequency %g rad/s is a pole of the system: %w", w, err)
	}
	xr := x.Slice(0, n, 0, r)
	xi := x.Slice(n, 2*n, 0, r)
	gr := mat.Mul(s.C, xr)
	gi := mat.Mul(s.C, xi)
	out := make([][]complex128, q)
	for i := 0; i < q; i++ {
		out[i] = make([]complex128, r)
		for j := 0; j < r; j++ {
			out[i][j] = complex(gr.At(i, j), gi.At(i, j))
		}
	}
	return out, nil
}

// BodePoint is one sample of a SISO frequency response.
type BodePoint struct {
	W     float64 // rad/s
	MagDB float64
	Phase float64 // degrees, unwrapped per point into (-180, 180]
}

// Bode samples the SISO frequency response at the given frequencies.
func (s *System) Bode(ws []float64) ([]BodePoint, error) {
	if s.r != 1 || s.q != 1 {
		return nil, fmt.Errorf("lti: Bode requires a SISO system, got %d×%d", s.q, s.r)
	}
	out := make([]BodePoint, 0, len(ws))
	for _, w := range ws {
		g, err := s.FreqResponse(w)
		if err != nil {
			return nil, err
		}
		v := g[0][0]
		out = append(out, BodePoint{
			W:     w,
			MagDB: 20 * math.Log10(cmplx.Abs(v)),
			Phase: cmplx.Phase(v) * 180 / math.Pi,
		})
	}
	return out, nil
}

// DCGain returns G(0) = -C A⁻¹ B for a system without poles at the
// origin.
func (s *System) DCGain() (*mat.Dense, error) {
	x, err := mat.Solve(s.A, s.B)
	if err != nil {
		return nil, fmt.Errorf("lti: DC gain undefined (pole at the origin): %w", err)
	}
	return mat.Neg(mat.Mul(s.C, x)), nil
}

// LogSpace returns n logarithmically spaced frequencies from 10^lo to
// 10^hi (exponents), for Bode sweeps.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{math.Pow(10, lo)}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = math.Pow(10, lo+float64(i)*step)
	}
	return out
}
