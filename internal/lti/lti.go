// Package lti models continuous-time linear time-invariant plants
//
//	ẋ(t) = A x(t) + B u(t)
//	y(t) = C x(t)
//
// (Eq. 1 of the paper) and their exact zero-order-hold discretizations
//
//	x[k+1] = Φ(h) x[k] + Γ(h) u[k],   Φ(h) = e^{Ah},  Γ(h) = ∫₀ʰ e^{As} ds · B
//
// (Eq. 4–5). It also provides the standard structural tests
// (controllability, observability) the paper assumes.
package lti

import (
	"fmt"

	"adaptivertc/internal/mat"
)

// System is a continuous-time LTI plant in state-space form.
type System struct {
	A *mat.Dense // n×n dynamics
	B *mat.Dense // n×r input map
	C *mat.Dense // q×n output map

	n, r, q int
}

// NewSystem validates dimensions and returns a continuous-time plant.
func NewSystem(a, b, c *mat.Dense) (*System, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("lti: A must be square, got %d×%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	if b.Rows() != n {
		return nil, fmt.Errorf("lti: B has %d rows, want %d", b.Rows(), n)
	}
	if c.Cols() != n {
		return nil, fmt.Errorf("lti: C has %d cols, want %d", c.Cols(), n)
	}
	return &System{A: a.Clone(), B: b.Clone(), C: c.Clone(), n: n, r: b.Cols(), q: c.Rows()}, nil
}

// MustSystem is NewSystem that panics on error; for package-level plant
// definitions whose dimensions are static.
func MustSystem(a, b, c *mat.Dense) *System {
	s, err := NewSystem(a, b, c)
	if err != nil {
		panic(err)
	}
	return s
}

// StateDim returns n, the number of states.
func (s *System) StateDim() int { return s.n }

// InputDim returns r, the number of control inputs.
func (s *System) InputDim() int { return s.r }

// OutputDim returns q, the number of measured outputs.
func (s *System) OutputDim() int { return s.q }

// Discrete is a discrete-time LTI system x[k+1] = Phi x[k] + Gamma u[k],
// y[k] = C x[k], obtained by sampling a continuous plant with a given
// hold interval.
type Discrete struct {
	Phi   *mat.Dense
	Gamma *mat.Dense
	C     *mat.Dense
	H     float64 // sampling/hold interval the pair was computed for
}

// Discretize returns the exact zero-order-hold discretization of the
// plant for hold interval h > 0 (Eq. 5).
func (s *System) Discretize(h float64) (*Discrete, error) {
	if h <= 0 {
		return nil, fmt.Errorf("lti: non-positive discretization interval %g", h)
	}
	phi, gamma := mat.ExpIntegral(s.A, s.B, h)
	return &Discrete{Phi: phi, Gamma: gamma, C: s.C.Clone(), H: h}, nil
}

// Poles returns the eigenvalues of A (continuous-time poles).
func (s *System) Poles() ([]complex128, error) { return mat.Eigenvalues(s.A) }

// IsStable reports whether the open-loop plant is Hurwitz stable.
func (s *System) IsStable() (bool, error) { return mat.IsHurwitzStable(s.A) }

// ControllabilityMatrix returns [B, AB, A²B, …, A^{n-1}B].
func (s *System) ControllabilityMatrix() *mat.Dense {
	blocks := make([]*mat.Dense, s.n)
	cur := s.B.Clone()
	for i := 0; i < s.n; i++ {
		blocks[i] = cur
		cur = mat.Mul(s.A, cur)
	}
	return mat.HStack(blocks...)
}

// ObservabilityMatrix returns [C; CA; CA²; …; CA^{n-1}].
func (s *System) ObservabilityMatrix() *mat.Dense {
	blocks := make([]*mat.Dense, s.n)
	cur := s.C.Clone()
	for i := 0; i < s.n; i++ {
		blocks[i] = cur
		cur = mat.Mul(cur, s.A)
	}
	return mat.VStack(blocks...)
}

// IsControllable reports whether (A, B) is controllable (Kalman rank
// test).
func (s *System) IsControllable() bool {
	return mat.Rank(s.ControllabilityMatrix(), 1e-9) == s.n
}

// IsObservable reports whether (A, C) is observable.
func (s *System) IsObservable() bool {
	return mat.Rank(s.ObservabilityMatrix(), 1e-9) == s.n
}

// Step advances the continuous plant by dt under constant input u,
// using the exact ZOH solution (no integration error). x and u are
// column vectors as slices.
func (s *System) Step(x, u []float64, dt float64) ([]float64, error) {
	d, err := s.Discretize(dt)
	if err != nil {
		return nil, err
	}
	xn := mat.MulVec(d.Phi, x)
	bu := mat.MulVec(d.Gamma, u)
	for i := range xn {
		xn[i] += bu[i]
	}
	return xn, nil
}

// Output returns y = Cx.
func (s *System) Output(x []float64) []float64 { return mat.MulVec(s.C, x) }

// Poles returns the eigenvalues of Phi (discrete-time poles).
func (d *Discrete) Poles() ([]complex128, error) { return mat.Eigenvalues(d.Phi) }

// IsStable reports Schur stability of the sampled plant.
func (d *Discrete) IsStable() (bool, error) { return mat.IsSchurStable(d.Phi) }
