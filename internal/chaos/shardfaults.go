package chaos

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrInjectedShard is the error a shard-fault hook returns: the worker
// answers the dispatch with a 5xx, the coordinator's lease machinery
// re-dispatches the shard, and — because shards are pure functions —
// the merged certificate is byte-identical to a fault-free run.
var ErrInjectedShard = errors.New("chaos: injected shard fault")

// ShardFaults injects worker-side shard failures through
// dist.WorkerConfig.FaultHook, mirroring WorkerFaults: every draw comes
// from a seeded RNG under a mutex, the window opens and closes
// explicitly, and every injection is counted. Three fault shapes cover
// the distributed failure model:
//
//   - death (Partition / KillAfter): the worker stops answering shards,
//     either forever (a partitioned or dead node) or after its first N
//     evaluations (a node that dies mid-job);
//   - fail (failProb): sporadic shard errors — a flaky node;
//   - slow (slowProb + delay): a straggler that holds a shard until the
//     coordinator's lease expires and the shard moves on.
//
// The invariant chaos tests assert on top: whatever mix fires, the
// final bracket is byte-identical to a single-node run.
type ShardFaults struct {
	mu        sync.Mutex
	rng       *rand.Rand
	failProb  float64
	slowProb  float64
	delay     time.Duration
	partition bool
	killAfter int64 // fail every evaluation after this many, when > 0
	seen      int64
	injected  int64
	slowed    int64
	active    bool
}

// NewShardFaults builds an injector drawing from seed. Configure the
// mix; the window starts closed.
func NewShardFaults(seed int64) *ShardFaults {
	return &ShardFaults{rng: rand.New(rand.NewSource(seed))}
}

// Configure sets the per-shard fault mix: failProb fails the shard with
// ErrInjectedShard, slowProb (drawn when not failing) stalls it for
// delay before proceeding.
func (s *ShardFaults) Configure(failProb, slowProb float64, delay time.Duration) {
	s.mu.Lock()
	s.failProb, s.slowProb, s.delay = failProb, slowProb, delay
	s.mu.Unlock()
}

// Partition makes every shard fail while the window is open — the
// coordinator sees a node that registered and then stopped answering.
func (s *ShardFaults) Partition(on bool) {
	s.mu.Lock()
	s.partition = on
	s.mu.Unlock()
}

// KillAfter arranges for the worker to die mid-job: the first n shard
// evaluations succeed, every later one fails. Zero disables.
func (s *ShardFaults) KillAfter(n int64) {
	s.mu.Lock()
	s.killAfter = n
	s.mu.Unlock()
}

// Open starts the fault window.
func (s *ShardFaults) Open() {
	s.mu.Lock()
	s.active = true
	s.mu.Unlock()
}

// Close ends the fault window: subsequent shards evaluate clean.
func (s *ShardFaults) Close() {
	s.mu.Lock()
	s.active = false
	s.mu.Unlock()
}

// Injected reports how many shard evaluations were failed and stalled.
func (s *ShardFaults) Injected() (failed, slowed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected, s.slowed
}

// Hook returns the function to install as dist.WorkerConfig.FaultHook.
func (s *ShardFaults) Hook() func(ctx context.Context) error {
	return func(ctx context.Context) error {
		s.mu.Lock()
		if !s.active {
			s.mu.Unlock()
			return nil
		}
		s.seen++
		fail := s.partition || (s.killAfter > 0 && s.seen > s.killAfter)
		var slow bool
		delay := s.delay
		if !fail {
			u := s.rng.Float64()
			fail = u < s.failProb
			slow = !fail && u < s.failProb+s.slowProb
		}
		if fail {
			s.injected++
		}
		if slow {
			s.slowed++
		}
		s.mu.Unlock()
		if fail {
			return ErrInjectedShard
		}
		if slow && delay > 0 {
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
			}
		}
		return nil
	}
}
