package chaos

import (
	"errors"
	"fmt"
	"sync"

	"adaptivertc/internal/store"
)

// ErrDiskFault is the default error a broken FaultyFS returns — it
// stands in for ENOSPC, yanked volumes, and permission loss.
var ErrDiskFault = errors.New("chaos: injected disk fault")

// ErrCrashed is returned by every operation at and after an injected
// crash point in CrashStop mode: the simulated process is dead. The
// test then discards the in-memory store and reopens the directory
// with a clean FS, exactly like a restart after SIGKILL.
var ErrCrashed = errors.New("chaos: crashed at injected crash point")

// CrashMode selects what happens at a crash point.
type CrashMode int

const (
	// CrashFail fails the one operation and then behaves normally — a
	// transient fault the running process must repair around (the store
	// truncates the torn tail before its next append).
	CrashFail CrashMode = iota
	// CrashStop fails the operation and every subsequent one — process
	// death. Recovery happens on reopen, not in-process.
	CrashStop
)

// CrashPlan schedules one crash at the Nth segment write or the Nth
// fsync observed through the FS. Every boundary the store cares about
// is enumerable this way: run a workload once to count its writes and
// syncs, then replay it once per (counter, point) pair.
type CrashPlan struct {
	// AfterWrites, when > 0, crashes the Nth File.Write (1-based).
	AfterWrites int64
	// AfterSyncs, when > 0, crashes the Nth File.Sync (1-based).
	AfterSyncs int64
	// Mode selects transient-fault vs process-death semantics.
	Mode CrashMode
	// Partial makes the crashing write persist only the first half of
	// its bytes — a torn append, the classic power-cut signature.
	Partial bool
	// BitFlip makes the crashing write persist all its bytes with the
	// final byte flipped — media corruption of an unacknowledged write.
	// The write still reports failure: flipped bytes are never acked.
	BitFlip bool
}

// FaultyFS wraps a store.FS with switchable fault injection and
// scheduled crash points. The zero-value fault state passes everything
// through. Safe for concurrent use; toggles apply to operations that
// start after the toggle.
type FaultyFS struct {
	inner store.FS

	mu         sync.Mutex
	failWrites bool
	failReads  bool
	corrupt    bool // reads succeed but return flipped bytes
	err        error

	plan    CrashPlan
	planSet bool
	writes  int64
	syncs   int64
	crashed bool

	writesFailed int64
	readsFailed  int64
	corrupted    int64
}

// NewFaultyFS wraps inner (nil selects the real filesystem).
func NewFaultyFS(inner store.FS) *FaultyFS {
	if inner == nil {
		inner = store.OSFS{}
	}
	return &FaultyFS{inner: inner, err: ErrDiskFault}
}

// BreakWrites makes every mutation (segment writes, fsyncs, mkdir,
// rename, truncate) fail with err until Heal; nil keeps ErrDiskFault.
func (f *FaultyFS) BreakWrites(err error) {
	f.mu.Lock()
	f.failWrites = true
	if err != nil {
		f.err = err
	}
	f.mu.Unlock()
}

// BreakReads makes every read fail with err until Heal; nil keeps
// ErrDiskFault.
func (f *FaultyFS) BreakReads(err error) {
	f.mu.Lock()
	f.failReads = true
	if err != nil {
		f.err = err
	}
	f.mu.Unlock()
}

// CorruptReads makes reads return the true contents with the last byte
// flipped — the bit-rot case the store's frame checksums must catch.
func (f *FaultyFS) CorruptReads() {
	f.mu.Lock()
	f.corrupt = true
	f.mu.Unlock()
}

// Heal clears every fault toggle (not a scheduled crash plan): the
// disk behaves again.
func (f *FaultyFS) Heal() {
	f.mu.Lock()
	f.failWrites, f.failReads, f.corrupt = false, false, false
	f.err = ErrDiskFault
	f.mu.Unlock()
}

// SetCrashPlan arms plan and resets the write/sync counters. A zero
// plan disarms.
func (f *FaultyFS) SetCrashPlan(plan CrashPlan) {
	f.mu.Lock()
	f.plan = plan
	f.planSet = plan.AfterWrites > 0 || plan.AfterSyncs > 0
	f.writes, f.syncs = 0, 0
	f.crashed = false
	f.mu.Unlock()
}

// Counts reports how many segment writes and fsyncs have passed
// through since the last SetCrashPlan — the reference run uses it to
// enumerate every crash point a workload offers.
func (f *FaultyFS) Counts() (writes, syncs int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs
}

// Crashed reports whether an armed crash point has fired.
func (f *FaultyFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Injected reports how many operations were failed or corrupted by the
// fault toggles (crash points are not counted here).
func (f *FaultyFS) Injected() (writesFailed, readsFailed, corrupted int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writesFailed, f.readsFailed, f.corrupted
}

// gateWrite is the common prologue for mutating operations: dead after
// a CrashStop point, failing while BreakWrites is set.
func (f *FaultyFS) gateWrite(op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed && f.plan.Mode == CrashStop {
		return ErrCrashed
	}
	if f.failWrites {
		f.writesFailed++
		return fmt.Errorf("%s %s: %w", op, path, f.err)
	}
	return nil
}

// gateRead is the read prologue; the corrupt flag is returned for the
// caller to apply.
func (f *FaultyFS) gateRead(op, path string) (corrupt bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed && f.plan.Mode == CrashStop {
		return false, ErrCrashed
	}
	if f.failReads {
		f.readsFailed++
		return false, fmt.Errorf("%s %s: %w", op, path, f.err)
	}
	return f.corrupt, nil
}

// MkdirAll implements store.FS.
func (f *FaultyFS) MkdirAll(dir string) error {
	if err := f.gateWrite("mkdir", dir); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// OpenAppend implements store.FS.
func (f *FaultyFS) OpenAppend(path string) (store.File, int64, error) {
	if err := f.gateWrite("open", path); err != nil {
		return nil, 0, err
	}
	file, size, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, 0, err
	}
	return &faultyFile{inner: file, fs: f}, size, nil
}

// ReadDir implements store.FS.
func (f *FaultyFS) ReadDir(dir string) ([]string, error) {
	if _, err := f.gateRead("readdir", dir); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// ReadFile implements store.FS.
func (f *FaultyFS) ReadFile(path string) ([]byte, error) {
	corrupt, err := f.gateRead("read", path)
	if err != nil {
		return nil, err
	}
	data, rerr := f.inner.ReadFile(path)
	if rerr != nil {
		return nil, rerr
	}
	if corrupt && len(data) > 0 {
		f.mu.Lock()
		f.corrupted++
		f.mu.Unlock()
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-1] ^= 0xFF
		return flipped, nil
	}
	return data, nil
}

// ReadAt implements store.FS.
func (f *FaultyFS) ReadAt(path string, p []byte, off int64) error {
	corrupt, err := f.gateRead("read", path)
	if err != nil {
		return err
	}
	if err := f.inner.ReadAt(path, p, off); err != nil {
		return err
	}
	if corrupt && len(p) > 0 {
		f.mu.Lock()
		f.corrupted++
		f.mu.Unlock()
		p[len(p)-1] ^= 0xFF
	}
	return nil
}

// Rename implements store.FS.
func (f *FaultyFS) Rename(oldpath, newpath string) error {
	if err := f.gateWrite("rename", oldpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements store.FS. Removes pass the fault toggles through:
// a disk that can't delete doesn't block the degraded-mode ladder —
// but a crashed process can't delete either.
func (f *FaultyFS) Remove(path string) error {
	f.mu.Lock()
	dead := f.crashed && f.plan.Mode == CrashStop
	f.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return f.inner.Remove(path)
}

// Truncate implements store.FS.
func (f *FaultyFS) Truncate(path string, size int64) error {
	if err := f.gateWrite("truncate", path); err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

// SyncDir implements store.FS.
func (f *FaultyFS) SyncDir(dir string) error {
	if err := f.gateWrite("syncdir", dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultyFile counts writes and syncs against the crash plan.
type faultyFile struct {
	inner store.File
	fs    *FaultyFS
}

func (file *faultyFile) Write(p []byte) (int, error) {
	f := file.fs
	f.mu.Lock()
	if f.crashed && f.plan.Mode == CrashStop {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	if f.failWrites {
		f.writesFailed++
		err := f.err
		f.mu.Unlock()
		return 0, fmt.Errorf("write: %w", err)
	}
	f.writes++
	fire := f.planSet && f.plan.AfterWrites > 0 && f.writes == f.plan.AfterWrites
	plan := f.plan
	if fire {
		f.crashed = true
	}
	f.mu.Unlock()
	if !fire {
		return file.inner.Write(p)
	}
	// Crash point: persist nothing, a torn prefix, or a bit-flipped
	// copy — then report failure. Crashing bytes are never acked.
	switch {
	case plan.BitFlip && len(p) > 0:
		flipped := append([]byte(nil), p...)
		flipped[len(flipped)-1] ^= 0xFF
		//lint:ignore droppederr the crash already fails the op; how much garbage landed is the recovery test's input, not a result
		file.inner.Write(flipped)
	case plan.Partial && len(p) > 1:
		//lint:ignore droppederr the crash already fails the op; how much garbage landed is the recovery test's input, not a result
		file.inner.Write(p[:len(p)/2])
	}
	return 0, ErrCrashed
}

func (file *faultyFile) Sync() error {
	f := file.fs
	f.mu.Lock()
	if f.crashed && f.plan.Mode == CrashStop {
		f.mu.Unlock()
		return ErrCrashed
	}
	if f.failWrites {
		f.writesFailed++
		err := f.err
		f.mu.Unlock()
		return fmt.Errorf("sync: %w", err)
	}
	f.syncs++
	fire := f.planSet && f.plan.AfterSyncs > 0 && f.syncs == f.plan.AfterSyncs
	if fire {
		f.crashed = true
	}
	f.mu.Unlock()
	if fire {
		// The bytes may well be on their way to the platter — a crashed
		// fsync promises nothing either way. Reporting failure without
		// syncing models the strictest case.
		return ErrCrashed
	}
	return file.inner.Sync()
}

func (file *faultyFile) Close() error {
	f := file.fs
	f.mu.Lock()
	dead := f.crashed && f.plan.Mode == CrashStop
	f.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return file.inner.Close()
}
