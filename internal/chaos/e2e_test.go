package chaos

// Service-layer chaos tests: a real adaserved instance (httptest) with
// a faulty disk, faulty workers, and (m, K)-bursty resilient clients.
// The assertions are the four invariants from the package comment: no
// dropped work, no false certificates, a bounded queue, and clean
// recovery once the fault window closes.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/client"
	"adaptivertc/internal/server"
)

// chaosRequests returns distinct small certification requests: 1×1
// systems whose JSR is the matrix entry itself, so each certifies in
// microseconds and the canonical answer is beyond doubt.
func chaosRequests(n int) []api.CertifyRequest {
	reqs := make([]api.CertifyRequest, n)
	for i := range reqs {
		rho := 0.1 + 0.05*float64(i)
		reqs[i] = api.CertifyRequest{Version: 1, Matrices: [][][]float64{{{rho}}}}
	}
	return reqs
}

// referenceBytes certifies every request against a pristine server —
// no faults, no admission pressure — and returns the canonical bytes
// each request must produce under chaos too.
func referenceBytes(t *testing.T, reqs []api.CertifyRequest) map[int][]byte {
	t.Helper()
	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("reference shutdown: %v", err)
		}
	}()
	c, err := client.New(client.Options{BaseURL: ts.URL, Seed: 1, PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[int][]byte, len(reqs))
	for i, req := range reqs {
		body, err := c.CertifyBytes(context.Background(), req)
		if err != nil {
			t.Fatalf("reference certify %d: %v", i, err)
		}
		ref[i] = body
	}
	return ref
}

func TestServiceInvariantsUnderChaos(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			runChaos(t, workers)
		})
	}
}

func runChaos(t *testing.T, workers int) {
	const (
		nRequests = 6
		queueSize = 4
		nClients  = 3
	)
	reqs := chaosRequests(nRequests)
	ref := referenceBytes(t, reqs)

	// Service under test: faulty disk from the start, faulty workers
	// while the window is open, a deliberately tight queue.
	ffs := NewFaultyFS(nil)
	cache, err := certcache.New(certcache.Options{
		Dir:           t.TempDir(),
		FS:            ffs,
		ProbeInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wf := NewWorkerFaults(1)
	wf.Configure(0.3, 0.2, time.Millisecond)
	srv, err := server.New(server.Config{
		Workers:     workers,
		QueueSize:   queueSize,
		Cache:       cache,
		MaxSyncWork: -1, // force every request through the bounded queue
		MaxInflight: 16,
		FaultHook:   wf.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	ffs.BreakWrites(nil) // the disk is gone before the first certificate lands
	wf.Open()

	// Invariant 3 (bounded queue): poll /healthz throughout the storm.
	stopHealth := make(chan struct{})
	var healthWG sync.WaitGroup
	healthWG.Add(1)
	var maxQueueDepth int
	go func() {
		defer healthWG.Done()
		for {
			select {
			case <-stopHealth:
				return
			case <-time.After(2 * time.Millisecond):
			}
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				continue
			}
			var h api.Health
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err != nil {
				continue
			}
			if h.QueueDepth > maxQueueDepth {
				maxQueueDepth = h.QueueDepth
			}
		}
	}()

	// Invariants 1 and 2: every bursty client converges on every
	// request, and every answer matches the pristine reference bytes.
	type result struct {
		client, req int
		body        []byte
		err         error
	}
	results := make(chan result, nClients*nRequests)
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := client.New(client.Options{
				BaseURL:      ts.URL,
				ClientID:     fmt.Sprintf("chaos-%d", ci),
				Seed:         int64(100 + ci),
				MaxAttempts:  60,
				BaseBackoff:  2 * time.Millisecond,
				MaxBackoff:   20 * time.Millisecond,
				PollInterval: 2 * time.Millisecond,
				// The storm makes real faults: keep the breaker wide so
				// convergence, not fail-fast, is what we measure.
				BreakerThreshold: 1000,
			})
			if err != nil {
				results <- result{client: ci, err: err}
				return
			}
			// (m, K)-shaped arrivals: at most 2 sends per 4 slots.
			pattern, err := BurstPattern(int64(ci+1), 4*nRequests, 2, 4)
			if err != nil {
				results <- result{client: ci, err: err}
				return
			}
			next := 0
			for _, send := range pattern {
				if !send {
					time.Sleep(time.Millisecond)
					continue
				}
				if next >= nRequests {
					break
				}
				ri := next
				next++
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				body, err := cl.CertifyBytes(ctx, reqs[ri])
				cancel()
				results <- result{client: ci, req: ri, body: body, err: err}
			}
			// Drain any requests the pattern's length didn't reach.
			for ; next < nRequests; next++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				body, err := cl.CertifyBytes(ctx, reqs[next])
				cancel()
				results <- result{client: ci, req: next, body: body, err: err}
			}
		}()
	}
	wg.Wait()
	close(results)
	close(stopHealth)
	healthWG.Wait()

	delivered := 0
	for r := range results {
		if r.err != nil {
			t.Errorf("client %d request %d dropped: %v", r.client, r.req, r.err)
			continue
		}
		delivered++
		if string(r.body) != string(ref[r.req]) {
			t.Errorf("client %d request %d: bytes differ from pristine reference\n got: %s\nwant: %s",
				r.client, r.req, r.body, ref[r.req])
		}
	}
	if want := nClients * nRequests; delivered != want {
		t.Errorf("delivered %d results, want %d (no dropped work)", delivered, want)
	}
	if maxQueueDepth > queueSize {
		t.Errorf("queue depth reached %d, capacity is %d", maxQueueDepth, queueSize)
	}

	// The storm must actually have stormed, or the test proves nothing.
	if wFailed, _, _ := ffs.Injected(); wFailed == 0 {
		t.Error("faulty fs never fired")
	}
	if degraded, _ := cache.Degraded(); !degraded {
		t.Error("cache never demoted to memory-only despite a broken disk")
	}
	st := cache.Stats()
	if st.Demotions == 0 {
		t.Error("no demotion recorded")
	}

	// Invariant 4 (clean recovery): close the window, heal the disk,
	// and the next write re-probes and re-promotes the disk layer.
	wf.Close()
	ffs.Heal()
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		if cache.Probe() {
			recovered = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("cache did not recover after the fault window closed")
	}
	if degraded, reason := cache.Degraded(); degraded {
		t.Fatalf("cache still degraded after heal: %s", reason)
	}
	if st := cache.Stats(); st.Recoveries == 0 {
		t.Error("no recovery recorded")
	}

	// And a fresh post-storm request certifies clean, first try.
	cl, err := client.New(client.Options{BaseURL: ts.URL, Seed: 9, MaxAttempts: 3, PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	body, err := cl.CertifyBytes(ctx, reqs[0])
	if err != nil {
		t.Fatalf("post-storm certify: %v", err)
	}
	if string(body) != string(ref[0]) {
		t.Fatal("post-storm bytes differ from reference")
	}
}

// TestShedCarriesRetryAfter drives a server with a one-token bucket and
// asserts the shed contract the resilient client depends on: 429 with
// a Retry-After header and a matching JSON hint.
func TestShedCarriesRetryAfter(t *testing.T) {
	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Workers: 1, Cache: cache, RatePerSec: 0.5, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	body := `{"version":1,"matrices":[[[0.5]]]}`
	do := func() (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/certify", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", "shed-test")
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, raw
	}
	resp1, _ := do()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", resp1.StatusCode)
	}
	resp2, raw := do()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if er.RetryAfterSeconds < 1 {
		t.Fatalf("retry_after_seconds = %d, want ≥ 1", er.RetryAfterSeconds)
	}
}
