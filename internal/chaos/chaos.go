// Package chaos is the service-layer fault harness for adaserved: a
// set of seed-deterministic injectors that break the service's
// environment — the cache's disk, the certification workers, the
// client arrival pattern — while end-to-end tests assert the
// invariants the service promises to keep anyway:
//
//   - no dropped work: every request a resilient client submits
//     eventually certifies, through sheds, worker faults, and
//     degraded-cache operation;
//   - no false certificates: every answer is byte-identical to the
//     canonical result a fault-free run produces — faults may slow the
//     service down, never change its mathematics;
//   - bounded queue: the job queue never exceeds its capacity; excess
//     load is shed with honest Retry-After, not buffered without bound;
//   - clean recovery: when the fault window closes, the cache
//     re-promotes its disk layer and /healthz returns to "ok".
//
// The injectors mirror the repo's simulation-level fault philosophy
// (internal/faults): all randomness is drawn from explicitly seeded
// RNGs, so a failing chaos run reproduces from its seed.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjectedWorker is the error a worker-fault hook returns; it fails
// the certification exactly like an engine error (never cached, job
// marked failed), which is the transient failure a resilient client
// must retry through.
var ErrInjectedWorker = errors.New("chaos: injected worker fault")

// WorkerFaults injects slow and failing certification workers through
// server.Config.FaultHook. Faults fire only while the window is open
// (Open/Close), each draw comes from the seeded RNG under a mutex, and
// every injection is counted. With concurrent workers the interleaving
// of draws is scheduling-dependent, but the fault mix converges to the
// configured probabilities for any seed — the invariants the harness
// checks hold for every interleaving.
type WorkerFaults struct {
	mu       sync.Mutex
	rng      *rand.Rand
	failProb float64
	slowProb float64
	delay    time.Duration
	active   bool
	injected int64
	slowed   int64
}

// NewWorkerFaults builds an injector drawing from seed. Configure sets
// the mix; the window starts closed.
func NewWorkerFaults(seed int64) *WorkerFaults {
	return &WorkerFaults{rng: rand.New(rand.NewSource(seed))}
}

// Configure sets the per-certification fault mix: failProb aborts the
// computation with ErrInjectedWorker, slowProb (drawn when not
// failing) stalls it for delay before proceeding.
func (w *WorkerFaults) Configure(failProb, slowProb float64, delay time.Duration) {
	w.mu.Lock()
	w.failProb, w.slowProb, w.delay = failProb, slowProb, delay
	w.mu.Unlock()
}

// Open starts the fault window.
func (w *WorkerFaults) Open() {
	w.mu.Lock()
	w.active = true
	w.mu.Unlock()
}

// Close ends the fault window: subsequent certifications run clean.
func (w *WorkerFaults) Close() {
	w.mu.Lock()
	w.active = false
	w.mu.Unlock()
}

// Injected reports how many certifications were failed and stalled.
func (w *WorkerFaults) Injected() (failed, slowed int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.injected, w.slowed
}

// Hook returns the function to install as server.Config.FaultHook.
func (w *WorkerFaults) Hook() func(ctx context.Context) error {
	return func(ctx context.Context) error {
		w.mu.Lock()
		if !w.active {
			w.mu.Unlock()
			return nil
		}
		u := w.rng.Float64()
		fail := u < w.failProb
		slow := !fail && u < w.failProb+w.slowProb
		delay := w.delay
		if fail {
			w.injected++
		}
		if slow {
			w.slowed++
		}
		w.mu.Unlock()
		if fail {
			return ErrInjectedWorker
		}
		if slow && delay > 0 {
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
			}
		}
		return nil
	}
}

// BurstPattern draws a length-n client send schedule shaped like the
// paper's (m, K) weakly-hard constraint, repurposed for load: slot i
// sends a request iff pattern[i], and every window of K consecutive
// slots contains at most m sends. The draw is greedy-biased toward
// bursting — each slot sends whenever the window constraint still
// allows it with probability burstBias — so the pattern exercises the
// admission path with maximal legal bursts, yet stays bounded by
// construction. Deterministic in seed.
func BurstPattern(seed int64, n, m, k int) ([]bool, error) {
	if n <= 0 || m < 0 || k < 1 {
		return nil, fmt.Errorf("chaos: invalid burst pattern (n=%d, m=%d, K=%d)", n, m, k)
	}
	const burstBias = 0.9
	rng := rand.New(rand.NewSource(seed))
	pattern := make([]bool, n)
	inWindow := 0 // sends among the last min(i, k-1) slots
	for i := 0; i < n; i++ {
		if i >= k && pattern[i-k] {
			inWindow--
		}
		if inWindow < m && rng.Float64() < burstBias {
			pattern[i] = true
			inWindow++
		}
	}
	return pattern, nil
}
