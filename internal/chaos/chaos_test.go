package chaos

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adaptivertc/internal/certcache"
	"adaptivertc/internal/sched"
)

func TestFaultyFSTogglesAndCounts(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultyFS(certcache.OSFS{})
	p := filepath.Join(dir, "x")

	if err := f.WriteFile(p, []byte("hello")); err != nil {
		t.Fatalf("healthy write failed: %v", err)
	}
	got, err := f.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("healthy read = %q, %v", got, err)
	}

	f.BreakWrites(nil)
	if err := f.WriteFile(p, []byte("nope")); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("broken write err = %v, want ErrDiskFault", err)
	}
	if err := f.MkdirAll(filepath.Join(dir, "sub")); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("broken mkdir err = %v, want ErrDiskFault", err)
	}

	f.BreakReads(os.ErrPermission)
	if _, err := f.ReadFile(p); !errors.Is(err, os.ErrPermission) {
		t.Fatalf("broken read err = %v, want ErrPermission", err)
	}

	f.Heal()
	f.CorruptReads()
	got, err = f.ReadFile(p)
	if err != nil {
		t.Fatalf("corrupt read should succeed: %v", err)
	}
	if string(got) == "hello" {
		t.Fatal("corrupt read returned pristine bytes")
	}
	if got[len(got)-1] != 'o'^0xFF {
		t.Fatalf("corruption should flip the last byte, got %q", got)
	}

	f.Heal()
	if got, err = f.ReadFile(p); err != nil || string(got) != "hello" {
		t.Fatalf("healed read = %q, %v", got, err)
	}
	w, r, c := f.Injected()
	if w != 2 || r != 1 || c != 1 {
		t.Fatalf("injected counts = (%d, %d, %d), want (2, 1, 1)", w, r, c)
	}
}

func TestWorkerFaultsWindowAndDeterminism(t *testing.T) {
	draw := func(seed int64, n int) []bool {
		w := NewWorkerFaults(seed)
		w.Configure(0.5, 0, 0)
		w.Open()
		hook := w.Hook()
		out := make([]bool, n)
		for i := range out {
			out[i] = hook(context.Background()) != nil
		}
		return out
	}
	a, b := draw(7, 64), draw(7, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between equal seeds", i)
		}
	}

	w := NewWorkerFaults(7)
	w.Configure(1, 0, 0) // every certification fails while open
	hook := w.Hook()
	if err := hook(context.Background()); err != nil {
		t.Fatalf("closed window injected a fault: %v", err)
	}
	w.Open()
	if err := hook(context.Background()); !errors.Is(err, ErrInjectedWorker) {
		t.Fatalf("open window err = %v, want ErrInjectedWorker", err)
	}
	w.Close()
	if err := hook(context.Background()); err != nil {
		t.Fatalf("closed window injected a fault: %v", err)
	}
	if failed, _ := w.Injected(); failed != 1 {
		t.Fatalf("injected = %d, want 1", failed)
	}
}

func TestWorkerFaultsSlowRespectsContext(t *testing.T) {
	w := NewWorkerFaults(1)
	w.Configure(0, 1, time.Hour) // every certification stalls
	w.Open()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := w.Hook()(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("slow fault ignored context cancellation")
	}
}

func TestBurstPatternSatisfiesWeaklyHard(t *testing.T) {
	const period = 1.0
	for _, tc := range []struct {
		seed    int64
		n, m, k int
	}{
		{1, 200, 1, 10},
		{2, 200, 3, 5},
		{3, 500, 2, 7},
		{99, 64, 5, 5}, // m == K: every slot may send
	} {
		pattern, err := BurstPattern(tc.seed, tc.n, tc.m, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		// Map sends to overruns and validate against the repo's own
		// (m, K) checker: a burst schedule is a weakly-hard sequence.
		resp := make([]float64, len(pattern))
		sends := 0
		for i, send := range pattern {
			if send {
				resp[i] = 1.5 * period
				sends++
			} else {
				resp[i] = 0.5 * period
			}
		}
		ok, err := sched.SatisfiesWeaklyHard(resp, period, tc.m, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed=%d (m=%d,K=%d): pattern violates its own constraint", tc.seed, tc.m, tc.k)
		}
		if tc.m > 0 && sends == 0 {
			t.Fatalf("seed=%d: pattern never sends", tc.seed)
		}
	}

	a, _ := BurstPattern(42, 100, 2, 8)
	b, _ := BurstPattern(42, 100, 2, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs between equal seeds", i)
		}
	}

	if _, err := BurstPattern(1, 0, 1, 1); err == nil {
		t.Fatal("n=0 should error")
	}
}
