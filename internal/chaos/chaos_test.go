package chaos

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adaptivertc/internal/sched"
)

func writeVia(f *FaultyFS, p string, data []byte) error {
	file, _, err := f.OpenAppend(p)
	if err != nil {
		return err
	}
	if _, err := file.Write(data); err != nil {
		file.Close()
		return err
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

func TestFaultyFSTogglesAndCounts(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultyFS(nil)
	p := filepath.Join(dir, "x")

	if err := writeVia(f, p, []byte("hello")); err != nil {
		t.Fatalf("healthy write failed: %v", err)
	}
	got, err := f.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("healthy read = %q, %v", got, err)
	}

	f.BreakWrites(nil)
	if err := writeVia(f, p, []byte("nope")); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("broken write err = %v, want ErrDiskFault", err)
	}
	if err := f.MkdirAll(filepath.Join(dir, "sub")); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("broken mkdir err = %v, want ErrDiskFault", err)
	}

	f.BreakReads(os.ErrPermission)
	if _, err := f.ReadFile(p); !errors.Is(err, os.ErrPermission) {
		t.Fatalf("broken read err = %v, want ErrPermission", err)
	}
	if err := f.ReadAt(p, make([]byte, 1), 0); !errors.Is(err, os.ErrPermission) {
		t.Fatalf("broken ReadAt err = %v, want ErrPermission", err)
	}

	f.Heal()
	f.CorruptReads()
	got, err = f.ReadFile(p)
	if err != nil {
		t.Fatalf("corrupt read should succeed: %v", err)
	}
	if string(got) == "hello" {
		t.Fatal("corrupt read returned pristine bytes")
	}
	if got[len(got)-1] != 'o'^0xFF {
		t.Fatalf("corruption should flip the last byte, got %q", got)
	}
	buf := make([]byte, 5)
	if err := f.ReadAt(p, buf, 0); err != nil {
		t.Fatalf("corrupt ReadAt should succeed: %v", err)
	}
	if buf[4] != 'o'^0xFF {
		t.Fatalf("corrupt ReadAt should flip the last byte, got %q", buf)
	}

	f.Heal()
	if got, err = f.ReadFile(p); err != nil || string(got) != "hello" {
		t.Fatalf("healed read = %q, %v", got, err)
	}
	w, r, c := f.Injected()
	if w != 2 || r != 2 || c != 2 {
		t.Fatalf("injected counts = (%d, %d, %d), want (2, 2, 2)", w, r, c)
	}
}

func TestFaultyFSCrashPlan(t *testing.T) {
	dir := t.TempDir()
	t.Run("stop-after-write", func(t *testing.T) {
		f := NewFaultyFS(nil)
		p := filepath.Join(dir, "stop")
		f.SetCrashPlan(CrashPlan{AfterWrites: 2, Mode: CrashStop})
		if err := writeVia(f, p, []byte("one")); err != nil {
			t.Fatalf("write before crash point: %v", err)
		}
		if err := writeVia(f, p, []byte("two")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("write at crash point = %v, want ErrCrashed", err)
		}
		if !f.Crashed() {
			t.Fatal("crash point did not latch")
		}
		// The process is dead: everything fails from here on.
		if err := writeVia(f, p, []byte("three")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("write after crash = %v, want ErrCrashed", err)
		}
		if _, err := f.ReadFile(p); !errors.Is(err, ErrCrashed) {
			t.Fatalf("read after crash = %v, want ErrCrashed", err)
		}
		// The on-disk bytes hold only what preceded the crash point.
		data, err := os.ReadFile(p)
		if err != nil || string(data) != "one" {
			t.Fatalf("on-disk bytes after crash = %q, %v", data, err)
		}
	})
	t.Run("fail-is-transient", func(t *testing.T) {
		f := NewFaultyFS(nil)
		p := filepath.Join(dir, "fail")
		f.SetCrashPlan(CrashPlan{AfterWrites: 1, Mode: CrashFail})
		if err := writeVia(f, p, []byte("lost")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("write at crash point = %v, want ErrCrashed", err)
		}
		if err := writeVia(f, p, []byte("kept")); err != nil {
			t.Fatalf("write after transient crash: %v", err)
		}
		data, err := os.ReadFile(p)
		if err != nil || string(data) != "kept" {
			t.Fatalf("on-disk bytes = %q, %v", data, err)
		}
	})
	t.Run("partial-write", func(t *testing.T) {
		f := NewFaultyFS(nil)
		p := filepath.Join(dir, "partial")
		f.SetCrashPlan(CrashPlan{AfterWrites: 1, Mode: CrashStop, Partial: true})
		if err := writeVia(f, p, []byte("abcdef")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("write at crash point = %v, want ErrCrashed", err)
		}
		data, err := os.ReadFile(p)
		if err != nil || string(data) != "abc" {
			t.Fatalf("torn prefix = %q, %v, want first half", data, err)
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		f := NewFaultyFS(nil)
		p := filepath.Join(dir, "flip")
		f.SetCrashPlan(CrashPlan{AfterWrites: 1, Mode: CrashStop, BitFlip: true})
		if err := writeVia(f, p, []byte("abc")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("write at crash point = %v, want ErrCrashed", err)
		}
		data, err := os.ReadFile(p)
		if err != nil || string(data) != "ab"+string([]byte{'c' ^ 0xFF}) {
			t.Fatalf("flipped bytes = %q, %v", data, err)
		}
	})
	t.Run("stop-after-sync", func(t *testing.T) {
		f := NewFaultyFS(nil)
		p := filepath.Join(dir, "sync")
		f.SetCrashPlan(CrashPlan{AfterSyncs: 1, Mode: CrashStop})
		if err := writeVia(f, p, []byte("w")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("sync at crash point = %v, want ErrCrashed", err)
		}
		if w, s := f.Counts(); w != 1 || s != 1 {
			t.Fatalf("counts = (%d, %d), want (1, 1)", w, s)
		}
	})
}

func TestWorkerFaultsWindowAndDeterminism(t *testing.T) {
	draw := func(seed int64, n int) []bool {
		w := NewWorkerFaults(seed)
		w.Configure(0.5, 0, 0)
		w.Open()
		hook := w.Hook()
		out := make([]bool, n)
		for i := range out {
			out[i] = hook(context.Background()) != nil
		}
		return out
	}
	a, b := draw(7, 64), draw(7, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between equal seeds", i)
		}
	}

	w := NewWorkerFaults(7)
	w.Configure(1, 0, 0) // every certification fails while open
	hook := w.Hook()
	if err := hook(context.Background()); err != nil {
		t.Fatalf("closed window injected a fault: %v", err)
	}
	w.Open()
	if err := hook(context.Background()); !errors.Is(err, ErrInjectedWorker) {
		t.Fatalf("open window err = %v, want ErrInjectedWorker", err)
	}
	w.Close()
	if err := hook(context.Background()); err != nil {
		t.Fatalf("closed window injected a fault: %v", err)
	}
	if failed, _ := w.Injected(); failed != 1 {
		t.Fatalf("injected = %d, want 1", failed)
	}
}

func TestWorkerFaultsSlowRespectsContext(t *testing.T) {
	w := NewWorkerFaults(1)
	w.Configure(0, 1, time.Hour) // every certification stalls
	w.Open()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := w.Hook()(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("slow fault ignored context cancellation")
	}
}

func TestBurstPatternSatisfiesWeaklyHard(t *testing.T) {
	const period = 1.0
	for _, tc := range []struct {
		seed    int64
		n, m, k int
	}{
		{1, 200, 1, 10},
		{2, 200, 3, 5},
		{3, 500, 2, 7},
		{99, 64, 5, 5}, // m == K: every slot may send
	} {
		pattern, err := BurstPattern(tc.seed, tc.n, tc.m, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		// Map sends to overruns and validate against the repo's own
		// (m, K) checker: a burst schedule is a weakly-hard sequence.
		resp := make([]float64, len(pattern))
		sends := 0
		for i, send := range pattern {
			if send {
				resp[i] = 1.5 * period
				sends++
			} else {
				resp[i] = 0.5 * period
			}
		}
		ok, err := sched.SatisfiesWeaklyHard(resp, period, tc.m, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed=%d (m=%d,K=%d): pattern violates its own constraint", tc.seed, tc.m, tc.k)
		}
		if tc.m > 0 && sends == 0 {
			t.Fatalf("seed=%d: pattern never sends", tc.seed)
		}
	}

	a, _ := BurstPattern(42, 100, 2, 8)
	b, _ := BurstPattern(42, 100, 2, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs between equal seeds", i)
		}
	}

	if _, err := BurstPattern(1, 0, 1, 1); err == nil {
		t.Fatal("n=0 should error")
	}
}
