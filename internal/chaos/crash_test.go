package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"adaptivertc/internal/store"
)

// The store-level crash matrix: a fixed workload (puts, overwrites,
// deletes, rotations, one compaction) is replayed once per injectable
// crash point — every Nth segment write (clean, torn-partial, and
// bit-flipped) and every Nth fsync — in process-death mode. After each
// crash the directory is reopened with a clean filesystem, like a
// restart after SIGKILL, and the recovered state must satisfy:
//
//  1. every fsync-acknowledged record reads back byte-identical;
//  2. no unacknowledged record is half-visible — the one op in flight
//     at the crash either happened entirely or not at all;
//  3. the store reopens without error and accepts appends.

// crashOp is one scripted store operation.
type crashOp struct {
	kind  byte // 'p' put, 'd' delete, 'c' compact
	key   string
	value []byte
}

// crashWorkload returns a deterministic script that exercises every
// write path: multi-segment appends, overwrites (so compaction has
// dead bytes), deletes, and an explicit compaction.
func crashWorkload() []crashOp {
	var ops []crashOp
	val := func(tag string, n int) []byte {
		return []byte(tag + ":" + strings.Repeat("x", n))
	}
	for i := 0; i < 4; i++ {
		ops = append(ops, crashOp{'p', fmt.Sprintf("k%d", i), val(fmt.Sprintf("v0-%d", i), 40)})
	}
	ops = append(ops,
		crashOp{'p', "k1", val("v1-overwrite", 48)},
		crashOp{'d', "k2", nil},
		crashOp{'p', "k4", val("v0-4", 56)},
		crashOp{'c', "", nil},
		crashOp{'p', "k5", val("post-compact", 32)},
		crashOp{'d', "k0", nil},
		crashOp{'p', "k1", val("v2-overwrite", 24)},
	)
	return ops
}

// crashOutcome is what a crashed run promises about the directory.
type crashOutcome struct {
	acked map[string][]byte // key -> last acknowledged value; missing = acknowledged-absent
	// maybeKey/maybeVal describe the single operation that was in
	// flight when the crash fired: its effect may or may not have
	// persisted, but nothing in between. maybeVal == nil means the op
	// was a delete.
	maybeKey string
	maybeVal []byte
	hasMaybe bool
}

// runCrashWorkload replays the script against dir through ffs,
// tracking acknowledged state. Operation errors are expected once the
// crash fires.
func runCrashWorkload(t *testing.T, dir string, ffs *FaultyFS) crashOutcome {
	t.Helper()
	out := crashOutcome{acked: map[string][]byte{}}
	l, err := store.Open(dir, store.Options{FS: ffs, SegmentBytes: 192, NoAutoCompact: true})
	if err != nil {
		// The crash point landed inside Open's segment creation: nothing
		// was ever acknowledged.
		return out
	}
	for _, op := range crashWorkload() {
		wasCrashed := ffs.Crashed()
		var err error
		switch op.kind {
		case 'p':
			err = l.Put(op.key, op.value)
		case 'd':
			err = l.Delete(op.key)
		case 'c':
			err = l.Compact()
		}
		switch {
		case err == nil:
			switch op.kind {
			case 'p':
				out.acked[op.key] = op.value
			case 'd':
				delete(out.acked, op.key)
			}
		case !wasCrashed && ffs.Crashed() && op.kind != 'c':
			// The op the crash interrupted: may or may not have
			// persisted. (A crashed compaction moves no live data, so it
			// creates no per-key uncertainty.)
			out.maybeKey, out.maybeVal, out.hasMaybe = op.key, op.value, true
		}
	}
	//lint:ignore droppederr the simulated process is dead; Close failing through the crashed FS is expected
	l.Close()
	return out
}

// verifyRecovery reopens dir with a clean filesystem and checks the
// crash-consistency contract against the recorded outcome.
func verifyRecovery(t *testing.T, dir string, out crashOutcome) {
	t.Helper()
	l, err := store.Open(dir, store.Options{NoAutoCompact: true})
	if err != nil {
		t.Fatalf("recovery open failed: %v", err)
	}
	defer l.Close()

	for key, want := range out.acked {
		got, ok, err := l.Get(key)
		if err != nil {
			t.Fatalf("acked key %q unreadable after recovery: %v", key, err)
		}
		if out.hasMaybe && key == out.maybeKey {
			// The interrupted op targeted this key: either the acked
			// state or the attempted one, nothing in between.
			switch {
			case ok && bytes.Equal(got, want):
			case out.maybeVal == nil && !ok: // interrupted delete applied
			case out.maybeVal != nil && ok && bytes.Equal(got, out.maybeVal):
			default:
				t.Fatalf("key %q half-visible after crash: ok=%v got=%q (acked %q, attempted %q)",
					key, ok, got, want, out.maybeVal)
			}
			continue
		}
		if !ok {
			t.Fatalf("acked key %q lost by crash recovery", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked key %q not byte-identical: got %q want %q", key, got, want)
		}
	}
	// No phantom keys: everything live must trace to an acked value or
	// the single interrupted put.
	for _, key := range l.Keys() {
		if _, ok := out.acked[key]; ok {
			continue
		}
		if out.hasMaybe && key == out.maybeKey && out.maybeVal != nil {
			got, ok, err := l.Get(key)
			if err != nil || !ok || !bytes.Equal(got, out.maybeVal) {
				t.Fatalf("interrupted put %q half-visible: ok=%v err=%v got=%q", key, ok, err, got)
			}
			continue
		}
		t.Fatalf("phantom key %q surfaced by recovery", key)
	}
	// Recovery must leave the store writable.
	if err := l.Put("post-crash", []byte("alive")); err != nil {
		t.Fatalf("recovered store rejects appends: %v", err)
	}
}

// TestStoreCrashRecoveryEveryPoint is the e2e crash matrix. The
// reference run counts the workload's writes and syncs; then every
// (counter, flavor) pair gets its own directory, crash, and recovery.
func TestStoreCrashRecoveryEveryPoint(t *testing.T) {
	ref := NewFaultyFS(nil)
	refDir := t.TempDir()
	refOut := runCrashWorkload(t, refDir, ref)
	writes, syncs := ref.Counts()
	if writes < 10 || syncs < 10 {
		t.Fatalf("workload too small to be interesting: %d writes, %d syncs", writes, syncs)
	}
	if refOut.hasMaybe {
		t.Fatal("reference run reported a crash")
	}
	verifyRecovery(t, refDir, refOut)

	flavors := []struct {
		name string
		plan func(n int64) CrashPlan
	}{
		{"write-fail", func(n int64) CrashPlan { return CrashPlan{AfterWrites: n, Mode: CrashStop} }},
		{"torn-tail", func(n int64) CrashPlan { return CrashPlan{AfterWrites: n, Mode: CrashStop, Partial: true} }},
		{"bit-flip", func(n int64) CrashPlan { return CrashPlan{AfterWrites: n, Mode: CrashStop, BitFlip: true} }},
		{"sync-fail", func(n int64) CrashPlan { return CrashPlan{AfterSyncs: n, Mode: CrashStop} }},
	}
	for _, fl := range flavors {
		fl := fl
		t.Run(fl.name, func(t *testing.T) {
			limit := writes
			if fl.name == "sync-fail" {
				limit = syncs
			}
			for n := int64(1); n <= limit; n++ {
				n := n
				t.Run(fmt.Sprintf("point-%d", n), func(t *testing.T) {
					dir := t.TempDir()
					ffs := NewFaultyFS(nil)
					ffs.SetCrashPlan(fl.plan(n))
					out := runCrashWorkload(t, dir, ffs)
					if !ffs.Crashed() {
						t.Fatalf("crash point %d never fired", n)
					}
					verifyRecovery(t, dir, out)
				})
			}
		})
	}
}

// TestStoreCrashFailModeRepairsInProcess covers the transient-fault
// flavor: the op fails but the process lives, and the store must
// repair its own torn tail before the next append.
func TestStoreCrashFailModeRepairsInProcess(t *testing.T) {
	for n := int64(1); n <= 8; n++ {
		n := n
		t.Run(fmt.Sprintf("torn-at-write-%d", n), func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultyFS(nil)
			ffs.SetCrashPlan(CrashPlan{AfterWrites: n, Mode: CrashFail, Partial: true})
			l, err := store.Open(dir, store.Options{FS: ffs, SegmentBytes: 192, NoAutoCompact: true})
			if err != nil {
				// The fault hit Open's header write; a fresh Open must work.
				if !errors.Is(err, ErrCrashed) && !strings.Contains(err.Error(), "crash") {
					t.Fatalf("unexpected open failure: %v", err)
				}
				l, err = store.Open(dir, store.Options{FS: ffs, SegmentBytes: 192, NoAutoCompact: true})
				if err != nil {
					t.Fatalf("reopen after transient open fault: %v", err)
				}
			}
			defer l.Close()
			acked := map[string][]byte{}
			for i := 0; i < 6; i++ {
				key := fmt.Sprintf("k%d", i)
				val := []byte(strings.Repeat(fmt.Sprintf("v%d", i), 12))
				if err := l.Put(key, val); err == nil {
					acked[key] = val
				}
			}
			// The process lived through the fault: everything acked reads
			// back, and the store takes new appends.
			for key, want := range acked {
				got, ok, err := l.Get(key)
				if err != nil || !ok || !bytes.Equal(got, want) {
					t.Fatalf("acked %q after in-process repair: ok=%v err=%v got=%q", key, ok, err, got)
				}
			}
			if err := l.Put("final", []byte("alive")); err != nil {
				t.Fatalf("store not writable after repair: %v", err)
			}
		})
	}
}
