package chaos

// Distributed-certification chaos: a coordinator-role adaserved with a
// fleet of workers, where one worker dies mid-job, straggles past its
// lease, or is partitioned from the start. The invariant is the
// subsystem's central promise: whatever the fleet does, the final
// certificate is byte-identical to a pristine single-node run.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/client"
	"adaptivertc/internal/dist"
	"adaptivertc/internal/server"
)

// distChaosRequest is the job every cell certifies: the paper's
// two-matrix set, forced through the async path so the coordinator
// distributes its level expansions.
func distChaosRequest() api.CertifyRequest {
	return api.CertifyRequest{Version: 1, Matrices: [][][]float64{
		{{0.55, 0.55}, {0, 0.55}}, {{0.55, 0}, {0.55, 0.55}},
	}}
}

// startDistServer assembles a coordinator-role node: public service and
// internal dist endpoints on one listener, exactly as cmd/adaserved
// wires them.
func startDistServer(t *testing.T, coord *dist.Coordinator) (*httptest.Server, func()) {
	t.Helper()
	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Workers:      2,
		Cache:        cache,
		MaxSyncWork:  -1, // every request becomes a distributable job
		Distribute:   coord.Distributor,
		MetricsExtra: coord.Metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/v1/internal/", coord.Handler())
	ts := httptest.NewServer(mux)
	stop := func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
	return ts, stop
}

// startDistWorkers launches n workers against the coordinator URL and
// blocks until all have registered. faults drives worker 0 only; the
// rest of the fleet stays healthy.
func startDistWorkers(t *testing.T, ctx context.Context, coordURL string, n int, faults *ShardFaults) {
	t.Helper()
	for i := 0; i < n; i++ {
		ts := httptest.NewUnstartedServer(nil)
		cfg := dist.WorkerConfig{
			ID:          fmt.Sprintf("w%d", i),
			Advertise:   "http://" + ts.Listener.Addr().String(),
			Coordinator: coordURL,
			Heartbeat:   20 * time.Millisecond,
		}
		if i == 0 && faults != nil {
			cfg.FaultHook = faults.Hook()
		}
		w, err := dist.NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts.Config.Handler = w.Handler()
		ts.Start()
		t.Cleanup(ts.Close)
		go w.Run(ctx)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(coordURL + "/v1/internal/workers")
		if err != nil {
			t.Fatal(err)
		}
		var ws struct {
			Workers []dist.WorkerInfo `json:"workers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ws)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(ws.Workers) == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered", len(ws.Workers), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDistributedChaosMatrix(t *testing.T) {
	req := distChaosRequest()
	ref := referenceBytes(t, []api.CertifyRequest{req})[0]

	type fault struct {
		name  string
		setup func(*ShardFaults)
	}
	faultModes := []fault{
		{"death-mid-job", func(f *ShardFaults) { f.KillAfter(2); f.Open() }},
		{"slow-past-lease", func(f *ShardFaults) { f.Configure(0, 1.0, 2*time.Second); f.Open() }},
		{"partitioned", func(f *ShardFaults) { f.Partition(true); f.Open() }},
	}
	for _, workers := range []int{1, 2, 4} {
		for _, fm := range faultModes {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, fm.name), func(t *testing.T) {
				coord := dist.NewCoordinator(dist.CoordinatorConfig{
					MinShardWords: 1,
					Lease:         150 * time.Millisecond,
				})
				ts, stop := startDistServer(t, coord)
				defer stop()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				faults := NewShardFaults(int64(workers))
				fm.setup(faults)
				startDistWorkers(t, ctx, ts.URL, workers, faults)

				c, err := client.New(client.Options{BaseURL: ts.URL, Seed: 7, PollInterval: 2 * time.Millisecond})
				if err != nil {
					t.Fatal(err)
				}
				body, err := c.CertifyBytes(context.Background(), req)
				if err != nil {
					t.Fatalf("certify through faulty fleet: %v", err)
				}
				if string(body) != string(ref) {
					t.Fatalf("distributed bytes differ from pristine single-node run:\n%s\nvs\n%s", body, ref)
				}
				if failed, _ := faults.Injected(); failed == 0 {
					t.Logf("note: fault window open but no shard was injected (fleet=%d, %s)", workers, fm.name)
				}
				metrics := coord.Metrics()
				if !strings.Contains(metrics, "adaserved_dist_shards_total") {
					t.Error("coordinator metrics missing shard counters")
				}
			})
		}
	}
}
