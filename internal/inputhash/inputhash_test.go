package inputhash

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"testing"

	"adaptivertc/internal/mat"
)

// testSet is the two-matrix rotation-ish example used across the
// repo's smoke tests.
func testSet() []*mat.Dense {
	return []*mat.Dense{
		mat.FromRows([][]float64{{0.55, 0.55}, {0, 0.55}}),
		mat.FromRows([][]float64{{0.55, 0}, {0.55, 0.55}}),
	}
}

// Golden digests: cache keys and checkpoint pins must not change
// across releases, or every persisted certificate silently misses and
// every checkpoint refuses to resume. If an intentional encoding
// change lands, update these values AND bump the consumers'
// checkpoint/cache format versions in the same commit.
const (
	goldenSetHash    = "6afbdfd755c9a8091341d6b7f57d7e68887cde948091297ab7ad790691cd4386"
	goldenSetHashRaw = "f6114601b4d019aa2da4b94c14e9eaffd99dc98b753370337ee87c6d50318110"
	goldenGridHash   = "e11c04c2a58c89c77f17856b26e112d87fafe2b15d174d020d30c2f877ea6b85"
)

func TestSetHashGolden(t *testing.T) {
	if got := SetHash(testSet(), false).String(); got != goldenSetHash {
		t.Errorf("SetHash(raw=false) = %s, golden %s", got, goldenSetHash)
	}
	if got := SetHash(testSet(), true).String(); got != goldenSetHashRaw {
		t.Errorf("SetHash(raw=true) = %s, golden %s", got, goldenSetHashRaw)
	}
}

// TestSetHashMatchesLegacyLayout replays the byte layout the jsrtool
// checkpoint used before the extraction; SetHash must reproduce it
// exactly so old checkpoints keep validating.
func TestSetHashMatchesLegacyLayout(t *testing.T) {
	legacy := func(set []*mat.Dense, raw bool) Sum {
		h := sha256.New()
		var buf [8]byte
		writeU64 := func(v uint64) {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
		if raw {
			writeU64(1)
		} else {
			writeU64(0)
		}
		writeU64(uint64(len(set)))
		for _, m := range set {
			writeU64(uint64(m.Rows()))
			writeU64(uint64(m.Cols()))
			for i := 0; i < m.Rows(); i++ {
				for j := 0; j < m.Cols(); j++ {
					writeU64(math.Float64bits(m.At(i, j)))
				}
			}
		}
		var sum Sum
		h.Sum(sum[:0])
		return sum
	}
	sets := [][]*mat.Dense{
		testSet(),
		{mat.FromRows([][]float64{{1.2}})},
		{mat.Eye(3), mat.Scale(0.5, mat.Eye(3)), mat.Diag(1, 2, 3)},
	}
	for si, set := range sets {
		for _, raw := range []bool{false, true} {
			if got, want := SetHash(set, raw), legacy(set, raw); got != want {
				t.Errorf("set %d raw=%v: SetHash = %s, legacy layout %s", si, raw, got, want)
			}
		}
	}
}

func TestSetHashSensitivity(t *testing.T) {
	base := SetHash(testSet(), false)
	if SetHash(testSet(), true) == base {
		t.Error("raw flag does not affect the hash")
	}
	perturbed := testSet()
	perturbed[1].Set(1, 1, math.Nextafter(0.55, 1))
	if SetHash(perturbed, false) == base {
		t.Error("one-ulp entry change does not affect the hash")
	}
	reordered := testSet()
	reordered[0], reordered[1] = reordered[1], reordered[0]
	if SetHash(reordered, false) == base {
		t.Error("matrix order does not affect the hash")
	}
}

func TestGridParamsHashGolden(t *testing.T) {
	p := GridParams{
		Sequences: 5000, Jobs: 50, Seed: 1, BruteLen: 6, Delta: 1e-3,
		Model: "uniform", Refine: 0, N: 7, Extra: "ns=1,2,4,5,8,10",
	}
	if got := p.Hash().String(); got != goldenGridHash {
		t.Errorf("GridParams.Hash = %s, golden %s", got, goldenGridHash)
	}
}

func TestGridParamsHashSensitivity(t *testing.T) {
	base := GridParams{
		Sequences: 5000, Jobs: 50, Seed: 1, BruteLen: 6, Delta: 1e-3,
		Model: "uniform", Refine: 0, N: 7, Extra: "x",
	}
	mutations := map[string]GridParams{}
	for name, mutate := range map[string]func(*GridParams){
		"Sequences": func(p *GridParams) { p.Sequences++ },
		"Jobs":      func(p *GridParams) { p.Jobs++ },
		"Seed":      func(p *GridParams) { p.Seed++ },
		"BruteLen":  func(p *GridParams) { p.BruteLen++ },
		"Delta":     func(p *GridParams) { p.Delta *= 2 },
		"Model":     func(p *GridParams) { p.Model = "burst" },
		"Refine":    func(p *GridParams) { p.Refine++ },
		"N":         func(p *GridParams) { p.N++ },
		"Extra":     func(p *GridParams) { p.Extra = "y" },
	} {
		q := base
		mutate(&q)
		mutations[name] = q
	}
	ref := base.Hash()
	for name, q := range mutations {
		if q.Hash() == ref {
			t.Errorf("mutating %s does not change the hash", name)
		}
	}
}

// TestDigestDomainSeparation: equal payloads under different domains
// must not collide, and string encoding must not be ambiguous under
// concatenation.
func TestDigestDomainSeparation(t *testing.T) {
	a := New("domain-a")
	b := New("domain-b")
	a.Uint64(42)
	b.Uint64(42)
	if a.Sum() == b.Sum() {
		t.Error("different domains hash equal")
	}
	c := New("d")
	c.String("ab")
	c.String("c")
	d := New("d")
	d.String("a")
	d.String("bc")
	if c.Sum() == d.Sum() {
		t.Error("length prefixes fail to disambiguate concatenation")
	}
}

func TestParseSumRoundTrip(t *testing.T) {
	d := New("roundtrip")
	d.Uint64(7)
	want := d.Sum()
	got, err := ParseSum(want.String())
	if err != nil {
		t.Fatalf("ParseSum: %v", err)
	}
	if got != want {
		t.Fatalf("round trip changed the sum: %v != %v", got, want)
	}
	for _, bad := range []string{"", "abc", want.String() + "00", "zz" + want.String()[2:]} {
		if _, err := ParseSum(bad); err == nil {
			t.Errorf("ParseSum(%q): want error", bad)
		}
	}
}
