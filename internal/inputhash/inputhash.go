// Package inputhash canonically hashes and pins analysis inputs.
//
// Three consumers need to agree, bit for bit, on what "the same input"
// means: the jsrtool checkpoint (refuse to resume a Gripenberg search
// against a different matrix set), the adactl grid checkpoints (refuse
// to mix rows computed under different experiment parameters), and the
// adaserved certificate cache (content-address a certification request
// so identical requests share one computation and one cached verdict).
// Before this package each tool carried its own copy of that logic;
// a drift between the copies would silently poison caches or accept
// stale checkpoints.
//
// The encoding is deliberately primitive and frozen: little-endian
// uint64 words — raw IEEE-754 bits for floats, length prefixes for
// strings and slices — fed to SHA-256. Nothing here depends on gob,
// JSON, or reflection, so the hash of a given input can never change
// without an explicit edit to this file. The golden tests in
// inputhash_test.go pin the exact digests; if an edit changes them,
// bump the consumers' checkpoint/cache versions in the same commit.
package inputhash

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"adaptivertc/internal/mat"
)

// Sum is a content hash of an analysis input.
type Sum [sha256.Size]byte

// String returns the lowercase hex form of the sum — the identifier
// used for cache file names and job ids.
func (s Sum) String() string { return hex.EncodeToString(s[:]) }

// ParseSum decodes the 64-hex-digit form String produces. It is the
// inverse used wherever a sum crosses a process boundary as text —
// job ids in URLs, the distributed peer-cache fetch path — and
// rejects anything that is not exactly one canonical sum.
func ParseSum(s string) (Sum, error) {
	var sum Sum
	if len(s) != 2*len(sum) {
		return Sum{}, fmt.Errorf("inputhash: sum %q has length %d, want %d", s, len(s), 2*len(sum))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Sum{}, fmt.Errorf("inputhash: sum %q is not hex: %w", s, err)
	}
	copy(sum[:], b)
	return sum, nil
}

// A Digest accumulates canonically encoded values into a SHA-256 sum.
// The zero value is not usable; call New.
type Digest struct {
	h   hash.Hash
	buf [8]byte
}

// New returns an empty digest, optionally seeded with a domain
// separator so hashes of different kinds of input can never collide
// (e.g. "jsrtool/set" vs "adaserved/certify").
func New(domain string) *Digest {
	d := &Digest{h: sha256.New()}
	d.String(domain)
	return d
}

// Uint64 absorbs one little-endian word.
func (d *Digest) Uint64(v uint64) {
	binary.LittleEndian.PutUint64(d.buf[:], v)
	d.h.Write(d.buf[:])
}

// Int absorbs an int as its int64 two's-complement bits.
func (d *Digest) Int(v int) { d.Uint64(uint64(int64(v))) }

// Int64 absorbs an int64 as its two's-complement bits.
func (d *Digest) Int64(v int64) { d.Uint64(uint64(v)) }

// Bool absorbs a bool as 0 or 1.
func (d *Digest) Bool(v bool) {
	if v {
		d.Uint64(1)
	} else {
		d.Uint64(0)
	}
}

// Float64 absorbs the raw IEEE-754 bits of v. Distinct bit patterns
// hash differently even when they compare equal (0.0 vs -0.0): the
// pinning is exact-bits by design, matching the bit-reproducibility
// contract of the JSR engine.
func (d *Digest) Float64(v float64) { d.Uint64(math.Float64bits(v)) }

// String absorbs a length-prefixed string.
func (d *Digest) String(s string) {
	d.Uint64(uint64(len(s)))
	d.h.Write([]byte(s))
}

// Matrix absorbs dimensions then entries in row-major order.
func (d *Digest) Matrix(m *mat.Dense) {
	d.Uint64(uint64(m.Rows()))
	d.Uint64(uint64(m.Cols()))
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			d.Float64(m.At(i, j))
		}
	}
}

// MatrixSet absorbs a count-prefixed sequence of matrices in order.
// Order matters: the JSR witness words index into the set.
func (d *Digest) MatrixSet(set []*mat.Dense) {
	d.Uint64(uint64(len(set)))
	for _, m := range set {
		d.Matrix(m)
	}
}

// Sum finalizes the digest. The digest remains usable; absorbing more
// values after Sum extends the stream as if Sum had not been called.
func (d *Digest) Sum() Sum {
	var out Sum
	d.h.Sum(out[:0])
	return out
}

// SetHash pins a matrix-set analysis input: preconditioning mode,
// matrix count, dimensions, and raw float bits in order. It preserves
// the exact byte layout of the original jsrtool checkpoint hash
// (mode word, count, then per-matrix rows/cols/entries) so the golden
// values below are also a regression test for checkpoint
// compatibility.
func SetHash(set []*mat.Dense, raw bool) Sum {
	d := &Digest{h: sha256.New()}
	d.Bool(raw)
	d.MatrixSet(set)
	return d.Sum()
}

// GridParams pins a resumable experiment grid to the parameters that
// shape its rows; a resume with different parameters must be refused
// rather than silently mixing results. The struct is comparable so
// checkpoint validation is a plain != on the decoded value.
type GridParams struct {
	Sequences int
	Jobs      int
	Seed      int64
	BruteLen  int
	Delta     float64
	Model     string
	Refine    int
	N         int    // grid size
	Extra     string // command-specific input (e.g. the sweep's -ns list)
}

// Hash returns the canonical digest of the parameter set, for
// consumers that key by hash rather than comparing structs.
func (p GridParams) Hash() Sum {
	d := New("adaptivertc/gridparams/v1")
	d.Int(p.Sequences)
	d.Int(p.Jobs)
	d.Int64(p.Seed)
	d.Int(p.BruteLen)
	d.Float64(p.Delta)
	d.String(p.Model)
	d.Int(p.Refine)
	d.Int(p.N)
	d.String(p.Extra)
	return d.Sum()
}
