package client

import (
	"fmt"
	"sync"
	"time"
)

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a consecutive-failure circuit breaker.
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown elapses)──▶ half-open (one probe admitted)
//	half-open ──probe succeeds──▶ closed
//	half-open ──probe fails──▶ open (cooldown restarts)
//
// Only transport errors and server faults count as failures; load
// sheds (429/503) bypass the breaker entirely — see the package
// comment. Success from any state resets the failure count.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// allow reports whether a request may proceed at time now. In the open
// state it returns a wrapped ErrCircuitOpen until cooldown elapses,
// then admits exactly one half-open probe; concurrent calls during the
// probe fail fast.
func (b *breaker) allow(now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		wait := b.cooldown - now.Sub(b.openedAt)
		if wait > 0 {
			return fmt.Errorf("%w (retry in %s)", ErrCircuitOpen, wait.Round(time.Millisecond))
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return fmt.Errorf("%w (half-open probe in flight)", ErrCircuitOpen)
		}
		b.probing = true
		return nil
	}
}

// success records a successful round trip, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a transport/server fault at time now. In half-open
// it reopens immediately; in closed it opens once the consecutive run
// reaches threshold.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}
