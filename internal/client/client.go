// Package client is a resilient, stdlib-only client for the adaserved
// certification service (POST /v1/certify).
//
// The server sheds load honestly — 429 when a client outruns its token
// bucket, 503 when the service is saturated, both with a computed
// Retry-After — and this client is the matching half of that contract:
//
//   - Shed responses (429/503) are obeyed, not punished: the client
//     sleeps for the server's Retry-After hint and tries again. They
//     never trip the circuit breaker, because a shedding server is a
//     healthy server telling the truth about its capacity.
//
//   - Transport errors and server faults (500, 502, 504) are retried
//     under capped exponential backoff with deterministic seeded
//     jitter, and they do feed the circuit breaker: after Threshold
//     consecutive failures the breaker opens and calls fail fast for
//     Cooldown, then a single half-open probe decides between closing
//     and re-opening.
//
//   - Retries are idempotent by construction: adaserved derives the
//     job id from the request's content key, so a retried POST joins
//     the same job (or hits the same cache entry) instead of spawning
//     duplicate work. The client never needs a client-generated
//     idempotency token.
//
//   - 202 Accepted is followed through: the client polls the job URL
//     until the job completes, then re-POSTs the request — by then a
//     cache hit — so the bytes it returns are the server's canonical
//     encoding, byte-identical to a synchronous answer or a local
//     jsrtool run.
//
// Client-side failures (4xx other than 429) are returned immediately:
// retrying a request the server has already rejected as malformed
// wastes both sides' budgets.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"adaptivertc/internal/api"
)

// Defaults for Options zero values.
const (
	defaultMaxAttempts      = 8
	defaultBaseBackoff      = 100 * time.Millisecond
	defaultMaxBackoff       = 5 * time.Second
	defaultPollInterval     = 100 * time.Millisecond
	defaultHTTPTimeout      = 30 * time.Second
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 10 * time.Second

	// maxResponseBytes bounds any response body we read.
	maxResponseBytes = 8 << 20
)

// ErrCircuitOpen is returned (wrapped) when the circuit breaker is
// open and the cooldown has not yet elapsed: the last Threshold
// attempts all failed with transport or server faults, so the client
// fails fast instead of piling onto a struggling service.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// StatusError is a non-2xx server reply. RetryAfterSeconds carries the
// server's backoff hint on 429/503 (zero otherwise).
type StatusError struct {
	Code              int
	Message           string
	RetryAfterSeconds int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}

// Options configures a Client. The zero value of every field selects a
// serviceable default.
type Options struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080"
	// (required; no trailing slash needed).
	BaseURL string
	// HTTPClient overrides the transport. The default client carries a
	// 30 s timeout; a replacement should set its own Timeout, or the
	// per-call context deadline must bound every request.
	HTTPClient *http.Client
	// ClientID, when non-empty, is sent as X-Client-ID so the server's
	// per-client rate limiter keys on it instead of the remote address.
	ClientID string
	// MaxAttempts bounds retryable attempts per Certify call (≤ 0
	// selects 8). Permanent errors return before the bound.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff for
	// transport/server faults: attempt n sleeps a jittered value in
	// [d/2, d) where d = min(MaxBackoff, BaseBackoff·2ⁿ).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the retry jitter deterministic: two clients with the
	// same seed sleep the same schedule. Zero selects seed 1 (still
	// deterministic — this client is built for reproducible harnesses).
	Seed int64
	// PollInterval is the sleep between job-status polls after a 202
	// (≤ 0 selects 100 ms).
	PollInterval time.Duration
	// BreakerThreshold consecutive transport/server faults open the
	// circuit (≤ 0 selects 5); BreakerCooldown is how long it stays
	// open before a half-open probe (≤ 0 selects 10 s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxResponseBytes bounds any response body this client reads
	// (≤ 0 selects 8 MiB — ample for certificates). The dist
	// coordinator raises it: a shard response carries two exact-bit
	// floats per child and outgrows the default on wide levels.
	MaxResponseBytes int64
}

// Client calls one adaserved instance. Safe for concurrent use.
type Client struct {
	opts    Options
	httpc   *http.Client
	breaker *breaker

	mu  sync.Mutex
	rng *rand.Rand

	// test seams: the real clock and a context-respecting sleep.
	now   func() time.Time
	sleep func(context.Context, time.Duration) error
}

// New builds a Client for the service at opts.BaseURL.
func New(opts Options) (*Client, error) {
	if opts.BaseURL == "" {
		return nil, errors.New("client: Options.BaseURL is required")
	}
	opts.BaseURL = strings.TrimRight(opts.BaseURL, "/")
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = defaultMaxAttempts
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = defaultBaseBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = defaultMaxBackoff
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = defaultPollInterval
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = defaultBreakerThreshold
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = defaultBreakerCooldown
	}
	if opts.MaxResponseBytes <= 0 {
		opts.MaxResponseBytes = maxResponseBytes
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	httpc := opts.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: defaultHTTPTimeout}
	}
	now := time.Now
	c := &Client{
		opts:  opts,
		httpc: httpc,
		breaker: &breaker{
			threshold: opts.BreakerThreshold,
			cooldown:  opts.BreakerCooldown,
		},
		rng:   rand.New(rand.NewSource(seed)),
		now:   now,
		sleep: sleepCtx,
	}
	return c, nil
}

// Certify submits req and returns the decoded certified response,
// retrying through sheds, faults, and asynchronous job execution as
// described in the package comment.
func (c *Client) Certify(ctx context.Context, req api.CertifyRequest) (*api.CertifyResponse, error) {
	body, err := c.CertifyBytes(ctx, req)
	if err != nil {
		return nil, err
	}
	var res api.CertifyResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &res, nil
}

// CertifyBytes is Certify returning the server's canonical response
// bytes unparsed — byte-identical to what a local jsrtool run encodes
// for the same request, which is what reproducibility harnesses diff.
func (c *Client) CertifyBytes(ctx context.Context, req api.CertifyRequest) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	attempts := 0
	for {
		if err := c.breaker.allow(c.now()); err != nil {
			return nil, err
		}
		body, jobURL, err := c.postOnce(ctx, payload)
		switch {
		case err == nil && jobURL == "":
			c.breaker.success()
			return body, nil
		case err == nil:
			// 202 Accepted: the server queued the work. Poll to
			// completion, then loop to re-POST — a cache hit now — for
			// the canonical bytes.
			c.breaker.success()
			st, perr := c.pollJob(ctx, jobURL)
			if perr != nil {
				return nil, perr
			}
			if st.State == api.JobFailed {
				// A failed job may be a transient fault (the server
				// retries failed jobs on resubmission); back off and
				// re-POST. The service answered coherently, so the
				// breaker stays closed.
				attempts++
				if attempts >= c.opts.MaxAttempts {
					return nil, fmt.Errorf("client: job failed after %d attempts: %s", attempts, st.Error)
				}
				if err := c.sleep(ctx, c.backoff(attempts)); err != nil {
					return nil, err
				}
			}
			continue
		case isShed(err):
			// Honest backpressure: obey Retry-After, don't punish it.
			attempts++
			if attempts >= c.opts.MaxAttempts {
				return nil, err
			}
			if serr := c.sleep(ctx, c.shedDelay(err, attempts)); serr != nil {
				return nil, serr
			}
			continue
		case isRetryable(err):
			c.breaker.failure(c.now())
			attempts++
			if attempts >= c.opts.MaxAttempts {
				return nil, err
			}
			if serr := c.sleep(ctx, c.backoff(attempts)); serr != nil {
				return nil, serr
			}
			continue
		default:
			// Permanent: a 4xx the server will reject identically next
			// time, or a context cancellation.
			return nil, err
		}
	}
}

// postOnce performs one POST /v1/certify. It returns the response body
// on 200, the job status URL on 202, and a typed error otherwise.
func (c *Client) postOnce(ctx context.Context, payload []byte) (body []byte, jobURL string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.opts.BaseURL+"/v1/certify", bytes.NewReader(payload))
	if err != nil {
		return nil, "", fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.opts.ClientID != "" {
		req.Header.Set("X-Client-ID", c.opts.ClientID)
	}
	if dl, ok := ctx.Deadline(); ok {
		// Propagate the caller's budget so the server bounds the job
		// too, instead of computing past the point anyone is listening.
		if left := dl.Sub(c.now()); left > 0 {
			req.Header.Set("X-Request-Deadline", left.Round(time.Millisecond).String())
		}
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, "", &transportError{err}
	}
	raw, err := readBody(resp, c.opts.MaxResponseBytes)
	if err != nil {
		return nil, "", &transportError{err}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, "", nil
	case http.StatusAccepted:
		var ref api.JobRef
		if err := json.Unmarshal(raw, &ref); err != nil || ref.StatusURL == "" {
			return nil, "", fmt.Errorf("client: malformed 202 job reference: %q", raw)
		}
		return nil, ref.StatusURL, nil
	default:
		return nil, "", statusError(resp, raw)
	}
}

// pollJob polls the job status URL until the job reaches a terminal
// state. Transient poll failures (transport blips, 5xx) are absorbed by
// continuing to poll — the job keeps running server-side regardless.
func (c *Client) pollJob(ctx context.Context, statusURL string) (*api.JobStatus, error) {
	for {
		if err := c.sleep(ctx, c.opts.PollInterval); err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+statusURL, nil)
		if err != nil {
			return nil, fmt.Errorf("client: building poll request: %w", err)
		}
		if c.opts.ClientID != "" {
			req.Header.Set("X-Client-ID", c.opts.ClientID)
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		raw, err := readBody(resp, c.opts.MaxResponseBytes)
		if err != nil || resp.StatusCode != http.StatusOK {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if resp.StatusCode == http.StatusNotFound {
				// The job id is content-addressed: a 404 after a 202
				// means the server restarted without that checkpoint.
				// Report queued-lost so the caller re-POSTs.
				return &api.JobStatus{State: api.JobFailed, Error: "job lost (server restart)"}, nil
			}
			continue
		}
		var st api.JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			continue
		}
		if st.State == api.JobDone || st.State == api.JobFailed {
			return &st, nil
		}
	}
}

// backoff computes the jittered exponential delay for the given
// attempt number (1-based): a deterministic draw in [d/2, d) with
// d = min(MaxBackoff, BaseBackoff·2^(attempt-1)).
func (c *Client) backoff(attempt int) time.Duration {
	d := float64(c.opts.BaseBackoff) * math.Pow(2, float64(attempt-1))
	if d > float64(c.opts.MaxBackoff) {
		d = float64(c.opts.MaxBackoff)
	}
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(d/2 + f*d/2)
}

// shedDelay picks the sleep after a 429/503: the server's Retry-After
// when it sent one, else the regular backoff schedule.
func (c *Client) shedDelay(err error, attempt int) time.Duration {
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfterSeconds > 0 {
		return time.Duration(se.RetryAfterSeconds) * time.Second
	}
	return c.backoff(attempt)
}

// transportError wraps a failed round trip (connection refused, DNS,
// timeout) so the retry logic can tell it from server verdicts.
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: transport: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// isShed reports whether err is the server declining load with a
// backoff hint (429 or 503).
func isShed(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable
}

// isRetryable reports whether err warrants another attempt under
// backoff: transport failures and the transient 5xx family (500, 502,
// 504). Context cancellation is never retryable.
func isRetryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te *transportError
	if errors.As(err, &te) {
		return true
	}
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	switch se.Code {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// statusError builds the typed error for a non-2xx response, reading
// the backoff hint from the Retry-After header with the JSON body as
// fallback.
func statusError(resp *http.Response, raw []byte) error {
	se := &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	var body api.ErrorResponse
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		se.Message = body.Error
		se.RetryAfterSeconds = body.RetryAfterSeconds
	}
	if h := resp.Header.Get("Retry-After"); h != "" {
		if n, err := strconv.Atoi(h); err == nil && n > 0 {
			se.RetryAfterSeconds = n
		}
	}
	return se
}

// readBody drains and closes a response body, bounded by the client's
// MaxResponseBytes.
func readBody(resp *http.Response, limit int64) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, limit))
}

// sleepCtx sleeps for d or until ctx is done, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
