package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptivertc/internal/api"
)

// testReq is a minimal valid request; most tests fake the server, so
// only the shape matters.
var testReq = api.CertifyRequest{Version: 1, Matrices: [][][]float64{{{0.5}}}}

// instrument replaces a client's clock and sleep with fakes: sleeps
// record their durations and advance the fake clock instantly.
func instrument(c *Client) (sleeps *[]time.Duration, clock *fakeClock) {
	ds := &[]time.Duration{}
	fc := &fakeClock{t: time.Unix(1000, 0)}
	c.now = fc.Now
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		*ds = append(*ds, d)
		fc.Advance(d)
		return nil
	}
	return ds, fc
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func newClient(t *testing.T, url string, opt Options) *Client {
	t.Helper()
	opt.BaseURL = url
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestImmediateSuccess(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"version":1,"verdict":"stable","lower":0.5,"upper":0.5,"bracket":"[0.500000, 0.500000]","gap":0,"matrices":1,"dim":1}`))
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, Options{})
	instrument(c)
	res, err := c.Certify(context.Background(), testReq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != "stable" || hits.Load() != 1 {
		t.Fatalf("verdict=%q hits=%d", res.Verdict, hits.Load())
	}
}

func TestShedHonorsRetryAfterWithoutTrippingBreaker(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"per-client rate limit exceeded","retry_after_seconds":3}`))
			return
		}
		w.Write([]byte(`{"version":1,"verdict":"stable"}`))
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, Options{BreakerThreshold: 1})
	sleeps, _ := instrument(c)
	if _, err := c.Certify(context.Background(), testReq); err != nil {
		t.Fatal(err)
	}
	// Both shed responses slept exactly the server's hint.
	if len(*sleeps) != 2 || (*sleeps)[0] != 3*time.Second || (*sleeps)[1] != 3*time.Second {
		t.Fatalf("sleeps = %v, want [3s 3s]", *sleeps)
	}
	// Threshold is 1, yet the breaker never opened: sheds don't count.
	if c.breaker.state != breakerClosed {
		t.Fatalf("breaker state = %d, want closed", c.breaker.state)
	}
}

func TestBreakerOpensOnServerFaults(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, Options{MaxAttempts: 3, BreakerThreshold: 3})
	instrument(c)
	_, err := c.Certify(context.Background(), testReq)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("err = %v, want 500 StatusError", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("hits = %d, want 3", hits.Load())
	}
	// Three consecutive faults reached the threshold: next call fails
	// fast without touching the server.
	_, err = c.Certify(context.Background(), testReq)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("open breaker still hit the server: hits = %d", hits.Load())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"version":1,"verdict":"stable"}`))
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, Options{MaxAttempts: 2, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second})
	_, clock := instrument(c)

	if _, err := c.Certify(context.Background(), testReq); err == nil {
		t.Fatal("expected failure while server is down")
	}
	if _, err := c.Certify(context.Background(), testReq); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}

	healthy.Store(true)
	clock.Advance(11 * time.Second)
	res, err := c.Certify(context.Background(), testReq)
	if err != nil {
		t.Fatalf("half-open probe should have recovered: %v", err)
	}
	if res.Verdict != "stable" || c.breaker.state != breakerClosed {
		t.Fatalf("verdict=%q state=%d, want stable/closed", res.Verdict, c.breaker.state)
	}
}

func TestAsyncJobPollThenCanonicalBytes(t *testing.T) {
	canonical := []byte(`{"version":1,"verdict":"stable","lower":0.5,"upper":0.5}`)
	var polls atomic.Int64
	var posts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/certify", func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) == 1 {
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"job_id":"abc","status_url":"/v1/jobs/abc"}`))
			return
		}
		w.Write(canonical) // second POST: cache hit, canonical bytes
	})
	mux.HandleFunc("GET /v1/jobs/abc", func(w http.ResponseWriter, r *http.Request) {
		switch polls.Add(1) {
		case 1:
			w.Write([]byte(`{"id":"abc","state":"queued"}`))
		case 2:
			w.Write([]byte(`{"id":"abc","state":"running"}`))
		default:
			w.Write([]byte(`{"id":"abc","state":"done"}`))
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := newClient(t, ts.URL, Options{})
	instrument(c)
	body, err := c.CertifyBytes(context.Background(), testReq)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(canonical) {
		t.Fatalf("body = %q, want canonical bytes", body)
	}
	if posts.Load() != 2 || polls.Load() < 3 {
		t.Fatalf("posts=%d polls=%d", posts.Load(), polls.Load())
	}
}

func TestPermanentErrorReturnsImmediately(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"api: matrices must be square"}`))
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, Options{})
	instrument(c)
	_, err := c.Certify(context.Background(), testReq)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 StatusError", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("a permanent 400 was retried: hits = %d", hits.Load())
	}
}

func TestDeterministicJitter(t *testing.T) {
	mk := func() *Client {
		c, err := New(Options{BaseURL: "http://127.0.0.1:0", Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for i := 1; i <= 6; i++ {
		da, db := a.backoff(i), b.backoff(i)
		if da != db {
			t.Fatalf("attempt %d: %v != %v — jitter not deterministic for equal seeds", i, da, db)
		}
		lo := time.Duration(float64(minDur(a.opts.MaxBackoff, a.opts.BaseBackoff<<uint(i-1))) / 2)
		hi := minDur(a.opts.MaxBackoff, a.opts.BaseBackoff<<uint(i-1))
		if da < lo || da >= hi {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", i, da, lo, hi)
		}
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func TestTransportErrorsRetryAndTripBreaker(t *testing.T) {
	// A closed port: every attempt is a transport failure.
	c, err := New(Options{BaseURL: "http://127.0.0.1:1", MaxAttempts: 4, BreakerThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	instrument(c)
	_, err = c.Certify(context.Background(), testReq)
	var te *transportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want transportError", err)
	}
	if _, err := c.Certify(context.Background(), testReq); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen after repeated transport faults", err)
	}
}

func TestFailedJobRetriesAndConverges(t *testing.T) {
	var posts atomic.Int64
	canonical := []byte(`{"version":1,"verdict":"stable"}`)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/certify", func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) == 1 {
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"job_id":"abc","status_url":"/v1/jobs/abc"}`))
			return
		}
		w.Write(canonical)
	})
	mux.HandleFunc("GET /v1/jobs/abc", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"id":"abc","state":"failed","error":"injected fault"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := newClient(t, ts.URL, Options{MaxAttempts: 4})
	instrument(c)
	body, err := c.CertifyBytes(context.Background(), testReq)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(canonical) {
		t.Fatalf("body = %q", body)
	}
	if c.breaker.state != breakerClosed {
		t.Fatal("a failed job tripped the breaker; it should not")
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, Options{MaxAttempts: 100, BreakerThreshold: 100})
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	c.sleep = func(ctx context.Context, d time.Duration) error {
		calls++
		if calls >= 2 {
			cancel()
		}
		return ctx.Err()
	}
	_, err := c.Certify(ctx, testReq)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
