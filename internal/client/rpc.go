package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// This file generalizes the Certify retry loop into a small JSON-RPC
// surface so other adaserved-protocol endpoints — the distributed
// coordinator→worker shard calls and the worker→coordinator peer-cache
// fetches of internal/dist — ride the same resilience contract:
// sheds obeyed without punishing the breaker, transport faults and
// transient 5xx retried under seeded-jitter backoff behind the
// breaker, permanent 4xx returned immediately. The endpoints these
// methods serve are idempotent by construction (shards are pure
// functions of their request; cache fetches are content-addressed),
// so retrying a call that may already have executed is always safe.

// PostJSON posts in as JSON to path (joined to BaseURL) and decodes
// the 200 response body into out (skipped when out is nil), retrying
// through sheds and transient faults like Certify does.
func (c *Client) PostJSON(ctx context.Context, path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	body, err := c.doResilient(ctx, http.MethodPost, path, payload)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// GetBytes fetches path and returns the raw 200 body. A 404 is
// reported as found=false with a nil error — the not-found verdict is
// a first-class answer for content-addressed lookups, not a fault.
func (c *Client) GetBytes(ctx context.Context, path string) (body []byte, found bool, err error) {
	body, err = c.doResilient(ctx, http.MethodGet, path, nil)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	return body, true, nil
}

// doResilient is the shared retry loop: one round trip per attempt,
// shed responses obeyed without breaker damage, transport/5xx faults
// retried with backoff through the breaker, anything else permanent.
func (c *Client) doResilient(ctx context.Context, method, path string, payload []byte) ([]byte, error) {
	attempts := 0
	for {
		if err := c.breaker.allow(c.now()); err != nil {
			return nil, err
		}
		body, err := c.roundTrip(ctx, method, path, payload)
		switch {
		case err == nil:
			c.breaker.success()
			return body, nil
		case isShed(err):
			attempts++
			if attempts >= c.opts.MaxAttempts {
				return nil, err
			}
			if serr := c.sleep(ctx, c.shedDelay(err, attempts)); serr != nil {
				return nil, serr
			}
		case isRetryable(err):
			c.breaker.failure(c.now())
			attempts++
			if attempts >= c.opts.MaxAttempts {
				return nil, err
			}
			if serr := c.sleep(ctx, c.backoff(attempts)); serr != nil {
				return nil, serr
			}
		default:
			return nil, err
		}
	}
}

// roundTrip performs one HTTP exchange and returns the body on 200 or
// a typed error otherwise, with the same header contract as postOnce.
func (c *Client) roundTrip(ctx context.Context, method, path string, payload []byte) ([]byte, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.opts.BaseURL+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.opts.ClientID != "" {
		req.Header.Set("X-Client-ID", c.opts.ClientID)
	}
	if dl, ok := ctx.Deadline(); ok {
		if left := dl.Sub(c.now()); left > 0 {
			req.Header.Set("X-Request-Deadline", left.Round(time.Millisecond).String())
		}
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, &transportError{err}
	}
	raw, err := readBody(resp, c.opts.MaxResponseBytes)
	if err != nil {
		return nil, &transportError{err}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp, raw)
	}
	return raw, nil
}
