package dist

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/client"
	"adaptivertc/internal/inputhash"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/mat"
)

// CoordinatorConfig configures the coordinator half of the subsystem.
// Zero values select serviceable defaults.
type CoordinatorConfig struct {
	// Lease bounds one shard dispatch to one worker: if the worker has
	// not answered within it, the lease has expired and the shard is
	// re-dispatched to the next worker (shards are pure, so double
	// evaluation is harmless). Default 30s.
	Lease time.Duration
	// WorkerTTL is how long a registration lives without a heartbeat
	// renewal. Default 15s.
	WorkerTTL time.Duration
	// MinShardWords is the smallest shard worth shipping: levels with
	// fewer than 2×MinShardWords parent words are expanded locally —
	// the HTTP round trip would dominate the multiply. Default 16.
	MinShardWords int
	// LocalWorkers is the engine worker count for locally evaluated
	// shards (fallback and small levels); ≤ 0 selects GOMAXPROCS.
	LocalWorkers int
	// Cache, when non-nil, is served to workers as the shared
	// certificate tier via GET /v1/internal/cert/{key}.
	Cache *certcache.Cache
	// Dial builds the transport to a worker address. The default uses
	// internal/client with 2 attempts per dispatch (failover between
	// workers is the coordinator's job, not the transport's).
	Dial func(addr string) (ShardCaller, error)
	// Logf, when non-nil, receives re-dispatch and fallback events.
	Logf func(format string, args ...any)

	now func() time.Time // test seam
}

// ShardCaller is the transport the coordinator uses toward one worker.
// *client.Client satisfies it.
type ShardCaller interface {
	PostJSON(ctx context.Context, path string, in, out any) error
}

// Coordinator owns the worker registry, the shard dispatch/merge
// logic, and the internal HTTP surface of a coordinator node. Safe for
// concurrent use.
type Coordinator struct {
	cfg CoordinatorConfig
	reg *registry
	mux *http.ServeMux

	// Counters surfaced through Metrics.
	shardsDispatched atomic.Int64 // shards sent to remote workers
	shardsLocal      atomic.Int64 // shards evaluated locally (small level, no fleet, fallback)
	redispatches     atomic.Int64 // lease expiries / faults that moved a shard to another worker
	localFallbacks   atomic.Int64 // shards no worker could evaluate
	certServed       atomic.Int64 // peer-cache hits served to workers
	certMissed       atomic.Int64 // peer-cache lookups that missed
}

// NewCoordinator builds a coordinator. The caller mounts Handler()
// under the same listener as the public service.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Lease <= 0 {
		cfg.Lease = 30 * time.Second
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = 15 * time.Second
	}
	if cfg.MinShardWords <= 0 {
		cfg.MinShardWords = 16
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (ShardCaller, error) {
			return client.New(client.Options{
				BaseURL:     addr,
				ClientID:    "dist-coordinator",
				MaxAttempts: 2,
				BaseBackoff: 50 * time.Millisecond,
				// A wide level's shard response (two exact-bit floats
				// per child) outgrows the client's certificate-sized
				// default body bound.
				MaxResponseBytes: MaxShardBytes,
			})
		}
	}
	c := &Coordinator{cfg: cfg, reg: newRegistry(cfg.WorkerTTL, cfg.now)}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	c.mux.HandleFunc("GET "+PathCert+"{key}", c.handleCert)
	c.mux.HandleFunc("GET "+PathWorkers, c.handleWorkers)
	return c
}

// Handler exposes the coordinator's internal endpoints:
// register, worker listing, and the shared certificate tier.
func (c *Coordinator) Handler() http.Handler { return c.mux }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxRegisterBytes)
	var req RegisterRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Version != ProtocolVersion {
		http.Error(w, fmt.Sprintf("dist: protocol version %d, want %d", req.Version, ProtocolVersion), http.StatusBadRequest)
		return
	}
	if req.WorkerID == "" || !strings.HasPrefix(req.Addr, "http") {
		http.Error(w, "dist: registration needs worker_id and an http(s) addr", http.StatusBadRequest)
		return
	}
	dial := func(addr string) (shardCaller, error) { return c.cfg.Dial(addr) }
	if err := c.reg.register(WorkerInfo{ID: req.WorkerID, Addr: strings.TrimRight(req.Addr, "/")}, dial); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, RegisterResponse{Version: ProtocolVersion, TTLSeconds: int(c.cfg.WorkerTTL / time.Second)})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	resp := WorkersResponse{Version: ProtocolVersion, Workers: []WorkerInfo{}}
	for _, e := range c.reg.alive() {
		resp.Workers = append(resp.Workers, e.info)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

// handleCert serves the shared certificate tier: a content-addressed,
// non-blocking cache lookup. 404 means "not cached", a first-class
// answer the worker maps to a local recompute.
func (c *Coordinator) handleCert(w http.ResponseWriter, r *http.Request) {
	if c.cfg.Cache == nil {
		http.NotFound(w, r)
		return
	}
	key, err := inputhash.ParseSum(r.PathValue("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, outcome, ok := c.cfg.Cache.Get(key)
	if !ok {
		c.certMissed.Add(1)
		http.NotFound(w, r)
		return
	}
	c.certServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", outcome.String())
	_, _ = w.Write(body)
}

// Distributor returns the jsr.ExpandFunc for one certification
// request — the hook internal/server installs on asynchronous jobs.
// The searched matrix set is resolved (and, for non-raw requests,
// Lyapunov-preconditioned, mirroring jsr.EstimateCtx deterministically)
// once on first use.
func (c *Coordinator) Distributor(req api.CertifyRequest) jsr.ExpandFunc {
	var (
		once    sync.Once
		work    []*mat.Dense
		initErr error
	)
	return func(ctx context.Context, er jsr.ExpandRequest) (jsr.ExpandResult, error) {
		once.Do(func() {
			set, err := req.Resolve()
			if err != nil {
				initErr = err
				return
			}
			work = set
			if !req.Raw {
				work, _, _ = jsr.Precondition(set)
			}
		})
		if initErr != nil {
			return jsr.ExpandResult{}, initErr
		}
		return c.expandLevel(ctx, req, work, er)
	}
}

// expandLevel evaluates one level: split the parent words into
// contiguous index shards, dispatch them concurrently across the live
// fleet, and reassemble by index — the deterministic reduction. Any
// shard that exhausts every worker is evaluated locally, so a level
// completes whenever the coordinator itself is alive.
func (c *Coordinator) expandLevel(ctx context.Context, req api.CertifyRequest, work []*mat.Dense, er jsr.ExpandRequest) (jsr.ExpandResult, error) {
	k := len(work)
	n := len(er.Words)
	workers := c.reg.alive()
	if len(workers) == 0 || n < 2*c.cfg.MinShardWords {
		c.shardsLocal.Add(1)
		return jsr.ExpandShard(ctx, work, er, c.cfg.LocalWorkers)
	}
	p := len(workers)
	if lim := n / c.cfg.MinShardWords; p > lim {
		p = lim
	}
	out := jsr.ExpandResult{Rho: make([]float64, n*k), Cert: make([]float64, n*k)}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		lo, hi := i*n/p, (i+1)*n/p
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			shard := jsr.ExpandRequest{Depth: er.Depth, Words: er.Words[lo:hi]}
			res, err := c.runShard(ctx, req, work, shard, workers, i)
			if err != nil {
				errs[i] = err
				return
			}
			copy(out.Rho[lo*k:hi*k], res.Rho)
			copy(out.Cert[lo*k:hi*k], res.Cert)
		}(i, lo, hi)
	}
	wg.Wait()
	// Lowest-index error wins, mirroring the engine's own parallel
	// error discipline.
	for _, err := range errs {
		if err != nil {
			return jsr.ExpandResult{}, err
		}
	}
	return out, nil
}

// runShard evaluates one shard with failover: each live worker in turn
// under a lease-bounded context, then the local engine. A lease expiry
// or transport fault moves the shard on; because a shard is a pure
// function, a worker that "completes" a shard after its lease expired
// has wasted only its own cycles — the coordinator merges whichever
// evaluation it accepted, and all evaluations are bit-identical.
func (c *Coordinator) runShard(ctx context.Context, req api.CertifyRequest, work []*mat.Dense, shard jsr.ExpandRequest, workers []*workerEntry, start int) (jsr.ExpandResult, error) {
	want := len(shard.Words) * len(work)
	sreq := ShardRequest{Version: ProtocolVersion, Req: req, Depth: shard.Depth, Words: shard.Words}
	for attempt := 0; attempt < len(workers); attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return jsr.ExpandResult{}, cerr
		}
		w := workers[(start+attempt)%len(workers)]
		lctx, cancel := context.WithTimeout(ctx, c.cfg.Lease)
		var resp ShardResponse
		err := w.call.PostJSON(lctx, PathShard, sreq, &resp)
		cancel()
		if err == nil {
			res, derr := decodeShardResponse(resp, want)
			if derr == nil {
				c.shardsDispatched.Add(1)
				c.reg.noteSuccess(w.info.ID)
				return res, nil
			}
			err = derr
		}
		if cerr := ctx.Err(); cerr != nil {
			return jsr.ExpandResult{}, cerr
		}
		c.reg.noteFailure(w.info.ID)
		c.redispatches.Add(1)
		c.logf("dist: shard (depth %d, %d words) on worker %s failed: %v; re-dispatching", shard.Depth, len(shard.Words), w.info.ID, err)
	}
	c.localFallbacks.Add(1)
	c.shardsLocal.Add(1)
	c.logf("dist: shard (depth %d, %d words) exhausted %d workers; evaluating locally", shard.Depth, len(shard.Words), len(workers))
	return jsr.ExpandShard(ctx, work, shard, c.cfg.LocalWorkers)
}

// decodeShardResponse validates and decodes a worker's reply.
func decodeShardResponse(resp ShardResponse, want int) (jsr.ExpandResult, error) {
	if resp.Version != ProtocolVersion {
		return jsr.ExpandResult{}, fmt.Errorf("dist: shard response version %d, want %d", resp.Version, ProtocolVersion)
	}
	if len(resp.Rho) != want || len(resp.Cert) != want {
		return jsr.ExpandResult{}, fmt.Errorf("dist: shard response has %d rho / %d cert values, want %d", len(resp.Rho), len(resp.Cert), want)
	}
	rho, err := DecodeFloats(resp.Rho)
	if err != nil {
		return jsr.ExpandResult{}, err
	}
	cert, err := DecodeFloats(resp.Cert)
	if err != nil {
		return jsr.ExpandResult{}, err
	}
	return jsr.ExpandResult{Rho: rho, Cert: cert}, nil
}

// Metrics renders the coordinator's counters in Prometheus text form;
// internal/server splices it into /metrics via Config.MetricsExtra.
func (c *Coordinator) Metrics() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP adaserved_dist_shards_total shard evaluations by where they ran\n")
	fmt.Fprintf(&b, "# TYPE adaserved_dist_shards_total counter\n")
	fmt.Fprintf(&b, "adaserved_dist_shards_total{site=\"remote\"} %d\n", c.shardsDispatched.Load())
	fmt.Fprintf(&b, "adaserved_dist_shards_total{site=\"local\"} %d\n", c.shardsLocal.Load())
	fmt.Fprintf(&b, "# HELP adaserved_dist_redispatches_total shard dispatches moved to another worker after a lease expiry or fault\n")
	fmt.Fprintf(&b, "# TYPE adaserved_dist_redispatches_total counter\n")
	fmt.Fprintf(&b, "adaserved_dist_redispatches_total %d\n", c.redispatches.Load())
	fmt.Fprintf(&b, "# HELP adaserved_dist_local_fallbacks_total shards no worker could evaluate\n")
	fmt.Fprintf(&b, "# TYPE adaserved_dist_local_fallbacks_total counter\n")
	fmt.Fprintf(&b, "adaserved_dist_local_fallbacks_total %d\n", c.localFallbacks.Load())
	fmt.Fprintf(&b, "# HELP adaserved_dist_peer_cert_total peer certificate-tier lookups by outcome\n")
	fmt.Fprintf(&b, "# TYPE adaserved_dist_peer_cert_total counter\n")
	fmt.Fprintf(&b, "adaserved_dist_peer_cert_total{outcome=\"served\"} %d\n", c.certServed.Load())
	fmt.Fprintf(&b, "adaserved_dist_peer_cert_total{outcome=\"missed\"} %d\n", c.certMissed.Load())
	fmt.Fprintf(&b, "# HELP adaserved_dist_workers live registered workers\n")
	fmt.Fprintf(&b, "# TYPE adaserved_dist_workers gauge\n")
	fmt.Fprintf(&b, "adaserved_dist_workers %d\n", len(c.reg.alive()))
	return b.String()
}
