package dist

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/jsr"
)

// --- wire codec ---

func TestFloatCodecRoundTrip(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, 1e-300, 5e-324, // denormal
		math.MaxFloat64, math.Inf(1), math.Inf(-1), math.NaN(),
		0.8596117462, // the paper bracket's kind of value
	}
	enc := EncodeFloats(vals)
	dec, err := DecodeFloats(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(dec), len(vals))
	}
	for i := range vals {
		if math.Float64bits(dec[i]) != math.Float64bits(vals[i]) {
			t.Errorf("value %d: %x round-tripped to %x", i, math.Float64bits(vals[i]), math.Float64bits(dec[i]))
		}
	}
}

func TestFloatCodecRejectsMalformed(t *testing.T) {
	for _, bad := range [][]string{
		{"zz00000000000000"},       // not hex
		{"3ff"},                    // too short
		{"3ff00000000000000"},      // too long
		{"3ff0000000000000", "no"}, // one good, one bad
	} {
		if _, err := DecodeFloats(bad); err == nil {
			t.Errorf("DecodeFloats(%q): no error", bad)
		}
	}
}

// --- registry ---

func TestRegistryTTLAndRenewal(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	r := newRegistry(10*time.Second, now)

	dials := 0
	dial := func(addr string) (shardCaller, error) { dials++; return nil, nil }

	if err := r.register(WorkerInfo{ID: "w1", Addr: "http://a"}, dial); err != nil {
		t.Fatal(err)
	}
	if got := len(r.alive()); got != 1 {
		t.Fatalf("alive after register: %d, want 1", got)
	}
	// Heartbeat renewal: no new dial, worker stays alive past the
	// original TTL.
	clock = clock.Add(8 * time.Second)
	if err := r.register(WorkerInfo{ID: "w1", Addr: "http://a"}, dial); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(8 * time.Second)
	if got := len(r.alive()); got != 1 {
		t.Fatalf("alive after renewal: %d, want 1", got)
	}
	if dials != 1 {
		t.Fatalf("dial ran %d times for one address, want 1 (renewals must keep the connection)", dials)
	}
	// A changed address re-dials.
	if err := r.register(WorkerInfo{ID: "w1", Addr: "http://b"}, dial); err != nil {
		t.Fatal(err)
	}
	if dials != 2 {
		t.Fatalf("dial ran %d times after an address change, want 2", dials)
	}
	// Silence expires the registration.
	clock = clock.Add(11 * time.Second)
	if got := len(r.alive()); got != 0 {
		t.Fatalf("alive after TTL silence: %d, want 0", got)
	}

	// Dispatch order is sorted by id regardless of registration order.
	r.register(WorkerInfo{ID: "w2", Addr: "http://c"}, dial)
	r.register(WorkerInfo{ID: "w0", Addr: "http://d"}, dial)
	ws := r.alive()
	if len(ws) != 2 || ws[0].info.ID != "w0" || ws[1].info.ID != "w2" {
		t.Fatalf("alive order: %v", ws)
	}
}

// --- coordinator + worker over real HTTP ---

// newFleet starts a coordinator and n workers on httptest listeners,
// registering every worker synchronously. hooks[i], when non-nil, is
// worker i's FaultHook.
func newFleet(t *testing.T, ccfg CoordinatorConfig, n int, hooks []func(ctx context.Context) error) (*Coordinator, []*httptest.Server) {
	t.Helper()
	coord := NewCoordinator(ccfg)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)
	servers := []*httptest.Server{cts}
	for i := 0; i < n; i++ {
		ts := httptest.NewUnstartedServer(nil)
		var hook func(ctx context.Context) error
		if hooks != nil {
			hook = hooks[i]
		}
		w, err := NewWorker(WorkerConfig{
			ID:          string(rune('a' + i)),
			Advertise:   "http://" + ts.Listener.Addr().String(),
			Coordinator: cts.URL,
			FaultHook:   hook,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts.Config.Handler = w.Handler()
		ts.Start()
		t.Cleanup(ts.Close)
		w.register(context.Background())
		servers = append(servers, ts)
	}
	if got := len(coord.reg.alive()); got != n {
		t.Fatalf("registered %d workers, want %d", got, n)
	}
	return coord, servers
}

// estimate runs the full search for req with the given expansion hook
// (nil = in-process) and returns the bounds.
func estimate(t *testing.T, req api.CertifyRequest, hook jsr.ExpandFunc) jsr.Bounds {
	t.Helper()
	req.Normalize()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	set, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	opt := req.GripenbergOptions(0)
	opt.Expand = hook
	var b jsr.Bounds
	if req.Raw {
		b, err = jsr.EstimateRawCtx(context.Background(), set, req.Brute, opt)
	} else {
		b, err = jsr.EstimateCtx(context.Background(), set, req.Brute, opt)
	}
	if err != nil && !errors.Is(err, jsr.ErrBudget) {
		t.Fatal(err)
	}
	return b
}

func sameBounds(t *testing.T, got, want jsr.Bounds, label string) {
	t.Helper()
	//lint:ignore floatcompare bit-identity is the contract under test
	if got.Lower != want.Lower || got.Upper != want.Upper {
		t.Errorf("%s: bounds [%x, %x], want [%x, %x]", label,
			math.Float64bits(got.Lower), math.Float64bits(got.Upper),
			math.Float64bits(want.Lower), math.Float64bits(want.Upper))
	}
}

func distTestRequests() map[string]api.CertifyRequest {
	return map[string]api.CertifyRequest{
		// Preconditioned path: scenario resolution + Lyapunov transform
		// must agree between coordinator and worker.
		"pmsm": {Version: 1, Scenario: &api.Scenario{Name: "pmsm"}, MaxNodes: 50_000},
		// Raw path on literal matrices, budget-exhausted so partial
		// levels cross the wire too.
		"raw-budget": {Version: 1, Raw: true, MaxNodes: 300,
			Matrices: [][][]float64{{{0.55, 0.55}, {0, 0.55}}, {{0.55, 0}, {0.55, 0.55}}}},
	}
}

// The subsystem's central promise: a distributed run is byte-identical
// to a single-node run at any worker count.
func TestDistributedBitIdentity(t *testing.T) {
	for name, req := range distTestRequests() {
		want := estimate(t, req, nil)
		for _, workers := range []int{1, 2, 4} {
			coord, _ := newFleet(t, CoordinatorConfig{MinShardWords: 1}, workers, nil)
			got := estimate(t, req, coord.Distributor(req))
			sameBounds(t, got, want, name)
			if coord.shardsDispatched.Load() == 0 {
				t.Errorf("%s with %d workers: no shard was dispatched remotely", name, workers)
			}
			if coord.redispatches.Load() != 0 {
				t.Errorf("%s with %d workers: %d re-dispatches on a healthy fleet", name, workers, coord.redispatches.Load())
			}
		}
	}
}

// A faulty worker only costs re-dispatches: the healthy worker absorbs
// its shards and the bounds stay bit-identical.
func TestRedispatchOnWorkerFault(t *testing.T) {
	req := distTestRequests()["pmsm"]
	want := estimate(t, req, nil)
	bad := func(ctx context.Context) error { return errors.New("injected: worker dead") }
	coord, _ := newFleet(t, CoordinatorConfig{MinShardWords: 1}, 2, []func(context.Context) error{bad, nil})
	got := estimate(t, req, coord.Distributor(req))
	sameBounds(t, got, want, "one dead worker")
	if coord.redispatches.Load() == 0 {
		t.Error("no re-dispatches recorded with a permanently failing worker")
	}
	if coord.localFallbacks.Load() != 0 {
		t.Errorf("%d local fallbacks despite a healthy second worker", coord.localFallbacks.Load())
	}
}

// With every worker dead the coordinator finishes alone: local
// fallback, same bytes.
func TestLocalFallbackWhenFleetDead(t *testing.T) {
	req := distTestRequests()["raw-budget"]
	want := estimate(t, req, nil)
	bad := func(ctx context.Context) error { return errors.New("injected: worker dead") }
	coord, _ := newFleet(t, CoordinatorConfig{MinShardWords: 1}, 2, []func(context.Context) error{bad, bad})
	got := estimate(t, req, coord.Distributor(req))
	sameBounds(t, got, want, "dead fleet")
	if coord.localFallbacks.Load() == 0 {
		t.Error("no local fallbacks recorded with a dead fleet")
	}
}

// A lease expiry moves the shard on: the slow worker holds its shard
// past the lease while the healthy worker (or the local engine)
// answers, and the merged bounds are unchanged.
func TestLeaseExpiryMovesShard(t *testing.T) {
	req := distTestRequests()["raw-budget"]
	want := estimate(t, req, nil)
	slow := func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Second): // far past the test lease
			return nil
		}
	}
	coord, _ := newFleet(t, CoordinatorConfig{MinShardWords: 1, Lease: 100 * time.Millisecond},
		2, []func(context.Context) error{slow, nil})
	got := estimate(t, req, coord.Distributor(req))
	sameBounds(t, got, want, "slow worker")
	if coord.redispatches.Load() == 0 {
		t.Error("no re-dispatches recorded for a worker stalled past its lease")
	}
}

// --- internal endpoints ---

func TestRegisterEndpointValidation(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{})
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	post := func(body string) int {
		resp, err := http.Post(cts.URL+PathRegister, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"version":99,"worker_id":"w","addr":"http://x"}`); got != http.StatusBadRequest {
		t.Errorf("wrong version: status %d, want 400", got)
	}
	if got := post(`{"version":1,"worker_id":"","addr":"http://x"}`); got != http.StatusBadRequest {
		t.Errorf("missing id: status %d, want 400", got)
	}
	if got := post(`{"version":1,"worker_id":"w","addr":"ftp://x"}`); got != http.StatusBadRequest {
		t.Errorf("non-http addr: status %d, want 400", got)
	}
	if got := post(`{"version":1,"worker_id":"w","addr":"http://x/"}`); got != http.StatusOK {
		t.Errorf("valid registration: status %d, want 200", got)
	}

	resp, err := http.Get(cts.URL + PathWorkers)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), `"http://x"`) {
		t.Errorf("worker listing %s does not show the trimmed registered addr", buf.String())
	}
}

func TestShardEndpointValidation(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{})
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	w, err := NewWorker(WorkerConfig{ID: "w", Advertise: "http://unused", Coordinator: cts.URL})
	if err != nil {
		t.Fatal(err)
	}
	wts := httptest.NewServer(w.Handler())
	defer wts.Close()

	post := func(body string) int {
		resp, err := http.Post(wts.URL+PathShard, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{not json`); got != http.StatusBadRequest {
		t.Errorf("junk body: status %d, want 400", got)
	}
	if got := post(`{"version":99}`); got != http.StatusBadRequest {
		t.Errorf("wrong version: status %d, want 400", got)
	}
	// Valid envelope, malformed replay: depth 2 expects length-1 parent
	// words.
	if got := post(`{"version":1,"req":{"version":1,"matrices":[[[0.5]]]},"depth":2,"words":[[0,0,0]]}`); got != http.StatusBadRequest {
		t.Errorf("malformed words: status %d, want 400", got)
	}
}

// --- peer certificate tier ---

func TestPeerFetch(t *testing.T) {
	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := api.CertifyRequest{Version: 1, Matrices: [][][]float64{{{0.5}}}}
	req.Normalize()
	key := req.Key()
	canonical := []byte(`{"version":1,"verdict":"stable"}`)
	if _, _, err := cache.GetOrCompute(context.Background(), key,
		func(context.Context) ([]byte, error) { return canonical, nil }); err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(CoordinatorConfig{Cache: cache})
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	w, err := NewWorker(WorkerConfig{ID: "w", Advertise: "http://unused", Coordinator: cts.URL})
	if err != nil {
		t.Fatal(err)
	}

	body, ok := w.PeerFetch(context.Background(), key)
	if !ok || !bytes.Equal(body, canonical) {
		t.Fatalf("PeerFetch(cached) = %q, %v; want canonical bytes, true", body, ok)
	}
	other := api.CertifyRequest{Version: 1, Matrices: [][][]float64{{{0.25}}}}
	other.Normalize()
	if _, ok := w.PeerFetch(context.Background(), other.Key()); ok {
		t.Fatal("PeerFetch(uncached) reported a hit")
	}
	if coord.certServed.Load() != 1 || coord.certMissed.Load() != 1 {
		t.Fatalf("cert tier counters served=%d missed=%d, want 1/1", coord.certServed.Load(), coord.certMissed.Load())
	}
	if !strings.Contains(coord.Metrics(), `adaserved_dist_peer_cert_total{outcome="served"} 1`) {
		t.Error("Metrics() does not render the peer cert counter")
	}
}

// The heartbeat loop re-registers after a coordinator restart (fresh
// registry) without manual intervention.
func TestHeartbeatRebuildsRegistry(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{})
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	w, err := NewWorker(WorkerConfig{
		ID: "w", Advertise: "http://unused", Coordinator: cts.URL,
		Heartbeat: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for len(coord.reg.alive()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered via heartbeat loop")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Simulate a coordinator restart: wipe the registry, wait for the
	// next heartbeat to rebuild it.
	coord.reg.mu.Lock()
	coord.reg.workers = map[string]*workerEntry{}
	coord.reg.mu.Unlock()
	for len(coord.reg.alive()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never rebuilt the registry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
}
