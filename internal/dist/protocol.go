// Package dist turns one adaserved process into a certification
// coordinator and others into workers, farming the Gripenberg level
// expansions of a single job across machines while keeping the
// response bytes identical to a single-node run.
//
// The division of labor follows the engine's distribution seam
// (jsr.ExpandFunc): the coordinator runs the search loop — lower
// bound, prune, survivor merge, budget — and only the per-level child
// evaluations travel. A shard is a pure function of (request, depth,
// parent words): the worker rebuilds the parent products by the same
// word replay the engine's Resume path uses and expands them with the
// same kernels, so every float it returns matches what the coordinator
// would have computed locally, bit for bit. That purity is what makes
// the failure model simple: a shard lost to a dead, slow, or
// partitioned worker is simply evaluated again — elsewhere, or locally
// as the last resort — and the merged level cannot tell the
// difference.
//
// Topology: workers dial the coordinator to register (POST
// /v1/internal/register, renewed on a heartbeat interval and expired
// by TTL), the coordinator dials workers to evaluate shards (POST
// /v1/internal/shard) through the resilient internal/client with a
// lease-bounded context per dispatch, and workers dial the coordinator
// to consult the shared certificate tier (GET /v1/internal/cert/{key})
// before recomputing a certification of their own. The /v1/internal/*
// surface is unauthenticated and must only be exposed on a trusted
// network — the same trust domain the cluster's machines already
// share; see DESIGN.md §14.
package dist

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"adaptivertc/internal/api"
)

// ProtocolVersion is the internal wire version. Coordinator and
// workers must agree exactly: shards carry float-critical work between
// engine versions that promise bit-identity, so there is no useful
// notion of "compatible enough".
const ProtocolVersion = 1

// Internal endpoint paths.
const (
	PathRegister = "/v1/internal/register"
	PathShard    = "/v1/internal/shard"
	PathCert     = "/v1/internal/cert/"
	PathWorkers  = "/v1/internal/workers"
)

// Body bounds for the internal POST handlers (http.MaxBytesReader).
// A shard request is dominated by its parent words — a deep frontier
// shard of ~100k words at depth 40 stays well inside 64 MiB — and a
// registration is a few hundred bytes.
const (
	MaxShardBytes    = 64 << 20
	MaxRegisterBytes = 4 << 10
)

// RegisterRequest announces (or re-announces) a worker. Addr is the
// base URL the coordinator dials back for shards; WorkerID is a
// stable identifier so a restarted worker replaces its old
// registration instead of accumulating ghosts.
type RegisterRequest struct {
	Version  int    `json:"version"`
	WorkerID string `json:"worker_id"`
	Addr     string `json:"addr"`
}

// RegisterResponse acknowledges a registration and tells the worker
// how long it lives without renewal.
type RegisterResponse struct {
	Version    int `json:"version"`
	TTLSeconds int `json:"ttl_seconds"`
}

// ShardRequest asks a worker to evaluate one level-expansion shard.
// Req is the full (normalized) certification request — it pins the
// matrix set and, via its Raw flag, whether the worker must apply the
// deterministic Lyapunov preconditioning before expanding, exactly as
// the coordinator's pipeline does. Words are the parent words of the
// shard, each of length Depth-1.
type ShardRequest struct {
	Version int                `json:"version"`
	Req     api.CertifyRequest `json:"req"`
	Depth   int                `json:"depth"`
	Words   [][]int            `json:"words"`
}

// ShardResponse carries the children's spectral radii and branch
// certificates in frontier-major, matrix-index-minor order. The
// floats are encoded as 16-hex-digit IEEE-754 bit patterns
// (EncodeFloats): JSON's decimal floats cannot represent Inf/NaN and
// invite round-trip doubt, while the bit pattern is exact by
// construction — the byte-identity promise rides on these values.
type ShardResponse struct {
	Version int      `json:"version"`
	Rho     []string `json:"rho"`
	Cert    []string `json:"cert"`
}

// WorkerInfo describes one live registration.
type WorkerInfo struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// WorkersResponse is the GET /v1/internal/workers document, used by
// operators and smoke tests to see the live fleet.
type WorkersResponse struct {
	Version int          `json:"version"`
	Workers []WorkerInfo `json:"workers"`
}

// EncodeFloats renders each float64 as the 16-hex-digit form of its
// IEEE-754 bit pattern.
func EncodeFloats(vs []float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprintf("%016x", math.Float64bits(v))
	}
	return out
}

// DecodeFloats inverts EncodeFloats, rejecting anything that is not
// exactly one 64-bit pattern per entry.
func DecodeFloats(ss []string) ([]float64, error) {
	out := make([]float64, len(ss))
	for i, s := range ss {
		if len(s) != 16 {
			return nil, fmt.Errorf("dist: float %d: %q is not a 16-hex-digit bit pattern", i, s)
		}
		bits, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("dist: float %d: %w", i, err)
		}
		out[i] = math.Float64frombits(bits)
	}
	return out, nil
}

// writeJSON encodes v to w. The internal protocol has no
// canonical-bytes requirement (only the certificate payloads do), so
// plain encoding/json is fine. A marshal failure (unreachable for the
// protocol's plain structs) answers 500 so the peer's retry machinery
// sees a fault instead of truncated JSON; a failed write means the
// peer hung up, and its lease/heartbeat machinery handles that.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "dist: encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Write(b)
}
