package dist

import (
	"context"
	"sort"
	"sync"
	"time"
)

// registry is the coordinator's view of the worker fleet: a TTL map
// renewed by heartbeat re-registrations. Liveness here is advisory —
// it decides who gets offered shards, not correctness. A worker that
// dies between heartbeats still holds leases that expire, and the
// shard re-dispatch path (coordinator.runShard) handles it; a worker
// the registry has expired but that is actually alive simply
// re-registers on its next heartbeat.
type registry struct {
	ttl time.Duration
	now func() time.Time // test seam

	mu      sync.Mutex
	workers map[string]*workerEntry
}

// workerEntry pairs a registration with the resilient client the
// coordinator dials it through. The client (and its circuit breaker
// state) survives heartbeat renewals: re-registering is a liveness
// signal, not an amnesty for a breaker the worker earned.
type workerEntry struct {
	info    WorkerInfo
	call    shardCaller
	expires time.Time
	// failures counts consecutive dispatch failures since the last
	// success; used for observability, not scheduling.
	failures int
}

// shardCaller is the slice of internal/client the coordinator needs,
// as an interface so registry tests can use in-process fakes.
type shardCaller interface {
	PostJSON(ctx context.Context, path string, in, out any) error
}

func newRegistry(ttl time.Duration, now func() time.Time) *registry {
	return &registry{ttl: ttl, now: now, workers: map[string]*workerEntry{}}
}

// register creates or renews a worker. dial is only invoked for a new
// worker id or a changed address; a pure heartbeat renewal keeps the
// existing connection and breaker state.
func (r *registry) register(info WorkerInfo, dial func(addr string) (shardCaller, error)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[info.ID]
	if e == nil || e.info.Addr != info.Addr {
		call, err := dial(info.Addr)
		if err != nil {
			return err
		}
		e = &workerEntry{info: info, call: call}
		r.workers[info.ID] = e
	}
	e.expires = r.now().Add(r.ttl)
	return nil
}

// alive returns the unexpired workers sorted by id (a stable dispatch
// order; results are order-independent, logs are not), pruning the
// expired ones.
func (r *registry) alive() []*workerEntry {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*workerEntry, 0, len(r.workers))
	for id, e := range r.workers {
		if e.expires.Before(now) {
			delete(r.workers, id)
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.ID < out[j].info.ID })
	return out
}

// noteFailure / noteSuccess maintain the per-worker failure counter.
func (r *registry) noteFailure(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.workers[id]; e != nil {
		e.failures++
	}
}

func (r *registry) noteSuccess(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.workers[id]; e != nil {
		e.failures = 0
	}
}
