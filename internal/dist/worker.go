package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"adaptivertc/internal/client"
	"adaptivertc/internal/inputhash"
	"adaptivertc/internal/jsr"
)

// WorkerConfig configures the worker half of the subsystem.
type WorkerConfig struct {
	// ID is the stable worker identifier sent on registration
	// (required). A restarted worker reusing its ID replaces its old
	// registration.
	ID string
	// Advertise is the base URL the coordinator dials back for shards
	// (required), e.g. "http://10.0.0.7:8081".
	Advertise string
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Heartbeat is the registration renewal interval; it must be
	// comfortably inside the coordinator's WorkerTTL. Default 5s.
	Heartbeat time.Duration
	// EngineWorkers is the engine worker count for shard evaluation;
	// ≤ 0 selects GOMAXPROCS. Results are bit-identical for every
	// value.
	EngineWorkers int
	// FaultHook, when non-nil, runs before each shard evaluation; a
	// returned error fails the shard. The chaos harness injects worker
	// faults here.
	FaultHook func(ctx context.Context) error
	// Logf, when non-nil, receives join/heartbeat diagnostics.
	Logf func(format string, args ...any)
}

// Worker serves shard evaluations and keeps itself registered with
// the coordinator. Safe for concurrent use.
type Worker struct {
	cfg  WorkerConfig
	call *client.Client // toward the coordinator
	mux  *http.ServeMux
}

// NewWorker builds a worker node.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" || cfg.Advertise == "" || cfg.Coordinator == "" {
		return nil, errors.New("dist: WorkerConfig needs ID, Advertise and Coordinator")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 5 * time.Second
	}
	call, err := client.New(client.Options{
		BaseURL:     cfg.Coordinator,
		ClientID:    "dist-worker-" + cfg.ID,
		MaxAttempts: 2,
		BaseBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	w := &Worker{cfg: cfg, call: call}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("POST "+PathShard, w.handleShard)
	return w, nil
}

// Handler exposes the worker's internal endpoint (shard evaluation).
func (w *Worker) Handler() http.Handler { return w.mux }

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// handleShard evaluates one expansion shard: resolve the set the
// request pins, precondition deterministically unless the request is
// raw (the exact computation jsr.EstimateCtx performs), replay the
// parent words, expand with the engine kernels, and return the floats
// as exact bit patterns.
func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(rw, r.Body, MaxShardBytes)
	var sreq ShardRequest
	if err := decodeStrict(r.Body, &sreq); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(rw, err.Error(), status)
		return
	}
	if sreq.Version != ProtocolVersion {
		http.Error(rw, fmt.Sprintf("dist: protocol version %d, want %d", sreq.Version, ProtocolVersion), http.StatusBadRequest)
		return
	}
	req := sreq.Req
	req.Normalize()
	if err := req.Validate(); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if w.cfg.FaultHook != nil {
		if err := w.cfg.FaultHook(r.Context()); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	set, err := req.Resolve()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	work := set
	if !req.Raw {
		work, _, _ = jsr.Precondition(set)
	}
	res, err := jsr.ExpandShard(r.Context(), work, jsr.ExpandRequest{Depth: sreq.Depth, Words: sreq.Words}, w.cfg.EngineWorkers)
	if err != nil {
		status := http.StatusBadRequest
		if r.Context().Err() != nil {
			// The coordinator's lease expired (or the coordinator is
			// gone); the verdict code hardly matters, nobody reads it.
			status = http.StatusServiceUnavailable
		}
		http.Error(rw, err.Error(), status)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	writeJSON(rw, ShardResponse{Version: ProtocolVersion, Rho: EncodeFloats(res.Rho), Cert: EncodeFloats(res.Cert)})
}

// Run joins the coordinator and keeps the registration alive until ctx
// is done. Registration failures are logged and retried on the next
// tick — a coordinator restart loses its registry, and this loop is
// what rebuilds it.
func (w *Worker) Run(ctx context.Context) error {
	w.register(ctx)
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			w.register(ctx)
		}
	}
}

// register performs one registration round trip, bounded so a hung
// coordinator cannot stall the heartbeat loop.
func (w *Worker) register(ctx context.Context) {
	rctx, cancel := context.WithTimeout(ctx, w.cfg.Heartbeat)
	defer cancel()
	var resp RegisterResponse
	err := w.call.PostJSON(rctx, PathRegister, RegisterRequest{
		Version: ProtocolVersion, WorkerID: w.cfg.ID, Addr: w.cfg.Advertise,
	}, &resp)
	if err != nil {
		w.logf("dist: worker %s: register with %s failed: %v", w.cfg.ID, w.cfg.Coordinator, err)
		return
	}
	if resp.Version != ProtocolVersion {
		w.logf("dist: worker %s: coordinator speaks protocol %d, want %d", w.cfg.ID, resp.Version, ProtocolVersion)
	}
}

// PeerFetch consults the coordinator's certificate tier for a
// content key, for wiring into server.Config.PeerFetch: a hit returns
// the canonical certificate bytes every node would have computed.
// Misses and transport faults both report !ok — the worker then
// computes locally, which is always correct.
func (w *Worker) PeerFetch(ctx context.Context, key inputhash.Sum) ([]byte, bool) {
	body, found, err := w.call.GetBytes(ctx, PathCert+key.String())
	if err != nil || !found {
		return nil, false
	}
	return body, true
}

// decodeStrict parses one JSON document, rejecting unknown fields and
// trailing data, preserving a MaxBytesReader's typed error.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("dist: trailing data after JSON document")
	}
	return nil
}
