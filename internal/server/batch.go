package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/mat"
)

// batchGroup is one unique content key within a batch: the first
// occurrence's request plus every item position sharing the key. The
// group is certified (or enqueued) once and its verdict copied to all
// members — N identical items in one batch cost one computation, the
// same coalescing guarantee concurrent single requests get from the
// cache's singleflight.
type batchGroup struct {
	req     api.CertifyRequest
	set     []*mat.Dense
	key     certcache.Key
	members []int // item indices, ascending (first-occurrence grouping)
}

// handleBatch answers POST /v1/certify/batch: N certification requests
// in one call, admitted as a unit (one rate-limit token, one in-flight
// slot), deduplicated by content key, answered per item with an inline
// result, a job reference, or an item-level error. The batch itself
// only fails for envelope problems (bad JSON, too many items); one
// malformed item never sinks its siblings.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Admission gates, same order and semantics as /v1/certify. A batch
	// is one admission unit by design: it amortizes HTTP overhead, not
	// admission control.
	if ok, retry := s.limiter.admit(clientID(r)); !ok {
		s.metrics.shed("rate")
		s.writeShed(w, http.StatusTooManyRequests, retry, "per-client rate limit exceeded")
		return
	}
	if max := s.cfg.MaxInflight; max > 0 {
		if n := s.inflight.Add(1); n > int64(max) {
			s.inflight.Add(-1)
			s.metrics.shed("inflight")
			retry := s.drain.retryAfter(len(s.queue)+max, s.cfg.Workers)
			s.writeShed(w, http.StatusServiceUnavailable, retry, "server saturated: in-flight request cap reached")
			return
		}
		defer s.inflight.Add(-1)
	}

	deadline, err := requestDeadline(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, api.MaxBatchBytes)
	breq, err := api.DecodeBatchRequest(r.Body)
	if err != nil {
		s.writeError(w, bodyErrStatus(err), err.Error())
		return
	}
	if err := breq.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Pass 1: validate items individually and group by content key in
	// first-occurrence order, so response generation below is
	// deterministic in the request, not in map iteration.
	items := make([]api.BatchItem, len(breq.Items))
	var order []*batchGroup
	groups := make(map[certcache.Key]*batchGroup)
	for i := range breq.Items {
		items[i].Index = i
		req := breq.Items[i]
		req.Normalize()
		if err := req.Validate(); err != nil {
			items[i].Error = err.Error()
			continue
		}
		set, err := req.Resolve()
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		key := req.Key()
		items[i].Key = key.String()
		g, ok := groups[key]
		if !ok {
			g = &batchGroup{req: req, set: set, key: key}
			groups[key] = g
			order = append(order, g)
		}
		g.members = append(g.members, i)
	}

	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	var absDeadline time.Time
	if deadline > 0 {
		absDeadline = time.Now().Add(deadline)
	}

	for _, g := range order {
		verdict := s.resolveBatchGroup(ctx, g, absDeadline)
		for _, i := range g.members {
			verdict.Index = i
			verdict.Key = items[i].Key
			items[i] = verdict
		}
	}
	s.writeJSON(w, http.StatusOK, api.BatchResponse{Version: api.RequestVersion, Items: items})
}

// resolveBatchGroup produces the shared verdict for one unique key:
// an inline result when cached or cheap enough to certify here, a job
// reference when queued, an item error when compute or enqueue failed.
// Index and Key are the caller's per-member concern.
func (s *Server) resolveBatchGroup(ctx context.Context, g *batchGroup, absDeadline time.Time) api.BatchItem {
	// Any cached certificate answers inline regardless of size — same
	// fast path a single async request takes before enqueueing.
	if body, outcome, ok := s.cache.Get(g.key); ok {
		return batchResult(outcome, body)
	}
	if s.syncable(&g.req, g.set) {
		body, outcome, err := s.cache.GetOrCompute(ctx, g.key, func(ctx context.Context) ([]byte, error) {
			return s.compute(ctx, g.key, g.req, g.req.GripenbergOptions(0))
		})
		if err != nil {
			if errors.Is(err, jsr.ErrDeadline) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return api.BatchItem{Error: "certification deadline exceeded"}
			}
			return api.BatchItem{Error: err.Error()}
		}
		return batchResult(outcome, body)
	}
	j, err := s.enqueue(g.req, g.key, absDeadline)
	if err != nil {
		// Queue full: this item (and its duplicates) report the shed;
		// the rest of the batch still gets answered.
		s.metrics.shed("queue")
		return api.BatchItem{Error: err.Error()}
	}
	return api.BatchItem{Job: &api.JobRef{JobID: j.id, StatusURL: "/v1/jobs/" + j.id}}
}

// batchResult decodes canonical certificate bytes into an inline item
// verdict carrying the cache outcome a single request would have seen
// in its X-Cache header.
func batchResult(outcome certcache.Outcome, body []byte) api.BatchItem {
	// Body bytes are canonical JSON of a CertifyResponse (same bytes
	// writeBody streams for a single request).
	var res api.CertifyResponse
	if err := json.Unmarshal(body, &res); err != nil {
		// Cannot happen for bytes this server wrote; surface rather
		// than hide if a store is ever corrupted in place.
		return api.BatchItem{Error: "decoding cached certificate: " + err.Error()}
	}
	return api.BatchItem{Cache: outcome.String(), Result: &res}
}
