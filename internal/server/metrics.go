package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"adaptivertc/internal/certcache"
	"adaptivertc/internal/store"
)

// metrics accumulates the service counters and the latency histograms,
// and renders them in the Prometheus text exposition format (version
// 0.0.4) — hand-rolled, because the whole service is stdlib-only by
// design.
type metrics struct {
	mu       sync.Mutex
	requests map[reqLabel]int64
	// latency per route pattern, in the Prometheus "le" convention.
	latency map[string]*hist
	// queueWait is how long async jobs sat queued before a worker
	// picked them up — the honest measure of service backlog that
	// request latency (which only sees the 202) cannot show.
	queueWait hist
	// admission sheds by gate ("rate", "inflight", "queue").
	shedByReason map[string]int64

	ckptErrs   atomic.Int64 // job-checkpoint write failures (best-effort persistence)
	watchers   atomic.Int64 // GET /v1/jobs/{id}?watch=1 long-polls currently blocked
	peerHits   atomic.Int64 // certificates served by the peer tier instead of computing
	peerMisses atomic.Int64 // peer-tier lookups that fell through to local compute
}

type reqLabel struct {
	route string
	code  int
}

// latencyBuckets spans sub-millisecond cache hits to multi-minute
// Gripenberg searches; queue waits live in the same range.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300}

// hist is one cumulative histogram over latencyBuckets.
type hist struct {
	counts []int64
	sum    float64
	count  int64
}

func newHist() *hist { return &hist{counts: make([]int64, len(latencyBuckets))} }

func (h *hist) observe(seconds float64) {
	for i, le := range latencyBuckets {
		if seconds <= le {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.count++
}

func newMetrics() *metrics {
	return &metrics{
		requests:     make(map[reqLabel]int64),
		latency:      make(map[string]*hist),
		queueWait:    *newHist(),
		shedByReason: make(map[string]int64),
	}
}

// shed records one admission rejection by gate.
func (m *metrics) shed(reason string) {
	m.mu.Lock()
	m.shedByReason[reason]++
	m.mu.Unlock()
}

// observe records one served request.
func (m *metrics) observe(route string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqLabel{route, code}]++
	h, ok := m.latency[route]
	if !ok {
		h = newHist()
		m.latency[route] = h
	}
	h.observe(seconds)
}

// observeQueueWait records how long one job waited on the queue.
func (m *metrics) observeQueueWait(seconds float64) {
	m.mu.Lock()
	m.queueWait.observe(seconds)
	m.mu.Unlock()
}

// gauges carries the point-in-time values sampled outside metrics.
type gauges struct {
	cache       certcache.Stats
	stores      []storeGauges
	queueDepth  int
	queueCap    int
	workers     int
	workersBusy int
	jobsQueued  int
	jobsRunning int
	jobsDone    int
	jobsFailed  int
	inflight    int
}

// storeGauges is one persistent log's counters, labeled by role.
type storeGauges struct {
	name  string // "certs" or "jobs"
	stats store.Stats
}

// render writes the full exposition. Families are emitted in a fixed
// order and labels sorted, so scrapes are deterministic.
func (m *metrics) render(w io.Writer, g gauges) {
	m.mu.Lock()
	labels := make([]reqLabel, 0, len(m.requests))
	for l := range m.requests {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if labels[i].route != labels[j].route {
			return labels[i].route < labels[j].route
		}
		return labels[i].code < labels[j].code
	})

	fmt.Fprintln(w, "# HELP adaserved_requests_total Requests served, by route pattern and status code.")
	fmt.Fprintln(w, "# TYPE adaserved_requests_total counter")
	for _, l := range labels {
		fmt.Fprintf(w, "adaserved_requests_total{route=%q,code=\"%d\"} %d\n", l.route, l.code, m.requests[l])
	}

	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	fmt.Fprintln(w, "# HELP adaserved_request_duration_seconds Request latency, by route pattern.")
	fmt.Fprintln(w, "# TYPE adaserved_request_duration_seconds histogram")
	for _, r := range routes {
		h := m.latency[r]
		for i, le := range latencyBuckets {
			fmt.Fprintf(w, "adaserved_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, le, h.counts[i])
		}
		fmt.Fprintf(w, "adaserved_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, h.count)
		fmt.Fprintf(w, "adaserved_request_duration_seconds_sum{route=%q} %g\n", r, h.sum)
		fmt.Fprintf(w, "adaserved_request_duration_seconds_count{route=%q} %d\n", r, h.count)
	}

	fmt.Fprintln(w, "# HELP adaserved_job_queue_wait_seconds Time async jobs spent queued before a worker picked them up.")
	fmt.Fprintln(w, "# TYPE adaserved_job_queue_wait_seconds histogram")
	for i, le := range latencyBuckets {
		fmt.Fprintf(w, "adaserved_job_queue_wait_seconds_bucket{le=\"%g\"} %d\n", le, m.queueWait.counts[i])
	}
	fmt.Fprintf(w, "adaserved_job_queue_wait_seconds_bucket{le=\"+Inf\"} %d\n", m.queueWait.count)
	fmt.Fprintf(w, "adaserved_job_queue_wait_seconds_sum %g\n", m.queueWait.sum)
	fmt.Fprintf(w, "adaserved_job_queue_wait_seconds_count %d\n", m.queueWait.count)

	reasons := make([]string, 0, len(m.shedByReason))
	for r := range m.shedByReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	fmt.Fprintln(w, "# HELP adaserved_admission_shed_total Requests rejected by admission control, by gate.")
	fmt.Fprintln(w, "# TYPE adaserved_admission_shed_total counter")
	for _, r := range reasons {
		fmt.Fprintf(w, "adaserved_admission_shed_total{reason=%q} %d\n", r, m.shedByReason[r])
	}
	m.mu.Unlock()

	c := g.cache
	fmt.Fprintln(w, "# HELP adaserved_cache_hits_total Certificate cache hits, by layer.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_hits_total counter")
	fmt.Fprintf(w, "adaserved_cache_hits_total{layer=\"memory\"} %d\n", c.Hits)
	fmt.Fprintf(w, "adaserved_cache_hits_total{layer=\"disk\"} %d\n", c.DiskHits)
	fmt.Fprintln(w, "# HELP adaserved_cache_misses_total Certifications actually computed.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_misses_total counter")
	fmt.Fprintf(w, "adaserved_cache_misses_total %d\n", c.Misses)
	fmt.Fprintln(w, "# HELP adaserved_cache_shared_total Requests served by joining an in-flight computation.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_shared_total counter")
	fmt.Fprintf(w, "adaserved_cache_shared_total %d\n", c.Shared)
	fmt.Fprintln(w, "# HELP adaserved_cache_corrupt_evictions_total Corrupt or mismatching disk entries evicted.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_corrupt_evictions_total counter")
	fmt.Fprintf(w, "adaserved_cache_corrupt_evictions_total %d\n", c.Corrupt)
	fmt.Fprintln(w, "# HELP adaserved_cache_entries In-memory cache entries.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_entries gauge")
	fmt.Fprintf(w, "adaserved_cache_entries %d\n", c.Entries)
	degraded := 0
	if c.Degraded {
		degraded = 1
	}
	fmt.Fprintln(w, "# HELP adaserved_cache_degraded Whether the disk cache layer is demoted to memory-only (1 = degraded).")
	fmt.Fprintln(w, "# TYPE adaserved_cache_degraded gauge")
	fmt.Fprintf(w, "adaserved_cache_degraded %d\n", degraded)
	fmt.Fprintln(w, "# HELP adaserved_cache_demotions_total Times the disk layer was demoted to memory-only after a fault.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_demotions_total counter")
	fmt.Fprintf(w, "adaserved_cache_demotions_total %d\n", c.Demotions)
	fmt.Fprintln(w, "# HELP adaserved_cache_recoveries_total Times a recovery probe restored the disk layer.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_recoveries_total counter")
	fmt.Fprintf(w, "adaserved_cache_recoveries_total %d\n", c.Recoveries)

	renderStores(w, g.stores)

	fmt.Fprintln(w, "# HELP adaserved_queue_depth Jobs waiting on the bounded queue.")
	fmt.Fprintln(w, "# TYPE adaserved_queue_depth gauge")
	fmt.Fprintf(w, "adaserved_queue_depth %d\n", g.queueDepth)
	fmt.Fprintln(w, "# HELP adaserved_queue_capacity Bounded queue capacity.")
	fmt.Fprintln(w, "# TYPE adaserved_queue_capacity gauge")
	fmt.Fprintf(w, "adaserved_queue_capacity %d\n", g.queueCap)
	fmt.Fprintln(w, "# HELP adaserved_workers Job workers configured.")
	fmt.Fprintln(w, "# TYPE adaserved_workers gauge")
	fmt.Fprintf(w, "adaserved_workers %d\n", g.workers)
	fmt.Fprintln(w, "# HELP adaserved_workers_busy Job workers currently certifying.")
	fmt.Fprintln(w, "# TYPE adaserved_workers_busy gauge")
	fmt.Fprintf(w, "adaserved_workers_busy %d\n", g.workersBusy)
	fmt.Fprintln(w, "# HELP adaserved_inflight Certify requests currently being handled.")
	fmt.Fprintln(w, "# TYPE adaserved_inflight gauge")
	fmt.Fprintf(w, "adaserved_inflight %d\n", g.inflight)

	fmt.Fprintln(w, "# HELP adaserved_jobs Jobs known to this process, by state.")
	fmt.Fprintln(w, "# TYPE adaserved_jobs gauge")
	fmt.Fprintf(w, "adaserved_jobs{state=\"queued\"} %d\n", g.jobsQueued)
	fmt.Fprintf(w, "adaserved_jobs{state=\"running\"} %d\n", g.jobsRunning)
	fmt.Fprintf(w, "adaserved_jobs{state=\"done\"} %d\n", g.jobsDone)
	fmt.Fprintf(w, "adaserved_jobs{state=\"failed\"} %d\n", g.jobsFailed)

	fmt.Fprintln(w, "# HELP adaserved_job_checkpoint_errors_total Best-effort job checkpoint writes that failed.")
	fmt.Fprintln(w, "# TYPE adaserved_job_checkpoint_errors_total counter")
	fmt.Fprintf(w, "adaserved_job_checkpoint_errors_total %d\n", m.ckptErrs.Load())

	fmt.Fprintln(w, "# HELP adaserved_job_watchers Job-status long-polls (?watch=1) currently blocked.")
	fmt.Fprintln(w, "# TYPE adaserved_job_watchers gauge")
	fmt.Fprintf(w, "adaserved_job_watchers %d\n", m.watchers.Load())

	fmt.Fprintln(w, "# HELP adaserved_peer_fetch_total Shared-tier certificate lookups before local compute, by outcome.")
	fmt.Fprintln(w, "# TYPE adaserved_peer_fetch_total counter")
	fmt.Fprintf(w, "adaserved_peer_fetch_total{outcome=\"hit\"} %d\n", m.peerHits.Load())
	fmt.Fprintf(w, "adaserved_peer_fetch_total{outcome=\"miss\"} %d\n", m.peerMisses.Load())
}

// renderStores emits the segmented-log counters for every persistent
// store the server runs, labeled store="certs"/"jobs". Families are
// skipped entirely when no store is configured (memory-only service).
func renderStores(w io.Writer, stores []storeGauges) {
	if len(stores) == 0 {
		return
	}
	counter := func(family, help string, value func(store.Stats) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", family, help, family)
		for _, sg := range stores {
			fmt.Fprintf(w, "%s{store=%q} %d\n", family, sg.name, value(sg.stats))
		}
	}
	gauge := func(family, help string, value func(store.Stats) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", family, help, family)
		for _, sg := range stores {
			fmt.Fprintf(w, "%s{store=%q} %d\n", family, sg.name, value(sg.stats))
		}
	}
	counter("adaserved_store_appends_total", "Record frames appended to the segmented log.",
		func(s store.Stats) int64 { return s.Appends })
	counter("adaserved_store_append_bytes_total", "Bytes appended to the segmented log, framing included.",
		func(s store.Stats) int64 { return s.AppendBytes })
	counter("adaserved_store_syncs_total", "fsyncs issued on segment files.",
		func(s store.Stats) int64 { return s.Syncs })
	counter("adaserved_store_reads_total", "Record reads served from segment files.",
		func(s store.Stats) int64 { return s.Reads })
	counter("adaserved_store_rotations_total", "Segment rotations at the size threshold.",
		func(s store.Stats) int64 { return s.Rotations })
	counter("adaserved_store_compactions_total", "Completed log compactions.",
		func(s store.Stats) int64 { return s.Compactions })
	counter("adaserved_store_compaction_errors_total", "Failed log compaction attempts (retried with backoff).",
		func(s store.Stats) int64 { return s.CompactionErrs })
	counter("adaserved_store_torn_bytes_total", "Unacknowledged tail bytes truncated during crash recovery.",
		func(s store.Stats) int64 { return s.TornBytes })
	counter("adaserved_store_migrated_total", "Records imported from a legacy one-file-per-entry layout.",
		func(s store.Stats) int64 { return s.Migrated })
	gauge("adaserved_store_segments", "Current segment files.",
		func(s store.Stats) int64 { return int64(s.Segments) })
	gauge("adaserved_store_records", "Live records the index references.",
		func(s store.Stats) int64 { return int64(s.Records) })
	gauge("adaserved_store_live_bytes", "Bytes of frames the index references.",
		func(s store.Stats) int64 { return s.LiveBytes })
	gauge("adaserved_store_total_bytes", "Bytes across all segment files.",
		func(s store.Stats) int64 { return s.TotalBytes })
	gauge("adaserved_store_compaction_degraded", "Whether compaction is failing while appends still work (1 = degraded-not-dead).",
		func(s store.Stats) int64 {
			if s.CompactionDegraded {
				return 1
			}
			return 0
		})
}
