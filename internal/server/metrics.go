package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"adaptivertc/internal/certcache"
)

// metrics accumulates the service counters and the request latency
// histogram, and renders them in the Prometheus text exposition
// format (version 0.0.4) — hand-rolled, because the whole service is
// stdlib-only by design.
type metrics struct {
	mu       sync.Mutex
	requests map[reqLabel]int64
	// latency histogram over all routes: cumulative bucket counts in
	// the Prometheus "le" convention, plus sum and count.
	buckets []float64
	counts  []int64
	sum     float64
	count   int64
	// admission sheds by gate ("rate", "inflight", "queue").
	shedByReason map[string]int64

	ckptErrs atomic.Int64 // job-checkpoint write failures (best-effort persistence)
}

type reqLabel struct {
	route string
	code  int
}

// latencyBuckets spans sub-millisecond cache hits to multi-minute
// Gripenberg searches.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300}

func newMetrics() *metrics {
	return &metrics{
		requests:     make(map[reqLabel]int64),
		buckets:      latencyBuckets,
		counts:       make([]int64, len(latencyBuckets)),
		shedByReason: make(map[string]int64),
	}
}

// shed records one admission rejection by gate.
func (m *metrics) shed(reason string) {
	m.mu.Lock()
	m.shedByReason[reason]++
	m.mu.Unlock()
}

// observe records one served request.
func (m *metrics) observe(route string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqLabel{route, code}]++
	for i, le := range m.buckets {
		if seconds <= le {
			m.counts[i]++
		}
	}
	m.sum += seconds
	m.count++
}

// gauges carries the point-in-time values sampled outside metrics.
type gauges struct {
	cache       certcache.Stats
	queueDepth  int
	queueCap    int
	workers     int
	workersBusy int
	jobsQueued  int
	jobsRunning int
	jobsDone    int
	jobsFailed  int
	inflight    int
}

// render writes the full exposition. Families are emitted in a fixed
// order and labels sorted, so scrapes are deterministic.
func (m *metrics) render(w io.Writer, g gauges) {
	m.mu.Lock()
	labels := make([]reqLabel, 0, len(m.requests))
	for l := range m.requests {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if labels[i].route != labels[j].route {
			return labels[i].route < labels[j].route
		}
		return labels[i].code < labels[j].code
	})

	fmt.Fprintln(w, "# HELP adaserved_requests_total Requests served, by route pattern and status code.")
	fmt.Fprintln(w, "# TYPE adaserved_requests_total counter")
	for _, l := range labels {
		fmt.Fprintf(w, "adaserved_requests_total{route=%q,code=\"%d\"} %d\n", l.route, l.code, m.requests[l])
	}

	fmt.Fprintln(w, "# HELP adaserved_request_duration_seconds Request latency.")
	fmt.Fprintln(w, "# TYPE adaserved_request_duration_seconds histogram")
	for i, le := range m.buckets {
		fmt.Fprintf(w, "adaserved_request_duration_seconds_bucket{le=\"%g\"} %d\n", le, m.counts[i])
	}
	fmt.Fprintf(w, "adaserved_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.count)
	fmt.Fprintf(w, "adaserved_request_duration_seconds_sum %g\n", m.sum)
	fmt.Fprintf(w, "adaserved_request_duration_seconds_count %d\n", m.count)

	reasons := make([]string, 0, len(m.shedByReason))
	for r := range m.shedByReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	fmt.Fprintln(w, "# HELP adaserved_admission_shed_total Requests rejected by admission control, by gate.")
	fmt.Fprintln(w, "# TYPE adaserved_admission_shed_total counter")
	for _, r := range reasons {
		fmt.Fprintf(w, "adaserved_admission_shed_total{reason=%q} %d\n", r, m.shedByReason[r])
	}
	m.mu.Unlock()

	c := g.cache
	fmt.Fprintln(w, "# HELP adaserved_cache_hits_total Certificate cache hits, by layer.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_hits_total counter")
	fmt.Fprintf(w, "adaserved_cache_hits_total{layer=\"memory\"} %d\n", c.Hits)
	fmt.Fprintf(w, "adaserved_cache_hits_total{layer=\"disk\"} %d\n", c.DiskHits)
	fmt.Fprintln(w, "# HELP adaserved_cache_misses_total Certifications actually computed.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_misses_total counter")
	fmt.Fprintf(w, "adaserved_cache_misses_total %d\n", c.Misses)
	fmt.Fprintln(w, "# HELP adaserved_cache_shared_total Requests served by joining an in-flight computation.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_shared_total counter")
	fmt.Fprintf(w, "adaserved_cache_shared_total %d\n", c.Shared)
	fmt.Fprintln(w, "# HELP adaserved_cache_corrupt_evictions_total Corrupt or mismatching disk entries evicted.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_corrupt_evictions_total counter")
	fmt.Fprintf(w, "adaserved_cache_corrupt_evictions_total %d\n", c.Corrupt)
	fmt.Fprintln(w, "# HELP adaserved_cache_entries In-memory cache entries.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_entries gauge")
	fmt.Fprintf(w, "adaserved_cache_entries %d\n", c.Entries)
	degraded := 0
	if c.Degraded {
		degraded = 1
	}
	fmt.Fprintln(w, "# HELP adaserved_cache_degraded Whether the disk cache layer is demoted to memory-only (1 = degraded).")
	fmt.Fprintln(w, "# TYPE adaserved_cache_degraded gauge")
	fmt.Fprintf(w, "adaserved_cache_degraded %d\n", degraded)
	fmt.Fprintln(w, "# HELP adaserved_cache_demotions_total Times the disk layer was demoted to memory-only after a fault.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_demotions_total counter")
	fmt.Fprintf(w, "adaserved_cache_demotions_total %d\n", c.Demotions)
	fmt.Fprintln(w, "# HELP adaserved_cache_recoveries_total Times a recovery probe restored the disk layer.")
	fmt.Fprintln(w, "# TYPE adaserved_cache_recoveries_total counter")
	fmt.Fprintf(w, "adaserved_cache_recoveries_total %d\n", c.Recoveries)

	fmt.Fprintln(w, "# HELP adaserved_queue_depth Jobs waiting on the bounded queue.")
	fmt.Fprintln(w, "# TYPE adaserved_queue_depth gauge")
	fmt.Fprintf(w, "adaserved_queue_depth %d\n", g.queueDepth)
	fmt.Fprintln(w, "# HELP adaserved_queue_capacity Bounded queue capacity.")
	fmt.Fprintln(w, "# TYPE adaserved_queue_capacity gauge")
	fmt.Fprintf(w, "adaserved_queue_capacity %d\n", g.queueCap)
	fmt.Fprintln(w, "# HELP adaserved_workers Job workers configured.")
	fmt.Fprintln(w, "# TYPE adaserved_workers gauge")
	fmt.Fprintf(w, "adaserved_workers %d\n", g.workers)
	fmt.Fprintln(w, "# HELP adaserved_workers_busy Job workers currently certifying.")
	fmt.Fprintln(w, "# TYPE adaserved_workers_busy gauge")
	fmt.Fprintf(w, "adaserved_workers_busy %d\n", g.workersBusy)
	fmt.Fprintln(w, "# HELP adaserved_inflight Certify requests currently being handled.")
	fmt.Fprintln(w, "# TYPE adaserved_inflight gauge")
	fmt.Fprintf(w, "adaserved_inflight %d\n", g.inflight)

	fmt.Fprintln(w, "# HELP adaserved_jobs Jobs known to this process, by state.")
	fmt.Fprintln(w, "# TYPE adaserved_jobs gauge")
	fmt.Fprintf(w, "adaserved_jobs{state=\"queued\"} %d\n", g.jobsQueued)
	fmt.Fprintf(w, "adaserved_jobs{state=\"running\"} %d\n", g.jobsRunning)
	fmt.Fprintf(w, "adaserved_jobs{state=\"done\"} %d\n", g.jobsDone)
	fmt.Fprintf(w, "adaserved_jobs{state=\"failed\"} %d\n", g.jobsFailed)

	fmt.Fprintln(w, "# HELP adaserved_job_checkpoint_errors_total Best-effort job checkpoint writes that failed.")
	fmt.Fprintln(w, "# TYPE adaserved_job_checkpoint_errors_total counter")
	fmt.Fprintf(w, "adaserved_job_checkpoint_errors_total %d\n", m.ckptErrs.Load())
}
