package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptivertc/internal/api"
)

// smallReq certifies in microseconds through the sync path.
const smallReq = `{"version":1,"matrices":[[[0.5]]]}`

func postWithHeaders(t *testing.T, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/certify", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, []byte(readBodyString(t, resp))
}

func readBodyString(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestRateLimitSheds429WithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RatePerSec: 0.5, Burst: 1})

	resp, _ := postWithHeaders(t, ts.URL, smallReq, map[string]string{"X-Client-ID": "alice"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d, want 200", resp.StatusCode)
	}
	resp, body := postWithHeaders(t, ts.URL, smallReq, map[string]string{"X-Client-ID": "alice"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %d, want ≥ 1", er.RetryAfterSeconds)
	}
	// A different client has its own bucket.
	resp, _ = postWithHeaders(t, ts.URL, smallReq, map[string]string{"X-Client-ID": "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: %d, want 200", resp.StatusCode)
	}
}

func TestLimiterRefillAndRetryAfter(t *testing.T) {
	now := time.Unix(0, 0)
	l := newLimiter(2, 2, func() time.Time { return now })

	for i := 0; i < 2; i++ {
		if ok, _ := l.admit("c"); !ok {
			t.Fatalf("request %d within burst was denied", i)
		}
	}
	ok, retry := l.admit("c")
	if ok {
		t.Fatal("third request in the same instant should be denied")
	}
	if retry != 1 {
		t.Fatalf("retry = %d, want 1 (½ s to the next token, rounded up)", retry)
	}
	now = now.Add(time.Second) // two tokens accrue
	if ok, _ := l.admit("c"); !ok {
		t.Fatal("refilled bucket denied a request")
	}
	if ok, _ := l.admit("c"); !ok {
		t.Fatal("second refilled token missing")
	}
	if ok, _ := l.admit("c"); ok {
		t.Fatal("bucket should be empty again")
	}
}

func TestLimiterEvictionBounded(t *testing.T) {
	now := time.Unix(0, 0)
	l := newLimiter(1, 1, func() time.Time { return now })
	for i := 0; i < maxTrackedClients+10; i++ {
		l.admit(fmt.Sprintf("client-%d", i))
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > maxTrackedClients {
		t.Fatalf("tracked %d clients, bound is %d", n, maxTrackedClients)
	}
}

func TestDrainEstimatorRetryAfter(t *testing.T) {
	d := &drainEstimator{}
	// Before any sample: one second per job assumed.
	if got := d.retryAfter(4, 2); got != 3 {
		t.Fatalf("no-sample retryAfter(4, 2) = %d, want 3", got)
	}
	d.observe(2.0)
	if got := d.retryAfter(0, 1); got != 2 {
		t.Fatalf("retryAfter(0, 1) after one 2s job = %d, want 2", got)
	}
	// Clamped to the ceiling.
	d.observe(10000)
	if got := d.retryAfter(100, 1); got != maxRetryAfter {
		t.Fatalf("retryAfter = %d, want clamp at %d", got, maxRetryAfter)
	}
	// Negative samples are ignored.
	d.observe(-5)
	if d.samples != 2 {
		t.Fatalf("samples = %d, want 2", d.samples)
	}
}

func TestMaxInflightSheds503(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s, ts := newTestServer(t, Config{
		Workers:     1,
		MaxInflight: 1,
		FaultHook: func(ctx context.Context) error {
			select {
			case <-release:
			case <-ctx.Done():
				return ctx.Err()
			}
			return nil
		},
	})
	defer once.Do(func() { close(release) })

	firstDone := make(chan int, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/certify", "application/json", strings.NewReader(smallReq))
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	// Wait for the first request to occupy the only inflight slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never became inflight")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postWithHeaders(t, ts.URL, smallReq, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without a Retry-After header")
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %d, want ≥ 1", er.RetryAfterSeconds)
	}

	once.Do(func() { close(release) })
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first request finished %d, want 200", code)
	}
}

func TestQueueFullLeavesNoResidue(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s, ts := newTestServer(t, Config{
		Workers:     1,
		QueueSize:   1,
		MaxSyncWork: -1, // force everything through the queue
		FaultHook: func(ctx context.Context) error {
			select {
			case <-release:
			case <-ctx.Done():
				return ctx.Err()
			}
			return nil
		},
	})
	defer once.Do(func() { close(release) })

	reqBody := func(rho float64) string {
		return fmt.Sprintf(`{"version":1,"matrices":[[[%g]]]}`, rho)
	}
	// A occupies the worker...
	resp, _ := postCertify(t, ts, reqBody(0.3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("request A: %d, want 202", resp.StatusCode)
	}
	deadlineA := time.Now().Add(5 * time.Second)
	for s.busy.Load() < 1 {
		if time.Now().After(deadlineA) {
			t.Fatal("worker never picked up job A")
		}
		time.Sleep(time.Millisecond)
	}
	// ...and B fills the one queue slot.
	resp, _ = postCertify(t, ts, reqBody(0.4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("request B: %d, want 202", resp.StatusCode)
	}
	// C finds the queue full: 503 + Retry-After, and — the regression
	// this test pins — no job residue: polling C's content-addressed id
	// must 404, not report a stale failed job.
	resp, body := postCertify(t, ts, reqBody(0.5))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 503 without a Retry-After header")
	}
	_ = body

	reqC, err := api.DecodeRequest(strings.NewReader(reqBody(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	reqC.Normalize()
	idC := jobID(reqC.Key())
	poll, _ := http.Get(ts.URL + "/v1/jobs/" + idC)
	poll.Body.Close()
	if poll.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected job still visible: GET /v1/jobs/%s = %d, want 404", idC, poll.StatusCode)
	}

	// And resubmitting C after the queue drains succeeds outright.
	once.Do(func() { close(release) })
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := postCertify(t, ts, reqBody(0.5))
		if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resubmission kept failing: %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobIDIsFullContentKey(t *testing.T) {
	req, err := api.DecodeRequest(strings.NewReader(smallReq))
	if err != nil {
		t.Fatal(err)
	}
	req.Normalize()
	key := req.Key()
	id := jobID(key)
	if len(id) != 64 {
		t.Fatalf("job id %q has %d hex chars, want the full 64 (truncated ids collide by the birthday bound)", id, len(id))
	}
	if id != key.String() {
		t.Fatalf("job id %q != key %q", id, key.String())
	}
}

func TestRequestDeadlineHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, _ := postWithHeaders(t, ts.URL, smallReq, map[string]string{"X-Request-Deadline": "soon"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid deadline header: %d, want 400", resp.StatusCode)
	}
	resp, _ = postWithHeaders(t, ts.URL, smallReq, map[string]string{"X-Request-Deadline": "-3s"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline header: %d, want 400", resp.StatusCode)
	}
	resp, _ = postWithHeaders(t, ts.URL, smallReq, map[string]string{"X-Request-Deadline": "30s"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid deadline header: %d, want 200", resp.StatusCode)
	}
}

func TestSyncDeadlineExpiresTo504(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		FaultHook: func(ctx context.Context) error {
			// Stall past the request deadline, honoring cancellation.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(10 * time.Second):
				return nil
			}
		},
	})
	resp, _ := postWithHeaders(t, ts.URL, smallReq, map[string]string{"X-Request-Deadline": "50ms"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired sync deadline: %d, want 504", resp.StatusCode)
	}
}

func TestRelaxDeadline(t *testing.T) {
	base := time.Unix(1000, 0)
	j := &job{deadline: base}

	j.relaxDeadline(base.Add(-time.Minute)) // earlier: ignored
	if !j.getDeadline().Equal(base) {
		t.Fatal("earlier deadline tightened the job")
	}
	j.relaxDeadline(base.Add(time.Minute)) // later: extends
	if !j.getDeadline().Equal(base.Add(time.Minute)) {
		t.Fatal("later deadline did not extend the job")
	}
	j.relaxDeadline(time.Time{}) // unbounded client clears it
	if !j.getDeadline().IsZero() {
		t.Fatal("zero deadline did not clear the bound")
	}
	j.relaxDeadline(base) // once unbounded, stays unbounded
	if !j.getDeadline().IsZero() {
		t.Fatal("bounded deadline re-tightened an unbounded job")
	}
}

func TestClientIDKeying(t *testing.T) {
	r, _ := http.NewRequest(http.MethodPost, "/v1/certify", nil)
	r.RemoteAddr = "10.1.2.3:51234"
	if got := clientID(r); got != "10.1.2.3" {
		t.Fatalf("clientID = %q, want remote host without port", got)
	}
	r.Header.Set("X-Client-ID", "tenant-7")
	if got := clientID(r); got != "tenant-7" {
		t.Fatalf("clientID = %q, want the explicit header", got)
	}
}

func TestMetricsExposeAdmissionAndCacheHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RatePerSec: 0.1, Burst: 1})
	resp, _ := postWithHeaders(t, ts.URL, smallReq, map[string]string{"X-Client-ID": "m"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %d", resp.StatusCode)
	}
	resp, _ = postWithHeaders(t, ts.URL, smallReq, map[string]string{"X-Client-ID": "m"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second: %d", resp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text := readBodyString(t, mresp)
	for _, want := range []string{
		`adaserved_admission_shed_total{reason="rate"} 1`,
		"adaserved_cache_degraded 0",
		"adaserved_cache_demotions_total 0",
		"adaserved_cache_recoveries_total 0",
		"adaserved_inflight 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
