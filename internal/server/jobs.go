package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/checkpoint"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/store"
)

// jobCkptKind/jobCkptVersion identify the per-job checkpoint format.
const (
	jobCkptKind    = "adaserved/job"
	jobCkptVersion = 1
)

// jobCkpt is the persisted job: the full request (so a restarted
// process can rebuild the job from the record alone) plus the latest
// Gripenberg frontier when the search has started. Resuming from the
// frontier finishes with bounds bit-identical to an uninterrupted run.
//
// Records live in the crash-safe segmented log under StateDir/jobs,
// keyed by job id, each value a checkpoint envelope (magic, kind,
// version, checksum). Servers from before the log wrote one
// StateDir/jobs/<id>.job file per job; Recover migrates those
// transparently.
type jobCkpt struct {
	ID       string
	Key      certcache.Key
	Req      api.CertifyRequest
	HasState bool
	State    jsr.GripenbergState
}

// job is one queued certification. The id is the request's full
// content key, so identical requests share a job.
type job struct {
	id     string
	key    certcache.Key
	req    api.CertifyRequest
	resume *jsr.GripenbergState // set by Recover; read only by the worker

	enqueuedAt time.Time // when the job entered the queue (for the wait histogram)

	mu       sync.Mutex
	state    string
	body     []byte
	errMsg   string
	deadline time.Time // zero = no per-request deadline beyond the server timeout
	// watch is the broadcast channel of the next state transition:
	// created lazily by subscribe, closed (and cleared) by every
	// transition. Closing a channel wakes all waiters at once, so one
	// transition releases every long-poller.
	watch chan struct{}
}

// jobID derives the public job identifier from the content key: the
// full hex digest, not a prefix. Truncation would map distinct
// requests onto one job with probability governed by the birthday
// bound on the truncated width — a 16-hex-char id collides with ~50%
// probability around 2^32 jobs, well within reach of a busy service,
// and a collision silently serves one request the other's
// certificate. The full 256-bit key makes that impossible in practice
// (and matches the key the certificate store records the result
// under).
func jobID(key certcache.Key) string { return key.String() }

func (j *job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.notifyLocked()
	j.mu.Unlock()
}

func (j *job) finish(body []byte) {
	j.mu.Lock()
	j.state = api.JobDone
	j.body = body
	j.notifyLocked()
	j.mu.Unlock()
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = api.JobFailed
	j.errMsg = err.Error()
	j.notifyLocked()
	j.mu.Unlock()
}

// notifyLocked wakes every watcher of the pending transition; callers
// hold j.mu.
func (j *job) notifyLocked() {
	if j.watch != nil {
		close(j.watch)
		j.watch = nil
	}
}

// subscribe returns a channel closed at the job's next state
// transition (shared by all concurrent watchers).
func (j *job) subscribe() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.watch == nil {
		j.watch = make(chan struct{})
	}
	return j.watch
}

func (j *job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.JobStatus{ID: j.id, State: j.state, Error: j.errMsg}
}

func (j *job) resultBody() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.body
}

// jobStore indexes jobs by id.
type jobStore struct {
	mu   sync.Mutex
	jobs map[string]*job
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job)}
}

func (st *jobStore) get(id string) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jobs[id]
}

// getOrCreate returns the existing job for id, or registers a new
// queued one carrying deadline. The boolean reports whether the job
// already existed (in which case deadline is NOT applied — the caller
// relaxes it explicitly).
func (st *jobStore) getOrCreate(id string, req api.CertifyRequest, key certcache.Key, deadline time.Time) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.jobs[id]; ok {
		return j, true
	}
	j := &job{id: id, key: key, req: req, state: api.JobQueued, deadline: deadline, enqueuedAt: time.Now()}
	st.jobs[id] = j
	return j, false
}

func (st *jobStore) remove(id string) {
	st.mu.Lock()
	delete(st.jobs, id)
	st.mu.Unlock()
}

// counts tallies jobs by state.
func (st *jobStore) counts() (queued, running, done, failed int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, j := range st.jobs {
		switch j.status().State {
		case api.JobQueued:
			queued++
		case api.JobRunning:
			running++
		case api.JobDone:
			done++
		case api.JobFailed:
			failed++
		}
	}
	return
}

// enqueue registers a job for the request and pushes it on the queue.
// Identical requests (same content key) share a job; a previously
// failed job is retried. A full queue is an error — the handler maps
// it to 503 + Retry-After rather than blocking intake. deadline, when
// non-zero, bounds the job's computation; a duplicate submission
// relaxes an existing deadline (the most patient client wins, and the
// shared certificate serves everyone).
func (s *Server) enqueue(req api.CertifyRequest, key certcache.Key, deadline time.Time) (*job, error) {
	id := jobID(key)
	j, existed := s.jobs.getOrCreate(id, req, key, deadline)
	if existed {
		j.relaxDeadline(deadline)
		st := j.status()
		if st.State != api.JobFailed {
			return j, nil
		}
		// Retry a failed job: reset and fall through to re-queue.
		j.mu.Lock()
		j.state = api.JobQueued
		j.errMsg = ""
		j.notifyLocked()
		j.mu.Unlock()
	}
	if err := s.writeJobCkpt(j, nil); err != nil {
		// Persistence is best-effort at enqueue time: the job still
		// runs, it just won't survive a restart before its first
		// frontier snapshot.
		s.metrics.ckptErrs.Add(1)
	}
	select {
	case s.queue <- j:
		return j, nil
	default:
		// Reject without leaving residue: a failed-looking job in the
		// store would be served as a stale failure to the next
		// identical request (and its checkpoint would resurrect the
		// rejected job on restart). The 503 is the whole answer.
		s.jobs.remove(id)
		s.removeJobCkpt(id)
		return nil, fmt.Errorf("job queue full (capacity %d)", s.cfg.QueueSize)
	}
}

// relaxDeadline widens an existing job's deadline: a zero deadline
// (this client sets no bound) clears it, a later one extends it, and
// an earlier one is ignored — a job shared by several clients must
// honor the most patient request it represents, and can only ever get
// more patient.
func (j *job) relaxDeadline(deadline time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.deadline.IsZero():
		// Already unbounded (beyond the server timeout); stay there.
	case deadline.IsZero():
		j.deadline = time.Time{}
	case deadline.After(j.deadline):
		j.deadline = deadline
	}
}

// getDeadline returns the job's current absolute deadline (zero =
// none).
func (j *job) getDeadline() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadline
}

// runJob executes one job through the certificate cache. Shutdown
// (baseCtx cancelled) puts the job back to queued and leaves its
// checkpoint in the store for Recover; every other failure is final.
func (s *Server) runJob(j *job) {
	s.busy.Add(1)
	defer s.busy.Add(-1)
	s.metrics.observeQueueWait(time.Since(j.enqueuedAt).Seconds())
	j.setState(api.JobRunning)

	opt := j.req.GripenbergOptions(0)
	opt.Resume = j.resume
	if s.cfg.Distribute != nil {
		// Coordinator role: level expansions of this job are sharded
		// across the worker fleet. The hook composes with Resume and
		// Snapshot — it only replaces the expansion kernel, not the
		// search loop — so recovered jobs distribute too.
		opt.Expand = s.cfg.Distribute(j.req)
	}
	if s.jobLog != nil {
		id, key, req := j.id, j.key, j.req
		opt.Snapshot = func(st jsr.GripenbergState) error {
			return s.putJobCkpt(jobCkpt{
				ID: id, Key: key, Req: req, HasState: true, State: st,
			})
		}
	}
	// A client-requested deadline bounds this job's context on top of
	// the per-job server timeout certify applies.
	ctx := s.baseCtx
	if dl := j.getDeadline(); !dl.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(s.baseCtx, dl)
		defer cancel()
	}
	start := time.Now()
	body, _, err := s.cache.GetOrCompute(ctx, j.key, func(ctx context.Context) ([]byte, error) {
		return s.compute(ctx, j.key, j.req, opt)
	})
	// Every completion — success or failure — occupied a worker for
	// this long; the drain estimator turns that into Retry-After.
	s.drain.observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		// Delete the checkpoint before publishing the terminal state:
		// the certificate is already durable in the cache, so a crash
		// in between merely re-runs the job into a cache hit. Deleting
		// after would let an observer see "done" while the record still
		// exists.
		s.removeJobCkpt(j.id)
		j.finish(body)
	case s.baseCtx.Err() != nil:
		// Forced shutdown: the frontier checkpoint (if any) is the
		// job's future. Recover in the next process re-enqueues it.
		j.setState(api.JobQueued)
	default:
		s.removeJobCkpt(j.id)
		j.fail(err)
	}
}

// putJobCkpt marshals ck into a checkpoint envelope and appends it to
// the job log under its id. The log's Put fsyncs before returning, so
// a nil error means the checkpoint survives a crash.
func (s *Server) putJobCkpt(ck jobCkpt) error {
	data, err := checkpoint.Marshal(jobCkptKind, jobCkptVersion, ck)
	if err != nil {
		return err
	}
	return s.jobLog.Put(ck.ID, data)
}

func (s *Server) writeJobCkpt(j *job, state *jsr.GripenbergState) error {
	if s.jobLog == nil {
		return nil
	}
	ck := jobCkpt{ID: j.id, Key: j.key, Req: j.req}
	if state != nil {
		ck.HasState, ck.State = true, *state
	}
	return s.putJobCkpt(ck)
}

func (s *Server) removeJobCkpt(id string) {
	if s.jobLog != nil {
		//lint:ignore droppederr removal is best-effort: a stale record is re-checked (and dropped) by the next Recover
		s.jobLog.Delete(id)
	}
}

// jobsDir is the state subdirectory holding job checkpoints — the
// segmented log now, one .job file per job in the legacy layout.
func (s *Server) jobsDir() string {
	return filepath.Join(s.cfg.StateDir, "jobs")
}

// migrateLegacyJobs imports pre-log StateDir/jobs/<id>.job checkpoint
// files into the job log and removes them. Corrupt files are deleted —
// the request lives inside the file, so nothing can be salvaged from a
// bad one. The import is restartable: a crash mid-way leaves the
// remaining files for the next Recover, and re-importing an
// already-migrated id is an idempotent overwrite.
func (s *Server) migrateLegacyJobs() error {
	entries, err := os.ReadDir(s.jobsDir())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: scanning legacy job checkpoints: %w", err)
	}
	var migrated int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".job") {
			continue
		}
		path := filepath.Join(s.jobsDir(), e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("server: migrating %s: %w", path, err)
		}
		var ck jobCkpt
		if uerr := checkpoint.Unmarshal(data, jobCkptKind, jobCkptVersion, &ck); uerr == nil && ck.ID != "" {
			if err := s.jobLog.Put(ck.ID, data); err != nil {
				return fmt.Errorf("server: migrating %s: %w", path, err)
			}
			migrated++
		}
		// Imported or corrupt: either way the file is done.
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("server: removing migrated %s: %w", path, err)
		}
	}
	if migrated > 0 {
		s.jobLog.AddMigrated(migrated)
	}
	return nil
}

// Recover re-enqueues the job checkpoints a previous process left in
// the store — with their Gripenberg frontier when one was snapshotted,
// so the resumed search finishes bit-identical to an uninterrupted
// one. Legacy one-file-per-job checkpoints (StateDir/jobs/<id>.job)
// are migrated into the log first. Corrupt records are deleted (the
// request itself lives inside the record; nothing can be salvaged from
// a bad one). Returns the number of jobs re-enqueued. Call before
// Start.
func (s *Server) Recover() (int, error) {
	if s.jobLog == nil {
		return 0, nil
	}
	if err := s.migrateLegacyJobs(); err != nil {
		return 0, err
	}
	n := 0
	for _, id := range s.jobLog.Keys() {
		data, ok, err := s.jobLog.Get(id)
		if err != nil || !ok {
			// Corrupt or vanished underneath us: evict, don't resurrect.
			s.removeJobCkpt(id)
			continue
		}
		var ck jobCkpt
		if err := checkpoint.Unmarshal(data, jobCkptKind, jobCkptVersion, &ck); err != nil || ck.ID != id {
			s.removeJobCkpt(id)
			continue
		}
		j, existed := s.jobs.getOrCreate(ck.ID, ck.Req, ck.Key, time.Time{})
		if existed {
			continue
		}
		if ck.HasState {
			st := ck.State
			j.resume = &st
		}
		select {
		case s.queue <- j:
			n++
		default:
			// The record stays in the log for the next Recover;
			// dropping it would silently lose a job.
			s.jobs.remove(ck.ID)
			return n, fmt.Errorf("server: job queue full while recovering %s (capacity %d)", ck.ID, s.cfg.QueueSize)
		}
	}
	return n, nil
}

// JobStoreStats returns the job log's counters and health; the zero
// value when job persistence is disabled.
func (s *Server) JobStoreStats() store.Stats {
	if s.jobLog == nil {
		return store.Stats{}
	}
	return s.jobLog.Stats()
}
