package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/checkpoint"
	"adaptivertc/internal/jsr"
)

// jobCkptKind/jobCkptVersion identify the per-job checkpoint format.
const (
	jobCkptKind    = "adaserved/job"
	jobCkptVersion = 1
)

// jobCkpt is the persisted job: the full request (so a restarted
// process can rebuild the job from the file alone) plus the latest
// Gripenberg frontier when the search has started. Resuming from the
// frontier finishes with bounds bit-identical to an uninterrupted run.
type jobCkpt struct {
	ID       string
	Key      certcache.Key
	Req      api.CertifyRequest
	HasState bool
	State    jsr.GripenbergState
}

// job is one queued certification. The id is the request's full
// content key, so identical requests share a job.
type job struct {
	id     string
	key    certcache.Key
	req    api.CertifyRequest
	resume *jsr.GripenbergState // set by Recover; read only by the worker

	mu       sync.Mutex
	state    string
	body     []byte
	errMsg   string
	deadline time.Time // zero = no per-request deadline beyond the server timeout
}

// jobID derives the public job identifier from the content key: the
// full hex digest, not a prefix. Truncation would map distinct
// requests onto one job with probability governed by the birthday
// bound on the truncated width — a 16-hex-char id collides with ~50%
// probability around 2^32 jobs, well within reach of a busy service,
// and a collision silently serves one request the other's
// certificate. The full 256-bit key makes that impossible in practice
// (and keeps the id copy-pasteable into the cache's EntryPath).
func jobID(key certcache.Key) string { return key.String() }

func (j *job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

func (j *job) finish(body []byte) {
	j.mu.Lock()
	j.state = api.JobDone
	j.body = body
	j.mu.Unlock()
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = api.JobFailed
	j.errMsg = err.Error()
	j.mu.Unlock()
}

func (j *job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.JobStatus{ID: j.id, State: j.state, Error: j.errMsg}
}

func (j *job) resultBody() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.body
}

// jobStore indexes jobs by id.
type jobStore struct {
	mu   sync.Mutex
	jobs map[string]*job
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job)}
}

func (st *jobStore) get(id string) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jobs[id]
}

// getOrCreate returns the existing job for id, or registers a new
// queued one carrying deadline. The boolean reports whether the job
// already existed (in which case deadline is NOT applied — the caller
// relaxes it explicitly).
func (st *jobStore) getOrCreate(id string, req api.CertifyRequest, key certcache.Key, deadline time.Time) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.jobs[id]; ok {
		return j, true
	}
	j := &job{id: id, key: key, req: req, state: api.JobQueued, deadline: deadline}
	st.jobs[id] = j
	return j, false
}

func (st *jobStore) remove(id string) {
	st.mu.Lock()
	delete(st.jobs, id)
	st.mu.Unlock()
}

// counts tallies jobs by state.
func (st *jobStore) counts() (queued, running, done, failed int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, j := range st.jobs {
		switch j.status().State {
		case api.JobQueued:
			queued++
		case api.JobRunning:
			running++
		case api.JobDone:
			done++
		case api.JobFailed:
			failed++
		}
	}
	return
}

// enqueue registers a job for the request and pushes it on the queue.
// Identical requests (same content key) share a job; a previously
// failed job is retried. A full queue is an error — the handler maps
// it to 503 + Retry-After rather than blocking intake. deadline, when
// non-zero, bounds the job's computation; a duplicate submission
// relaxes an existing deadline (the most patient client wins, and the
// shared certificate serves everyone).
func (s *Server) enqueue(req api.CertifyRequest, key certcache.Key, deadline time.Time) (*job, error) {
	id := jobID(key)
	j, existed := s.jobs.getOrCreate(id, req, key, deadline)
	if existed {
		j.relaxDeadline(deadline)
		st := j.status()
		if st.State != api.JobFailed {
			return j, nil
		}
		// Retry a failed job: reset and fall through to re-queue.
		j.mu.Lock()
		j.state = api.JobQueued
		j.errMsg = ""
		j.mu.Unlock()
	}
	if err := s.writeJobCkpt(j, nil); err != nil {
		// Persistence is best-effort at enqueue time: the job still
		// runs, it just won't survive a restart before its first
		// frontier snapshot.
		s.metrics.ckptErrs.Add(1)
	}
	select {
	case s.queue <- j:
		return j, nil
	default:
		// Reject without leaving residue: a failed-looking job in the
		// store would be served as a stale failure to the next
		// identical request (and its checkpoint would resurrect the
		// rejected job on restart). The 503 is the whole answer.
		s.jobs.remove(id)
		s.removeJobCkpt(id)
		return nil, fmt.Errorf("job queue full (capacity %d)", s.cfg.QueueSize)
	}
}

// relaxDeadline widens an existing job's deadline: a zero deadline
// (this client sets no bound) clears it, a later one extends it, and
// an earlier one is ignored — a job shared by several clients must
// honor the most patient request it represents, and can only ever get
// more patient.
func (j *job) relaxDeadline(deadline time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.deadline.IsZero():
		// Already unbounded (beyond the server timeout); stay there.
	case deadline.IsZero():
		j.deadline = time.Time{}
	case deadline.After(j.deadline):
		j.deadline = deadline
	}
}

// getDeadline returns the job's current absolute deadline (zero =
// none).
func (j *job) getDeadline() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadline
}

// runJob executes one job through the certificate cache. Shutdown
// (baseCtx cancelled) puts the job back to queued and leaves its
// checkpoint on disk for Recover; every other failure is final.
func (s *Server) runJob(j *job) {
	s.busy.Add(1)
	defer s.busy.Add(-1)
	j.setState(api.JobRunning)

	opt := j.req.GripenbergOptions(0)
	opt.Resume = j.resume
	if path := s.jobCkptPath(j.id); path != "" {
		req := j.req
		opt.Snapshot = func(st jsr.GripenbergState) error {
			return checkpoint.Save(path, jobCkptKind, jobCkptVersion, jobCkpt{
				ID: j.id, Key: j.key, Req: req, HasState: true, State: st,
			})
		}
	}
	// A client-requested deadline bounds this job's context on top of
	// the per-job server timeout certify applies.
	ctx := s.baseCtx
	if dl := j.getDeadline(); !dl.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(s.baseCtx, dl)
		defer cancel()
	}
	start := time.Now()
	body, _, err := s.cache.GetOrCompute(ctx, j.key, func(ctx context.Context) ([]byte, error) {
		return s.certify(ctx, j.req, opt)
	})
	// Every completion — success or failure — occupied a worker for
	// this long; the drain estimator turns that into Retry-After.
	s.drain.observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		j.finish(body)
		s.removeJobCkpt(j.id)
	case s.baseCtx.Err() != nil:
		// Forced shutdown: the frontier checkpoint (if any) is the
		// job's future. Recover in the next process re-enqueues it.
		j.setState(api.JobQueued)
	default:
		j.fail(err)
		s.removeJobCkpt(j.id)
	}
}

// jobCkptPath returns the checkpoint file for a job id, or "" when
// persistence is disabled.
func (s *Server) jobCkptPath(id string) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, "jobs", id+".job")
}

func (s *Server) writeJobCkpt(j *job, state *jsr.GripenbergState) error {
	path := s.jobCkptPath(j.id)
	if path == "" {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	ck := jobCkpt{ID: j.id, Key: j.key, Req: j.req}
	if state != nil {
		ck.HasState, ck.State = true, *state
	}
	return checkpoint.Save(path, jobCkptKind, jobCkptVersion, ck)
}

func (s *Server) removeJobCkpt(id string) {
	if path := s.jobCkptPath(id); path != "" {
		os.Remove(path)
	}
}

// Recover scans the state directory for job checkpoints left by a
// previous process and re-enqueues them — with their Gripenberg
// frontier when one was snapshotted, so the resumed search finishes
// bit-identical to an uninterrupted one. Corrupt checkpoint files are
// deleted (the request itself lives inside the file; nothing can be
// salvaged from a bad one). Returns the number of jobs re-enqueued.
// Call before Start.
func (s *Server) Recover() (int, error) {
	if s.cfg.StateDir == "" {
		return 0, nil
	}
	dir := filepath.Join(s.cfg.StateDir, "jobs")
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("server: scanning job checkpoints: %w", err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".job") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		var ck jobCkpt
		if err := checkpoint.Load(path, jobCkptKind, jobCkptVersion, &ck); err != nil {
			os.Remove(path)
			continue
		}
		j, existed := s.jobs.getOrCreate(ck.ID, ck.Req, ck.Key, time.Time{})
		if existed {
			continue
		}
		if ck.HasState {
			st := ck.State
			j.resume = &st
		}
		select {
		case s.queue <- j:
			n++
		default:
			s.jobs.remove(ck.ID)
			return n, fmt.Errorf("server: job queue full while recovering %s (capacity %d)", ck.ID, s.cfg.QueueSize)
		}
	}
	return n, nil
}
