package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptivertc/internal/api"
)

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/certify/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeBatch(t *testing.T, body []byte) api.BatchResponse {
	t.Helper()
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("decoding batch response %s: %v", body, err)
	}
	return br
}

// The batch coalescing contract: N identical items in one call cost
// exactly one JSR computation, and every position carries the same
// result.
func TestBatchCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	const n = 8
	items := make([]string, n)
	for i := range items {
		items[i] = `{"version":1,"matrices":[[[0.55,0.55],[0,0.55]],[[0.55,0],[0.55,0.55]]]}`
	}
	resp, body := postBatch(t, ts, fmt.Sprintf(`{"version":1,"items":[%s]}`, strings.Join(items, ",")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s, want 200", resp.StatusCode, body)
	}
	br := decodeBatch(t, body)
	if len(br.Items) != n {
		t.Fatalf("%d items in response, want %d", len(br.Items), n)
	}
	for i, it := range br.Items {
		if it.Index != i {
			t.Errorf("item %d reports index %d", i, it.Index)
		}
		if it.Result == nil || it.Error != "" || it.Job != nil {
			t.Fatalf("item %d: %+v, want an inline result", i, it)
		}
		if it.Key != br.Items[0].Key || it.Result.Bracket != br.Items[0].Result.Bracket {
			t.Errorf("item %d differs from item 0", i)
		}
		if it.Result.Verdict != api.VerdictStable {
			t.Errorf("item %d verdict %q, want stable", i, it.Result.Verdict)
		}
	}
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Fatalf("batch of %d identical items ran %d computations, want exactly 1 (stats %+v)", n, st.Misses, st)
	}
}

// A mixed batch answers every position independently: cached items
// inline with the cache outcome, cheap misses computed synchronously,
// large items as job references, malformed items as item errors —
// without failing the batch.
func TestBatchMixed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// Pre-warm one key through the single endpoint so the batch sees a
	// genuine cache hit.
	warm := `{"version":1,"matrices":[[[0.55,0.55],[0,0.55]],[[0.55,0],[0.55,0.55]]]}`
	if resp, body := postCertify(t, ts, warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm POST: status %d body %s", resp.StatusCode, body)
	}
	batch := `{"version":1,"items":[` +
		warm + `,` + // cached
		`{"version":1,"matrices":[[[0.25]]]},` + // sync miss
		`{"version":1,"matrices":[[[1,2]]]},` + // invalid: non-square
		`{"version":1,"matrices":[[[0.55,0.55],[0,0.55]],[[0.55,0],[0.55,0.55]]],"max_nodes":3000000}` + // async: above the default node budget
		`]}`
	resp, body := postBatch(t, ts, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s, want 200", resp.StatusCode, body)
	}
	br := decodeBatch(t, body)
	if len(br.Items) != 4 {
		t.Fatalf("%d items, want 4", len(br.Items))
	}
	if it := br.Items[0]; it.Result == nil || it.Cache != "hit" {
		t.Errorf("cached item: %+v, want inline result with cache=hit", it)
	}
	if it := br.Items[1]; it.Result == nil || it.Cache != "miss" {
		t.Errorf("sync-miss item: %+v, want inline result with cache=miss", it)
	}
	if it := br.Items[2]; it.Error == "" || it.Key != "" || it.Result != nil || it.Job != nil {
		t.Errorf("invalid item: %+v, want a bare item error", it)
	}
	it := br.Items[3]
	if it.Job == nil || it.Job.JobID == "" {
		t.Fatalf("async item: %+v, want a job ref", it)
	}
	if it.Key != it.Job.JobID {
		t.Errorf("async item key %q != job id %q (job ids are content keys)", it.Key, it.Job.JobID)
	}
	st := pollJob(t, ts, it.Job.JobID)
	if st.State != api.JobDone || st.Result == nil {
		t.Fatalf("batch job finished %+v, want done with result", st)
	}
	// The batch-created job is the same job a single async POST would
	// have created: a direct POST of the same item is now a cache hit.
	resp2, _ := postCertify(t, ts, `{"version":1,"matrices":[[[0.55,0.55],[0,0.55]],[[0.55,0],[0.55,0.55]]],"max_nodes":3000000}`)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") == "" {
		t.Errorf("single POST after batch job: status %d X-Cache %q, want cached 200", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
}

func TestBatchEnvelopeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	item := `{"version":1,"matrices":[[[0.5]]]}`
	cases := map[string]string{
		"empty":        `{"version":1,"items":[]}`,
		"bad version":  `{"version":2,"items":[` + item + `]}`,
		"junk":         `{nope`,
		"unknown keys": `{"version":1,"items":[],"mode":"fast"}`,
		"too many":     `{"version":1,"items":[` + strings.Repeat(item+",", api.MaxBatchItems) + item + `]}`,
	}
	for name, body := range cases {
		resp, out := postBatch(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", name, resp.StatusCode, out)
		}
	}
}

// Every POST body is bounded: both certify endpoints answer 413 — not
// a JSON parse 400 — when the transport bound fires.
func TestOversizedBodies413(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// A syntactically plausible prefix followed by filler well past
	// MaxRequestBytes; MaxBytesReader must cut it off first.
	big := `{"version":1,"matrices":[[[` + strings.Repeat("0.123456789,", api.MaxRequestBytes/12) + `0.5]]]}`
	resp, body := postCertify(t, ts, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized certify: status %d body %.120s, want 413", resp.StatusCode, body)
	}
	var e api.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("413 body %q is not an ErrorResponse", body)
	}
}

// ?watch=1 long-polls: the GET blocks while the job runs (gauge up),
// wakes on the state transition, and reports the terminal status; a
// watch on an already-terminal job returns immediately.
func TestJobWatch(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:     1,
		MaxSyncWork: -1,
		FaultHook: func(ctx context.Context) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	resp, body := postCertify(t, ts, paperReqJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d body %s, want 202", resp.StatusCode, body)
	}
	var ref api.JobRef
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}

	type watchResult struct {
		st      api.JobStatus
		elapsed time.Duration
	}
	watched := make(chan watchResult, 1)
	start := time.Now()
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + ref.JobID + "?watch=1")
		if err != nil {
			t.Errorf("watch GET: %v", err)
			close(watched)
			return
		}
		defer resp.Body.Close()
		var st api.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Errorf("watch decode: %v", err)
		}
		watched <- watchResult{st, time.Since(start)}
	}()

	// The watcher must be blocked (visible in the gauge) before we let
	// the job finish.
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.watchers.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher gauge never rose")
		}
		time.Sleep(2 * time.Millisecond)
	}
	held := 50 * time.Millisecond
	time.Sleep(held) // prove the poll is actually parked, not spinning through
	close(gate)

	res, ok := <-watched
	if !ok {
		t.Fatal("watch goroutine failed")
	}
	if res.st.State != api.JobDone || res.st.Result == nil {
		t.Fatalf("watched status %+v, want done with result", res.st)
	}
	if res.elapsed < held {
		t.Fatalf("watch returned after %v, before the job could have finished", res.elapsed)
	}
	if s.metrics.watchers.Load() != 0 {
		t.Fatalf("watcher gauge %d after the poll returned, want 0", s.metrics.watchers.Load())
	}

	// Terminal job: watch answers immediately with the same status.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + ref.JobID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 api.JobStatus
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.State != api.JobDone {
		t.Fatalf("terminal watch state %q, want done", st2.State)
	}
}
