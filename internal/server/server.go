// Package server implements adaserved, the HTTP certification
// service: POST a matrix set (or a named scenario) to /v1/certify and
// receive the certified JSR bracket and stability verdict that a local
// jsrtool run would print — byte-identical, because both sides call
// the same engine with the same pinned defaults and the response is
// encoded canonically.
//
// Requests below the synchronous work threshold are certified in the
// handler under the caller's context; larger requests are enqueued on
// a bounded job queue and answered with a job reference to poll at
// /v1/jobs/{id}. Either path funnels through the content-addressed
// certificate cache (internal/certcache), so N concurrent identical
// requests cost one computation and repeats are served from memory or
// disk. Queued work survives restarts: every job checkpoint carries
// the request plus the latest Gripenberg frontier snapshot, and
// Recover re-enqueues them for a bit-identical finish.
//
// Observability is stdlib-only: /healthz reports liveness plus build
// version, /metrics speaks the Prometheus text exposition format
// (request counts, latency histogram, cache and queue gauges).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/buildinfo"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/mat"
	"adaptivertc/internal/store"
)

// Config configures a Server. Cache is required; everything else has
// serviceable defaults.
type Config struct {
	// Workers is the number of job-queue workers; ≤ 0 selects
	// GOMAXPROCS. Certified bounds are bit-identical for every value.
	Workers int
	// QueueSize bounds the asynchronous job queue; ≤ 0 selects 64.
	// A full queue answers 503, never blocks the handler.
	QueueSize int
	// Timeout is the per-job wall-clock budget; ≤ 0 selects 5 minutes.
	Timeout time.Duration
	// Cache is the content-addressed certificate store (required).
	Cache *certcache.Cache
	// StateDir, when non-empty, persists per-job checkpoints (request +
	// Gripenberg frontier) in a crash-safe segmented log under
	// StateDir/jobs so queued and in-flight jobs survive a restart;
	// Recover re-enqueues them (migrating any legacy one-file-per-job
	// layout first).
	StateDir string
	// StateFS is the filesystem the job log runs on; nil selects the
	// real one. Tests and the chaos harness substitute a faulty FS.
	StateFS store.FS
	// StoreSegmentBytes is the job log's segment rotation threshold;
	// ≤ 0 selects the store default (64 MiB).
	StoreSegmentBytes int64
	// MaxSyncWork is the largest brute-force enumeration (k^brute) a
	// request may demand and still be certified synchronously in the
	// handler; 0 selects 4096, negative forces every request through
	// the job queue.
	MaxSyncWork int
	// RatePerSec enables per-client admission control on POST
	// /v1/certify: each client (X-Client-ID header, or remote host)
	// accrues RatePerSec tokens per second up to Burst, and a request
	// with an empty bucket is shed with 429 + Retry-After. ≤ 0
	// disables rate limiting.
	RatePerSec float64
	// Burst is the per-client token-bucket capacity; ≤ 0 selects 8.
	Burst int
	// MaxInflight caps the number of /v1/certify requests admitted
	// concurrently; excess requests are shed with 503 + Retry-After
	// computed from the observed drain rate. ≤ 0 disables the cap.
	MaxInflight int
	// FaultHook, when non-nil, runs at the start of every
	// certification compute (sync and queued) under the compute
	// context; an error fails the computation exactly as an engine
	// error would, and is never cached. It exists for the chaos
	// harness (internal/chaos) to inject slow or failing workers.
	// Must be nil in production.
	FaultHook func(ctx context.Context) error
	// Distribute, when non-nil, supplies the engine expansion hook for
	// asynchronous jobs — the coordinator role of internal/dist wires
	// its shard dispatcher here. The hook is installed per job; the
	// engine's merge logic is unchanged, so distributed and local runs
	// produce byte-identical certificates. Synchronous requests stay
	// local: they are below the sharding payoff by construction.
	Distribute func(req api.CertifyRequest) jsr.ExpandFunc
	// PeerFetch, when non-nil, is consulted before computing a
	// certificate the local cache does not hold — the worker role's
	// shared certificate tier (a content-addressed fetch from the
	// coordinator's store). A hit returns the canonical bytes any node
	// would have computed; a miss or fault falls through to the local
	// computation.
	PeerFetch func(ctx context.Context, key certcache.Key) ([]byte, bool)
	// MetricsExtra, when non-nil, contributes additional Prometheus
	// text to /metrics (the dist subsystem's counters).
	MetricsExtra func() string
}

// defaults for Config zero values.
const (
	defaultQueueSize   = 64
	defaultTimeout     = 5 * time.Minute
	defaultMaxSyncWork = 4096
	maxSyncDim         = 32 // sync requests must also stay small-dimensional
)

// Server is the certification service. Create with New, install
// Handler in an http.Server, call Start to launch the workers, and
// Shutdown to drain them.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *certcache.Cache
	jobs    *jobStore
	jobLog  *store.Log // nil when StateDir is empty
	logOnce sync.Once  // guards closing jobLog
	queue   chan *job
	metrics *metrics
	started time.Time

	limiter  *limiter
	drain    *drainEstimator
	inflight atomic.Int64

	baseCtx context.Context
	cancel  context.CancelFunc
	quit    chan struct{}
	quitOne sync.Once
	wg      sync.WaitGroup
	busy    atomic.Int64
}

// New builds a Server from cfg. Workers are not running until Start.
func New(cfg Config) (*Server, error) {
	if cfg.Cache == nil {
		return nil, errors.New("server: Config.Cache is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = defaultQueueSize
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	if cfg.MaxSyncWork == 0 {
		cfg.MaxSyncWork = defaultMaxSyncWork
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   cfg.Cache,
		jobs:    newJobStore(),
		queue:   make(chan *job, cfg.QueueSize),
		metrics: newMetrics(),
		started: time.Now(),
		limiter: newLimiter(cfg.RatePerSec, cfg.Burst, time.Now),
		drain:   &drainEstimator{},
		baseCtx: ctx,
		cancel:  cancel,
		quit:    make(chan struct{}),
	}
	if cfg.StateDir != "" {
		l, err := store.Open(s.jobsDir(), store.Options{FS: cfg.StateFS, SegmentBytes: cfg.StoreSegmentBytes})
		if err != nil {
			cancel()
			return nil, fmt.Errorf("server: opening job store in %s: %w", s.jobsDir(), err)
		}
		s.jobLog = l
	}
	s.mux.HandleFunc("POST /v1/certify", s.instrument("/v1/certify", s.handleCertify))
	s.mux.HandleFunc("POST /v1/certify/batch", s.instrument("/v1/certify/batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJob))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the job-queue workers. Call Recover first to
// re-enqueue checkpointed jobs from a previous process.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown drains the service: intake should already be stopped (via
// http.Server.Shutdown); workers finish the queued jobs, and when ctx
// expires before they do, in-flight Gripenberg searches are cancelled
// at the next level boundary — their frontier checkpoints stay on disk
// for Recover. Always returns with all workers stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.quitOne.Do(func() { close(s.quit) })
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.cancel()
		s.closeJobLog()
		return nil
	case <-ctx.Done():
		s.cancel() // interrupt at the next level boundary; checkpoints persist
		<-done
		s.closeJobLog()
		return ctx.Err()
	}
}

// closeJobLog seals the job log once all workers have stopped, so the
// last frontier snapshots are fsynced and the active segment closes
// cleanly. Idempotent; a nil log is a no-op.
func (s *Server) closeJobLog() {
	s.logOnce.Do(func() {
		if s.jobLog != nil {
			//lint:ignore droppederr every Put already fsynced; a failing close loses nothing Recover needs
			s.jobLog.Close()
		}
	})
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			// Drain what is already queued, then stop. A forced
			// Shutdown cancels baseCtx, which aborts these runs at the
			// next level boundary with their checkpoints intact.
			for {
				select {
				case j := <-s.queue:
					s.runJob(j)
				default:
					return
				}
			}
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// certify runs one certification under ctx and returns the canonical
// response bytes. It is the single compute function behind the cache:
// the sync handler and the job workers both land here, so their bytes
// can never differ.
func (s *Server) certify(ctx context.Context, req api.CertifyRequest, opt jsr.GripenbergOptions) ([]byte, error) {
	set, err := req.Resolve()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	if s.cfg.FaultHook != nil {
		// Chaos seam: injected worker faults fail the computation like
		// an engine error — never cached, never a false certificate.
		if err := s.cfg.FaultHook(ctx); err != nil {
			return nil, err
		}
	}

	var bounds jsr.Bounds
	var serr error
	if req.Raw {
		bounds, serr = jsr.EstimateRawCtx(ctx, set, req.Brute, opt)
	} else {
		bounds, serr = jsr.EstimateCtx(ctx, set, req.Brute, opt)
	}
	exhausted := errors.Is(serr, jsr.ErrBudget)
	if serr != nil && !exhausted {
		// ErrDeadline (timeout, client disconnect, shutdown) and engine
		// errors are failures: the bracket may be valid best-so-far but
		// a certification service must not cache an unfinished search.
		return nil, serr
	}
	return api.EncodeCanonical(api.ResponseFor(set, bounds, exhausted))
}

// peerFetchTimeout bounds the shared-tier lookup: a peer fetch is an
// optimization, and a slow coordinator must not delay the local
// computation by more than this.
const peerFetchTimeout = 5 * time.Second

// compute is the cache-miss path: consult the peer certificate tier
// first (worker role), then certify locally. The peer's bytes are the
// same canonical encoding this node would produce, so caching them
// under key preserves every byte-identity promise.
func (s *Server) compute(ctx context.Context, key certcache.Key, req api.CertifyRequest, opt jsr.GripenbergOptions) ([]byte, error) {
	if s.cfg.PeerFetch != nil {
		pctx, cancel := context.WithTimeout(ctx, peerFetchTimeout)
		body, ok := s.cfg.PeerFetch(pctx, key)
		cancel()
		if ok && len(body) > 0 {
			s.metrics.peerHits.Add(1)
			return body, nil
		}
		s.metrics.peerMisses.Add(1)
	}
	return s.certify(ctx, req, opt)
}

// syncable reports whether a request is small enough to certify in
// the handler: bounded brute-force enumeration, small dimension, and
// the default node budget.
func (s *Server) syncable(req *api.CertifyRequest, set []*mat.Dense) bool {
	if s.cfg.MaxSyncWork < 0 {
		return false
	}
	work := 1
	for i := 0; i < req.Brute; i++ {
		work *= len(set)
		if work > s.cfg.MaxSyncWork {
			return false
		}
	}
	return len(set) > 0 && set[0].Rows() <= maxSyncDim && req.MaxNodes <= api.DefaultMaxNodes
}

func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	// Admission gate 1: per-client rate limit. Shed before reading the
	// body — a limited client costs the service nothing but this check.
	if ok, retry := s.limiter.admit(clientID(r)); !ok {
		s.metrics.shed("rate")
		s.writeShed(w, http.StatusTooManyRequests, retry, "per-client rate limit exceeded")
		return
	}
	// Admission gate 2: global in-flight cap — queue-depth-aware load
	// shedding for the synchronous path, honest 503 + Retry-After
	// derived from the observed drain rate.
	if max := s.cfg.MaxInflight; max > 0 {
		if n := s.inflight.Add(1); n > int64(max) {
			s.inflight.Add(-1)
			s.metrics.shed("inflight")
			retry := s.drain.retryAfter(len(s.queue)+max, s.cfg.Workers)
			s.writeShed(w, http.StatusServiceUnavailable, retry, "server saturated: in-flight request cap reached")
			return
		}
		defer s.inflight.Add(-1)
	}

	deadline, err := requestDeadline(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Bound the body before reading it: an oversized request is a 413,
	// detected by the typed MaxBytesReader error rather than a JSON
	// truncation artifact.
	r.Body = http.MaxBytesReader(w, r.Body, api.MaxRequestBytes)
	req, err := api.DecodeRequest(r.Body)
	if err != nil {
		s.writeError(w, bodyErrStatus(err), err.Error())
		return
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Resolve once here for the sync/async decision; certify resolves
	// again inside the compute function so cached flights stay pure
	// functions of the request.
	set, err := req.Resolve()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := req.Key()

	if !s.syncable(&req, set) {
		if body, outcome, ok := s.cache.Get(key); ok {
			s.writeBody(w, outcome, body)
			return
		}
		var absDeadline time.Time
		if deadline > 0 {
			absDeadline = time.Now().Add(deadline)
		}
		j, err := s.enqueue(req, key, absDeadline)
		if err != nil {
			s.metrics.shed("queue")
			retry := s.drain.retryAfter(len(s.queue), s.cfg.Workers)
			s.writeShed(w, http.StatusServiceUnavailable, retry, err.Error())
			return
		}
		s.writeJSON(w, http.StatusAccepted, api.JobRef{JobID: j.id, StatusURL: "/v1/jobs/" + j.id})
		return
	}

	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	body, outcome, err := s.cache.GetOrCompute(ctx, key, func(ctx context.Context) ([]byte, error) {
		return s.compute(ctx, key, req, req.GripenbergOptions(0))
	})
	if err != nil {
		if errors.Is(err, jsr.ErrDeadline) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.writeError(w, http.StatusGatewayTimeout, "certification deadline exceeded")
			return
		}
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeBody(w, outcome, body)
}

// bodyErrStatus maps a request-decode failure to its status code: 413
// when the MaxBytesReader bound fired, 400 for everything else.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// requestDeadline parses the optional X-Request-Deadline header (a Go
// duration such as "30s" or "1.5m") bounding this request's
// certification work. Zero means "no extra bound": the per-job server
// Timeout still applies as the default deadline either way.
func requestDeadline(r *http.Request) (time.Duration, error) {
	h := r.Header.Get("X-Request-Deadline")
	if h == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(h)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("server: invalid X-Request-Deadline %q: want a positive Go duration like \"30s\"", h)
	}
	return d, nil
}

// watchTimeout caps one ?watch=1 long-poll: on expiry the current
// (unchanged) status is returned and the client re-polls, which keeps
// every handler bounded and lets intermediaries reap idle connections.
const watchTimeout = 30 * time.Second

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	st := j.status()
	if r.URL.Query().Get("watch") == "1" && st.State != api.JobDone && st.State != api.JobFailed {
		// Long-poll: block until the job changes state, the watch
		// window expires, or the client goes away — then fall through
		// and report whatever the status is now. subscribe-then-recheck
		// closes the race with a transition between status() and
		// subscribe(): the channel subscribed to is only closed by a
		// LATER transition, so the recheck below must see the earlier
		// one.
		ch := j.subscribe()
		if st = j.status(); st.State != api.JobDone && st.State != api.JobFailed {
			s.metrics.watchers.Add(1)
			t := time.NewTimer(watchTimeout)
			select {
			case <-ch:
			case <-t.C:
			case <-r.Context().Done():
			}
			t.Stop()
			s.metrics.watchers.Add(-1)
			st = j.status()
		}
	}
	if st.State == api.JobDone && st.Result == nil {
		// Body bytes are canonical JSON of a CertifyResponse.
		var res api.CertifyResponse
		if err := json.Unmarshal(j.resultBody(), &res); err == nil {
			st.Result = &res
		}
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	q, run, done, failed := s.jobs.counts()
	degraded, reason := s.cache.Degraded()
	// Fold the stores' compaction health in: a log whose appends work
	// but whose compaction keeps failing is degraded-not-dead — every
	// record still persists, garbage just stops being reclaimed until
	// the backoff retries succeed.
	compDegraded, compReason := false, ""
	if cs := s.cache.StoreStats(); cs.CompactionDegraded {
		compDegraded, compReason = true, "certs: "+cs.CompactionReason
	}
	if js := s.JobStoreStats(); js.CompactionDegraded && !compDegraded {
		compDegraded, compReason = true, "jobs: "+js.CompactionReason
	}
	status := "ok"
	if degraded || compDegraded {
		// Degraded is still serving: certificates compute and memory
		// caching works; only cross-restart persistence (or space
		// reclamation) is impaired.
		status = "degraded"
	}
	s.writeJSON(w, http.StatusOK, api.Health{
		Status:                  status,
		Version:                 buildinfo.Version(),
		UptimeSeconds:           int64(time.Since(s.started).Seconds()),
		Workers:                 s.cfg.Workers,
		QueueDepth:              len(s.queue),
		JobsQueued:              q,
		JobsRunning:             run,
		JobsDone:                done,
		JobsFailed:              failed,
		CacheDegraded:           degraded,
		CacheDegradedReason:     reason,
		StoreCompactionDegraded: compDegraded,
		StoreCompactionReason:   compReason,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, s.snapshot())
	if s.cfg.MetricsExtra != nil {
		fmt.Fprint(w, s.cfg.MetricsExtra())
	}
}

// snapshot gathers the gauge values that live outside the metrics
// struct (cache, queue, jobs, workers).
func (s *Server) snapshot() gauges {
	q, run, done, failed := s.jobs.counts()
	g := gauges{
		cache:       s.cache.Stats(),
		queueDepth:  len(s.queue),
		queueCap:    s.cfg.QueueSize,
		workers:     s.cfg.Workers,
		workersBusy: int(s.busy.Load()),
		jobsQueued:  q, jobsRunning: run, jobsDone: done, jobsFailed: failed,
		inflight: int(s.inflight.Load()),
	}
	if s.cache.Persistent() {
		g.stores = append(g.stores, storeGauges{name: "certs", stats: s.cache.StoreStats()})
	}
	if s.jobLog != nil {
		g.stores = append(g.stores, storeGauges{name: "jobs", stats: s.jobLog.Stats()})
	}
	return g
}

func (s *Server) writeBody(w http.ResponseWriter, outcome certcache.Outcome, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", outcome.String())
	w.Write(body)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := api.EncodeCanonical(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, api.ErrorResponse{Error: msg})
}

// writeShed answers a load-shed (429/503) with the same backoff hint
// in both the Retry-After header and the JSON body — shedding is
// honest backpressure, never a silent drop.
func (s *Server) writeShed(w http.ResponseWriter, code, retryAfter int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	s.writeJSON(w, code, api.ErrorResponse{Error: msg, RetryAfterSeconds: retryAfter})
}

// instrument wraps a handler with request counting (by route pattern
// and status code) and latency observation.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.observe(route, sw.code, time.Since(start).Seconds())
	}
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
