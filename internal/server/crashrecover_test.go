package server

// Service-level crash recovery: a server persisting job checkpoints
// through a fault-injecting FS is crashed at every write and sync
// boundary its workload offers, abandoned without Shutdown (SIGKILL
// semantics: open handles, no flush, no cleanup), and the state
// directory is reopened by a fresh server on a clean FS. The contract
// under test, end to end:
//
//   - reopening after any crash point always succeeds (the store
//     truncates the torn tail instead of refusing or corrupting);
//   - every acknowledged checkpoint write survives and is recovered;
//   - nothing half-visible is recovered — every surviving record is a
//     job that was actually submitted, never reassembled torn garbage;
//   - recovered jobs drain to completion with bytes bit-identical to
//     an uninterrupted run, at 1 and at 4 workers.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/chaos"
)

// crashFixtures builds three small requests and their reference
// response bytes from an undisturbed server.
func crashFixtures(t *testing.T) ([]api.CertifyRequest, []string, map[string][]byte) {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: 1})
	var reqs []api.CertifyRequest
	var ids []string
	want := make(map[string][]byte)
	for _, rho := range []float64{0.2, 0.3, 0.4} {
		js := fmt.Sprintf(`{"version":1,"matrices":[[[%g]]]}`, rho)
		req, err := api.DecodeRequest(strings.NewReader(js))
		if err != nil {
			t.Fatal(err)
		}
		req.Normalize()
		if err := req.Validate(); err != nil {
			t.Fatal(err)
		}
		resp, body := postCertify(t, ts, js)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fixture %g: status %d body %s", rho, resp.StatusCode, body)
		}
		id := jobID(req.Key())
		reqs = append(reqs, req)
		ids = append(ids, id)
		want[id] = body
	}
	return reqs, ids, want
}

// runDoomed models the process that dies. It opens a server over
// stateDir with ffs as the state filesystem and persists each job's
// checkpoint exactly the way enqueue does, then is abandoned — no
// Shutdown, no Close, open segment handle and all, which is what
// SIGKILL leaves behind. It returns the ids whose checkpoint write was
// acknowledged (Put returned nil, i.e. the record was fsynced).
func runDoomed(t *testing.T, stateDir string, ffs *chaos.FaultyFS, reqs []api.CertifyRequest) []string {
	t.Helper()
	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, Cache: cache, StateDir: stateDir, StateFS: ffs})
	if err != nil {
		// The crash point landed inside the log open itself: the
		// process never came up and nothing was acknowledged.
		return nil
	}
	var acked []string
	for _, req := range reqs {
		ck := jobCkpt{ID: jobID(req.Key()), Key: req.Key(), Req: req}
		if err := s.putJobCkpt(ck); err == nil {
			acked = append(acked, ck.ID)
		}
	}
	return acked
}

// recoverAndCheck reopens stateDir on the real filesystem, recovers,
// drains, and verifies the crash-safety contract.
func recoverAndCheck(t *testing.T, stateDir string, workers int, acked, ids []string, want map[string][]byte) {
	t.Helper()
	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: workers, Cache: cache, StateDir: stateDir})
	if err != nil {
		t.Fatalf("reopen on a clean FS must always succeed: %v", err)
	}
	n, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}

	known := make(map[string]bool, len(ids))
	for _, id := range ids {
		known[id] = true
	}
	// No half-visibility: every record that survived the crash is a job
	// that was actually submitted.
	for _, k := range s.jobLog.Keys() {
		if !known[k] {
			t.Fatalf("log resurrected unknown record %q after crash", k)
		}
	}
	var recovered []string
	for _, id := range ids {
		if s.jobs.get(id) != nil {
			recovered = append(recovered, id)
		}
	}
	if len(recovered) != n {
		t.Fatalf("Recover reported %d jobs, registry holds %d", n, len(recovered))
	}
	// Acked means durable: an acknowledged checkpoint is never lost.
	for _, id := range acked {
		if s.jobs.get(id) == nil {
			t.Fatalf("acked job %s was lost by the crash", id)
		}
	}

	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		queued, running, _, failed := s.jobs.counts()
		if queued == 0 && running == 0 {
			if failed != 0 {
				t.Fatalf("%d recovered job(s) failed", failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered jobs never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, id := range recovered {
		j := s.jobs.get(id)
		if st := j.status(); st.State != api.JobDone {
			t.Fatalf("recovered job %s in state %q after drain", id, st.State)
		}
		if !bytes.Equal(j.resultBody(), want[id]) {
			t.Fatalf("job %s recovered with different bytes than the uninterrupted run", id)
		}
	}
}

func runCrashPoint(t *testing.T, plan chaos.CrashPlan, workers int, reqs []api.CertifyRequest, ids []string, want map[string][]byte) {
	t.Helper()
	stateDir := t.TempDir()
	ffs := chaos.NewFaultyFS(nil)
	ffs.SetCrashPlan(plan)
	acked := runDoomed(t, stateDir, ffs, reqs)
	recoverAndCheck(t, stateDir, workers, acked, ids, want)
}

func TestServiceCrashRecoveryByteIdentity(t *testing.T) {
	reqs, ids, want := crashFixtures(t)

	// Reference run: count the write and sync boundaries the workload
	// passes through the FS, so the matrix below hits every one.
	ref := chaos.NewFaultyFS(nil)
	ref.SetCrashPlan(chaos.CrashPlan{}) // disarmed, counters reset
	if acked := runDoomed(t, t.TempDir(), ref, reqs); len(acked) != len(reqs) {
		t.Fatalf("reference run acked %d of %d checkpoints", len(acked), len(reqs))
	}
	writes, syncs := ref.Counts()
	if writes == 0 || syncs == 0 {
		t.Fatalf("reference run observed writes=%d syncs=%d; the workload exercises nothing", writes, syncs)
	}

	for _, workers := range []int{1, 4} {
		for w := int64(1); w <= writes; w++ {
			for _, v := range []struct {
				name string
				plan chaos.CrashPlan
			}{
				{"partial", chaos.CrashPlan{AfterWrites: w, Mode: chaos.CrashStop, Partial: true}},
				{"bitflip", chaos.CrashPlan{AfterWrites: w, Mode: chaos.CrashStop, BitFlip: true}},
			} {
				t.Run(fmt.Sprintf("workers=%d/write=%d/%s", workers, w, v.name), func(t *testing.T) {
					runCrashPoint(t, v.plan, workers, reqs, ids, want)
				})
			}
		}
		for sn := int64(1); sn <= syncs; sn++ {
			t.Run(fmt.Sprintf("workers=%d/sync=%d", workers, sn), func(t *testing.T) {
				runCrashPoint(t, chaos.CrashPlan{AfterSyncs: sn, Mode: chaos.CrashStop}, workers, reqs, ids, want)
			})
		}
	}
}
