package server

// Recovery under imperfect conditions: a previous process may have
// left more checkpoints than the queue holds, or a checkpoint whose
// bytes rotted on disk. Recover must re-enqueue what fits, delete what
// cannot be parsed, and never crash or resurrect a wrong job.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
)

// mkJobCkpt builds a valid on-disk job checkpoint for a 1×1 request
// with the given entry and returns its id.
func mkJobCkpt(t *testing.T, stateDir string, rho float64) string {
	t.Helper()
	req, err := api.DecodeRequest(strings.NewReader(
		fmt.Sprintf(`{"version":1,"matrices":[[[%g]]]}`, rho)))
	if err != nil {
		t.Fatal(err)
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	key := req.Key()
	id := jobID(key)
	path := filepath.Join(stateDir, "jobs", id+".job")
	if err := writeCkptFile(path, jobCkpt{ID: id, Key: key, Req: req}); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestRecoverPartiallyFullQueue(t *testing.T) {
	stateDir := t.TempDir()
	rhos := []float64{0.2, 0.3, 0.4}
	ids := make([]string, len(rhos))
	for i, rho := range rhos {
		ids[i] = mkJobCkpt(t, stateDir, rho)
	}

	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, QueueSize: 2, Cache: cache, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Recover()
	if n != 2 {
		t.Fatalf("recovered %d jobs, want 2 (queue capacity)", n)
	}
	if err == nil {
		t.Fatal("Recover on an over-full state dir must report the overflow")
	}
	if !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("err = %v, want a queue-full diagnostic", err)
	}

	// Recover migrated every legacy file into the log, and every record
	// survives: the two enqueued ones are removed only on completion,
	// and the overflowed one must stay for the next Recover — dropping
	// it would silently lose a job.
	if n := countJobFiles(t, stateDir); n != 0 {
		t.Fatalf("%d legacy .job files survive Recover, want 0 (migrated)", n)
	}
	if keys := s.jobLog.Keys(); len(keys) != 3 {
		t.Fatalf("job log holds %d records after Recover, want 3 (got %v)", len(keys), keys)
	}
	if st := s.JobStoreStats(); st.Migrated != 3 {
		t.Fatalf("store stats %+v, want Migrated=3", st)
	}

	// Drain the two recovered jobs; both certify.
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, done, failed := s.jobs.counts()
		if done+failed >= 2 {
			if failed != 0 {
				t.Fatalf("%d recovered job(s) failed", failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered jobs never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Completed jobs cleaned their records; the overflowed one remains.
	// Recover walks the log's keys in lexical order, so the overflowed
	// job is the lexically last of the three ids.
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	keys := s.jobLog.Keys()
	if len(keys) != 1 || keys[0] != sorted[2] {
		t.Fatalf("surviving records = %v, want exactly the overflowed job %s", keys, sorted[2])
	}
}

// countJobFiles counts legacy .job files under stateDir/jobs (the log's
// segment files live in the same directory and don't count).
func countJobFiles(t *testing.T, stateDir string) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(stateDir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".job") {
			n++
		}
	}
	return n
}

func TestRecoverCorruptCheckpointBody(t *testing.T) {
	stateDir := t.TempDir()
	goodID := mkJobCkpt(t, stateDir, 0.25)
	badID := mkJobCkpt(t, stateDir, 0.35)
	badPath := filepath.Join(stateDir, "jobs", badID+".job")
	if err := flipLastByte(badPath); err != nil {
		t.Fatal(err)
	}

	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, Cache: cache, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover with one corrupt checkpoint must not fail: %v", err)
	}
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1 (the intact one)", n)
	}
	// Evict, don't resurrect: the corrupt file is gone, it was not
	// imported into the log, and no job was registered under its id.
	if _, serr := os.Stat(badPath); !os.IsNotExist(serr) {
		t.Fatalf("corrupt checkpoint still on disk: %v", serr)
	}
	if _, ok, gerr := s.jobLog.Get(badID); gerr != nil || ok {
		t.Fatalf("corrupt checkpoint was imported into the log (ok=%v, err=%v)", ok, gerr)
	}
	if j := s.jobs.get(badID); j != nil {
		t.Fatalf("corrupt checkpoint produced a job in state %q", j.status().State)
	}
	if j := s.jobs.get(goodID); j == nil {
		t.Fatal("intact checkpoint was not recovered")
	}

	// The request whose checkpoint rotted recomputes from scratch — a
	// fresh POST certifies it; nothing false was served from the ruins.
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	resp, body := postCertify(t, ts, `{"version":1,"matrices":[[[0.35]]]}`)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("recompute after corrupt checkpoint: %d", resp.StatusCode)
	}
	if resp.StatusCode == http.StatusOK && !strings.Contains(string(body), `"verdict":"stable"`) {
		t.Fatalf("recomputed verdict wrong: %s", body)
	}
}
