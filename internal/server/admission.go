package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// Admission control for the certification endpoint, modeled on the
// paper's own robustness move: instead of assuming the nominal case,
// the service is explicit about the bounded bursts it tolerates and
// degrades honestly — a shed request always carries a computed
// Retry-After, never a silent drop or an unbounded queue.
//
// Three gates run in order on POST /v1/certify:
//
//  1. a per-client token bucket (rate/burst, keyed on X-Client-ID or
//     the remote address) answers 429 Too Many Requests when a client
//     exceeds its budget, with Retry-After = time until its next token;
//
//  2. a global in-flight cap sheds with 503 when the handler pool is
//     saturated, with Retry-After derived from the observed job drain
//     rate;
//
//  3. the bounded job queue (async path) sheds with 503 + Retry-After
//     when full — the same signal, one layer deeper.

// admission defaults.
const (
	defaultBurst      = 8
	maxTrackedClients = 4096
	maxRetryAfter     = 300 // seconds; clients should re-resolve after 5 minutes anyway
)

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// limiter is a per-client token-bucket rate limiter. Buckets refill at
// rate tokens/second up to burst; a request costs one token. The
// client map is bounded: when it overflows, full (idle) buckets are
// evicted first — an active client under limit pressure is never
// forgotten in favor of an idle one.
type limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if burst <= 0 {
		burst = defaultBurst
	}
	return &limiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// admit consumes one token for client if available. When the bucket is
// empty it returns false and the whole seconds to wait until the next
// token accrues (≥ 1, so a Retry-After header is always honest).
func (l *limiter) admit(client string) (bool, int) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[client]
	if !ok {
		l.evictLocked()
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / l.rate
	return false, clampRetryAfter(wait)
}

// evictLocked bounds the bucket map. Full buckets belong to clients
// that have been idle at least burst/rate seconds; they lose nothing
// by being forgotten (a fresh bucket starts full). If eviction still
// cannot make room, the map is cleared — resetting limits for
// everyone beats unbounded memory from an address-spoofing client.
func (l *limiter) evictLocked() {
	if len(l.buckets) < maxTrackedClients {
		return
	}
	for id, b := range l.buckets {
		if b.tokens >= l.burst {
			delete(l.buckets, id)
		}
	}
	if len(l.buckets) >= maxTrackedClients {
		l.buckets = make(map[string]*bucket)
	}
}

// clampRetryAfter rounds a wait up to whole seconds within [1,
// maxRetryAfter].
func clampRetryAfter(seconds float64) int {
	s := int(math.Ceil(seconds))
	if s < 1 {
		s = 1
	}
	if s > maxRetryAfter {
		s = maxRetryAfter
	}
	return s
}

// drainEstimator tracks an exponentially weighted moving average of
// job service times, from which the 503 Retry-After is computed: a
// queue of depth d drained by w workers at avg seconds per job clears
// in about (d+1)·avg/w seconds.
type drainEstimator struct {
	mu      sync.Mutex
	avg     float64 // EWMA of job seconds; 0 until the first sample
	samples int64
}

// ewmaAlpha weighs recent jobs heavily: certification times are
// bimodal (cache hits vs fresh Gripenberg searches) and the recent mix
// is the relevant one for backpressure.
const ewmaAlpha = 0.2

// observe records one completed certification's wall-clock seconds.
func (d *drainEstimator) observe(seconds float64) {
	if seconds < 0 {
		return
	}
	d.mu.Lock()
	if d.samples == 0 {
		d.avg = seconds
	} else {
		d.avg += ewmaAlpha * (seconds - d.avg)
	}
	d.samples++
	d.mu.Unlock()
}

// retryAfter estimates whole seconds until a queue of the given depth
// drains through workers. Before any sample exists it assumes one
// second per job — pessimistic enough to spread retries, honest enough
// to keep clients engaged.
func (d *drainEstimator) retryAfter(queueDepth, workers int) int {
	d.mu.Lock()
	avg := d.avg
	if d.samples == 0 {
		avg = 1
	}
	d.mu.Unlock()
	if workers < 1 {
		workers = 1
	}
	return clampRetryAfter(float64(queueDepth+1) * avg / float64(workers))
}

// clientID identifies the requester for rate limiting: the explicit
// X-Client-ID header when present (trusted deployments put an API key
// or tenant id there), otherwise the remote host without its ephemeral
// port, so one misbehaving host cannot reset its bucket per
// connection.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
