package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptivertc/internal/api"
	"adaptivertc/internal/certcache"
	"adaptivertc/internal/checkpoint"
	"adaptivertc/internal/jsr"
)

// paperReqJSON is the running example set: two 2×2 matrices with
// JSR ≈ 0.8596 — certifiably stable in well under a second.
const paperReqJSON = `{"version":1,"matrices":[[[0.55,0.55],[0,0.55]],[[0.55,0],[0.55,0.55]]]}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		c, err := certcache.New(certcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = c
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postCertify(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/certify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// The tentpole contract: N concurrent identical POSTs run exactly one
// JSR computation (asserted via cache metrics) and every client
// receives byte-identical bodies.
func TestConcurrentIdenticalPOSTs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	const n = 16
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/certify", "application/json", strings.NewReader(paperReqJSON))
			if err != nil {
				t.Errorf("POST %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i], codes[i] = buf.Bytes(), resp.StatusCode
		}(i)
	}
	wg.Wait()

	for i := range bodies {
		if codes[i] != http.StatusOK {
			t.Fatalf("POST %d: status %d body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("POST %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Fatalf("cache ran %d computations for %d identical requests, want exactly 1 (stats %+v)", st.Misses, n, st)
	}
	var res api.CertifyResponse
	if err := json.Unmarshal(bodies[0], &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != api.VerdictStable {
		t.Fatalf("verdict %q, want stable (bracket %s)", res.Verdict, res.Bracket)
	}
}

func TestSyncCacheHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp1, body1 := postCertify(t, ts, paperReqJSON)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first POST: status %d X-Cache %q", resp1.StatusCode, resp1.Header.Get("X-Cache"))
	}
	resp2, body2 := postCertify(t, ts, paperReqJSON)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second POST: X-Cache %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cached body differs from computed body")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := map[string]string{
		"unknown field":   `{"version":1,"matrices":[[[0.5]]],"detla":1}`,
		"no source":       `{"version":1}`,
		"bad version":     `{"version":9,"matrices":[[[0.5]]]}`,
		"non-square":      `{"version":1,"matrices":[[[1,2]]]}`,
		"scenario + mats": `{"version":1,"matrices":[[[0.5]]],"scenario":{"name":"pmsm"}}`,
	}
	for name, body := range cases {
		resp, out := postCertify(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", name, resp.StatusCode, out)
		}
		var e api.ErrorResponse
		if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not an ErrorResponse", name, out)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// pollJob polls until the job leaves queued/running or the deadline hits.
func pollJob(t *testing.T, ts *httptest.Server, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st api.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == api.JobDone || st.State == api.JobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Async path: with sync serving disabled the POST returns a job
// reference; the finished job carries the same result a sync POST
// would, and a repeat POST is a cache hit serving the job's bytes.
func TestAsyncJobFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxSyncWork: -1})
	resp, body := postCertify(t, ts, paperReqJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d body %s, want 202", resp.StatusCode, body)
	}
	var ref api.JobRef
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}
	if ref.JobID == "" || ref.StatusURL != "/v1/jobs/"+ref.JobID {
		t.Fatalf("bad job ref %+v", ref)
	}
	st := pollJob(t, ts, ref.JobID)
	if st.State != api.JobDone || st.Result == nil {
		t.Fatalf("job finished %+v, want done with result", st)
	}
	if st.Result.Verdict != api.VerdictStable {
		t.Fatalf("verdict %q, want stable", st.Result.Verdict)
	}
	// Same request again: served straight from the cache, as bytes.
	resp2, body2 := postCertify(t, ts, paperReqJSON)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") == "" {
		t.Fatalf("repeat POST: status %d X-Cache %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	reenc, err := api.EncodeCanonical(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body2, reenc) {
		t.Fatalf("cached body and job result differ:\n%s\nvs\n%s", body2, reenc)
	}
	// Duplicate async submission reuses the same job id.
	resp3, body3 := postCertify(t, ts, `{"version":1,"matrices":[[[0.55,0.55],[0,0.55]],[[0.55,0],[0.55,0.55]]],"max_nodes":3000000}`)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("async variant: status %d body %s", resp3.StatusCode, body3)
	}
}

// Certified bytes are identical at every worker count.
func TestWorkerCountByteIdentity(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 4} {
		_, ts := newTestServer(t, Config{Workers: workers, MaxSyncWork: -1})
		resp, body := postCertify(t, ts, paperReqJSON)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("workers=%d: status %d", workers, resp.StatusCode)
		}
		var jr api.JobRef
		json.Unmarshal(body, &jr)
		if st := pollJob(t, ts, jr.JobID); st.State != api.JobDone {
			t.Fatalf("workers=%d: job %+v", workers, st)
		}
		_, got := postCertify(t, ts, paperReqJSON) // raw cached bytes
		if ref == nil {
			ref = got
		} else if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d body differs:\n%s\nvs\n%s", workers, got, ref)
		}
	}
}

// A corrupted persistent cache entry is discarded on reopen and
// recomputed to the same bytes by a fresh server over the same
// directory. The flipped byte lands in the log's final frame, so the
// store treats it as a torn tail: truncated at startup, served as a
// miss, never as wrong bytes.
func TestCorruptDiskEntryRecomputedByServer(t *testing.T) {
	dir := t.TempDir()
	c1, err := certcache.New(certcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{Workers: 1, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	_, body1 := postCertify(t, ts1, paperReqJSON)
	if st := c1.Stats(); st.Misses != 1 {
		t.Fatalf("first server stats %+v", st)
	}
	// Shut the first server down completely (and seal its log) before
	// corrupting the directory: two live logs over one dir is operator
	// error, not the scenario under test.
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.Shutdown(ctx)
	cancel()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the persisted entry: the last frame of the newest segment.
	if err := flipLastByte(newestSegment(t, dir)); err != nil {
		t.Fatal(err)
	}

	c2, err := certcache.New(certcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Workers: 1, Cache: c2})
	resp2, body2 := postCertify(t, ts2, paperReqJSON)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("recompute status %d", resp2.StatusCode)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("recomputed body differs from original")
	}
	if st := c2.Stats(); st.Misses != 1 {
		t.Fatalf("second server stats %+v, want Misses=1 (recomputed)", st)
	}
	if st := c2.StoreStats(); st.TornBytes == 0 {
		t.Fatalf("store stats %+v: corrupted tail frame was not truncated on reopen", st)
	}
}

// Checkpoint/resume: a job interrupted mid-search (checkpoint file
// holding a real Gripenberg frontier) is recovered by a new server and
// finishes with bytes bit-identical to an uninterrupted run.
func TestJobCheckpointResume(t *testing.T) {
	stateDir := t.TempDir()
	req, err := api.DecodeRequest(strings.NewReader(
		`{"version":1,"matrices":[[[0.55,0.55],[0,0.55]],[[0.55,0],[0.55,0.55]]],"delta":1e-6,"depth":25,"brute":3}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	set, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference run. At delta 1e-6 this search exhausts
	// the default node budget — a valid "exhausted" bracket, which is
	// exactly what the server would serve and cache.
	refBounds, err := jsr.EstimateCtx(context.Background(), set, req.Brute, req.GripenbergOptions(0))
	exhausted := errors.Is(err, jsr.ErrBudget)
	if err != nil && !exhausted {
		t.Fatal(err)
	}
	want, err := api.EncodeCanonical(api.ResponseFor(set, refBounds, exhausted))
	if err != nil {
		t.Fatal(err)
	}

	// Partial run: capture the frontier a few levels in, then cancel —
	// exactly what a forced shutdown leaves on disk.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var captured *jsr.GripenbergState
	opt := req.GripenbergOptions(0)
	opt.Snapshot = func(st jsr.GripenbergState) error {
		if captured == nil && st.Depth >= req.Brute+2 {
			c := st
			captured = &c
			cancel()
		}
		return nil
	}
	if _, err := jsr.EstimateCtx(ctx, set, req.Brute, opt); err == nil {
		t.Fatal("partial run completed before the capture point; deepen the search")
	}
	if captured == nil {
		t.Fatal("no frontier captured — search finished too fast for this fixture")
	}

	key := req.Key()
	id := jobID(key)
	ckptPath := stateDir + "/jobs/" + id + ".job"
	if err := writeCkptFile(ckptPath, jobCkpt{ID: id, Key: key, Req: req, HasState: true, State: *captured}); err != nil {
		t.Fatal(err)
	}

	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, Cache: cache, StateDir: stateDir, MaxSyncWork: -1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Recover()
	if err != nil || n != 1 {
		t.Fatalf("Recover = (%d, %v), want (1, nil)", n, err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	st := pollJob(t, ts, id)
	if st.State != api.JobDone {
		t.Fatalf("recovered job: %+v", st)
	}
	got := s.jobs.get(id).resultBody()
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	// Recover migrated the legacy file into the log; completion deleted
	// the record. Neither layout should still claim the job.
	if _, serr := os.Stat(ckptPath); !os.IsNotExist(serr) {
		t.Fatalf("legacy checkpoint file not migrated away: %v", serr)
	}
	if _, ok, gerr := s.jobLog.Get(id); gerr != nil || ok {
		t.Fatalf("completed job left its checkpoint in the store (ok=%v, err=%v)", ok, gerr)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	stateDir := t.TempDir()
	c, err := certcache.New(certcache.Options{Dir: filepath.Join(stateDir, "certs")})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 3, Cache: c, StateDir: stateDir})
	postCertify(t, ts, paperReqJSON)
	postCertify(t, ts, paperReqJSON)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version == "" || h.Workers != 3 {
		t.Fatalf("health %+v", h)
	}
	if h.StoreCompactionDegraded || h.StoreCompactionReason != "" {
		t.Fatalf("healthy stores reported compaction-degraded: %+v", h)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`adaserved_requests_total{route="/v1/certify",code="200"} 2`,
		"adaserved_cache_misses_total 1",
		`adaserved_cache_hits_total{layer="memory"} 1`,
		`adaserved_request_duration_seconds_bucket{route="/v1/certify",le="+Inf"} 2`,
		`adaserved_request_duration_seconds_count{route="/v1/certify"} 2`,
		"adaserved_job_queue_wait_seconds_count 0",
		`adaserved_store_appends_total{store="certs"} 1`,
		`adaserved_store_appends_total{store="jobs"} 0`,
		`adaserved_store_records{store="certs"} 1`,
		`adaserved_store_compaction_degraded{store="certs"} 0`,
		"adaserved_queue_depth 0",
		"adaserved_workers 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// Graceful drain: jobs already queued complete during Shutdown.
func TestShutdownDrainsQueue(t *testing.T) {
	cache, err := certcache.New(certcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, Cache: cache, MaxSyncWork: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postCertify(t, ts, paperReqJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ref api.JobRef
	json.Unmarshal(body, &ref)

	// Workers start only now: the job is certainly still queued.
	s.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := s.jobs.get(ref.JobID).status(); st.State != api.JobDone {
		t.Fatalf("queued job not drained: %+v", st)
	}
}

// --- small test helpers ---

// writeCkptFile persists a jobCkpt exactly as a running server would.
func writeCkptFile(path string, ck jobCkpt) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return checkpoint.Save(path, jobCkptKind, jobCkptVersion, ck)
}

// flipLastByte corrupts a file in place.
func flipLastByte(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	raw[len(raw)-1] ^= 0xFF
	return os.WriteFile(path, raw, 0o644)
}

// newestSegment returns the path of the highest-numbered segment file
// in a store directory — where the most recent append lives.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatalf("no segment files in %s", dir)
	}
	return filepath.Join(dir, newest)
}
