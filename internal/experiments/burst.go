package experiments

import (
	"fmt"
	"strings"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/plants"
	"adaptivertc/internal/sim"
)

// BurstRow compares closed-loop degradation under independent sporadic
// overruns against Markov-modulated bursts with the same long-run
// overrun fraction — probing the paper's claim that the period
// adaptation "prevents cascaded delays" even when the underlying cause
// (e.g. interrupt bursts) clusters overruns in time.
type BurstRow struct {
	Config
	OverrunFrac   float64
	IIDAdaptive   float64 // worst cost, independent overruns
	BurstAdaptive float64 // worst cost, bursty overruns (same marginal)
	IIDFixedT     float64
	BurstFixedT   float64
}

// BurstComparison runs the burst-robustness experiment on the PMSM.
func BurstComparison(opt Options) ([]BurstRow, error) {
	opt = opt.Defaults()
	plant := plants.PMSM(plants.DefaultPMSMParams())
	w := pmsmWeights()
	cost := sim.QuadCost(w.Q, w.R)
	x0 := pmsmInitialState()
	lqg := func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	}
	const (
		pEnter = 0.06
		pExit  = 0.34
	)
	frac := pEnter / (pEnter + pExit) // stationary overrun fraction

	rows := make([]BurstRow, 0, len(opt.Grid))
	for _, cfg := range opt.Grid {
		tm, err := core.NewTiming(table2T, cfg.Ns, table2T/10, cfg.RmaxFactor*table2T)
		if err != nil {
			return nil, err
		}
		iid := sim.SporadicResponse{Rmin: tm.Rmin, T: tm.T, Rmax: tm.Rmax, OverrunProb: frac}
		burst := sim.BurstResponse{Rmin: tm.Rmin, T: tm.T, Rmax: tm.Rmax, PEnter: pEnter, PExit: pExit}
		mc := sim.MonteCarloOptions{Sequences: opt.Sequences, Jobs: opt.Jobs, Seed: opt.Seed, Workers: opt.Workers}

		ctlT, err := lqg(tm.T)
		if err != nil {
			return nil, err
		}
		eval := func(des core.Designer, model sim.ResponseModel) (float64, error) {
			d, err := core.NewDesign(plant, tm, des)
			if err != nil {
				return 0, err
			}
			m, err := sim.MonteCarlo(d, x0, model, cost, mc)
			if err != nil {
				return 0, err
			}
			return m.WorstCost, nil
		}
		row := BurstRow{Config: cfg, OverrunFrac: frac}
		if row.IIDAdaptive, err = eval(lqg, iid); err != nil {
			return nil, err
		}
		if row.BurstAdaptive, err = eval(lqg, burst); err != nil {
			return nil, err
		}
		fixed := core.FixedDesigner(ctlT)
		if row.IIDFixedT, err = eval(fixed, iid); err != nil {
			return nil, err
		}
		if row.BurstFixedT, err = eval(fixed, burst); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BurstString renders the comparison.
func BurstString(rows []BurstRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %14s %14s %14s %14s\n",
		"Rmax", "Ts", "adapt (iid)", "adapt (burst)", "fixedT (iid)", "fixedT (burst)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %14.4f %14.4f %14.4f %14.4f\n",
			fmt.Sprintf("%.1f·T", r.RmaxFactor), fmt.Sprintf("T/%d", r.Ns),
			r.IIDAdaptive, r.BurstAdaptive, r.IIDFixedT, r.BurstFixedT)
	}
	return b.String()
}
