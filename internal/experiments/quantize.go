package experiments

import (
	"context"
	"fmt"
	"strings"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/plants"
)

// QuantizeRow reports the stability certificate of the PMSM adaptive
// design after its controller table is rounded to fixed point with the
// given number of fractional bits — answering the deployment question
// "how wide must the table entries be?".
type QuantizeRow struct {
	Bits     int
	MaxErr   float64 // largest parameter perturbation
	Bounds   jsr.Bounds
	Stable   bool
	Budgeted bool // bracket looser than requested
}

// QuantizeSweep certifies the PMSM design (Rmax = 1.6·T, Ts = T/5)
// across fixed-point widths with a background context; see
// QuantizeSweepCtx for the interruptible form.
func QuantizeSweep(bits []int, opt Options) ([]QuantizeRow, error) {
	return QuantizeSweepCtx(context.Background(), bits, opt)
}

// QuantizeSweepCtx certifies the PMSM design across fixed-point widths.
// The context bounds each width's JSR search; on expiry the partial
// sweep is discarded and the error wraps jsr.ErrDeadline.
func QuantizeSweepCtx(ctx context.Context, bits []int, opt Options) ([]QuantizeRow, error) {
	opt = opt.Defaults()
	plant := plants.PMSM(plants.DefaultPMSMParams())
	w := pmsmWeights()
	tm, err := core.NewTiming(table2T, 5, table2T/10, 1.6*table2T)
	if err != nil {
		return nil, err
	}
	d, err := core.NewDesign(plant, tm, func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]QuantizeRow, 0, len(bits))
	for _, b := range bits {
		q, err := d.Quantize(b)
		if err != nil {
			return nil, err
		}
		cert, err := q.CertifyCtx(ctx, opt.BruteLen, jsr.GripenbergOptions{Delta: opt.Delta, MaxDepth: 25, Workers: opt.Workers})
		if err != nil {
			return nil, err
		}
		rows = append(rows, QuantizeRow{
			Bits:     b,
			MaxErr:   d.MaxQuantizationError(q),
			Bounds:   cert.Bounds,
			Stable:   cert.Stable(),
			Budgeted: cert.BudgetHit,
		})
	}
	return rows, nil
}

// QuantizeString renders the sweep.
func QuantizeString(rows []QuantizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-14s %-24s %-8s\n", "bits", "max |Δparam|", "JSR [LB,UB]", "stable")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-14.3e %-24s %-8v\n", r.Bits, r.MaxErr, r.Bounds.String(), r.Stable)
	}
	return b.String()
}
