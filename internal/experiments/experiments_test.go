package experiments

import (
	"math"
	"strings"
	"testing"

	"adaptivertc/internal/core"
	"adaptivertc/internal/jsr"
)

func jsrBounds(lo, hi float64) jsr.Bounds { return jsr.Bounds{Lower: lo, Upper: hi} }

// fastOpts keeps the integration tests quick while preserving the
// qualitative shape assertions.
func fastOpts() Options {
	return Options{Sequences: 150, Jobs: 40, Seed: 1, BruteLen: 4, Delta: 0.02}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// The adaptive margins are below 1% (as in the paper: 0.4233 vs
	// 0.4270), so the worst-case estimate needs enough sequences for
	// the ordering to be meaningful.
	rows, err := Table1(Options{Sequences: 2000, Jobs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperGrid) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsInf(r.Adaptive, 1) || r.Adaptive <= 0 {
			t.Fatalf("%s: adaptive cost %v", r.Label(), r.Adaptive)
		}
		// The paper's headline ordering: the adaptive controller beats
		// both fixed-gain baselines in worst-case performance (tiny
		// slack for Monte-Carlo worst-case noise).
		const slack = 1.002
		if r.Adaptive > r.FixedT*slack {
			t.Errorf("%s: adaptive %v worse than fixed-T %v", r.Label(), r.Adaptive, r.FixedT)
		}
		if r.Adaptive > r.FixedRmax*slack {
			t.Errorf("%s: adaptive %v worse than fixed-Rmax %v", r.Label(), r.Adaptive, r.FixedRmax)
		}
		// Fixed-Rmax is the conservative tuning: worst of the three.
		if r.FixedRmax*slack < r.FixedT {
			t.Errorf("%s: fixed-Rmax %v better than fixed-T %v", r.Label(), r.FixedRmax, r.FixedT)
		}
	}
	out := Table1String(rows)
	if !strings.Contains(out, "Adaptive") || !strings.Contains(out, "1.6·T") {
		t.Fatalf("Table1String rendering:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rows, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperGrid) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The adaptive design is certified stable on every grid cell.
		if !r.JSR.CertifiesStable() {
			t.Errorf("%s: adaptive JSR %v not certified stable", r.Label(), r.JSR)
		}
		// Ideal (no overrun) cost lower-bounds every strategy.
		if r.CostIdeal > r.Adaptive {
			t.Errorf("%s: ideal %v above adaptive %v", r.Label(), r.CostIdeal, r.Adaptive)
		}
		if math.IsInf(r.Adaptive, 1) {
			t.Errorf("%s: adaptive diverged", r.Label())
		}
		// Fixed-gain-T loses stability exactly in the most stressed
		// configuration (Rmax = 1.6·T with the coarse grid).
		wantUnstable := r.RmaxFactor == 1.6 && r.Ns == 2
		if r.FixedTUnstable != wantUnstable {
			t.Errorf("%s: fixedT unstable = %v, want %v", r.Label(), r.FixedTUnstable, wantUnstable)
		}
	}
	// JSR grows with Rmax at fixed Ts (longer delays, weaker contraction).
	if rows[4].JSR.Lower < rows[0].JSR.Lower {
		t.Errorf("JSR fell from Rmax=1.1T (%v) to 1.6T (%v)", rows[0].JSR, rows[4].JSR)
	}
	// Coarser sensing (T/2) is never more stable than finer (T/5) at
	// Rmax = 1.6·T — the §V-B granularity trade-off.
	if rows[4].JSR.Lower < rows[5].JSR.Lower {
		t.Errorf("coarse grid JSR %v below fine grid %v at 1.6T", rows[4].JSR, rows[5].JSR)
	}
	out := Table2String(rows)
	if !strings.Contains(out, "unstable") {
		t.Fatalf("Table2String must flag the unstable cell:\n%s", out)
	}
}

func TestFigure1Reproduction(t *testing.T) {
	out, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// The overrunning job and the snapped release from the paper's
	// example: f2 = 2.3, a3 = 2.375.
	if !strings.Contains(out, "2.3") {
		t.Fatalf("missing overrun finish:\n%s", out)
	}
	if !strings.Contains(out, "2.375") {
		t.Fatalf("missing snapped release 2.375:\n%s", out)
	}
	if !strings.Contains(out, "yes") {
		t.Fatalf("overrun not flagged:\n%s", out)
	}
	if !strings.Contains(out, "sensing") || !strings.Contains(out, "computing") {
		t.Fatalf("timeline rows missing:\n%s", out)
	}
}

func TestSweepNs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rows, err := SweepNs([]int{1, 2, 5}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// #H grows with the oversampling factor (Eq. 3).
	if !(rows[0].NumModes <= rows[1].NumModes && rows[1].NumModes <= rows[2].NumModes) {
		t.Fatalf("mode counts not monotone: %d, %d, %d", rows[0].NumModes, rows[1].NumModes, rows[2].NumModes)
	}
	// Ns = 1 (skip-next) has exactly ceil(0.6)+1 = 2 modes.
	if rows[0].NumModes != 2 {
		t.Fatalf("skip-next mode count = %d, want 2", rows[0].NumModes)
	}
	out := SweepString(rows)
	if !strings.Contains(out, "Ns") {
		t.Fatal("SweepString rendering")
	}
}

func TestAblationPIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rows, err := AblationPI(Options{Sequences: 2000, Jobs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The integrator-step adaptation is never worse than the fixed
		// controller (that is the shipped adaptive strategy); tiny
		// slack for Monte-Carlo worst-case noise.
		if r.IntegratorH > r.FixedT*1.002 {
			t.Errorf("%s: Eq.7 adaptation %v worse than fixedT %v", r.Label(), r.IntegratorH, r.FixedT)
		}
	}
	if out := AblationPIString(rows); !strings.Contains(out, "Eq.7") {
		t.Fatal("rendering")
	}
}

func TestAblationJSRPreconditioningHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rows, err := AblationJSR(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Preconditioning must never loosen the brute-force upper bound.
		if r.PreBrute.Upper > r.RawBrute.Upper+1e-9 {
			t.Errorf("%s: preconditioned UB %v above raw %v", r.Label(), r.PreBrute.Upper, r.RawBrute.Upper)
		}
		// All estimators bracket the same value: lower bounds below
		// every upper bound.
		if r.RawBrute.Lower > r.PreGrip.Upper+1e-6 || r.PreGrip.Lower > r.RawBrute.Upper+1e-6 {
			t.Errorf("%s: disjoint brackets raw %v vs grip %v", r.Label(), r.RawBrute, r.PreGrip)
		}
	}
	if out := AblationJSRString(rows); !strings.Contains(out, "precond") {
		t.Fatal("rendering")
	}
}

func TestAblationDelayLQR(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rows, err := AblationDelayLQR(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.IsInf(r.DelayAware, 1) {
			t.Errorf("%s: delay-aware design diverged", r.Label())
		}
	}
	if out := AblationLQRString(rows); !strings.Contains(out, "delay-aware") {
		t.Fatal("rendering")
	}
}

func TestBurstComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rows, err := BurstComparison(Options{Sequences: 800, Jobs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperGrid) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OverrunFrac <= 0 || r.OverrunFrac >= 1 {
			t.Fatalf("%s: overrun fraction %v", r.Label(), r.OverrunFrac)
		}
		// The adaptive design must absorb bursts at least as well as the
		// fixed controller does: its burst penalty (relative to its own
		// i.i.d. cost) must not exceed the fixed controller's by more
		// than noise.
		adaptPenalty := r.BurstAdaptive / r.IIDAdaptive
		fixedPenalty := r.BurstFixedT / r.IIDFixedT
		if adaptPenalty > fixedPenalty*1.05 {
			t.Errorf("%s: adaptive burst penalty %.3f exceeds fixed %.3f", r.Label(), adaptPenalty, fixedPenalty)
		}
	}
	if out := BurstString(rows); !strings.Contains(out, "burst") {
		t.Fatal("rendering")
	}
}

func TestWeaklyHardShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rows, err := WeaklyHard(4, Options{BruteLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // m = 0..4
		t.Fatalf("rows = %d", len(rows))
	}
	// Lower bounds monotone in m for both designs.
	for i := 1; i < len(rows); i++ {
		if rows[i].Adaptive.Lower < rows[i-1].Adaptive.Lower-1e-9 {
			t.Errorf("adaptive LB fell from m=%d to m=%d", i-1, i)
		}
		if rows[i].FixedT.Lower < rows[i-1].FixedT.Lower-1e-9 {
			t.Errorf("fixedT LB fell from m=%d to m=%d", i-1, i)
		}
	}
	free := rows[len(rows)-1]
	// The adaptive design needs no switching constraint (the paper's
	// point) while the frozen design is provably unstable under free
	// switching yet provably stable under a tight weakly-hard budget
	// (the refs [17,18] setting).
	if !free.Adaptive.CertifiesStable() {
		t.Errorf("adaptive not certified under free switching: %v", free.Adaptive)
	}
	if !free.FixedT.CertifiesUnstable() {
		t.Errorf("fixedT not certified unstable under free switching: %v", free.FixedT)
	}
	foundConstrainedStable := false
	for _, r := range rows[:len(rows)-1] {
		if r.FixedT.CertifiesStable() {
			foundConstrainedStable = true
		}
	}
	if !foundConstrainedStable {
		t.Error("no weakly-hard budget certifies the frozen design")
	}
	if out := WeaklyHardString(rows); !strings.Contains(out, "free") {
		t.Fatal("rendering")
	}
}

func TestCSVEmitters(t *testing.T) {
	t1 := []Table1Row{{Config: Config{RmaxFactor: 1.1, Ns: 2}, Adaptive: 1, FixedT: 2, FixedRmax: 3}}
	var b1 strings.Builder
	if err := Table1CSV(t1, &b1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b1.String(), "rmax_factor,ns,adaptive") || !strings.Contains(b1.String(), "1.1,2,1,2,3") {
		t.Fatalf("table1 csv:\n%s", b1.String())
	}
	t2 := []Table2Row{{
		Config: Config{RmaxFactor: 1.6, Ns: 2},
		JSR:    jsrBounds(0.9, 0.95), CostIdeal: 0.5,
		Adaptive: 1, FixedT: math.Inf(1), FixedTUnstable: true, FixedRmax: 2, FixedPeriod: 3,
	}}
	var b2 strings.Builder
	if err := Table2CSV(t2, &b2); err != nil {
		t.Fatal(err)
	}
	out := b2.String()
	if !strings.Contains(out, "true") || !strings.Contains(out, "inf") {
		t.Fatalf("table2 csv must mark unstable cells:\n%s", out)
	}
	sw := []SweepRow{{Ns: 5, NumModes: 4, JSR: jsrBounds(0.7, 0.8), WorstCost: 0.66}}
	var b3 strings.Builder
	if err := SweepCSV(sw, &b3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b3.String(), "5,4,0.7,0.8,0.66") {
		t.Fatalf("sweep csv:\n%s", b3.String())
	}
}

func TestDriftShape(t *testing.T) {
	rows, err := Drift([]float64{0, 0.01, 0.02}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Zero overhead: no drift, fresh samples.
	if rows[0].RelDrift > 1e-9 || rows[0].RelAge > 1e-6 {
		t.Fatalf("ideal run drifted: %+v", rows[0])
	}
	// Drift grows monotonically with overhead; staleness bounded by Ts.
	for i := 1; i < len(rows); i++ {
		if rows[i].RelDrift <= rows[i-1].RelDrift {
			t.Fatalf("drift not increasing: %+v", rows)
		}
		if rows[i].RelAge > 1+1e-9 {
			t.Fatalf("sample age exceeded Ts: %+v", rows[i])
		}
	}
	if out := DriftString(rows); !strings.Contains(out, "overhead/T") {
		t.Fatal("rendering")
	}
}

func TestJitterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rows, err := Jitter([]float64{0, 0.5}, 100, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Small jitter must not destabilize.
	for _, r := range rows {
		if r.Divergent != 0 {
			t.Fatalf("jitter %v diverged %d times", r.JitterFrac, r.Divergent)
		}
	}
	// More jitter cannot help the worst case.
	if rows[1].WorstCost < rows[0].WorstCost {
		t.Fatalf("worst cost fell with jitter: %v vs %v", rows[1].WorstCost, rows[0].WorstCost)
	}
	if out := JitterString(rows); !strings.Contains(out, "jitter/Ts") {
		t.Fatal("rendering")
	}
}

func TestQuantizeSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rows, err := QuantizeSweep([]int{4, 12, 24}, Options{BruteLen: 4, Delta: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Parameter error shrinks with width; all widths certified here.
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxErr >= rows[i-1].MaxErr {
			t.Fatalf("quantization error not decreasing: %+v", rows)
		}
	}
	for _, r := range rows {
		if !r.Stable {
			t.Errorf("%d-bit table not certified (bounds %v)", r.Bits, r.Bounds)
		}
	}
	if out := QuantizeString(rows); !strings.Contains(out, "bits") {
		t.Fatal("rendering")
	}
}

func TestObserverComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// The observer closed loop's JSR sits near 0.996 (the Kalman error
	// mode), so the bracket needs a finer delta than the other fast
	// tests to close below 1.
	grid := []Config{{1.1, 5}, {1.6, 5}}
	rows, err := ObserverComparison(Options{Sequences: 150, Jobs: 40, Seed: 1, BruteLen: 4, Delta: 0.003, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(grid) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Both designs certified stable everywhere.
		if !r.FullInfo.CertifiesStable() {
			t.Errorf("%s: full-info not certified: %v", r.Label(), r.FullInfo)
		}
		if !r.Observer.CertifiesStable() {
			t.Errorf("%s: observer not certified: %v", r.Label(), r.Observer)
		}
		// Estimation costs performance: the observer design can never
		// beat full information on the same metric.
		if r.ObserverCost < r.FullCost {
			t.Errorf("%s: observer cost %v below full information %v", r.Label(), r.ObserverCost, r.FullCost)
		}
	}
	if out := ObserverString(rows); !strings.Contains(out, "observer") {
		t.Fatal("rendering")
	}
}

func TestReportGeneratesAllSections(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	var b strings.Builder
	err := Report(Options{Sequences: 60, Jobs: 25, Seed: 1, BruteLen: 4, Delta: 0.02,
		Grid: []Config{{1.1, 5}, {1.6, 5}}}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 1", "Table I", "Table II", "granularity", "PI adaptation",
		"JSR estimators", "naive LQR", "bursty", "weakly-hard",
		"sleep_until", "jitter", "fixed-point", "observer", "generated in",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing section %q", want)
		}
	}
}

func TestResponseModelFactory(t *testing.T) {
	tm := core.MustTiming(0.01, 5, 0.001, 0.016)
	for _, name := range []string{"uniform", "sporadic", "burst"} {
		opt := Options{Model: name}.Defaults()
		m, err := opt.responseModel(tm)
		if err != nil || m == nil {
			t.Fatalf("model %q: %v", name, err)
		}
	}
	opt := Options{Model: "nope"}
	if _, err := opt.responseModel(tm); err == nil {
		t.Fatal("unknown model accepted")
	}
}
