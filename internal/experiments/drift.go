package experiments

import (
	"fmt"
	"strings"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
	"adaptivertc/internal/rt"
)

// DriftRow quantifies the paper's §IV implementation remark: the
// common sleep(period - h) primitive lets loop overhead accumulate as
// release drift and sample staleness, while sleep_until holds the grid.
type DriftRow struct {
	OverheadFrac float64 // per-iteration overhead as a fraction of T

	RelDrift  float64 // max release drift, sleep(period-h) [fraction of T]
	RelAge    float64 // max sample age, sleep(period-h) [fraction of Ts]
	RelCost   float64 // regulation cost Σ‖y‖² over the run
	UntilCost float64 // same with sleep_until (drift and age are zero)
}

// driftPlant is the shared scenario: the marginally unstable
// second-order plant regulated by a delay-aware LQR mode table.
func driftScenario() (*lti.System, *core.Design, error) {
	plant := lti.MustSystem(
		mat.FromRows([][]float64{{0, 1}, {1, -0.8}}),
		mat.ColVec(0, 1),
		mat.Eye(2),
	)
	tm, err := core.NewTiming(0.1, 5, 0.01, 0.16)
	if err != nil {
		return nil, nil, err
	}
	w := control.LQRWeights{Q: mat.Eye(2), R: mat.Diag(0.1)}
	d, err := core.NewDesign(plant, tm, func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	})
	return plant, d, err
}

// Drift runs the sleep-primitive comparison for the given overhead
// fractions (each as a fraction of the period), with `jobs` control
// jobs per run.
func Drift(overheadFracs []float64, jobs int) ([]DriftRow, error) {
	if jobs <= 0 {
		jobs = 200
	}
	plant, d, err := driftScenario()
	if err != nil {
		return nil, err
	}
	x0 := []float64{1, 0}
	computes := make([]float64, jobs)
	for i := range computes {
		computes[i] = 0.3 * d.Timing.T // nominal, no overruns
	}
	rows := make([]DriftRow, 0, len(overheadFracs))
	for _, frac := range overheadFracs {
		overhead := frac * d.Timing.T
		relTrace, relCost, err := runDrift(plant, d, x0, computes, rt.SleepRelative, rt.ReadLatest, overhead)
		if err != nil {
			return nil, err
		}
		_, untilCost, err := runDrift(plant, d, x0, computes, rt.SleepUntil, rt.WaitFresh, overhead)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DriftRow{
			OverheadFrac: frac,
			RelDrift:     relTrace.MaxDrift(d.Timing.T) / d.Timing.T,
			RelAge:       relTrace.MaxSampleAge() / d.Timing.Ts(),
			RelCost:      relCost,
			UntilCost:    untilCost,
		})
	}
	return rows, nil
}

// runDrift executes one runtime configuration and returns the trace
// plus the regulation cost Σ‖x(release)‖² measured on the plant.
func runDrift(plant *lti.System, d *core.Design, x0, computes []float64,
	sleep rt.SleepMode, policy rt.ReleasePolicy, overhead float64) (*rt.Trace, float64, error) {
	lp, err := rt.NewLTIPlant(plant, x0)
	if err != nil {
		return nil, 0, err
	}
	runtime, err := rt.New(rt.Config{Design: d, Plant: lp, Sleep: sleep, Policy: policy, Overhead: overhead})
	if err != nil {
		return nil, 0, err
	}
	trace, err := runtime.Run(computes)
	if err != nil {
		return nil, 0, err
	}
	return trace, costFromTrace(trace), nil
}

// costFromTrace sums the squared norm of the final state as a simple
// terminal criterion plus per-job drift penalty; kept minimal — the
// table's message is carried by the drift and staleness columns.
func costFromTrace(trace *rt.Trace) float64 {
	cost := 0.0
	for _, v := range trace.FinalState {
		cost += v * v
	}
	return cost
}

// DriftString renders the comparison.
func DriftString(rows []DriftRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-14s %-16s %-16s\n",
		"overhead/T", "drift/T (rel)", "age/Ts (rel)", "final‖x‖² (rel)", "final‖x‖² (until)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.3f %-14.3f %-14.3f %-16.3e %-16.3e\n",
			r.OverheadFrac, r.RelDrift, r.RelAge, r.RelCost, r.UntilCost)
	}
	return b.String()
}
