package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// CSV emitters for downstream plotting/tooling. Each writes a header
// plus one record per grid cell; floats use full 'g' precision.

func fcsv(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', 10, 64)
}

// Table1CSV writes Table I rows as CSV.
func Table1CSV(rows []Table1Row, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rmax_factor", "ns", "adaptive", "fixed_t", "fixed_rmax"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fcsv(r.RmaxFactor), strconv.Itoa(r.Ns),
			fcsv(r.Adaptive), fcsv(r.FixedT), fcsv(r.FixedRmax),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table2CSV writes Table II rows as CSV.
func Table2CSV(rows []Table2Row, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"rmax_factor", "ns", "jsr_lb", "jsr_ub", "cost_ideal",
		"adaptive", "fixed_ctl_t", "fixed_ctl_t_unstable", "fixed_ctl_rmax", "fixed_period_rmax",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fcsv(r.RmaxFactor), strconv.Itoa(r.Ns),
			fcsv(r.JSR.Lower), fcsv(r.JSR.Upper), fcsv(r.CostIdeal),
			fcsv(r.Adaptive), fcsv(r.FixedT), fmt.Sprintf("%v", r.FixedTUnstable),
			fcsv(r.FixedRmax), fcsv(r.FixedPeriod),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SweepCSV writes granularity-sweep rows as CSV.
func SweepCSV(rows []SweepRow, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ns", "modes", "jsr_lb", "jsr_ub", "worst_cost"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.Ns), strconv.Itoa(r.NumModes),
			fcsv(r.JSR.Lower), fcsv(r.JSR.Upper), fcsv(r.WorstCost),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
