package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/plants"
	"adaptivertc/internal/sim"
)

// AblationPIRow decomposes the Table I adaptive strategy: what does the
// Eq. 7 integrator-step adaptation buy on its own, and what happens if
// the per-mode gains are additionally re-tuned in isolation?
type AblationPIRow struct {
	Config
	FixedT      float64 // no adaptation at all (baseline)
	IntegratorH float64 // Eq. 7: nominal gains, integrator step = h (the shipped strategy)
	RetunedPerH float64 // gains re-tuned per mode on single-mode loops
}

// AblationPI runs the Table I decomposition on the paper grid.
func AblationPI(opt Options) ([]AblationPIRow, error) {
	opt = opt.Defaults()
	plant := plants.Unstable()
	x0 := []float64{1, 0}
	tuner := newPITuner(plant)
	rows := make([]AblationPIRow, len(opt.Grid))
	gerr := gridParallel(context.Background(), len(opt.Grid), opt.Workers, nil, func(ri int, publish func(func())) error {
		cfg := opt.Grid[ri]
		tm, err := core.NewTiming(table1T, cfg.Ns, table1T/10, cfg.RmaxFactor*table1T)
		if err != nil {
			return err
		}
		gT, err := tuner.tunedSingle(tm.T)
		if err != nil {
			return err
		}
		table, err := tuner.adaptiveTable(tm)
		if err != nil {
			return err
		}
		intOnly := core.Designer(func(h float64) (*control.StateSpace, error) {
			return table[gainKey(h)].Controller(), nil
		})
		perH := core.Designer(func(h float64) (*control.StateSpace, error) {
			g, err := tuner.tunedSingle(h)
			if err != nil {
				return nil, err
			}
			return g.Controller(), nil
		})
		model := sim.UniformResponse{Rmin: tm.Rmin, Rmax: tm.Rmax}
		mc := sim.MonteCarloOptions{Sequences: opt.Sequences, Jobs: opt.Jobs, Seed: opt.Seed, Workers: opt.Workers}
		eval := func(des core.Designer) (float64, error) {
			d, err := core.NewDesign(plant, tm, des)
			if err != nil {
				return 0, err
			}
			m, err := sim.MonteCarlo(d, x0, model, sim.ErrorCost(), mc)
			if err != nil {
				return 0, err
			}
			return m.WorstCost, nil
		}
		row := AblationPIRow{Config: cfg}
		if row.FixedT, err = eval(core.FixedDesigner(gT.Controller())); err != nil {
			return err
		}
		if row.IntegratorH, err = eval(intOnly); err != nil {
			return err
		}
		if row.RetunedPerH, err = eval(perH); err != nil {
			return err
		}
		publish(func() { rows[ri] = row })
		return nil
	})
	if gerr != nil {
		return nil, gerr
	}
	return rows, nil
}

// AblationPIString renders the PI decomposition.
func AblationPIString(rows []AblationPIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %12s %14s %14s\n", "Rmax", "Ts", "FixedT", "Eq.7 integr.", "Retuned per-h")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %12.4f %14.4f %14.4f\n",
			fmt.Sprintf("%.1f·T", r.RmaxFactor), fmt.Sprintf("T/%d", r.Ns),
			r.FixedT, r.IntegratorH, r.RetunedPerH)
	}
	return b.String()
}

// AblationJSRRow compares the stability estimators on the adaptive PMSM
// closed loop: raw norm sandwich vs Lyapunov-preconditioned, and the
// wall-clock cost of each.
type AblationJSRRow struct {
	Config
	RawBrute jsr.Bounds
	PreBrute jsr.Bounds
	PreGrip  jsr.Bounds
	RawTime  time.Duration
	PreTime  time.Duration
	GripTime time.Duration
	BruteLen int
}

// AblationJSR runs the estimator comparison.
func AblationJSR(opt Options) ([]AblationJSRRow, error) {
	opt = opt.Defaults()
	plant := plants.PMSM(plants.DefaultPMSMParams())
	w := pmsmWeights()
	rows := make([]AblationJSRRow, len(opt.Grid))
	gerr := gridParallel(context.Background(), len(opt.Grid), opt.Workers, nil, func(ri int, publish func(func())) error {
		cfg := opt.Grid[ri]
		tm, err := core.NewTiming(table2T, cfg.Ns, table2T/10, cfg.RmaxFactor*table2T)
		if err != nil {
			return err
		}
		d, err := core.NewDesign(plant, tm, func(h float64) (*control.StateSpace, error) {
			return control.LQGFullInfo(plant, w, h)
		})
		if err != nil {
			return err
		}
		set := d.OmegaSet()
		row := AblationJSRRow{Config: cfg, BruteLen: opt.BruteLen}
		bf := jsr.BruteForceOptions{Workers: opt.Workers}

		t0 := time.Now()
		row.RawBrute, err = jsr.BruteForceBoundsOpt(set, opt.BruteLen, bf)
		if err != nil {
			return err
		}
		row.RawTime = time.Since(t0)

		t0 = time.Now()
		work, _, _ := jsr.Precondition(set)
		row.PreBrute, err = jsr.BruteForceBoundsOpt(work, opt.BruteLen, bf)
		if err != nil {
			return err
		}
		row.PreTime = time.Since(t0)

		t0 = time.Now()
		// DisableEllipsoid: work is already preconditioned, and the row
		// is meant to isolate exactly one transform per column.
		row.PreGrip, err = jsr.Gripenberg(work, jsr.GripenbergOptions{Delta: opt.Delta, MaxDepth: 30, Workers: opt.Workers, DisableEllipsoid: true})
		if err != nil && !errors.Is(err, jsr.ErrBudget) {
			return err
		}
		row.GripTime = time.Since(t0)

		publish(func() { rows[ri] = row })
		return nil
	})
	if gerr != nil {
		return nil, gerr
	}
	return rows, nil
}

// AblationJSRString renders the estimator comparison.
func AblationJSRString(rows []AblationJSRRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %-22s %-22s %-22s %10s %10s %10s\n",
		"Rmax", "Ts", "raw brute", "precond brute", "precond Gripenberg", "t(raw)", "t(pre)", "t(grip)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %-22s %-22s %-22s %10s %10s %10s\n",
			fmt.Sprintf("%.1f·T", r.RmaxFactor), fmt.Sprintf("T/%d", r.Ns),
			r.RawBrute, r.PreBrute, r.PreGrip,
			r.RawTime.Round(time.Millisecond), r.PreTime.Round(time.Millisecond), r.GripTime.Round(time.Millisecond))
	}
	return b.String()
}

// AblationLQRRow compares the delay-aware LQR (augmented [x;u] design
// plant) against a naive LQR that ignores the one-interval input-output
// delay, both deployed with adaptive periods and adaptive mode tables.
type AblationLQRRow struct {
	Config
	DelayAware float64
	Naive      float64
	NaiveUnst  bool
}

// AblationDelayLQR runs the delay-modelling ablation on the PMSM.
func AblationDelayLQR(opt Options) ([]AblationLQRRow, error) {
	opt = opt.Defaults()
	plant := plants.PMSM(plants.DefaultPMSMParams())
	w := pmsmWeights()
	cost := sim.QuadCost(w.Q, w.R)
	x0 := pmsmInitialState()
	rows := make([]AblationLQRRow, len(opt.Grid))
	gerr := gridParallel(context.Background(), len(opt.Grid), opt.Workers, nil, func(ri int, publish func(func())) error {
		cfg := opt.Grid[ri]
		tm, err := core.NewTiming(table2T, cfg.Ns, table2T/10, cfg.RmaxFactor*table2T)
		if err != nil {
			return err
		}
		model := sim.UniformResponse{Rmin: tm.Rmin, Rmax: tm.Rmax}
		mc := sim.MonteCarloOptions{Sequences: opt.Sequences, Jobs: opt.Jobs, Seed: opt.Seed, Workers: opt.Workers}
		eval := func(des core.Designer) (float64, bool, error) {
			d, err := core.NewDesign(plant, tm, des)
			if err != nil {
				return 0, false, err
			}
			m, err := sim.MonteCarlo(d, x0, model, cost, mc)
			if err != nil {
				return 0, false, err
			}
			return m.WorstCost, m.Unstable() || math.IsInf(m.WorstCost, 1), nil
		}
		row := AblationLQRRow{Config: cfg}
		var unst bool
		if row.DelayAware, unst, err = eval(func(h float64) (*control.StateSpace, error) {
			return control.LQGFullInfo(plant, w, h)
		}); err != nil {
			return err
		}
		if unst {
			row.DelayAware = math.Inf(1)
		}
		if row.Naive, row.NaiveUnst, err = eval(func(h float64) (*control.StateSpace, error) {
			return control.PeriodLQR(plant, w, h)
		}); err != nil {
			return err
		}
		publish(func() { rows[ri] = row })
		return nil
	})
	if gerr != nil {
		return nil, gerr
	}
	return rows, nil
}

// AblationLQRString renders the delay-modelling ablation.
func AblationLQRString(rows []AblationLQRRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %14s %14s\n", "Rmax", "Ts", "delay-aware", "naive LQR")
	for _, r := range rows {
		naive := fmt.Sprintf("%14.4f", r.Naive)
		if r.NaiveUnst {
			naive = fmt.Sprintf("%14s", "unstable")
		}
		fmt.Fprintf(&b, "%-10s %-6s %14.4f %s\n",
			fmt.Sprintf("%.1f·T", r.RmaxFactor), fmt.Sprintf("T/%d", r.Ns),
			r.DelayAware, naive)
	}
	return b.String()
}
