package experiments

import (
	"fmt"
	"strings"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/mat"
	"adaptivertc/internal/plants"
	"adaptivertc/internal/sim"
)

// ObserverRow compares the full-information Table II design against the
// observer-based LQG that only measures the two phase currents and
// reconstructs the rotor speed with a per-mode Kalman predictor — the
// paper's "if the state is not measurable, an observer is added"
// construction (§IV-B), evaluated across the grid.
type ObserverRow struct {
	Config
	FullInfo     jsr.Bounds // full-state modes
	Observer     jsr.Bounds // current-sensed modes (z = [x̂; u_prev])
	FullCost     float64    // worst-case state regulation cost Σ h·‖x‖²
	ObserverCost float64
}

// ObserverComparison runs the observer-vs-full-information study.
func ObserverComparison(opt Options) ([]ObserverRow, error) {
	opt = opt.Defaults()
	params := plants.DefaultPMSMParams()
	full := plants.PMSM(params)
	sensed := plants.PMSMCurrentSensed(params)
	w := pmsmWeights()
	nw := control.NoiseWeights{Rw: mat.Scale(1e-3, mat.Eye(3)), Rv: mat.Scale(1e-4, mat.Eye(2))}
	x0 := pmsmInitialState()

	rows := make([]ObserverRow, 0, len(opt.Grid))
	for _, cfg := range opt.Grid {
		tm, err := core.NewTiming(table2T, cfg.Ns, table2T/10, cfg.RmaxFactor*table2T)
		if err != nil {
			return nil, err
		}
		fullDesign, err := core.NewDesign(full, tm, func(h float64) (*control.StateSpace, error) {
			return control.LQGFullInfo(full, w, h)
		})
		if err != nil {
			return nil, err
		}
		obsDesign, err := core.NewDesign(sensed, tm, func(h float64) (*control.StateSpace, error) {
			return control.LQG(sensed, w, nw, h)
		})
		if err != nil {
			return nil, err
		}
		row := ObserverRow{Config: cfg}
		gopt := jsr.GripenbergOptions{Delta: opt.Delta, MaxDepth: 25, Workers: opt.Workers}
		if row.FullInfo, err = errTolerant(fullDesign.StabilityBounds(opt.BruteLen, gopt)); err != nil {
			return nil, err
		}
		if row.Observer, err = errTolerant(obsDesign.StabilityBounds(opt.BruteLen, gopt)); err != nil {
			return nil, err
		}
		model := sim.UniformResponse{Rmin: tm.Rmin, Rmax: tm.Rmax}
		mc := sim.MonteCarloOptions{Sequences: opt.Sequences, Jobs: opt.Jobs, Seed: opt.Seed, Workers: opt.Workers}
		// Identical state-based metric for both designs (their output
		// dimensions differ, so output-error costs would not compare).
		stateCost := sim.QuadCost(mat.Eye(3), mat.New(2, 2))
		mf, err := sim.MonteCarlo(fullDesign, x0, model, stateCost, mc)
		if err != nil {
			return nil, err
		}
		mo, err := sim.MonteCarlo(obsDesign, x0, model, stateCost, mc)
		if err != nil {
			return nil, err
		}
		row.FullCost = mf.WorstCost
		row.ObserverCost = mo.WorstCost
		rows = append(rows, row)
	}
	return rows, nil
}

// errTolerant passes jsr budget exhaustion through as a valid (looser)
// bracket.
func errTolerant(b jsr.Bounds, err error) (jsr.Bounds, error) {
	//lint:ignore floatcompare a JSR upper bound is positive whenever a bracket was computed; exactly zero is the unset sentinel of a failed run
	if err != nil && b.Upper == 0 {
		return b, err
	}
	return b, nil
}

// ObserverString renders the comparison.
func ObserverString(rows []ObserverRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %-24s %-24s %12s %12s\n",
		"Rmax", "Ts", "full-info JSR", "observer JSR", "full cost", "obs cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %-24s %-24s %12.4f %12.4f\n",
			fmt.Sprintf("%.1f·T", r.RmaxFactor), fmt.Sprintf("T/%d", r.Ns),
			r.FullInfo.String(), r.Observer.String(), r.FullCost, r.ObserverCost)
	}
	return b.String()
}
