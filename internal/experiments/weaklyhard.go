package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/mat"
	"adaptivertc/internal/plants"
)

// WeaklyHardRow is the stability bracket of a two-mode closed loop when
// overrun patterns are restricted by the weakly-hard constraint
// "at most m overruns in any K consecutive jobs" — the model of the
// paper's refs [16]-[18], against which §II positions the adaptive
// design. m = K reproduces the paper's arbitrary-switching analysis.
type WeaklyHardRow struct {
	M, K     int
	Adaptive jsr.Bounds // adaptive mode table
	FixedT   jsr.Bounds // gains frozen for the nominal period
}

// WeaklyHard analyzes the PMSM in the skip-next configuration
// (Ns = 1, Rmax = 1.6·T, so H = {T, 2T}: nominal and overrun modes) for
// a range of weakly-hard constraints with window K.
func WeaklyHard(k int, opt Options) ([]WeaklyHardRow, error) {
	opt = opt.Defaults()
	if k < 1 {
		return nil, fmt.Errorf("experiments: window K must be ≥ 1, got %d", k)
	}
	plant := plants.PMSM(plants.DefaultPMSMParams())
	w := pmsmWeights()
	tm, err := core.NewTiming(table2T, 1, table2T/10, 1.6*table2T)
	if err != nil {
		return nil, err
	}
	lqg := func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	}
	adaptive, err := core.NewDesign(plant, tm, lqg)
	if err != nil {
		return nil, err
	}
	ctlT, err := lqg(tm.T)
	if err != nil {
		return nil, err
	}
	fixed, err := core.NewDesign(plant, tm, core.FixedDesigner(ctlT))
	if err != nil {
		return nil, err
	}
	setA := adaptive.OmegaSet()
	setF := fixed.OmegaSet()
	if len(setA) != 2 {
		return nil, fmt.Errorf("experiments: weakly-hard analysis needs exactly 2 modes, got %d", len(setA))
	}
	// A simultaneous similarity transform preserves the constrained JSR
	// exactly (products transform by conjugation), so the Lyapunov
	// preconditioner tightens the norm-based upper bounds here too.
	setA, _, _ = jsr.Precondition(setA)
	setF, _, _ = jsr.Precondition(setF)

	rows := make([]WeaklyHardRow, k+1)
	gerr := gridParallel(context.Background(), k+1, opt.Workers, nil, func(m int, publish func(func())) error {
		g, err := jsr.WeaklyHardGraph(m, k)
		if err != nil {
			return err
		}
		ba, err := constrainedBracket(setA, g, opt)
		if err != nil {
			return err
		}
		bf, err := constrainedBracket(setF, g, opt)
		if err != nil {
			return err
		}
		publish(func() { rows[m] = WeaklyHardRow{M: m, K: k, Adaptive: ba, FixedT: bf} })
		return nil
	})
	if gerr != nil {
		return nil, gerr
	}
	return rows, nil
}

// WeaklyHardString renders the analysis.
func WeaklyHardString(rows []WeaklyHardRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-24s %-24s\n", "(m, K)", "adaptive JSR [LB,UB]", "fixed-T JSR [LB,UB]")
	for _, r := range rows {
		label := fmt.Sprintf("(%d, %d)", r.M, r.K)
		if r.M == r.K {
			label += " = free"
		}
		fmt.Fprintf(&b, "%-10s %-24s %-24s\n", label, r.Adaptive.String(), r.FixedT.String())
	}
	return b.String()
}

// constrainedBracket intersects the brute-force sandwich with the
// branch-and-bound refinement for one graph.
func constrainedBracket(set []*mat.Dense, g *jsr.Graph, opt Options) (jsr.Bounds, error) {
	bf, err := jsr.ConstrainedBounds(set, g, opt.BruteLen+8)
	if err != nil {
		return jsr.Bounds{}, err
	}
	gp, gerr := jsr.ConstrainedGripenberg(set, g, jsr.GripenbergOptions{Delta: opt.Delta, MaxDepth: 30, Workers: opt.Workers})
	if gerr != nil && !errors.Is(gerr, jsr.ErrBudget) {
		return jsr.Bounds{}, gerr
	}
	out := jsr.Bounds{
		Lower:       math.Max(bf.Lower, gp.Lower),
		Upper:       math.Min(bf.Upper, gp.Upper),
		WitnessWord: bf.WitnessWord,
	}
	if gp.Lower > bf.Lower {
		out.WitnessWord = gp.WitnessWord
	}
	if out.Upper < out.Lower {
		out.Upper = out.Lower
	}
	return out, nil
}
