// Package experiments regenerates the paper's evaluation artifacts:
// Table I (worst-case PI performance on an unstable plant), Table II
// (stability bounds and LQG costs for a PMSM), Figure 1 (the timing
// diagram), and the Ts-granularity design-space sweep discussed in
// §V-B. The same entry points back cmd/adactl and the repository-level
// benchmarks.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/jsr"
	"adaptivertc/internal/lti"
	"adaptivertc/internal/mat"
	"adaptivertc/internal/plants"
	"adaptivertc/internal/sched"
	"adaptivertc/internal/sim"
	"adaptivertc/internal/trace"
)

// Config is one (Rmax, Ts) cell of the paper's evaluation grid.
type Config struct {
	RmaxFactor float64 // Rmax = factor · T
	Ns         int     // Ts = T / Ns
}

// Label renders the cell as the paper prints it ("1.3·T", "T/5").
func (c Config) Label() string {
	return fmt.Sprintf("Rmax=%.1f·T Ts=T/%d", c.RmaxFactor, c.Ns)
}

// PaperGrid is the six-configuration grid of Tables I and II.
var PaperGrid = []Config{
	{1.1, 2}, {1.1, 5},
	{1.3, 2}, {1.3, 5},
	{1.6, 2}, {1.6, 5},
}

// Options tunes experiment fidelity. The paper uses Sequences=50000,
// Jobs=50; smaller values keep smoke runs and benchmarks fast.
type Options struct {
	Sequences int
	Jobs      int
	Seed      int64
	BruteLen  int      // brute-force product depth for JSR
	Delta     float64  // Gripenberg target accuracy
	Grid      []Config // evaluation grid; nil selects PaperGrid
	Model     string   // response model: "uniform" (default), "sporadic", "burst"
	Refine    int      // coordinate-ascent passes on the sampled worst (0 = off)
	// Workers bounds the goroutines used per parallel stage (grid rows,
	// JSR expansion, Monte-Carlo sequences); ≤ 0 selects GOMAXPROCS.
	// Results are identical for every value.
	Workers int
}

// GridResume tracks per-row completion of an experiment grid so an
// interrupted run can resume without recomputing finished rows. Done[i]
// marks row i complete; its length must equal the grid size. Save, when
// non-nil, is invoked after each newly completed row — row publication
// (the commit closure each grid fn registers), updates to Done, and
// Save calls are all serialized under one lock, so the hook can safely
// persist Done together with the caller's row slice: Save never
// observes a half-written row.
type GridResume struct {
	Done []bool
	Save func() error
}

// ctxInterrupted reports whether err carries nothing but a context
// cancellation or deadline (including wrapped forms).
func ctxInterrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// gridParallel evaluates fn(i) for every grid row i on at most
// `workers` goroutines. Each fn owns row i exclusively and registers
// its result with publish (typically publish(func() { rows[i] = row }));
// gridParallel runs that commit closure under the same mutex that
// serializes res.Done updates and res.Save calls, so a Save hook that
// snapshots the caller's row slice never races a concurrent row write.
// Results are deterministic. Rows already marked done in res are
// skipped; cancellation stops the feeder and in-flight rows at their
// next poll. Real row failures are joined in index order and take
// precedence over cancellation noise; a run cut short purely by the
// context returns the context's error, while a run whose rows all
// completed returns nil even if the context fired afterwards.
func gridParallel(ctx context.Context, n, workers int, res *GridResume, fn func(i int, publish func(commit func())) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if res != nil && len(res.Done) != n {
		return fmt.Errorf("experiments: resume state tracks %d rows, grid has %d", len(res.Done), n)
	}
	errs := make([]error, n)
	var mu sync.Mutex // serializes row commits, res.Done updates, and res.Save calls
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if cerr := ctx.Err(); cerr != nil {
					errs[i] = cerr
					continue
				}
				var commit func()
				err := fn(i, func(c func()) { commit = c })
				if err == nil {
					mu.Lock()
					if commit != nil {
						commit()
					}
					if res != nil {
						res.Done[i] = true
						if res.Save != nil {
							err = res.Save()
						}
					}
					mu.Unlock()
				}
				errs[i] = err
			}
		}()
	}
	cut := false // feeder stopped before dispatching every remaining row
feed:
	for i := 0; i < n; i++ {
		if res != nil && res.Done[i] {
			continue
		}
		select {
		case next <- i:
		case <-ctx.Done():
			cut = true
			break feed
		}
	}
	close(next)
	wg.Wait()

	var fails []error
	var ctxErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case ctxInterrupted(err):
			if ctxErr == nil {
				ctxErr = err
			}
		default:
			fails = append(fails, err)
		}
	}
	if len(fails) > 0 {
		return errors.Join(fails...)
	}
	if ctxErr != nil {
		return ctxErr
	}
	if cut {
		return ctx.Err()
	}
	return nil
}

// Defaults fills zero fields with fast-but-meaningful values.
func (o Options) Defaults() Options {
	if len(o.Grid) == 0 {
		o.Grid = PaperGrid
	}
	if o.Sequences == 0 {
		o.Sequences = 5000
	}
	if o.Jobs == 0 {
		o.Jobs = 50
	}
	if o.BruteLen == 0 {
		o.BruteLen = 6
	}
	//lint:ignore floatcompare the zero value of Delta is the documented "use the default" sentinel
	if o.Delta == 0 {
		o.Delta = 1e-3
	}
	if o.Model == "" {
		o.Model = "uniform"
	}
	return o
}

// responseModel builds the configured response-time model for a timing
// configuration. The sporadic and burst variants use a 15 % stationary
// overrun rate.
func (o Options) responseModel(tm core.Timing) (sim.ResponseModel, error) {
	switch o.Model {
	case "uniform":
		return sim.UniformResponse{Rmin: tm.Rmin, Rmax: tm.Rmax}, nil
	case "sporadic":
		return sim.SporadicResponse{Rmin: tm.Rmin, T: tm.T, Rmax: tm.Rmax, OverrunProb: 0.15}, nil
	case "burst":
		return sim.BurstResponse{Rmin: tm.Rmin, T: tm.T, Rmax: tm.Rmax, PEnter: 0.06, PExit: 0.34}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown response model %q", o.Model)
	}
}

// PaperOptions reproduces the paper's sequence counts.
func PaperOptions() Options {
	return Options{Sequences: 50000, Jobs: 50, BruteLen: 6, Delta: 1e-4}
}

// ---------------------------------------------------------------------------
// Table I — PI control of an unstable system, T = 10 ms.

// Table1Row is one line of Table I: worst-case Jm for the adaptive
// controller and the two fixed-gain baselines (all with adaptive
// periods).
type Table1Row struct {
	Config
	Intervals []float64
	Adaptive  float64
	FixedT    float64
	FixedRmax float64
}

// table1T is the control period of Table I.
const table1T = 0.010

// piTuner memoizes the single-mode PI tuning behind Table I (used for
// the fixed-gain baselines and the nominal mode) and assembles the
// adaptive mode tables. It is safe for concurrent use by the parallel
// grid rows: TunePI is deterministic in h, so even a duplicated tuning
// race stores the same gains.
type piTuner struct {
	plant *lti.System
	x0    []float64

	mu     sync.Mutex
	single map[int64]control.PIGains
}

func newPITuner(plant *lti.System) *piTuner {
	return &piTuner{
		plant:  plant,
		x0:     []float64{1, 0},
		single: map[int64]control.PIGains{},
	}
}

func gainKey(h float64) int64 { return int64(math.Round(h * 1e12)) }

func (t *piTuner) tunedSingle(h float64) (control.PIGains, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if g, ok := t.single[gainKey(h)]; ok {
		return g, nil
	}
	g, err := control.TunePI(t.plant, h, control.PITuneOptions{})
	if err != nil {
		return control.PIGains{}, err
	}
	t.single[gainKey(h)] = g
	return g, nil
}

// adaptiveTable builds the full mode table for one timing
// configuration: mode 0 carries the nominal tuned gains; each overrun
// mode h keeps the same proportional/integral gains but adapts the
// forward-Euler integrator step to the experienced interval, exactly
// Eq. 7's z[k+1] = z[k] + h_{k-1}·e[k]. The internal-state compensation
// is the paper's headline mechanism ("adjust the internal states of the
// controller, such as the integrator states"), and an ablation
// (cmd/adactl ablation, BenchmarkAblationPI*) shows it is also the part
// that consistently improves the worst case; naively re-tuned per-mode
// gains overfit the tuning scenarios and lose robustness.
func (t *piTuner) adaptiveTable(tm core.Timing) (map[int64]control.PIGains, error) {
	base, err := t.tunedSingle(tm.T)
	if err != nil {
		return nil, err
	}
	hs := tm.Intervals()
	table := map[int64]control.PIGains{gainKey(tm.T): base}
	for _, h := range hs[1:] {
		table[gainKey(h)] = control.PIGains{KP: base.KP, KI: base.KI, H: h}
	}
	return table, nil
}

// Table1 regenerates Table I with a background context; see Table1Ctx.
func Table1(opt Options) ([]Table1Row, error) {
	rows, err := Table1Ctx(context.Background(), opt, nil, nil)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table1Ctx regenerates Table I. Grid rows are independent and
// evaluated in parallel; each goroutine owns exactly one row slot.
// rows, when non-nil and of grid length, is written in place (pass the
// slice a resume checkpoint restored); otherwise a fresh slice is
// allocated. res, when non-nil, skips rows already marked done and
// persists progress after each row. On error (including cancellation)
// the partially filled rows are returned alongside it: rows with
// res.Done[i] set are valid.
func Table1Ctx(ctx context.Context, opt Options, rows []Table1Row, res *GridResume) ([]Table1Row, error) {
	opt = opt.Defaults()
	plant := plants.Unstable()
	x0 := []float64{1, 0}
	tuner := newPITuner(plant)

	if len(rows) != len(opt.Grid) {
		rows = make([]Table1Row, len(opt.Grid))
	}
	err := gridParallel(ctx, len(opt.Grid), opt.Workers, res, func(ri int, publish func(func())) error {
		cfg := opt.Grid[ri]
		tm, err := core.NewTiming(table1T, cfg.Ns, table1T/10, cfg.RmaxFactor*table1T)
		if err != nil {
			return err
		}
		hs := tm.Intervals()
		hmax := hs[len(hs)-1]

		table, err := tuner.adaptiveTable(tm)
		if err != nil {
			return err
		}
		adaptive := core.Designer(func(h float64) (*control.StateSpace, error) {
			g, ok := table[gainKey(h)]
			if !ok {
				return nil, fmt.Errorf("experiments: no tuned mode for h=%g", h)
			}
			return g.Controller(), nil
		})
		gT, err := tuner.tunedSingle(tm.T)
		if err != nil {
			return fmt.Errorf("experiments: tuning for T: %w", err)
		}
		gMax, err := tuner.tunedSingle(hmax)
		if err != nil {
			return fmt.Errorf("experiments: tuning for Rmax: %w", err)
		}

		row := Table1Row{Config: cfg, Intervals: hs}
		model, err := opt.responseModel(tm)
		if err != nil {
			return err
		}
		for _, strat := range []struct {
			dst      *float64
			designer core.Designer
		}{
			{&row.Adaptive, adaptive},
			{&row.FixedT, core.FixedDesigner(gT.Controller())},
			{&row.FixedRmax, core.FixedDesigner(gMax.Controller())},
		} {
			d, err := core.NewDesign(plant, tm, strat.designer)
			if err != nil {
				return err
			}
			m, err := sim.WorstCaseCtx(ctx, d, x0, model, sim.ErrorCost(),
				sim.MonteCarloOptions{Sequences: opt.Sequences, Jobs: opt.Jobs, Seed: opt.Seed, Workers: opt.Workers}, opt.Refine)
			if err != nil {
				return err
			}
			*strat.dst = m.WorstCost
		}
		publish(func() { rows[ri] = row })
		return nil
	})
	return rows, err
}

// Table1String renders rows in the paper's layout.
func Table1String(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %12s %12s %12s\n", "Rmax", "Ts", "Adaptive", "Fixed T", "Fixed Rmax")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %12.4f %12.4f %12.4f\n",
			fmt.Sprintf("%.1f·T", r.RmaxFactor), fmt.Sprintf("T/%d", r.Ns),
			r.Adaptive, r.FixedT, r.FixedRmax)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table II — LQG control of a PMSM, T = 50 µs.

// Table2Row is one line of Table II.
type Table2Row struct {
	Config
	JSR            jsr.Bounds // adaptive design stability bracket
	JSRBudgetHit   bool       // bracket valid but looser than requested
	CostIdeal      float64    // no overruns, nominal period
	Adaptive       float64    // adaptive period + adaptive control
	FixedT         float64    // adaptive period + gains for T
	FixedTUnstable bool
	FixedRmax      float64 // adaptive period + gains for Rmax
	FixedPeriod    float64 // fixed period Rmax + gains for Rmax
}

// table2T is the control period of Table II.
const table2T = 50e-6

func pmsmWeights() control.LQRWeights {
	// A fast speed loop (ω weighted against cheap currents/voltages)
	// reproduces the paper's regime: per-period contraction around
	// 0.65–0.98 so that extra delays of a few sensor periods visibly
	// erode stability margins, and the fixed-gain baseline designed for
	// T loses stability at Rmax = 1.6·T with Ts = T/2.
	return control.LQRWeights{
		Q: mat.Diag(1, 1, 5),
		R: mat.Scale(0.01, mat.Eye(2)),
	}
}

func pmsmInitialState() []float64 { return []float64{1, 1, 20} }

// Table2 regenerates Table II with a background context; see Table2Ctx.
func Table2(opt Options) ([]Table2Row, error) {
	rows, err := Table2Ctx(context.Background(), opt, nil, nil)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table2Ctx regenerates Table II; rows and res behave as in Table1Ctx.
// A JSR search cut by the node budget marks the row JSRBudgetHit (the
// bracket stays valid); a row cut by cancellation is not completed and
// will be recomputed on resume.
func Table2Ctx(ctx context.Context, opt Options, rows []Table2Row, res *GridResume) ([]Table2Row, error) {
	opt = opt.Defaults()
	plant := plants.PMSM(plants.DefaultPMSMParams())
	w := pmsmWeights()
	x0 := pmsmInitialState()
	cost := sim.QuadCost(w.Q, w.R)
	// Presentation scale shared by every cost column.
	const costScale = 1.0

	lqg := func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	}

	if len(rows) != len(opt.Grid) {
		rows = make([]Table2Row, len(opt.Grid))
	}
	gerr := gridParallel(ctx, len(opt.Grid), opt.Workers, res, func(ri int, publish func(func())) error {
		cfg := opt.Grid[ri]
		tm, err := core.NewTiming(table2T, cfg.Ns, table2T/10, cfg.RmaxFactor*table2T)
		if err != nil {
			return err
		}
		hs := tm.Intervals()
		hmax := hs[len(hs)-1]
		row := Table2Row{Config: cfg}

		adaptiveDesign, err := core.NewDesign(plant, tm, lqg)
		if err != nil {
			return err
		}
		bounds, jerr := adaptiveDesign.StabilityBoundsCtx(ctx, opt.BruteLen, jsr.GripenbergOptions{Delta: opt.Delta, MaxDepth: 30, Workers: opt.Workers})
		if jerr != nil {
			if ctxInterrupted(jerr) {
				return jerr
			}
			row.JSRBudgetHit = true
		}
		row.JSR = bounds

		ideal, err := sim.NoOverrunCost(adaptiveDesign, x0, opt.Jobs, cost)
		if err != nil {
			return err
		}
		row.CostIdeal = ideal * costScale

		ctlT, err := lqg(tm.T)
		if err != nil {
			return err
		}
		ctlMax, err := lqg(hmax)
		if err != nil {
			return err
		}

		model, err := opt.responseModel(tm)
		if err != nil {
			return err
		}
		mc := sim.MonteCarloOptions{Sequences: opt.Sequences, Jobs: opt.Jobs, Seed: opt.Seed, Workers: opt.Workers}

		evalVariant := func(designer core.Designer) (float64, bool, error) {
			d, err := core.NewDesign(plant, tm, designer)
			if err != nil {
				return 0, false, err
			}
			m, err := sim.WorstCaseCtx(ctx, d, x0, model, cost, mc, opt.Refine)
			if err != nil {
				return 0, false, err
			}
			if m.Unstable() || math.IsInf(m.WorstCost, 1) {
				return math.Inf(1), true, nil
			}
			return m.WorstCost * costScale, false, nil
		}

		if row.Adaptive, _, err = evalVariant(lqg); err != nil {
			return err
		}
		var simDiverged bool
		if row.FixedT, simDiverged, err = evalVariant(core.FixedDesigner(ctlT)); err != nil {
			return err
		}
		// The fixed-gain baseline is declared unstable either by
		// simulation divergence or, as in the paper, deterministically:
		// its own switched closed loop has JSR ≥ 1.
		fixedTDesign, err := core.NewDesign(plant, tm, core.FixedDesigner(ctlT))
		if err != nil {
			return err
		}
		fixedTBounds, err := fixedTDesign.StabilityBoundsCtx(ctx, opt.BruteLen, jsr.GripenbergOptions{Delta: opt.Delta, MaxDepth: 30, Workers: opt.Workers})
		if err != nil && !errors.Is(err, jsr.ErrBudget) {
			return err
		}
		row.FixedTUnstable = simDiverged || fixedTBounds.CertifiesUnstable()
		if row.FixedRmax, _, err = evalVariant(core.FixedDesigner(ctlMax)); err != nil {
			return err
		}

		// Fixed-period baseline: controller designed and run at period
		// hmax; by construction no overruns occur (Rmax ≤ T' = hmax).
		fixedTm, err := core.NewTiming(hmax, 1, hmax/2, hmax*0.99)
		if err != nil {
			return err
		}
		fixedDesign, err := core.NewDesign(plant, fixedTm, lqg)
		if err != nil {
			return err
		}
		fp, err := sim.NoOverrunCost(fixedDesign, x0, opt.Jobs, cost)
		if err != nil {
			return err
		}
		row.FixedPeriod = fp * costScale

		publish(func() { rows[ri] = row })
		return nil
	})
	return rows, gerr
}

// Table2String renders rows in the paper's layout.
func Table2String(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-5s %-24s %10s %10s %12s %12s %12s\n",
		"Rmax", "Ts", "JSR adaptive [LB,UB]", "NoOverrun", "Adaptive", "FixedCtl(T)", "FixedCtl(Rm)", "FixedPer(Rm)")
	for _, r := range rows {
		fixedT := fmt.Sprintf("%12.4f", r.FixedT)
		if r.FixedTUnstable {
			fixedT = fmt.Sprintf("%12s", "unstable")
		}
		fmt.Fprintf(&b, "%-8s %-5s [%9.6f, %9.6f] %10.4f %10.4f %s %12.4f %12.4f\n",
			fmt.Sprintf("%.1f·T", r.RmaxFactor), fmt.Sprintf("T/%d", r.Ns),
			r.JSR.Lower, r.JSR.Upper, r.CostIdeal, r.Adaptive, fixedT, r.FixedRmax, r.FixedPeriod)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 1 — timing diagram.

// Figure1 reproduces the paper's timing example: a control task with
// T = 1, Ns = 8, whose second job overruns; the rendering shows the
// postponed release snapping to the next sensor tick.
func Figure1() (string, error) {
	tm := core.MustTiming(1, 8, 0.1, 2)
	execSeq := []float64{0.55, 1.30, 0.55, 0.55}
	i := 0
	tasks := []*sched.Task{{
		Name:     "ctl",
		Period:   tm.T,
		Priority: 1,
		Exec:     replayExec{seq: execSeq, i: &i},
		Release:  tm.NextRelease,
	}}
	res, err := sched.Simulate(tasks, sched.Options{Horizon: 4})
	if err != nil {
		return "", err
	}
	tl, err := trace.Timeline(res, trace.TimelineOptions{Task: "ctl", Ts: tm.Ts(), Horizon: 4, Width: 96})
	if err != nil {
		return "", err
	}
	tb, err := trace.JobTable(res, "ctl", tm.T)
	if err != nil {
		return "", err
	}
	return tl + "\n" + tb, nil
}

type replayExec struct {
	seq []float64
	i   *int
}

// Sample implements sched.ExecModel by replaying a fixed sequence.
func (r replayExec) Sample(_ *rand.Rand) float64 {
	v := r.seq[*r.i%len(r.seq)]
	*r.i++
	return v
}

// Bounds implements sched.ExecModel.
func (r replayExec) Bounds() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range r.seq {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// ---------------------------------------------------------------------------
// Design-space sweep (§V-B): sensor granularity vs analysis and cost.

// SweepRow reports the effect of the oversampling factor Ns for a fixed
// Rmax: the cardinality of H, the stability bracket, and the worst-case
// cost of the adaptive design.
type SweepRow struct {
	Ns        int
	NumModes  int
	JSR       jsr.Bounds
	WorstCost float64
}

// SweepNs runs the granularity ablation with a background context; see
// SweepNsCtx.
func SweepNs(factors []int, opt Options) ([]SweepRow, error) {
	rows, err := SweepNsCtx(context.Background(), factors, opt, nil, nil)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SweepNsCtx runs the granularity ablation on the PMSM at Rmax = 1.6·T.
// Rows run sequentially (in factors order — each row's JSR search is
// itself parallel); rows and res behave as in Table1Ctx.
func SweepNsCtx(ctx context.Context, factors []int, opt Options, rows []SweepRow, res *GridResume) ([]SweepRow, error) {
	opt = opt.Defaults()
	plant := plants.PMSM(plants.DefaultPMSMParams())
	w := pmsmWeights()
	cost := sim.QuadCost(w.Q, w.R)
	x0 := pmsmInitialState()
	if len(rows) != len(factors) {
		rows = make([]SweepRow, len(factors))
	}
	err := gridParallel(ctx, len(factors), 1, res, func(ri int, publish func(func())) error {
		ns := factors[ri]
		tm, err := core.NewTiming(table2T, ns, table2T/10, 1.6*table2T)
		if err != nil {
			return err
		}
		d, err := core.NewDesign(plant, tm, func(h float64) (*control.StateSpace, error) {
			return control.LQGFullInfo(plant, w, h)
		})
		if err != nil {
			return err
		}
		bounds, err := d.StabilityBoundsCtx(ctx, opt.BruteLen, jsr.GripenbergOptions{Delta: opt.Delta, MaxDepth: 25, Workers: opt.Workers})
		if err != nil && !errors.Is(err, jsr.ErrBudget) {
			return err
		}
		m, err := sim.MonteCarloCtx(ctx, d, x0, sim.UniformResponse{Rmin: tm.Rmin, Rmax: tm.Rmax}, cost,
			sim.MonteCarloOptions{Sequences: opt.Sequences, Jobs: opt.Jobs, Seed: opt.Seed, Workers: opt.Workers})
		if err != nil {
			return err
		}
		publish(func() { rows[ri] = SweepRow{Ns: ns, NumModes: d.NumModes(), JSR: bounds, WorstCost: m.WorstCost} })
		return nil
	})
	return rows, err
}

// SweepString renders the sweep.
func SweepString(rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-7s %-24s %12s\n", "Ns", "#H", "JSR [LB,UB]", "WorstCost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d %-7d [%9.6f, %9.6f] %12.4f\n", r.Ns, r.NumModes, r.JSR.Lower, r.JSR.Upper, r.WorstCost)
	}
	return b.String()
}
