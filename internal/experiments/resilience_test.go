package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// resumeOpts keeps the resume tests cheap: equivalence is exact (the
// same seeds replay bit-identically), so tiny sweeps suffice.
func resumeOpts() Options {
	return Options{Sequences: 30, Jobs: 10, Seed: 3, BruteLen: 3, Delta: 0.05}
}

// TestTable1CtxCancelled: a cancelled context aborts before any row
// completes and reports the cancellation.
func TestTable1CtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make([]bool, len(PaperGrid))
	res := &GridResume{Done: done}
	_, err := Table1Ctx(ctx, resumeOpts(), nil, res)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, d := range done {
		if d {
			t.Fatalf("row %d marked done under a pre-cancelled context", i)
		}
	}
}

// TestTable1CtxResume: rows restored from a checkpoint must be reused
// verbatim (their work skipped), freshly computed rows must match a
// from-scratch run exactly, and progress must be persisted once per
// newly completed row.
func TestTable1CtxResume(t *testing.T) {
	opt := resumeOpts()
	ref, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(PaperGrid) {
		t.Fatalf("grid has %d rows, want %d", len(ref), len(PaperGrid))
	}

	// Simulate a checkpoint that completed the first half of the grid.
	rows := make([]Table1Row, len(ref))
	done := make([]bool, len(ref))
	half := len(ref) / 2
	for i := 0; i < half; i++ {
		rows[i] = ref[i]
		done[i] = true
	}
	var mu sync.Mutex
	saves := 0
	res := &GridResume{
		Done: done,
		Save: func() error {
			mu.Lock()
			saves++
			mu.Unlock()
			return nil
		},
	}
	got, err := Table1Ctx(context.Background(), opt, rows, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("resumed rows diverge from a fresh run:\n got %+v\nwant %+v", got, ref)
	}
	if want := len(ref) - half; saves != want {
		t.Fatalf("Save called %d times, want once per newly completed row (%d)", saves, want)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("row %d not marked done after completion", i)
		}
	}
}

// TestGridParallelValidatesResume: a done slice of the wrong length is
// a caller bug (a checkpoint for a different grid) and must be refused.
func TestGridParallelValidatesResume(t *testing.T) {
	res := &GridResume{Done: make([]bool, 2)}
	err := gridParallel(context.Background(), 3, 1, res, func(int, func(func())) error { return nil })
	if err == nil {
		t.Fatal("mismatched Done length accepted")
	}
}

// TestGridParallelRealErrorBeatsCancellation: when a row fails, sibling
// rows drained by the induced cancellation must not mask the failure,
// and failed rows must stay un-done.
func TestGridParallelRealErrorBeatsCancellation(t *testing.T) {
	sentinel := errors.New("row failure")
	done := make([]bool, 8)
	res := &GridResume{Done: done}
	err := gridParallel(context.Background(), 8, 4, res, func(i int, _ func(func())) error {
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the row failure", err)
	}
	if done[3] {
		t.Fatal("failed row marked done")
	}
}

// TestGridParallelSaveRowRace: the Save hook snapshots the caller's
// whole row slice (as adactl's checkpoint does, gob-encoding rows with
// slice fields) while other workers are still publishing rows. Row
// publication must be serialized with Save under the same lock; under
// -race this test fails if a row write escapes the critical section.
func TestGridParallelSaveRowRace(t *testing.T) {
	const n = 64
	rows := make([]struct{ Vals []float64 }, n)
	done := make([]bool, n)
	res := &GridResume{
		Done: done,
		Save: func() error {
			// Read every row, finished or not — exactly what a
			// whole-checkpoint encoder does.
			var sum float64
			for i := range rows {
				for _, v := range rows[i].Vals {
					sum += v
				}
			}
			_ = sum
			return nil
		},
	}
	err := gridParallel(context.Background(), n, 8, res, func(i int, publish func(func())) error {
		row := struct{ Vals []float64 }{Vals: []float64{float64(i), float64(i * i)}}
		publish(func() { rows[i] = row })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if len(rows[i].Vals) != 2 {
			t.Fatalf("row %d not published", i)
		}
	}
}

// TestGridParallelCompleteDespiteLateCancel: a context that fires only
// after every row has been dispatched and completed must not turn a
// fully successful run into an interruption.
func TestGridParallelCompleteDespiteLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 4
	done := make([]bool, n)
	res := &GridResume{Done: done}
	finished := 0
	var mu sync.Mutex
	err := gridParallel(ctx, n, 1, res, func(i int, _ func(func())) error {
		mu.Lock()
		finished++
		if finished == n {
			cancel() // fires after the last row's work, before return
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want nil for a fully completed grid", err)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("row %d not marked done", i)
		}
	}
}

// TestGridParallelResumeCompleteUnderDeadline: resuming a grid whose
// rows are all already done must succeed even if the context is
// already expired — there is no work left to interrupt.
func TestGridParallelResumeCompleteUnderDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := []bool{true, true, true}
	res := &GridResume{Done: done}
	err := gridParallel(ctx, 3, 2, res, func(int, func(func())) error {
		t.Error("fn called for a done row")
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want nil when every row was already done", err)
	}
}

// TestSweepNsCtxResume mirrors the table test on the sequential sweep
// runner.
func TestSweepNsCtxResume(t *testing.T) {
	factors := []int{1, 2}
	opt := resumeOpts()
	ref, err := SweepNs(factors, opt)
	if err != nil {
		t.Fatal(err)
	}

	rows := make([]SweepRow, len(ref))
	done := make([]bool, len(ref))
	rows[0] = ref[0]
	done[0] = true
	saves := 0
	res := &GridResume{Done: done, Save: func() error { saves++; return nil }}
	got, err := SweepNsCtx(context.Background(), factors, opt, rows, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("resumed sweep diverges:\n got %+v\nwant %+v", got, ref)
	}
	if saves != 1 {
		t.Fatalf("Save called %d times, want 1", saves)
	}
}
