package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// resumeOpts keeps the resume tests cheap: equivalence is exact (the
// same seeds replay bit-identically), so tiny sweeps suffice.
func resumeOpts() Options {
	return Options{Sequences: 30, Jobs: 10, Seed: 3, BruteLen: 3, Delta: 0.05}
}

// TestTable1CtxCancelled: a cancelled context aborts before any row
// completes and reports the cancellation.
func TestTable1CtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make([]bool, len(PaperGrid))
	res := &GridResume{Done: done}
	_, err := Table1Ctx(ctx, resumeOpts(), nil, res)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, d := range done {
		if d {
			t.Fatalf("row %d marked done under a pre-cancelled context", i)
		}
	}
}

// TestTable1CtxResume: rows restored from a checkpoint must be reused
// verbatim (their work skipped), freshly computed rows must match a
// from-scratch run exactly, and progress must be persisted once per
// newly completed row.
func TestTable1CtxResume(t *testing.T) {
	opt := resumeOpts()
	ref, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(PaperGrid) {
		t.Fatalf("grid has %d rows, want %d", len(ref), len(PaperGrid))
	}

	// Simulate a checkpoint that completed the first half of the grid.
	rows := make([]Table1Row, len(ref))
	done := make([]bool, len(ref))
	half := len(ref) / 2
	for i := 0; i < half; i++ {
		rows[i] = ref[i]
		done[i] = true
	}
	var mu sync.Mutex
	saves := 0
	res := &GridResume{
		Done: done,
		Save: func() error {
			mu.Lock()
			saves++
			mu.Unlock()
			return nil
		},
	}
	got, err := Table1Ctx(context.Background(), opt, rows, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("resumed rows diverge from a fresh run:\n got %+v\nwant %+v", got, ref)
	}
	if want := len(ref) - half; saves != want {
		t.Fatalf("Save called %d times, want once per newly completed row (%d)", saves, want)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("row %d not marked done after completion", i)
		}
	}
}

// TestGridParallelValidatesResume: a done slice of the wrong length is
// a caller bug (a checkpoint for a different grid) and must be refused.
func TestGridParallelValidatesResume(t *testing.T) {
	res := &GridResume{Done: make([]bool, 2)}
	err := gridParallel(context.Background(), 3, 1, res, func(int) error { return nil })
	if err == nil {
		t.Fatal("mismatched Done length accepted")
	}
}

// TestGridParallelRealErrorBeatsCancellation: when a row fails, sibling
// rows drained by the induced cancellation must not mask the failure,
// and failed rows must stay un-done.
func TestGridParallelRealErrorBeatsCancellation(t *testing.T) {
	sentinel := errors.New("row failure")
	done := make([]bool, 8)
	res := &GridResume{Done: done}
	err := gridParallel(context.Background(), 8, 4, res, func(i int) error {
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the row failure", err)
	}
	if done[3] {
		t.Fatal("failed row marked done")
	}
}

// TestSweepNsCtxResume mirrors the table test on the sequential sweep
// runner.
func TestSweepNsCtxResume(t *testing.T) {
	factors := []int{1, 2}
	opt := resumeOpts()
	ref, err := SweepNs(factors, opt)
	if err != nil {
		t.Fatal(err)
	}

	rows := make([]SweepRow, len(ref))
	done := make([]bool, len(ref))
	rows[0] = ref[0]
	done[0] = true
	saves := 0
	res := &GridResume{Done: done, Save: func() error { saves++; return nil }}
	got, err := SweepNsCtx(context.Background(), factors, opt, rows, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("resumed sweep diverges:\n got %+v\nwant %+v", got, ref)
	}
	if saves != 1 {
		t.Fatalf("Save called %d times, want 1", saves)
	}
}
