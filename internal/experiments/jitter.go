package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"adaptivertc/internal/control"
	"adaptivertc/internal/core"
	"adaptivertc/internal/plants"
)

// JitterRow reports closed-loop degradation when the true inter-release
// intervals deviate from the sensor grid by uniform jitter of the given
// magnitude — probing the paper's assumption that sensor updates occur
// "with negligible jitter".
type JitterRow struct {
	JitterFrac float64 // jitter amplitude as a fraction of Ts
	WorstCost  float64 // worst Σ‖e‖² over random runs
	MeanCost   float64
	Divergent  int
}

// Jitter runs the robustness sweep on the PMSM adaptive design
// (Rmax = 1.6·T, Ts = T/5): each interval h is perturbed to
// h + ε·Ts·U(-1,1) for ε in jitterFracs while the controller still
// assumes the grid value.
func Jitter(jitterFracs []float64, runs, jobs int, seed int64) ([]JitterRow, error) {
	if runs <= 0 {
		runs = 500
	}
	if jobs <= 0 {
		jobs = 50
	}
	plant := plants.PMSM(plants.DefaultPMSMParams())
	w := pmsmWeights()
	tm, err := core.NewTiming(table2T, 5, table2T/10, 1.6*table2T)
	if err != nil {
		return nil, err
	}
	d, err := core.NewDesign(plant, tm, func(h float64) (*control.StateSpace, error) {
		return control.LQGFullInfo(plant, w, h)
	})
	if err != nil {
		return nil, err
	}
	x0 := pmsmInitialState()
	ts := tm.Ts()

	rows := make([]JitterRow, 0, len(jitterFracs))
	for _, frac := range jitterFracs {
		row := JitterRow{JitterFrac: frac, WorstCost: math.Inf(-1)}
		sum, count := 0.0, 0
		for run := 0; run < runs; run++ {
			rng := rand.New(rand.NewSource(seed + int64(run)))
			loop, err := core.NewLoop(d, x0)
			if err != nil {
				return nil, err
			}
			cost := 0.0
			diverged := false
			for k := 0; k < jobs; k++ {
				r := tm.Rmin + rng.Float64()*(tm.Rmax-tm.Rmin)
				idx := tm.IntervalIndex(r)
				h := tm.T + float64(idx)*ts
				actual := h + frac*ts*(2*rng.Float64()-1)
				y := loop.Output()
				for _, v := range y {
					cost += v * v
				}
				if err := loop.StepJittered(idx, actual); err != nil {
					return nil, err
				}
				for _, v := range loop.State() {
					if math.Abs(v) > 1e12 || math.IsNaN(v) {
						diverged = true
					}
				}
				if diverged {
					break
				}
			}
			if diverged {
				row.Divergent++
				continue
			}
			count++
			sum += cost
			if cost > row.WorstCost {
				row.WorstCost = cost
			}
		}
		if count > 0 {
			row.MeanCost = sum / float64(count)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// JitterString renders the sweep.
func JitterString(rows []JitterRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %14s %10s\n", "jitter/Ts", "worst Σ‖e‖²", "mean Σ‖e‖²", "divergent")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.3f %14.4f %14.4f %10d\n", r.JitterFrac, r.WorstCost, r.MeanCost, r.Divergent)
	}
	return b.String()
}
