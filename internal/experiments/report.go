package experiments

import (
	"fmt"
	"io"
	"time"
)

// Report regenerates every experiment in this repository and writes a
// single self-contained markdown document: the paper's tables and
// figure, the design-space sweep, the three ablations, and the
// extension studies (burst, weakly-hard, drift, jitter, quantization,
// observer). Sequence counts come from opt; the full paper protocol
// takes tens of minutes, the defaults a few minutes.
func Report(opt Options, w io.Writer) error {
	opt = opt.Defaults()
	start := time.Now()
	section := func(title string) {
		fmt.Fprintf(w, "\n## %s\n\n", title)
	}
	code := func(s string) {
		fmt.Fprintf(w, "```\n%s```\n", s)
	}

	fmt.Fprintf(w, "# adaptivertc — regenerated evaluation report\n\n")
	fmt.Fprintf(w, "Reproduction of \"Adaptive Design of Real-Time Control Systems subject to\n")
	fmt.Fprintf(w, "Sporadic Overruns\" (DATE 2021). %d sequences × %d jobs per Monte-Carlo cell.\n",
		opt.Sequences, opt.Jobs)
	fmt.Fprintf(w, "Base RNG seed %d — rerun with the same seed to reproduce every number below.\n",
		opt.Seed)

	section("Figure 1 — timing diagram")
	fig, err := Figure1()
	if err != nil {
		return fmt.Errorf("figure1: %w", err)
	}
	code(fig)

	section("Table I — worst-case PI performance (unstable system, T = 10 ms)")
	t1, err := Table1(opt)
	if err != nil {
		return fmt.Errorf("table1: %w", err)
	}
	code(Table1String(t1))

	section("Table II — stability and worst-case LQG cost (PMSM, T = 50 µs)")
	t2, err := Table2(opt)
	if err != nil {
		return fmt.Errorf("table2: %w", err)
	}
	code(Table2String(t2))

	section("Design-space sweep — sensor granularity (§V-B)")
	sw, err := SweepNs([]int{1, 2, 4, 5, 8, 10}, opt)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	code(SweepString(sw))

	section("Ablation — PI adaptation decomposition")
	api, err := AblationPI(opt)
	if err != nil {
		return fmt.Errorf("ablation pi: %w", err)
	}
	code(AblationPIString(api))

	section("Ablation — JSR estimators")
	ajs, err := AblationJSR(opt)
	if err != nil {
		return fmt.Errorf("ablation jsr: %w", err)
	}
	code(AblationJSRString(ajs))

	section("Ablation — delay-aware vs naive LQR")
	alq, err := AblationDelayLQR(opt)
	if err != nil {
		return fmt.Errorf("ablation lqr: %w", err)
	}
	code(AblationLQRString(alq))

	section("Extension — bursty overruns (Markov) vs i.i.d.")
	br, err := BurstComparison(opt)
	if err != nil {
		return fmt.Errorf("burst: %w", err)
	}
	code(BurstString(br))

	section("Extension — weakly-hard constrained switching")
	wh, err := WeaklyHard(4, opt)
	if err != nil {
		return fmt.Errorf("weaklyhard: %w", err)
	}
	code(WeaklyHardString(wh))

	section("Extension — implementation fidelity (sleep vs sleep_until)")
	dr, err := Drift([]float64{0, 0.001, 0.005, 0.01, 0.02, 0.05}, 200)
	if err != nil {
		return fmt.Errorf("drift: %w", err)
	}
	code(DriftString(dr))

	section("Extension — sensor-jitter robustness")
	ji, err := Jitter([]float64{0, 0.05, 0.1, 0.2, 0.5, 1.0}, opt.Sequences/10+10, opt.Jobs, opt.Seed)
	if err != nil {
		return fmt.Errorf("jitter: %w", err)
	}
	code(JitterString(ji))

	section("Extension — fixed-point table width")
	qz, err := QuantizeSweep([]int{4, 6, 8, 10, 12, 16, 24}, opt)
	if err != nil {
		return fmt.Errorf("quantize: %w", err)
	}
	code(QuantizeString(qz))

	section("Extension — observer-based LQG (current sensors only)")
	ob, err := ObserverComparison(opt)
	if err != nil {
		return fmt.Errorf("observer: %w", err)
	}
	code(ObserverString(ob))

	fmt.Fprintf(w, "\n---\ngenerated in %s\n", time.Since(start).Round(time.Second))
	return nil
}
