package mat

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// ErrEigNotConverged is returned when the QR iteration fails to isolate
// all eigenvalues within the iteration budget.
var ErrEigNotConverged = errors.New("mat: eigenvalue iteration did not converge")

// Hessenberg reduces a square matrix to upper Hessenberg form by
// Householder similarity transforms and returns the reduced matrix. The
// result has the same eigenvalues as the input.
func Hessenberg(a *Dense) *Dense {
	mustSquare("Hessenberg", a)
	h := a.Clone()
	hessenbergInPlace(h, make([]float64, a.rows))
	return h
}

// hessenbergInPlace reduces h to upper Hessenberg form in place. v is a
// length-n work vector whose prior contents are ignored. Shared by the
// allocating Hessenberg wrapper and the scratch-arena eigenvalue path;
// both therefore produce bit-identical reductions.
func hessenbergInPlace(h *Dense, v []float64) {
	n := h.rows
	d := h.data
	for k := 0; k < n-2; k++ {
		// Build the Householder vector for column k, rows k+1..n-1.
		scale := 0.0
		for i := k + 1; i < n; i++ {
			scale += math.Abs(d[i*n+k])
		}
		//lint:ignore floatcompare exactly zero subdiagonal column needs no reflector, and 1/scale below requires scale != 0
		if scale == 0 {
			continue
		}
		nrm := 0.0
		for i := k + 1; i < n; i++ {
			v[i] = d[i*n+k] / scale
			nrm += v[i] * v[i]
		}
		nrm = math.Sqrt(nrm)
		if v[k+1] < 0 {
			nrm = -nrm
		}
		v[k+1] += nrm
		beta := nrm * v[k+1]
		//lint:ignore floatcompare division guard: v vᵀ/beta is applied below only when beta is exactly nonzero
		if beta == 0 {
			continue
		}
		// Apply H = I - v vᵀ/beta from the left: rows k+1..n-1.
		for j := k; j < n; j++ {
			s := 0.0
			for i := k + 1; i < n; i++ {
				s += v[i] * d[i*n+j]
			}
			s /= beta
			for i := k + 1; i < n; i++ {
				d[i*n+j] -= s * v[i]
			}
		}
		// Apply from the right: columns k+1..n-1.
		for i := 0; i < n; i++ {
			s := 0.0
			for j := k + 1; j < n; j++ {
				s += v[j] * d[i*n+j]
			}
			s /= beta
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= s * v[j]
			}
		}
		// Zero the annihilated entries exactly.
		d[(k+1)*n+k] = -nrm * scale
		for i := k + 2; i < n; i++ {
			d[i*n+k] = 0
		}
	}
}

// balance applies diagonal similarity scaling (Parlett–Reinsch) so that
// row and column norms are of comparable magnitude, improving the
// accuracy of the subsequent QR iteration. Eigenvalues are unchanged.
func balance(a *Dense) {
	const radix = 2.0
	n := a.rows
	d := a.data
	for done := false; !done; {
		done = true
		for i := 0; i < n; i++ {
			r, c := 0.0, 0.0
			for j := 0; j < n; j++ {
				if j != i {
					c += math.Abs(d[j*n+i])
					r += math.Abs(d[i*n+j])
				}
			}
			//lint:ignore floatcompare an exactly zero row or column cannot be balanced and would divide by zero below
			if c == 0 || r == 0 {
				continue
			}
			g, f, s := r/radix, 1.0, c+r
			for c < g {
				f *= radix
				c *= radix * radix
			}
			g = r * radix
			for c > g {
				f /= radix
				c /= radix * radix
			}
			if (c+r)/f < 0.95*s {
				done = false
				g = 1 / f
				for j := 0; j < n; j++ {
					d[i*n+j] *= g
				}
				for j := 0; j < n; j++ {
					d[j*n+i] *= f
				}
			}
		}
	}
}

// Eigenvalues returns the eigenvalues of a square real matrix as complex
// numbers (complex-conjugate pairs for complex eigenvalues), computed by
// balancing, Hessenberg reduction, and the Francis double-shift QR
// iteration.
func Eigenvalues(a *Dense) ([]complex128, error) {
	mustSquare("Eigenvalues", a)
	n := a.rows
	switch n {
	case 1:
		return []complex128{complex(a.data[0], 0)}, nil
	case 2:
		return eig2x2(a.data[0], a.data[1], a.data[2], a.data[3]), nil
	}
	if eigs, err := eigOnce(a); err == nil {
		return eigs, nil
	}
	return eigRetry(a)
}

// eigRetry is the fallback ladder used after a first eigOnce attempt
// fails. The QR iteration occasionally cycles on highly structured
// matrices (e.g. checkerboard sparsity); retry on equivalent problems:
// a normalized copy (eigenvalues scale linearly) and the transpose
// (identical spectrum).
func eigRetry(a *Dense) ([]complex128, error) {
	//lint:ignore floatcompare rescaling is only pointless at exactly 1; any other norm value is safe to divide by
	if s := InfNorm(a); s > 0 && s != 1 {
		if eigs, err := eigOnce(Scale(1/s, a)); err == nil {
			for i := range eigs {
				eigs[i] *= complex(s, 0)
			}
			return eigs, nil
		}
		if eigs, err := eigOnce(Scale(1/s, a).T()); err == nil {
			for i := range eigs {
				eigs[i] *= complex(s, 0)
			}
			return eigs, nil
		}
	}
	return eigOnce(a.T())
}

func eigOnce(a *Dense) ([]complex128, error) {
	work := a.Clone()
	balance(work)
	hessenbergInPlace(work, make([]float64, a.rows))
	return hqr(work)
}

// eig2x2 returns the eigenvalues of [[a,b],[c,d]].
func eig2x2(a, b, c, d float64) []complex128 {
	tr := a + d
	det := a*d - b*c
	disc := tr*tr/4 - det
	if disc >= 0 {
		s := math.Sqrt(disc)
		return []complex128{complex(tr/2+s, 0), complex(tr/2-s, 0)}
	}
	s := math.Sqrt(-disc)
	return []complex128{complex(tr/2, s), complex(tr/2, -s)}
}

// hqr computes all eigenvalues of an upper Hessenberg matrix by the
// Francis double-shift QR iteration with deflation (after EISPACK HQR /
// Numerical Recipes). The matrix is destroyed.
func hqr(hm *Dense) ([]complex128, error) {
	n := hm.rows
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := hqrInPlace(hm, wr, wi); err != nil {
		return nil, err
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(wr[i], wi[i])
	}
	sort.Slice(out, func(i, j int) bool {
		//lint:ignore floatcompare sort comparator: a deterministic total order needs exact tie-breaks
		if real(out[i]) != real(out[j]) {
			return real(out[i]) < real(out[j])
		}
		return imag(out[i]) < imag(out[j])
	})
	return out, nil
}

// hqrInPlace is the iteration core of hqr. It destroys hm and writes
// the eigenvalue real/imaginary parts into the caller-provided wr and
// wi (length n, prior contents ignored), allocating nothing itself so
// the scratch-arena spectral-radius path can reuse buffers.
func hqrInPlace(hm *Dense, wr, wi []float64) error {
	n := hm.rows
	a := hm.data
	at := func(i, j int) float64 { return a[i*n+j] }
	set := func(i, j int, v float64) { a[i*n+j] = v }

	const eps = 2.22e-16
	anorm := 0.0
	for i := 0; i < n; i++ {
		for j := maxInt(i-1, 0); j < n; j++ {
			anorm += math.Abs(at(i, j))
		}
	}
	//lint:ignore floatcompare a norm is exactly zero only for the exactly zero matrix
	if anorm == 0 {
		// The zero matrix: all eigenvalues are zero.
		for i := 0; i < n; i++ {
			wr[i], wi[i] = 0, 0
		}
		return nil
	}

	nn := n - 1
	t := 0.0
	for nn >= 0 {
		its := 0
		var l int
		for {
			// Look for a single small subdiagonal element.
			for l = nn; l >= 1; l-- {
				s := math.Abs(at(l-1, l-1)) + math.Abs(at(l, l))
				//lint:ignore floatcompare guard before using s as a relative-threshold denominator
				if s == 0 {
					s = anorm
				}
				if math.Abs(at(l, l-1)) <= eps*s {
					set(l, l-1, 0)
					break
				}
			}
			x := at(nn, nn)
			if l == nn {
				// One real root found.
				wr[nn] = x + t
				wi[nn] = 0
				nn--
				break
			}
			y := at(nn-1, nn-1)
			w := at(nn, nn-1) * at(nn-1, nn)
			if l == nn-1 {
				// A 2×2 block has deflated: two roots.
				p := 0.5 * (y - x)
				q := p*p + w
				z := math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 {
					// Real pair.
					if p >= 0 {
						z = p + z
					} else {
						z = p - z
					}
					wr[nn-1] = x + z
					wr[nn] = wr[nn-1]
					//lint:ignore floatcompare division guard for w/z; a zero root keeps the paired value
					if z != 0 {
						wr[nn] = x - w/z
					}
					wi[nn-1], wi[nn] = 0, 0
				} else {
					// Complex conjugate pair.
					wr[nn-1] = x + p
					wr[nn] = x + p
					wi[nn-1] = -z
					wi[nn] = z
				}
				nn -= 2
				break
			}
			// No root yet: perform a double QR step.
			if its == 60 {
				return ErrEigNotConverged
			}
			if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
				// Exceptional shift to break symmetry cycles.
				t += x
				for i := 0; i <= nn; i++ {
					set(i, i, at(i, i)-x)
				}
				s := math.Abs(at(nn, nn-1)) + math.Abs(at(nn-1, nn-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			// Find two consecutive small subdiagonal elements.
			var m int
			var p, q, r float64
			for m = nn - 2; m >= l; m-- {
				z := at(m, m)
				rr := x - z
				ss := y - z
				p = (rr*ss-w)/at(m+1, m) + at(m, m+1)
				q = at(m+1, m+1) - z - rr - ss
				r = at(m+2, m+1)
				s := math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u := math.Abs(at(m, m-1)) * (math.Abs(q) + math.Abs(r))
				v := math.Abs(p) * (math.Abs(at(m-1, m-1)) + math.Abs(z) + math.Abs(at(m+1, m+1)))
				if u <= eps*v {
					break
				}
			}
			for i := m + 2; i <= nn; i++ {
				set(i, i-2, 0)
				if i != m+2 {
					set(i, i-3, 0)
				}
			}
			// Double QR step on rows l..nn and columns l..nn.
			for k := m; k <= nn-1; k++ {
				if k != m {
					p = at(k, k-1)
					q = at(k+1, k-1)
					r = 0
					if k != nn-1 {
						r = at(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					//lint:ignore floatcompare division guard before normalizing the reflector by x
					if x != 0 {
						p /= x
						q /= x
						r /= x
					}
				}
				s := math.Sqrt(p*p + q*q + r*r)
				if p < 0 {
					s = -s
				}
				//lint:ignore floatcompare a zero Householder norm means the column is already eliminated; also guards s divisions below
				if s == 0 {
					continue
				}
				if k == m {
					if l != m {
						set(k, k-1, -at(k, k-1))
					}
				} else {
					set(k, k-1, -s*x)
				}
				p += s
				x = p / s
				y := q / s
				z := r / s
				q /= p
				r /= p
				// Row modification.
				for j := k; j <= nn; j++ {
					pp := at(k, j) + q*at(k+1, j)
					if k != nn-1 {
						pp += r * at(k+2, j)
						set(k+2, j, at(k+2, j)-pp*z)
					}
					set(k+1, j, at(k+1, j)-pp*y)
					set(k, j, at(k, j)-pp*x)
				}
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				// Column modification.
				for i := l; i <= mmin; i++ {
					pp := x*at(i, k) + y*at(i, k+1)
					if k != nn-1 {
						pp += z * at(i, k+2)
						set(i, k+2, at(i, k+2)-pp*r)
					}
					set(i, k+1, at(i, k+1)-pp*q)
					set(i, k, at(i, k)-pp)
				}
			}
		}
	}
	return nil
}

// SpectralRadius returns max |λᵢ| over the eigenvalues of a square
// matrix.
func SpectralRadius(a *Dense) (float64, error) {
	eigs, err := Eigenvalues(a)
	if err != nil {
		return 0, err
	}
	r := 0.0
	for _, l := range eigs {
		if v := cmplx.Abs(l); v > r {
			r = v
		}
	}
	return r, nil
}

// IsSchurStable reports whether every eigenvalue lies strictly inside
// the unit disc (discrete-time asymptotic stability of x⁺ = A x).
func IsSchurStable(a *Dense) (bool, error) {
	r, err := SpectralRadius(a)
	if err != nil {
		return false, err
	}
	return r < 1, nil
}

// IsHurwitzStable reports whether every eigenvalue has a strictly
// negative real part (continuous-time asymptotic stability of ẋ = A x).
func IsHurwitzStable(a *Dense) (bool, error) {
	eigs, err := Eigenvalues(a)
	if err != nil {
		return false, err
	}
	for _, l := range eigs {
		if real(l) >= 0 {
			return false, nil
		}
	}
	return true, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
