package mat

import (
	"errors"
	"math"
)

// ErrNotPosDef is returned when a Cholesky factorization is attempted on
// a matrix that is not (numerically) symmetric positive definite.
var ErrNotPosDef = errors.New("mat: matrix is not positive definite")

// Cholesky returns the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive-definite matrix.
func Cholesky(a *Dense) (*Dense, error) {
	mustSquare("Cholesky", a)
	n := a.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotPosDef
				}
				l.data[i*n+i] = math.Sqrt(s)
			} else {
				l.data[i*n+j] = s / l.data[j*n+j]
			}
		}
	}
	return l, nil
}

// IsPosDef reports whether a symmetric matrix is positive definite.
func IsPosDef(a *Dense) bool {
	_, err := Cholesky(a)
	return err == nil
}

// IsPosSemiDef reports whether a symmetric matrix is positive
// semi-definite within tolerance tol, by testing A + tol·I for positive
// definiteness.
func IsPosSemiDef(a *Dense, tol float64) bool {
	shifted := Add(a, Scale(tol, Eye(a.rows)))
	return IsPosDef(shifted)
}

// SolveLyapunovDiscrete solves the discrete Lyapunov equation
// AᵀXA - X + Q = 0 for X, via the Kronecker-product linear system
// (I - Aᵀ⊗Aᵀ) vec(X) = vec(Q). Intended for the small matrices of this
// repository (n ≤ ~12, giving n² ≤ 144 unknowns).
func SolveLyapunovDiscrete(a, q *Dense) (*Dense, error) {
	mustSquare("SolveLyapunovDiscrete", a)
	sameDims("SolveLyapunovDiscrete", a, q)
	n := a.rows
	at := a.T()
	// vec(Aᵀ X A) = (Aᵀ ⊗ Aᵀ) vec(X).
	k := Kron(at, at)
	lhs := Sub(Eye(n*n), k)
	x, err := Solve(lhs, Vec(q))
	if err != nil {
		return nil, err
	}
	return Symmetrize(Unvec(x, n, n)), nil
}
