package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSliceAndSetBlock(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	s := m.Slice(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equal(want) {
		t.Fatalf("Slice = %v", s)
	}
	// Slice must be a copy.
	s.Set(0, 0, 99)
	if m.At(1, 0) != 4 {
		t.Fatal("Slice shares storage")
	}
	m.SetBlock(0, 1, FromRows([][]float64{{-1, -2}}))
	if m.At(0, 1) != -1 || m.At(0, 2) != -2 {
		t.Fatalf("SetBlock result: %v", m)
	}
}

func TestBlockAssembly(t *testing.T) {
	a := Eye(2)
	b := New(2, 1)
	c := RowVec(7, 7)
	d := FromRows([][]float64{{9}})
	m := Block([][]*Dense{
		{a, b},
		{c, d},
	})
	want := FromRows([][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{7, 7, 9},
	})
	if !m.Equal(want) {
		t.Fatalf("Block = %v", m)
	}
}

func TestBlockNilZeroes(t *testing.T) {
	m := Block([][]*Dense{
		{Eye(2), nil},
		{nil, Eye(3)},
	})
	if m.Rows() != 5 || m.Cols() != 5 {
		t.Fatalf("dims = %d×%d", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != 1 || m.At(4, 4) != 1 || m.At(0, 4) != 0 || m.At(3, 0) != 0 {
		t.Fatalf("Block nil fill wrong: %v", m)
	}
}

func TestBlockSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Block did not panic")
		}
	}()
	Block([][]*Dense{
		{Eye(2), Eye(3)}, // heights differ in one block row
	})
}

func TestBlockAllNilRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Block with undetermined row did not panic")
		}
	}()
	Block([][]*Dense{
		{nil, nil},
		{Eye(2), Eye(2)},
	})
}

func TestHStackVStack(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3}})
	h := HStack(a, b)
	if h.Rows() != 1 || h.Cols() != 3 || h.At(0, 2) != 3 {
		t.Fatalf("HStack = %v", h)
	}
	v := VStack(a, RowVec(9, 9))
	if v.Rows() != 2 || v.At(1, 1) != 9 {
		t.Fatalf("VStack = %v", v)
	}
}

func TestBlockDiag(t *testing.T) {
	m := BlockDiag(Diag(1, 2), FromRows([][]float64{{3}}))
	want := Diag(1, 2, 3)
	if !m.Equal(want) {
		t.Fatalf("BlockDiag = %v", m)
	}
}

func TestKronKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := Eye(2)
	k := Kron(a, b)
	want := FromRows([][]float64{
		{1, 0, 2, 0},
		{0, 1, 0, 2},
		{3, 0, 4, 0},
		{0, 3, 0, 4},
	})
	if !k.Equal(want) {
		t.Fatalf("Kron = %v", k)
	}
}

func TestKronMixedProductProperty(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 2, 3)
		c := randomDense(rng, 3, 2)
		b := randomDense(rng, 2, 2)
		d := randomDense(rng, 2, 2)
		lhs := Mul(Kron(a, b), Kron(c, d))
		rhs := Kron(Mul(a, c), Mul(b, d))
		return lhs.EqualApprox(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVecUnvecRoundTrip(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := Vec(m)
	if v.Rows() != 6 || v.At(0, 0) != 1 || v.At(1, 0) != 4 || v.At(2, 0) != 2 {
		t.Fatalf("Vec = %v", v)
	}
	if !Unvec(v, 2, 3).Equal(m) {
		t.Fatal("Unvec(Vec(m)) != m")
	}
}

func TestVecKroneckerIdentity(t *testing.T) {
	// vec(AXB) = (Bᵀ⊗A) vec(X).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 2, 3)
		x := randomDense(rng, 3, 2)
		b := randomDense(rng, 2, 4)
		lhs := Vec(MulMany(a, x, b))
		rhs := Mul(Kron(b.T(), a), Vec(x))
		return lhs.EqualApprox(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
