package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		n := 1 + rng.Intn(m)
		a := randomDense(rng, m, n)
		qr := FactorQR(a)
		q, r := qr.Q(), qr.R()
		// A = QR
		if !Mul(q, r).EqualApprox(a, 1e-10) {
			return false
		}
		// QᵀQ = I
		return Mul(q.T(), q).EqualApprox(Eye(n), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 5, 3)
	r := FactorQR(a).R()
	for i := 1; i < 3; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R[%d,%d] = %v, want 0", i, j, r.At(i, j))
			}
		}
	}
}

func TestSolveLSExact(t *testing.T) {
	// Square nonsingular system: least squares equals exact solve.
	a := FromRows([][]float64{{2, 0}, {1, 3}})
	b := ColVec(4, 7)
	x, err := FactorQR(a).SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.At(0, 0)-2) > 1e-12 || math.Abs(x.At(1, 0)-5.0/3) > 1e-12 {
		t.Fatalf("SolveLS = %v", x)
	}
}

func TestSolveLSOverdetermined(t *testing.T) {
	// Fit y = c0 + c1 x through (0,1), (1,3), (2,5): exact line 1 + 2x.
	a := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}})
	b := ColVec(1, 3, 5)
	x, err := FactorQR(a).SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.At(0, 0)-1) > 1e-12 || math.Abs(x.At(1, 0)-2) > 1e-12 {
		t.Fatalf("LS fit = %v", x)
	}
}

func TestSolveLSResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(4)
		n := 1 + rng.Intn(3)
		a := randomDense(rng, m, n)
		b := randomDense(rng, m, 1)
		x, err := FactorQR(a).SolveLS(b)
		if err != nil {
			return true // rank-deficient draw; nothing to check
		}
		res := Sub(Mul(a, x), b)
		// Aᵀ(Ax - b) = 0 characterizes the least-squares minimizer.
		return MaxAbs(Mul(a.T(), res)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRank(t *testing.T) {
	if r := Rank(Eye(4), 1e-10); r != 4 {
		t.Fatalf("Rank(I4) = %d", r)
	}
	// Rank-1 outer product.
	a := Mul(ColVec(1, 2, 3), RowVec(4, 5, 6))
	if r := Rank(a, 1e-10); r != 1 {
		t.Fatalf("Rank(outer) = %d", r)
	}
	if r := Rank(New(3, 3), 1e-10); r != 0 {
		t.Fatalf("Rank(0) = %d", r)
	}
	// Wide matrix goes through the transpose path.
	wide := FromRows([][]float64{{1, 0, 0, 2}, {0, 1, 0, 3}})
	if r := Rank(wide, 1e-10); r != 2 {
		t.Fatalf("Rank(wide) = %d", r)
	}
}

func TestFactorQRWidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FactorQR of wide matrix did not panic")
		}
	}()
	FactorQR(New(2, 3))
}
