package mat

import (
	"math"
	"sort"
)

// SVD computes the thin singular value decomposition A = U diag(S) Vᵀ
// of an m×n matrix by the one-sided Jacobi method: V accumulates the
// plane rotations that mutually orthogonalize the columns of A, after
// which the column norms are the singular values and the normalized
// columns form U. For the small, well-scaled matrices in this
// repository the method is simple, backward stable, and accurate to
// machine precision.
//
// Shapes: U is m×k, S has length k, V is n×k with k = min(m, n).
// Singular values are returned in non-increasing order.
func SVD(a *Dense) (u *Dense, s []float64, v *Dense, err error) {
	m, n := a.Dims()
	if m < n {
		// A = U S Vᵀ ⇔ Aᵀ = V S Uᵀ.
		vT, sT, uT, err := SVD(a.T())
		return uT, sT, vT, err
	}

	work := a.Clone()
	vAcc := Eye(n)
	const (
		maxSweeps = 60
		tol       = 1e-14
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries of columns p, q.
				app, aqq, apq := 0.0, 0.0, 0.0
				for i := 0; i < m; i++ {
					cp := work.data[i*n+p]
					cq := work.data[i*n+q]
					app += cp * cp
					aqq += cq * cq
					apq += cp * cq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Jacobi rotation zeroing the (p,q) Gram entry.
				zeta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < m; i++ {
					cp := work.data[i*n+p]
					cq := work.data[i*n+q]
					work.data[i*n+p] = c*cp - sn*cq
					work.data[i*n+q] = sn*cp + c*cq
				}
				for i := 0; i < n; i++ {
					vp := vAcc.data[i*n+p]
					vq := vAcc.data[i*n+q]
					vAcc.data[i*n+p] = c*vp - sn*vq
					vAcc.data[i*n+q] = sn*vp + c*vq
				}
			}
		}
		//lint:ignore floatcompare early exit when every off-diagonal rotation this sweep was exactly zero; the eps test below handles near-convergence
		if off == 0 {
			break
		}
		if sweep == maxSweeps-1 {
			return nil, nil, nil, ErrEigNotConverged
		}
	}

	// Column norms → singular values; normalized columns → U.
	type col struct {
		sigma float64
		idx   int
	}
	cols := make([]col, n)
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < m; i++ {
			norm += work.data[i*n+j] * work.data[i*n+j]
		}
		cols[j] = col{sigma: math.Sqrt(norm), idx: j}
	}
	sort.SliceStable(cols, func(a, b int) bool { return cols[a].sigma > cols[b].sigma })

	u = New(m, n)
	v = New(n, n)
	s = make([]float64, n)
	for j, cj := range cols {
		s[j] = cj.sigma
		if cj.sigma > 0 {
			for i := 0; i < m; i++ {
				u.data[i*n+j] = work.data[i*n+cj.idx] / cj.sigma
			}
		}
		for i := 0; i < n; i++ {
			v.data[i*n+j] = vAcc.data[i*n+cj.idx]
		}
	}
	return u, s, v, nil
}

// SingularValues returns the singular values of a in non-increasing
// order.
func SingularValues(a *Dense) ([]float64, error) {
	_, s, _, err := SVD(a)
	return s, err
}

// Cond returns the 2-norm condition number σ_max/σ_min; +Inf for
// singular matrices.
func Cond(a *Dense) (float64, error) {
	s, err := SingularValues(a)
	if err != nil {
		return 0, err
	}
	//lint:ignore floatcompare division guard: an exactly zero smallest singular value means κ = ∞
	if s[len(s)-1] == 0 {
		return math.Inf(1), nil
	}
	return s[0] / s[len(s)-1], nil
}

// PInv returns the Moore–Penrose pseudo-inverse A⁺ = V diag(1/σᵢ) Uᵀ,
// truncating singular values below rtol·σ_max (rtol ≤ 0 selects a
// default of 1e-12).
func PInv(a *Dense, rtol float64) (*Dense, error) {
	if rtol <= 0 {
		rtol = 1e-12
	}
	u, s, v, err := SVD(a)
	if err != nil {
		return nil, err
	}
	k := len(s)
	// V diag(1/σ) Uᵀ with truncation.
	vs := v.Clone()
	for j := 0; j < k; j++ {
		inv := 0.0
		if s[0] > 0 && s[j] > rtol*s[0] {
			inv = 1 / s[j]
		}
		for i := 0; i < v.Rows(); i++ {
			vs.Set(i, j, vs.At(i, j)*inv)
		}
	}
	return Mul(vs, u.T()), nil
}

// RankSVD estimates the numerical rank by counting singular values
// above rtol·σ_max — the gold-standard rank test, used to cross-check
// the cheaper QR-based Rank.
func RankSVD(a *Dense, rtol float64) (int, error) {
	s, err := SingularValues(a)
	if err != nil {
		return 0, err
	}
	//lint:ignore floatcompare guard before the relative threshold rtol*s[0]: the zero matrix has rank 0
	if s[0] == 0 {
		return 0, nil
	}
	r := 0
	for _, v := range s {
		if v > rtol*s[0] {
			r++
		}
	}
	return r, nil
}
