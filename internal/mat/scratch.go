package mat

import (
	"math"
	"math/cmplx"
)

// Scratch is a reusable workspace for the norm and spectral-radius
// computations on n×n matrices that dominate the JSR hot loop. One
// Scratch serves one goroutine; callers that parallelize keep one per
// worker. The scratch variants produce bit-identical results to their
// allocating counterparts (TwoNorm, SpectralRadius) because they share
// the same computational cores (twoNormPower, hessenbergInPlace,
// hqrInPlace) — only the buffer lifetimes differ.
type Scratch struct {
	n            int
	at, ata, eig *Dense
	x, y, z, v   []float64
	wr, wi       []float64
}

// NewScratch returns a workspace for n×n operands.
func NewScratch(n int) *Scratch {
	return &Scratch{
		n:   n,
		at:  New(n, n),
		ata: New(n, n),
		eig: New(n, n),
		x:   make([]float64, n),
		y:   make([]float64, n),
		z:   make([]float64, n),
		v:   make([]float64, n),
		wr:  make([]float64, n),
		wi:  make([]float64, n),
	}
}

// N returns the operand size this scratch was built for.
func (s *Scratch) N() int { return s.n }

// transposeInto writes srcᵀ into dst. dst must not alias src.
func transposeInto(dst, src *Dense) {
	for i := 0; i < src.rows; i++ {
		for j := 0; j < src.cols; j++ {
			dst.data[j*dst.cols+i] = src.data[i*src.cols+j]
		}
	}
}

// TwoNormScratch returns ‖a‖₂ for a square matrix using s's buffers,
// allocating nothing. Bit-identical to TwoNorm(a).
func TwoNormScratch(a *Dense, s *Scratch) float64 {
	if a.rows != s.n || a.cols != s.n {
		mustSquare("TwoNormScratch", a)
		// Shape mismatch against the arena: fall back to the allocating
		// path rather than corrupt buffers.
		return TwoNorm(a)
	}
	transposeInto(s.at, a)
	MulInto(s.ata, s.at, a)
	return twoNormPower(a, s.ata, s.x, s.y, s.z)
}

// SpectralRadiusScratch returns max |λᵢ| for a square matrix using s's
// buffers. The warm path (first QR attempt converges, which is the
// overwhelmingly common case) allocates nothing; the cold retry ladder
// falls back to the allocating path. Bit-identical to SpectralRadius(a).
func SpectralRadiusScratch(a *Dense, s *Scratch) (float64, error) {
	mustSquare("SpectralRadiusScratch", a)
	switch a.rows {
	case 1:
		return math.Abs(a.data[0]), nil
	case 2:
		return radius2x2(a.data[0], a.data[1], a.data[2], a.data[3]), nil
	}
	if a.rows != s.n {
		return SpectralRadius(a)
	}
	// Same op sequence as eigOnce: copy, balance, Hessenberg, QR.
	s.eig.CopyFrom(a)
	balance(s.eig)
	hessenbergInPlace(s.eig, s.v)
	if err := hqrInPlace(s.eig, s.wr, s.wi); err != nil {
		// Mirror Eigenvalues' retry ladder so failures resolve the same
		// way as the allocating path.
		eigs, rerr := eigRetry(a)
		if rerr != nil {
			return 0, rerr
		}
		r := 0.0
		for _, l := range eigs {
			if v := cmplx.Abs(l); v > r {
				r = v
			}
		}
		return r, nil
	}
	// max over (wr, wi) pairs equals max cmplx.Abs over the sorted
	// eigenvalue slice: cmplx.Abs is math.Hypot(re, im) and the max
	// fold is order-independent.
	r := 0.0
	for i := range s.wr {
		if v := math.Hypot(s.wr[i], s.wi[i]); v > r {
			r = v
		}
	}
	return r, nil
}

// radius2x2 is the closed-form spectral radius of [[a,b],[c,d]],
// following eig2x2's arithmetic exactly.
func radius2x2(a, b, c, d float64) float64 {
	tr := a + d
	det := a*d - b*c
	disc := tr*tr/4 - det
	if disc >= 0 {
		s := math.Sqrt(disc)
		return math.Max(math.Abs(tr/2+s), math.Abs(tr/2-s))
	}
	return math.Hypot(tr/2, math.Sqrt(-disc))
}
