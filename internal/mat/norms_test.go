package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormsKnown(t *testing.T) {
	a := FromRows([][]float64{
		{1, -2},
		{-3, 4},
	})
	if got := OneNorm(a); got != 6 { // max column sum |−2|+|4|
		t.Fatalf("OneNorm = %v", got)
	}
	if got := InfNorm(a); got != 7 { // max row sum |−3|+|4|
		t.Fatalf("InfNorm = %v", got)
	}
	if got := FroNorm(a); math.Abs(got-math.Sqrt(30)) > 1e-14 {
		t.Fatalf("FroNorm = %v", got)
	}
	if got := MaxAbs(a); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestTwoNormDiagonal(t *testing.T) {
	if got := TwoNorm(Diag(3, -7, 2)); math.Abs(got-7) > 1e-9 {
		t.Fatalf("TwoNorm(diag) = %v, want 7", got)
	}
}

func TestTwoNormOrthogonal(t *testing.T) {
	theta := 0.4
	q := FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	if got := TwoNorm(q); math.Abs(got-1) > 1e-9 {
		t.Fatalf("TwoNorm(rotation) = %v, want 1", got)
	}
}

func TestTwoNormZero(t *testing.T) {
	if got := TwoNorm(New(3, 3)); got != 0 {
		t.Fatalf("TwoNorm(0) = %v", got)
	}
}

func TestNormOrderingProperty(t *testing.T) {
	// ρ(A) ≤ ‖A‖₂ ≤ ‖A‖F and ‖A‖₂ ≤ √(‖A‖₁‖A‖∞).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randomDense(rng, n, n)
		two := TwoNorm(a)
		rho, err := SpectralRadius(a)
		if err != nil {
			return false
		}
		const slack = 1e-7
		if rho > two*(1+slack)+slack {
			return false
		}
		if two > FroNorm(a)*(1+slack)+slack {
			return false
		}
		return two <= math.Sqrt(OneNorm(a)*InfNorm(a))*(1+slack)+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoNormSubmultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a, b := randomDense(rng, n, n), randomDense(rng, n, n)
		return TwoNorm(Mul(a, b)) <= TwoNorm(a)*TwoNorm(b)*(1+1e-7)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
