package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U, stored
// compactly (unit lower triangle of L below the diagonal of lu, U on and
// above it).
type LU struct {
	lu    *Dense
	piv   []int // row permutation: row i of U came from row piv[i] of A
	sign  float64
	n     int
	fail  bool
	small float64 // magnitude of the smallest pivot, for diagnostics
}

// FactorLU computes the LU factorization of a square matrix with partial
// pivoting. The factorization itself always completes; singularity is
// reported by the solve/inverse methods (and by Singular).
func FactorLU(a *Dense) *LU {
	mustSquare("FactorLU", a)
	n := a.rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1, n: n, small: math.Inf(1)}
	lu := f.lu.data
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k.
		p, max := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		if max < f.small {
			f.small = max
		}
		//lint:ignore floatcompare an exactly zero pivot after partial pivoting makes elimination undefined; near-singularity is reported via Cond, and a threshold here would reject solvable systems
		if pivot == 0 {
			f.fail = true
			continue
		}
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			//lint:ignore floatcompare exact-zero sparsity skip: the row update is a no-op only for an exactly zero multiplier
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return f
}

// Singular reports whether a zero pivot was hit.
func (f *LU) Singular() bool { return f.fail }

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu.data[i*f.n+i]
	}
	return d
}

// Solve solves A*X = B for X, where B has the same number of rows as A.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	if b.rows != f.n {
		panic(fmt.Sprintf("mat: LU.Solve with rhs of %d rows, want %d", b.rows, f.n))
	}
	if f.fail {
		return nil, ErrSingular
	}
	n, nc := f.n, b.cols
	x := New(n, nc)
	// Apply permutation to B.
	for i := 0; i < n; i++ {
		copy(x.data[i*nc:(i+1)*nc], b.data[f.piv[i]*nc:(f.piv[i]+1)*nc])
	}
	lu := f.lu.data
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		for k := 0; k < i; k++ {
			m := lu[i*n+k]
			//lint:ignore floatcompare exact-zero sparsity skip: the substitution update is a no-op only for an exactly zero multiplier
			if m == 0 {
				continue
			}
			for j := 0; j < nc; j++ {
				x.data[i*nc+j] -= m * x.data[k*nc+j]
			}
		}
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			m := lu[i*n+k]
			//lint:ignore floatcompare exact-zero sparsity skip: the substitution update is a no-op only for an exactly zero multiplier
			if m == 0 {
				continue
			}
			for j := 0; j < nc; j++ {
				x.data[i*nc+j] -= m * x.data[k*nc+j]
			}
		}
		d := lu[i*n+i]
		for j := 0; j < nc; j++ {
			x.data[i*nc+j] /= d
		}
	}
	if x.HasNaN() {
		return nil, ErrSingular
	}
	return x, nil
}

// Solve solves a*x = b.
func Solve(a, b *Dense) (*Dense, error) { return FactorLU(a).Solve(b) }

// Inverse returns a⁻¹.
func Inverse(a *Dense) (*Dense, error) {
	return FactorLU(a).Solve(Eye(a.rows))
}

// Det returns the determinant of a square matrix.
func Det(a *Dense) float64 { return FactorLU(a).Det() }

// SolveVec solves a*x = b for a vector right-hand side.
func SolveVec(a *Dense, b []float64) ([]float64, error) {
	x, err := Solve(a, FromSlice(len(b), 1, b))
	if err != nil {
		return nil, err
	}
	return x.Col(0), nil
}
