package mat

import "math"

// OneNorm returns the maximum absolute column sum ‖A‖₁.
func OneNorm(a *Dense) float64 {
	max := 0.0
	for j := 0; j < a.cols; j++ {
		s := 0.0
		for i := 0; i < a.rows; i++ {
			s += math.Abs(a.data[i*a.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// InfNorm returns the maximum absolute row sum ‖A‖∞.
func InfNorm(a *Dense) float64 {
	max := 0.0
	for i := 0; i < a.rows; i++ {
		s := 0.0
		for j := 0; j < a.cols; j++ {
			s += math.Abs(a.data[i*a.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// FroNorm returns the Frobenius norm ‖A‖F.
func FroNorm(a *Dense) float64 {
	s := 0.0
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry.
func MaxAbs(a *Dense) float64 {
	max := 0.0
	for _, v := range a.data {
		if w := math.Abs(v); w > max {
			max = w
		}
	}
	return max
}

// TwoNorm returns the spectral norm ‖A‖₂ = √ρ(AᵀA), computed by power
// iteration on AᵀA with a deterministic start vector. For the small
// matrices in this repository the iteration converges in a handful of
// steps; a Frobenius-norm fallback (an upper bound on ‖·‖₂) is used if
// it stagnates.
func TwoNorm(a *Dense) float64 {
	at := a.T()
	ata := Mul(at, a)
	n := ata.rows
	return twoNormPower(a, ata, make([]float64, n), make([]float64, n), make([]float64, n))
}

// twoNormPower runs the shared power-iteration core of TwoNorm and
// TwoNormScratch on a precomputed AᵀA. x, y, z are length-n work
// vectors whose prior contents are ignored; the iterate ping-pongs
// between x and y so no per-step vectors are allocated, with exactly
// the same arithmetic as a freshly allocating loop.
func twoNormPower(a, ata *Dense, x, y, z []float64) float64 {
	// Deterministic start with energy in all directions.
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(len(x))+float64(i))
	}
	normalize(x)
	lam := 0.0
	for iter := 0; iter < 200; iter++ {
		MulVecInto(y, ata, x)
		ny := vecNorm(y)
		//lint:ignore floatcompare power iteration collapsed to the exactly zero vector; also guards the division below
		if ny == 0 {
			return 0
		}
		for i := range y {
			y[i] /= ny
		}
		MulVecInto(z, ata, y)
		newLam := Dot(y, z)
		x, y = y, x
		if math.Abs(newLam-lam) <= 1e-13*math.Max(1, math.Abs(newLam)) {
			return math.Sqrt(math.Max(newLam, 0))
		}
		lam = newLam
	}
	// Stagnation: fall back to the (valid upper bound) Frobenius norm.
	fro := FroNorm(a)
	est := math.Sqrt(math.Max(lam, 0))
	if est > 0 && est < fro {
		return est
	}
	return fro
}

func vecNorm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := vecNorm(x)
	//lint:ignore floatcompare division guard: the zero vector has no direction to normalize
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
