package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q*R of an m×n matrix with
// m >= n.
type QR struct {
	qr   *Dense    // Householder vectors below the diagonal, R on/above
	rdia []float64 // diagonal of R
	m, n int
}

// FactorQR computes the Householder QR factorization of a (not
// necessarily square) matrix with at least as many rows as columns.
func FactorQR(a *Dense) *QR {
	if a.rows < a.cols {
		panic(fmt.Sprintf("mat: FactorQR of wide %d×%d matrix", a.rows, a.cols))
	}
	m, n := a.rows, a.cols
	f := &QR{qr: a.Clone(), rdia: make([]float64, n), m: m, n: n}
	q := f.qr.data
	for k := 0; k < n; k++ {
		// Norm of column k below (and including) the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, q[i*n+k])
		}
		//lint:ignore floatcompare an exactly zero column norm means no reflector exists; also guards divisions by nrm
		if nrm == 0 {
			f.rdia[k] = 0
			continue
		}
		if q[k*n+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			q[i*n+k] /= nrm
		}
		q[k*n+k] += 1
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += q[i*n+k] * q[i*n+j]
			}
			s = -s / q[k*n+k]
			for i := k; i < m; i++ {
				q[i*n+j] += s * q[i*n+k]
			}
		}
		f.rdia[k] = -nrm
	}
	return f
}

// R returns the upper-triangular factor (n×n).
func (f *QR) R() *Dense {
	r := New(f.n, f.n)
	for i := 0; i < f.n; i++ {
		r.data[i*f.n+i] = f.rdia[i]
		for j := i + 1; j < f.n; j++ {
			r.data[i*f.n+j] = f.qr.data[i*f.n+j]
		}
	}
	return r
}

// Q returns the thin orthogonal factor (m×n).
func (f *QR) Q() *Dense {
	m, n := f.m, f.n
	q := New(m, n)
	qr := f.qr.data
	for k := n - 1; k >= 0; k-- {
		q.data[k*n+k] = 1
		for j := k; j < n; j++ {
			//lint:ignore floatcompare a zero Householder diagonal marks a skipped (zero) column; no reflector was stored
			if qr[k*n+k] == 0 {
				continue
			}
			s := 0.0
			for i := k; i < m; i++ {
				s += qr[i*n+k] * q.data[i*n+j]
			}
			s = -s / qr[k*n+k]
			for i := k; i < m; i++ {
				q.data[i*n+j] += s * qr[i*n+k]
			}
		}
	}
	return q
}

// SolveLS solves the least-squares problem min ||A*x - b||₂ for
// full-column-rank A.
func (f *QR) SolveLS(b *Dense) (*Dense, error) {
	if b.rows != f.m {
		panic(fmt.Sprintf("mat: QR.SolveLS with rhs of %d rows, want %d", b.rows, f.m))
	}
	for _, d := range f.rdia {
		//lint:ignore floatcompare exactly singular R (a zero diagonal was stored for a zero column); near-singularity is the caller's concern
		if d == 0 {
			return nil, ErrSingular
		}
	}
	m, n, nc := f.m, f.n, b.cols
	x := b.Clone()
	qr := f.qr.data
	// Apply Householder reflectors to b: x = Qᵀ b.
	for k := 0; k < n; k++ {
		//lint:ignore floatcompare a zero Householder diagonal marks a skipped (zero) column; no reflector was stored
		if qr[k*n+k] == 0 {
			continue
		}
		for j := 0; j < nc; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr[i*n+k] * x.data[i*nc+j]
			}
			s = -s / qr[k*n+k]
			for i := k; i < m; i++ {
				x.data[i*nc+j] += s * qr[i*n+k]
			}
		}
	}
	// Back substitution with R.
	out := New(n, nc)
	for i := n - 1; i >= 0; i-- {
		for j := 0; j < nc; j++ {
			s := x.data[i*nc+j]
			for k := i + 1; k < n; k++ {
				s -= qr[i*n+k] * out.data[k*nc+j]
			}
			out.data[i*nc+j] = s / f.rdia[i]
		}
	}
	return out, nil
}

// Rank estimates the numerical rank of a matrix via QR with a relative
// tolerance on the diagonal of R. (For the small, well-scaled matrices
// in this repository a column-pivot-free QR is adequate; controllability
// tests additionally randomize the input directions.)
func Rank(a *Dense, tol float64) int {
	work := a
	if a.rows < a.cols {
		work = a.T()
	}
	f := FactorQR(work)
	max := 0.0
	for _, d := range f.rdia {
		if v := math.Abs(d); v > max {
			max = v
		}
	}
	//lint:ignore floatcompare all R diagonals exactly zero means the exactly zero matrix: rank 0
	if max == 0 {
		return 0
	}
	r := 0
	for _, d := range f.rdia {
		if math.Abs(d) > tol*max {
			r++
		}
	}
	return r
}
