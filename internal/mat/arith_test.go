package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := Add(a, b); !got.Equal(FromRows([][]float64{{6, 8}, {10, 12}})) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(FromRows([][]float64{{4, 4}, {4, 4}})) {
		t.Fatalf("Sub = %v", got)
	}
}

func TestScaleAndNeg(t *testing.T) {
	a := FromRows([][]float64{{1, -2}})
	if got := Scale(3, a); !got.Equal(FromRows([][]float64{{3, -6}})) {
		t.Fatalf("Scale = %v", got)
	}
	if got := Neg(a); !got.Equal(FromRows([][]float64{{-1, 2}})) {
		t.Fatalf("Neg = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	AddInPlace(a, FromRows([][]float64{{1, 1}}))
	ScaleInPlace(2, a)
	if !a.Equal(FromRows([][]float64{{4, 6}})) {
		t.Fatalf("in-place result = %v", a)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := Mul(a, b); !got.Equal(want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulNonSquare(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}})     // 1×3
	b := FromRows([][]float64{{1}, {2}, {3}}) // 3×1
	if got := Mul(a, b); got.At(0, 0) != 14 {
		t.Fatalf("Mul = %v, want 14", got)
	}
	if got := Mul(b, a); got.Rows() != 3 || got.Cols() != 3 || got.At(2, 2) != 9 {
		t.Fatalf("outer product wrong: %v", got)
	}
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randomDense(rng, n, n)
		return Mul(a, Eye(n)).EqualApprox(a, 1e-12) && Mul(Eye(n), a).EqualApprox(a, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a, b, c := randomDense(rng, n, n), randomDense(rng, n, n), randomDense(rng, n, n)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulMany(t *testing.T) {
	a := Diag(2, 2)
	got := MulMany(a, a, a)
	if !got.EqualApprox(Diag(8, 8), 1e-14) {
		t.Fatalf("MulMany = %v", got)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	y := MulVec(a, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 0) != 3 || at.At(0, 1) != 4 {
		t.Fatalf("T = %v", at)
	}
	if !at.T().Equal(a) {
		t.Fatal("double transpose is not identity")
	}
}

func TestTransposeProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 3, 4)
		b := randomDense(rng, 4, 2)
		// (AB)ᵀ = Bᵀ Aᵀ
		return Mul(a, b).T().EqualApprox(Mul(b.T(), a.T()), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrace(t *testing.T) {
	a := FromRows([][]float64{{1, 9}, {9, 4}})
	if a.Trace() != 5 {
		t.Fatalf("Trace = %v", a.Trace())
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {4, 3}})
	s := Symmetrize(a)
	if s.At(0, 1) != 3 || s.At(1, 0) != 3 {
		t.Fatalf("Symmetrize = %v", s)
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
}

func TestDimensionPanics(t *testing.T) {
	cases := []func(){
		func() { Add(New(1, 2), New(2, 1)) },
		func() { Mul(New(2, 3), New(2, 3)) },
		func() { MulVec(New(2, 3), []float64{1}) },
		func() { New(2, 3).Trace() },
		func() { Dot([]float64{1}, []float64{1, 2}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestScaleDistributesOverAdd(t *testing.T) {
	f := func(seed int64, sRaw float64) bool {
		if math.IsNaN(sRaw) || math.IsInf(sRaw, 0) {
			return true
		}
		s := math.Mod(sRaw, 1e3)
		rng := rand.New(rand.NewSource(seed))
		a, b := randomDense(rng, 3, 3), randomDense(rng, 3, 3)
		return Scale(s, Add(a, b)).EqualApprox(Add(Scale(s, a), Scale(s, b)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecInto(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	dst := make([]float64, 3)
	MulVecInto(dst, a, []float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecInto = %v", dst)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short dst accepted")
		}
	}()
	MulVecInto(make([]float64, 2), a, []float64{1, -1})
}
