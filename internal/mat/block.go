package mat

import "fmt"

// Slice returns a copy of the submatrix with rows [r0,r1) and columns
// [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 >= r1 || c0 >= c1 {
		panic(fmt.Sprintf("mat: Slice [%d:%d,%d:%d] of %d×%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	s := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.data[(i-r0)*s.cols:(i-r0+1)*s.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return s
}

// SetBlock copies src into m starting at row r0, column c0.
func (m *Dense) SetBlock(r0, c0 int, src *Dense) {
	if r0 < 0 || c0 < 0 || r0+src.rows > m.rows || c0+src.cols > m.cols {
		panic(fmt.Sprintf("mat: SetBlock %d×%d at (%d,%d) of %d×%d", src.rows, src.cols, r0, c0, m.rows, m.cols))
	}
	for i := 0; i < src.rows; i++ {
		copy(m.data[(r0+i)*m.cols+c0:(r0+i)*m.cols+c0+src.cols], src.data[i*src.cols:(i+1)*src.cols])
	}
}

// Block assembles a block matrix from a 2-D grid of submatrices. Every
// row of blocks must have consistent heights and every column of blocks
// consistent widths. A nil entry stands for a zero block whose size is
// inferred from its row and column neighbours; a nil is only legal when
// its row height and column width are pinned by at least one non-nil
// block.
func Block(blocks [][]*Dense) *Dense {
	if len(blocks) == 0 || len(blocks[0]) == 0 {
		panic(fmt.Sprintf("mat: Block of empty grid (%d block rows)", len(blocks)))
	}
	nbr, nbc := len(blocks), len(blocks[0])
	rowH := make([]int, nbr)
	colW := make([]int, nbc)
	for i, brow := range blocks {
		if len(brow) != nbc {
			panic(fmt.Sprintf("mat: Block with ragged grid: block row %d has %d columns, want %d", i, len(brow), nbc))
		}
		for j, b := range brow {
			if b == nil {
				continue
			}
			if rowH[i] == 0 {
				rowH[i] = b.rows
			} else if rowH[i] != b.rows {
				panic(fmt.Sprintf("mat: Block row %d height mismatch: %d vs %d", i, rowH[i], b.rows))
			}
			if colW[j] == 0 {
				colW[j] = b.cols
			} else if colW[j] != b.cols {
				panic(fmt.Sprintf("mat: Block col %d width mismatch: %d vs %d", j, colW[j], b.cols))
			}
		}
	}
	total := func(xs []int, what string) int {
		t := 0
		for i, x := range xs {
			if x == 0 {
				panic(fmt.Sprintf("mat: Block %s %d has only nil blocks; size unknown", what, i))
			}
			t += x
		}
		return t
	}
	m := New(total(rowH, "row"), total(colW, "col"))
	r0 := 0
	for i, brow := range blocks {
		c0 := 0
		for j, b := range brow {
			if b != nil {
				m.SetBlock(r0, c0, b)
			}
			c0 += colW[j]
		}
		r0 += rowH[i]
	}
	return m
}

// HStack concatenates matrices left to right.
func HStack(ms ...*Dense) *Dense { return Block([][]*Dense{ms}) }

// VStack concatenates matrices top to bottom.
func VStack(ms ...*Dense) *Dense {
	grid := make([][]*Dense, len(ms))
	for i, m := range ms {
		grid[i] = []*Dense{m}
	}
	return Block(grid)
}

// BlockDiag assembles a block-diagonal matrix.
func BlockDiag(ms ...*Dense) *Dense {
	r, c := 0, 0
	for _, m := range ms {
		r += m.rows
		c += m.cols
	}
	out := New(r, c)
	r0, c0 := 0, 0
	for _, m := range ms {
		out.SetBlock(r0, c0, m)
		r0 += m.rows
		c0 += m.cols
	}
	return out
}

// Kron returns the Kronecker product a ⊗ b.
func Kron(a, b *Dense) *Dense {
	out := New(a.rows*b.rows, a.cols*b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			av := a.data[i*a.cols+j]
			//lint:ignore floatcompare exact-zero sparsity skip: any nonzero value, however small, multiplies normally
			if av == 0 {
				continue
			}
			for p := 0; p < b.rows; p++ {
				for q := 0; q < b.cols; q++ {
					out.data[(i*b.rows+p)*out.cols+j*b.cols+q] = av * b.data[p*b.cols+q]
				}
			}
		}
	}
	return out
}

// Vec stacks the columns of m into a single column vector (the "vec"
// operator of Kronecker calculus).
func Vec(m *Dense) *Dense {
	v := New(m.rows*m.cols, 1)
	for j := 0; j < m.cols; j++ {
		for i := 0; i < m.rows; i++ {
			v.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return v
}

// Unvec reverses Vec for a target of r rows and c columns.
func Unvec(v *Dense, r, c int) *Dense {
	if v.cols != 1 || v.rows != r*c {
		panic(fmt.Sprintf("mat: Unvec %d×%d into %d×%d", v.rows, v.cols, r, c))
	}
	m := New(r, c)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			m.data[i*c+j] = v.data[j*r+i]
		}
	}
	return m
}
