package mat

import (
	"math"
	"math/rand"
	"testing"
)

// mulNaive is the reference product: the textbook triple loop in the
// same k-outer/j-inner accumulation order and with the same exact-zero
// skip as mulGeneric, written independently of the dispatch machinery.
func mulNaive(a, b *Dense) *Dense {
	c := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			av := a.data[i*a.cols+k]
			//lint:ignore floatcompare reference loop mirrors mulGeneric's sparsity skip
			if av == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				c.data[i*c.cols+j] += av * b.data[k*b.cols+j]
			}
		}
	}
	return c
}

// sparsifiedRandom returns an n×n matrix with normal entries and a few
// exact zeros so the kernels' sparsity-skip path is exercised.
func sparsifiedRandom(rng *rand.Rand, n int) *Dense {
	m := randomDense(rng, n, n)
	for i := range m.data {
		if rng.Intn(5) == 0 {
			m.data[i] = 0
		}
	}
	return m
}

func sameBits(a, b *Dense) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Float64bits(a.data[i]) != math.Float64bits(b.data[i]) {
			return false
		}
	}
	return true
}

// TestMulIntoBitIdenticalToNaive drives Mul, MulInto into a fresh
// destination, and MulInto into a dirty reused destination through all
// sizes n=1..12 — covering each unrolled kernel (4, 6, 8) and the
// generic path — and demands bit-for-bit identity with the naive
// reference product.
func TestMulIntoBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 12; n++ {
		for trial := 0; trial < 25; trial++ {
			a := sparsifiedRandom(rng, n)
			b := sparsifiedRandom(rng, n)
			want := mulNaive(a, b)

			if got := Mul(a, b); !sameBits(got, want) {
				t.Fatalf("n=%d trial=%d: Mul differs from naive product", n, trial)
			}

			fresh := New(n, n)
			MulInto(fresh, a, b)
			if !sameBits(fresh, want) {
				t.Fatalf("n=%d trial=%d: MulInto(fresh) differs from naive product", n, trial)
			}

			dirty := randomDense(rng, n, n)
			MulInto(dirty, a, b)
			if !sameBits(dirty, want) {
				t.Fatalf("n=%d trial=%d: MulInto(dirty) differs from naive product — stale destination data leaked", n, trial)
			}
		}
	}
}

// TestKernelsMatchGenericDirectly pins each unrolled kernel against
// mulGeneric without going through dispatch, so a kernelFor routing bug
// cannot mask a kernel bug.
func TestKernelsMatchGenericDirectly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kernels := map[int]func(c, a, b []float64){4: mul4x4, 6: mul6x6, 8: mul8x8}
	for n, kern := range kernels {
		for trial := 0; trial < 50; trial++ {
			a := sparsifiedRandom(rng, n)
			b := sparsifiedRandom(rng, n)
			want := New(n, n)
			mulGeneric(want, a, b)
			got := New(n, n)
			kern(got.data, a.data, b.data)
			if !sameBits(got, want) {
				t.Fatalf("n=%d trial=%d: unrolled kernel differs from mulGeneric", n, trial)
			}
		}
	}
}

func TestMulIntoRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomDense(rng, 3, 7)
	b := randomDense(rng, 7, 5)
	want := mulNaive(a, b)
	got := New(3, 5)
	MulInto(got, a, b)
	if !sameBits(got, want) {
		t.Fatalf("rectangular MulInto differs from naive product")
	}
}

func TestMulIntoPanics(t *testing.T) {
	a := New(3, 3)
	b := New(3, 3)
	cases := []struct {
		name string
		call func()
	}{
		{"inner mismatch", func() { MulInto(New(3, 3), New(3, 2), b) }},
		{"dest shape", func() { MulInto(New(2, 3), a, b) }},
		{"dest aliases a", func() { MulInto(a, a, b) }},
		{"dest aliases b", func() { MulInto(b, a, b) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}

func TestMulIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{4, 6, 8, 9} {
		a := randomDense(rng, n, n)
		b := randomDense(rng, n, n)
		c := New(n, n)
		allocs := testing.AllocsPerRun(100, func() { MulInto(c, a, b) })
		if allocs != 0 {
			t.Errorf("n=%d: MulInto allocates %.1f per call, want 0", n, allocs)
		}
	}
}

func TestTwoNormScratchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{1, 2, 4, 6, 8, 9, 12} {
		s := NewScratch(n)
		for trial := 0; trial < 20; trial++ {
			a := sparsifiedRandom(rng, n)
			want := TwoNorm(a)
			got := TwoNormScratch(a, s)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d trial=%d: TwoNormScratch=%v TwoNorm=%v", n, trial, got, want)
			}
			// Reuse must not drift: run again on the warm scratch.
			if again := TwoNormScratch(a, s); math.Float64bits(again) != math.Float64bits(want) {
				t.Fatalf("n=%d trial=%d: warm TwoNormScratch=%v TwoNorm=%v", n, trial, again, want)
			}
		}
	}
	// Zero matrix edge case.
	s := NewScratch(3)
	if got := TwoNormScratch(New(3, 3), s); got != 0 {
		t.Fatalf("TwoNormScratch(0) = %v", got)
	}
}

func TestSpectralRadiusScratchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 3, 4, 6, 8, 9} {
		s := NewScratch(n)
		for trial := 0; trial < 20; trial++ {
			a := sparsifiedRandom(rng, n)
			want, werr := SpectralRadius(a)
			got, gerr := SpectralRadiusScratch(a, s)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("n=%d trial=%d: error mismatch: %v vs %v", n, trial, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d trial=%d: SpectralRadiusScratch=%v SpectralRadius=%v", n, trial, got, want)
			}
		}
	}
}

func TestScratchWrongSizeFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := NewScratch(4)
	a := randomDense(rng, 6, 6)
	if got, want := TwoNormScratch(a, s), TwoNorm(a); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("TwoNormScratch fallback = %v, want %v", got, want)
	}
	gr, gerr := SpectralRadiusScratch(a, s)
	wr, werr := SpectralRadius(a)
	if gerr != nil || werr != nil {
		t.Fatalf("unexpected errors: %v %v", gerr, werr)
	}
	if math.Float64bits(gr) != math.Float64bits(wr) {
		t.Fatalf("SpectralRadiusScratch fallback = %v, want %v", gr, wr)
	}
}

func TestScratchZeroAllocsWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 9
	s := NewScratch(n)
	a := randomDense(rng, n, n)
	// Warm once so any lazy state settles.
	TwoNormScratch(a, s)
	if _, err := SpectralRadiusScratch(a, s); err != nil {
		t.Fatalf("SpectralRadiusScratch: %v", err)
	}
	if allocs := testing.AllocsPerRun(50, func() { TwoNormScratch(a, s) }); allocs != 0 {
		t.Errorf("TwoNormScratch allocates %.1f per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := SpectralRadiusScratch(a, s); err != nil {
			panic(err)
		}
	}); allocs != 0 {
		t.Errorf("SpectralRadiusScratch allocates %.1f per call, want 0", allocs)
	}
}
