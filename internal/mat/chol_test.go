package mat

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSPD(rng *rand.Rand, n int) *Dense {
	m := randomDense(rng, n, n)
	// MᵀM + I is symmetric positive definite.
	return Add(Mul(m.T(), m), Eye(n))
}

func TestCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// Lower triangular?
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					return false
				}
			}
		}
		return Mul(l, l.T()).EqualApprox(a, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := Diag(1, -1)
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPosDef) {
		t.Fatalf("Cholesky(indefinite) err = %v", err)
	}
}

func TestIsPosDef(t *testing.T) {
	if !IsPosDef(Eye(3)) {
		t.Fatal("identity not PD?")
	}
	if IsPosDef(Diag(1, 0)) {
		t.Fatal("singular matrix reported PD")
	}
	if !IsPosSemiDef(Diag(1, 0), 1e-9) {
		t.Fatal("PSD matrix rejected")
	}
	if IsPosSemiDef(Diag(1, -1), 1e-9) {
		t.Fatal("indefinite matrix accepted as PSD")
	}
}

func TestSolveLyapunovDiscreteKnown(t *testing.T) {
	// Scalar: a²x - x + q = 0 → x = q/(1-a²).
	a := FromRows([][]float64{{0.5}})
	q := FromRows([][]float64{{3}})
	x, err := SolveLyapunovDiscrete(a, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 / (1 - 0.25)
	if diff := x.At(0, 0) - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Lyapunov scalar = %v, want %v", x.At(0, 0), want)
	}
}

func TestSolveLyapunovDiscreteResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomDense(rng, n, n)
		// Scale to be Schur stable so the equation has a unique PSD solution.
		rho, err := SpectralRadius(a)
		if err != nil {
			return false
		}
		if rho >= 0.95 {
			a = Scale(0.9/rho, a)
		}
		q := randomSPD(rng, n)
		x, err := SolveLyapunovDiscrete(a, q)
		if err != nil {
			return false
		}
		res := Add(Sub(MulMany(a.T(), x, a), x), q)
		return MaxAbs(res) < 1e-7*(1+MaxAbs(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLyapunovSolutionIsPosDefForStableA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Scale(0.3, randomDense(rng, 4, 4))
	q := randomSPD(rng, 4)
	x, err := SolveLyapunovDiscrete(a, q)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPosDef(x) {
		t.Fatal("Lyapunov solution for stable A and PD Q must be PD")
	}
}
