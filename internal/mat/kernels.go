package mat

import "fmt"

// This file holds the allocation-free product entry point and the
// loop-unrolled square kernels for the closed-loop sizes this
// repository certifies most (n = 4, 6, 8). The kernels keep one output
// row in registers instead of streaming it through memory and elide
// bounds checks via explicit slice pinning, but they preserve the
// generic loop's floating-point behaviour exactly: accumulation runs in
// the same k-outer/j-inner order with the same exact-zero sparsity
// skip, so Mul, MulInto, and every kernel produce bit-identical
// results for the same operands.

// MulInto computes c = a*b without allocating. c must have dimensions
// a.Rows()×b.Cols() and must not alias a or b (checked; aliasing would
// feed partially written output back into the inputs).
func MulInto(c, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if c.rows != a.rows || c.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto destination %d×%d for %d×%d product", c.rows, c.cols, a.rows, b.cols))
	}
	if sharesData(c, a) || sharesData(c, b) {
		//lint:ignore nakedpanic the aliasing condition has no dynamic values beyond identity
		panic("mat: MulInto destination aliases a source operand")
	}
	if k := kernelFor(a, b); k != nil {
		// The unrolled kernels fully overwrite c, so no clear is needed.
		k(c.data, a.data, b.data)
		return
	}
	for i := range c.data {
		c.data[i] = 0
	}
	mulGeneric(c, a, b)
}

// sharesData reports whether two matrices use the same backing array.
// Dense storage is always allocated whole by New, so comparing the
// first-element addresses is exact.
func sharesData(x, y *Dense) bool {
	return x == y || &x.data[0] == &y.data[0]
}

// kernelFor selects the unrolled kernel for the operand shape, or nil
// for the generic loop.
func kernelFor(a, b *Dense) func(c, a, b []float64) {
	if a.rows != a.cols || b.rows != b.cols || a.rows != b.rows {
		return nil
	}
	switch a.rows {
	case 4:
		return mul4x4
	case 6:
		return mul6x6
	case 8:
		return mul8x8
	}
	return nil
}

// mul4x4 computes the 4×4 product c = a·b with the output row held in
// registers. Same accumulation order as mulGeneric.
func mul4x4(c, a, b []float64) {
	b = b[:16:16]
	a = a[:16:16]
	c = c[:16:16]
	for i := 0; i < 4; i++ {
		ar := a[i*4 : i*4+4 : i*4+4]
		var c0, c1, c2, c3 float64
		for k := 0; k < 4; k++ {
			av := ar[k]
			//lint:ignore floatcompare exact-zero sparsity skip mirrors mulGeneric bit for bit
			if av == 0 {
				continue
			}
			br := b[k*4 : k*4+4 : k*4+4]
			c0 += av * br[0]
			c1 += av * br[1]
			c2 += av * br[2]
			c3 += av * br[3]
		}
		cr := c[i*4 : i*4+4 : i*4+4]
		cr[0], cr[1], cr[2], cr[3] = c0, c1, c2, c3
	}
}

// mul6x6 computes the 6×6 product c = a·b with the output row held in
// registers. Same accumulation order as mulGeneric.
func mul6x6(c, a, b []float64) {
	b = b[:36:36]
	a = a[:36:36]
	c = c[:36:36]
	for i := 0; i < 6; i++ {
		ar := a[i*6 : i*6+6 : i*6+6]
		var c0, c1, c2, c3, c4, c5 float64
		for k := 0; k < 6; k++ {
			av := ar[k]
			//lint:ignore floatcompare exact-zero sparsity skip mirrors mulGeneric bit for bit
			if av == 0 {
				continue
			}
			br := b[k*6 : k*6+6 : k*6+6]
			c0 += av * br[0]
			c1 += av * br[1]
			c2 += av * br[2]
			c3 += av * br[3]
			c4 += av * br[4]
			c5 += av * br[5]
		}
		cr := c[i*6 : i*6+6 : i*6+6]
		cr[0], cr[1], cr[2], cr[3], cr[4], cr[5] = c0, c1, c2, c3, c4, c5
	}
}

// mul8x8 computes the 8×8 product c = a·b with the output row held in
// registers. Same accumulation order as mulGeneric.
func mul8x8(c, a, b []float64) {
	b = b[:64:64]
	a = a[:64:64]
	c = c[:64:64]
	for i := 0; i < 8; i++ {
		ar := a[i*8 : i*8+8 : i*8+8]
		var c0, c1, c2, c3, c4, c5, c6, c7 float64
		for k := 0; k < 8; k++ {
			av := ar[k]
			//lint:ignore floatcompare exact-zero sparsity skip mirrors mulGeneric bit for bit
			if av == 0 {
				continue
			}
			br := b[k*8 : k*8+8 : k*8+8]
			c0 += av * br[0]
			c1 += av * br[1]
			c2 += av * br[2]
			c3 += av * br[3]
			c4 += av * br[4]
			c5 += av * br[5]
			c6 += av * br[6]
			c7 += av * br[7]
		}
		cr := c[i*8 : i*8+8 : i*8+8]
		cr[0], cr[1], cr[2], cr[3], cr[4], cr[5], cr[6], cr[7] = c0, c1, c2, c3, c4, c5, c6, c7
	}
}
