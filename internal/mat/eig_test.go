package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedAbs(eigs []complex128) []float64 {
	out := make([]float64, len(eigs))
	for i, e := range eigs {
		out[i] = cmplx.Abs(e)
	}
	sort.Float64s(out)
	return out
}

func TestEigenvaluesDiagonal(t *testing.T) {
	eigs, err := Eigenvalues(Diag(3, -1, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3, 7}
	got := make([]float64, len(eigs))
	for i, e := range eigs {
		if imag(e) != 0 {
			t.Fatalf("diagonal matrix yielded complex eigenvalue %v", e)
		}
		got[i] = real(e)
	}
	sort.Float64s(got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("eigs = %v, want %v", got, want)
		}
	}
}

func TestEigenvaluesTriangular(t *testing.T) {
	a := FromRows([][]float64{
		{1, 5, -3},
		{0, 4, 2},
		{0, 0, -2},
	})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedAbs(eigs)
	want := []float64{1, 2, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("triangular eigs |λ| = %v, want %v", got, want)
		}
	}
}

func TestEigenvaluesRotation(t *testing.T) {
	// A rotation by θ scaled by r has eigenvalues r·e^{±iθ}.
	r, theta := 0.9, 0.7
	a := FromRows([][]float64{
		{r * math.Cos(theta), -r * math.Sin(theta)},
		{r * math.Sin(theta), r * math.Cos(theta)},
	})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eigs {
		if math.Abs(cmplx.Abs(e)-r) > 1e-12 {
			t.Fatalf("|λ| = %v, want %v", cmplx.Abs(e), r)
		}
		if math.Abs(math.Abs(imag(e))-r*math.Sin(theta)) > 1e-12 {
			t.Fatalf("imag(λ) = %v", imag(e))
		}
	}
}

func TestEigenvaluesComplexPairLarge(t *testing.T) {
	// Block diagonal: rotation block + real eigenvalues, n = 5.
	a := BlockDiag(
		FromRows([][]float64{{0, -2}, {2, 0}}), // ±2i
		Diag(5, -3, 1),
	)
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedAbs(eigs)
	want := []float64{1, 2, 2, 3, 5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("eigs |λ| = %v, want %v", got, want)
		}
	}
}

func TestEigenvaluesCompanion(t *testing.T) {
	// Companion matrix of (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6.
	a := FromRows([][]float64{
		{6, -11, 6},
		{1, 0, 0},
		{0, 1, 0},
	})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedAbs(eigs)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("companion eigs = %v, want %v", got, want)
		}
	}
}

func TestEigenvaluesTraceDetInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := randomDense(rng, n, n)
		eigs, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		sum := complex(0, 0)
		prod := complex(1, 0)
		for _, e := range eigs {
			sum += e
			prod *= e
		}
		// Σλ = trace, Πλ = det.
		trOK := math.Abs(real(sum)-a.Trace()) <= 1e-6*math.Max(1, math.Abs(a.Trace())) &&
			math.Abs(imag(sum)) <= 1e-6
		d := Det(a)
		detOK := math.Abs(real(prod)-d) <= 1e-6*math.Max(1, math.Abs(d)) &&
			math.Abs(imag(prod)) <= 1e-6*math.Max(1, math.Abs(d))
		return trOK && detOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenvaluesSimilarityInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomDense(rng, 5, 5)
	p := randomDense(rng, 5, 5)
	for i := 0; i < 5; i++ {
		p.Set(i, i, p.At(i, i)+6)
	}
	pinv, err := Inverse(p)
	if err != nil {
		t.Fatal(err)
	}
	b := MulMany(pinv, a, p)
	ea, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Eigenvalues(b)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := sortedAbs(ea), sortedAbs(eb)
	for i := range ga {
		if math.Abs(ga[i]-gb[i]) > 1e-6*math.Max(1, ga[i]) {
			t.Fatalf("similar matrices disagree: %v vs %v", ga, gb)
		}
	}
}

func TestSpectralRadius(t *testing.T) {
	r, err := SpectralRadius(Diag(0.5, -0.9, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.9) > 1e-12 {
		t.Fatalf("SpectralRadius = %v, want 0.9", r)
	}
}

func TestSpectralRadiusNilpotent(t *testing.T) {
	// Strictly upper triangular: all eigenvalues zero even though norms
	// are large.
	a := FromRows([][]float64{{0, 100}, {0, 0}})
	r, err := SpectralRadius(a)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-9 {
		t.Fatalf("nilpotent spectral radius = %v, want 0", r)
	}
}

func TestIsSchurStable(t *testing.T) {
	ok, err := IsSchurStable(Diag(0.99, -0.5))
	if err != nil || !ok {
		t.Fatalf("stable matrix reported unstable (err=%v)", err)
	}
	ok, err = IsSchurStable(Diag(1.01, 0))
	if err != nil || ok {
		t.Fatalf("unstable matrix reported stable (err=%v)", err)
	}
}

func TestIsHurwitzStable(t *testing.T) {
	ok, err := IsHurwitzStable(FromRows([][]float64{{-1, 5}, {0, -2}}))
	if err != nil || !ok {
		t.Fatalf("Hurwitz-stable matrix misreported (err=%v)", err)
	}
	ok, err = IsHurwitzStable(FromRows([][]float64{{0, 1}, {0, 0}}))
	if err != nil || ok {
		t.Fatalf("double integrator should not be Hurwitz stable")
	}
}

func TestHessenbergPreservesEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 6, 6)
	h := Hessenberg(a)
	// Check Hessenberg structure.
	for i := 2; i < 6; i++ {
		for j := 0; j < i-1; j++ {
			if h.At(i, j) != 0 {
				t.Fatalf("H[%d,%d] = %v, want 0", i, j, h.At(i, j))
			}
		}
	}
	ea, _ := Eigenvalues(a)
	eh, _ := Eigenvalues(h)
	ga, gh := sortedAbs(ea), sortedAbs(eh)
	for i := range ga {
		if math.Abs(ga[i]-gh[i]) > 1e-7*math.Max(1, ga[i]) {
			t.Fatalf("Hessenberg changed spectrum: %v vs %v", ga, gh)
		}
	}
}

func TestEigenvaluesZeroMatrix(t *testing.T) {
	eigs, err := Eigenvalues(New(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eigs {
		if e != 0 {
			t.Fatalf("zero matrix eigenvalue %v", e)
		}
	}
}

func TestEigenvalues1x1And2x2(t *testing.T) {
	e, err := Eigenvalues(FromRows([][]float64{{-4}}))
	if err != nil || e[0] != complex(-4, 0) {
		t.Fatalf("1×1 eig = %v (err=%v)", e, err)
	}
	e, err = Eigenvalues(FromRows([][]float64{{0, 1}, {-1, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmplx.Abs(e[0])-1) > 1e-14 || imag(e[0]) == 0 {
		t.Fatalf("2×2 rotation eig = %v", e)
	}
}

func BenchmarkEigenvalues6(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 6, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eigenvalues(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenvalues12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eigenvalues(a); err != nil {
			b.Fatal(err)
		}
	}
}
