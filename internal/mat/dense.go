// Package mat implements the dense linear algebra needed by the
// adaptive-control reproduction: basic arithmetic, LU and QR
// factorizations, real eigenvalue computation via Hessenberg reduction
// and the Francis double-shift QR iteration, the matrix exponential via
// Padé approximation with scaling and squaring, and the usual matrix
// norms.
//
// There is no control-theory or BLAS/LAPACK ecosystem in the Go standard
// library, so everything here is written from scratch on top of
// []float64. Matrices are small in this domain (closed-loop lifted
// systems of order ~4-12), so the implementations favour clarity and
// numerical robustness over blocking and cache tricks.
//
// Unless documented otherwise, operations return freshly allocated
// results and never alias their operands. Dimension mismatches are
// programmer errors and panic, matching the behaviour of the standard
// library for index errors. Numerical failures (singular matrix,
// non-convergence) are reported as errors.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense, row-major matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns a zero-valued r×c matrix.
func New(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: non-positive dimensions %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic(fmt.Sprintf("mat: FromRows of empty data (%d rows)", len(rows)))
	}
	m := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d entries, want %d", i, len(row), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], row)
	}
	return m
}

// FromSlice builds an r×c matrix from row-major data. The data is copied.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice of %d values into %d×%d", len(data), r, c))
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with the given diagonal entries.
func Diag(d ...float64) *Dense {
	m := New(len(d), len(d))
	for i, v := range d {
		m.data[i*len(d)+i] = v
	}
	return m
}

// ColVec returns an n×1 column vector with the given entries.
func ColVec(v ...float64) *Dense { return FromSlice(len(v), 1, v) }

// RowVec returns a 1×n row vector with the given entries.
func RowVec(v ...float64) *Dense { return FromSlice(1, len(v), v) }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// IsSquare reports whether the matrix is square.
func (m *Dense) IsSquare() bool { return m.rows == m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m with the contents of src, which must have the
// same dimensions.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom %d×%d into %d×%d", src.rows, src.cols, m.rows, m.cols))
	}
	copy(m.data, src.data)
}

// Raw returns the backing row-major slice. It is shared with the
// matrix; callers must not grow it. Intended for tests and encoding.
func (m *Dense) Raw() []float64 { return m.data }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Equal reports exact element-wise equality.
func (m *Dense) Equal(n *Dense) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		//lint:ignore floatcompare Equal is the documented exact-equality API; EqualApprox is the tolerance variant
		if v != n.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports element-wise equality within absolute tolerance tol.
func (m *Dense) EqualApprox(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "% .6g", m.data[i*m.cols+j])
		}
		b.WriteString("]")
		if i < m.rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// HasNaN reports whether any entry is NaN or infinite.
func (m *Dense) HasNaN() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
