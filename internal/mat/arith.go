package mat

import "fmt"

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	sameDims("Add", a, b)
	c := New(a.rows, a.cols)
	for i := range a.data {
		c.data[i] = a.data[i] + b.data[i]
	}
	return c
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	sameDims("Sub", a, b)
	c := New(a.rows, a.cols)
	for i := range a.data {
		c.data[i] = a.data[i] - b.data[i]
	}
	return c
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	c := New(a.rows, a.cols)
	for i := range a.data {
		c.data[i] = s * a.data[i]
	}
	return c
}

// AddInPlace computes a += b, returning a.
func AddInPlace(a, b *Dense) *Dense {
	sameDims("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	return a
}

// ScaleInPlace computes a *= s, returning a.
func ScaleInPlace(s float64, a *Dense) *Dense {
	for i := range a.data {
		a.data[i] *= s
	}
	return a
}

// Mul returns the matrix product a * b.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := New(a.rows, b.cols)
	mulInto(c, a, b)
	return c
}

// mulInto computes c = a*b, where c must not alias a or b and must be
// zero-filled on entry (New returns zeroed storage; MulInto clears
// reused buffers before calling). Square sizes with a hand-unrolled
// kernel dispatch to it; the kernels accumulate in exactly the same
// k-outer/j-inner order as the generic loop, so every code path yields
// bit-identical products.
func mulInto(c, a, b *Dense) {
	if k := kernelFor(a, b); k != nil {
		k(c.data, a.data, b.data)
		return
	}
	mulGeneric(c, a, b)
}

// mulGeneric is the general-size product loop. c must be pre-zeroed and
// must not alias a or b.
func mulGeneric(c, a, b *Dense) {
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		crow := c.data[i*c.cols : (i+1)*c.cols]
		for k, av := range arow {
			//lint:ignore floatcompare exact-zero sparsity skip: any nonzero value, however small, multiplies normally
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MulMany multiplies the given matrices left to right.
func MulMany(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		//lint:ignore nakedpanic the empty-argument condition has no dynamic values to report
		panic("mat: MulMany with no operands")
	}
	acc := ms[0]
	for _, m := range ms[1:] {
		acc = Mul(acc, m)
	}
	return acc
}

// MulVec returns a*x for a column vector x given as a slice.
func MulVec(a *Dense, x []float64) []float64 {
	y := make([]float64, a.rows)
	MulVecInto(y, a, x)
	return y
}

// MulVecInto computes dst = a*x without allocating. dst must have
// length a.Rows() and must not alias x.
func MulVecInto(dst []float64, a *Dense, x []float64) {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec %d×%d by vector of %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: MulVecInto dst of %d for %d rows", len(dst), a.rows))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// T returns the transpose of m.
func (m *Dense) T() *Dense {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Neg returns -m.
func Neg(m *Dense) *Dense { return Scale(-1, m) }

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Dense) Trace() float64 {
	mustSquare("Trace", m)
	s := 0.0
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// Symmetrize returns (m + mᵀ)/2, useful to suppress round-off drift in
// Riccati/Lyapunov iterations that should stay symmetric.
func Symmetrize(m *Dense) *Dense {
	mustSquare("Symmetrize", m)
	s := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s.data[i*m.cols+j] = 0.5 * (m.data[i*m.cols+j] + m.data[j*m.cols+i])
		}
	}
	return s
}

// Dot returns the Euclidean inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot of %d and %d", len(x), len(y)))
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func sameDims(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s %d×%d with %d×%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

func mustSquare(op string, m *Dense) {
	if !m.IsSquare() {
		panic(fmt.Sprintf("mat: %s of non-square %d×%d", op, m.rows, m.cols))
	}
}
