package mat

import (
	"fmt"
	"math"
)

// Exp returns the matrix exponential e^A, computed with the [13/13]
// Padé approximant and scaling-and-squaring (Higham 2005). This is the
// workhorse behind zero-order-hold discretization: Φ(h) = e^{Ah}.
func Exp(a *Dense) *Dense {
	mustSquare("Exp", a)
	n := a.rows

	// Padé coefficients b₀..b₁₃ for the [13/13] approximant.
	b := [...]float64{
		64764752532480000, 32382376266240000, 7771770303897600,
		1187353796428800, 129060195264000, 10559470521600,
		670442572800, 33522128640, 1323241920, 40840800, 960960,
		16380, 182, 1,
	}
	const theta13 = 5.371920351148152

	norm := OneNorm(a)
	s := 0
	work := a
	if norm > theta13 {
		s = int(math.Ceil(math.Log2(norm / theta13)))
		work = Scale(math.Pow(2, -float64(s)), a)
	}

	a2 := Mul(work, work)
	a4 := Mul(a2, a2)
	a6 := Mul(a2, a4)
	id := Eye(n)

	// U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
	u := Add(Scale(b[13], a6), Scale(b[11], a4))
	u = Add(u, Scale(b[9], a2))
	u = Mul(a6, u)
	u = Add(u, Scale(b[7], a6))
	u = Add(u, Scale(b[5], a4))
	u = Add(u, Scale(b[3], a2))
	u = Add(u, Scale(b[1], id))
	u = Mul(work, u)

	// V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
	v := Add(Scale(b[12], a6), Scale(b[10], a4))
	v = Add(v, Scale(b[8], a2))
	v = Mul(a6, v)
	v = Add(v, Scale(b[6], a6))
	v = Add(v, Scale(b[4], a4))
	v = Add(v, Scale(b[2], a2))
	v = Add(v, Scale(b[0], id))

	// expm ≈ (V-U)⁻¹ (V+U). V-U is well conditioned by construction of
	// the scaling step, so a solve failure indicates NaN/Inf inputs.
	num := Add(v, u)
	den := Sub(v, u)
	e, err := Solve(den, num)
	if err != nil {
		panic(fmt.Sprintf("mat: Exp of %d×%d matrix: Padé denominator is singular (NaN/Inf input?): %v", a.rows, a.cols, err))
	}
	for i := 0; i < s; i++ {
		e = Mul(e, e)
	}
	return e
}

// ExpIntegral returns (Φ, Γ) = (e^{Ah}, ∫₀ʰ e^{As} ds · B), the
// zero-order-hold discretization pair, via a single exponential of the
// augmented matrix [[A, B], [0, 0]] · h.
func ExpIntegral(a, bmat *Dense, h float64) (phi, gamma *Dense) {
	mustSquare("ExpIntegral", a)
	if bmat.rows != a.rows {
		panic(fmt.Sprintf("mat: ExpIntegral with mismatched row counts: A has %d, B has %d", a.rows, bmat.rows))
	}
	n, r := a.rows, bmat.cols
	aug := New(n+r, n+r)
	aug.SetBlock(0, 0, Scale(h, a))
	aug.SetBlock(0, n, Scale(h, bmat))
	e := Exp(aug)
	return e.Slice(0, n, 0, n), e.Slice(0, n, n, n+r)
}
