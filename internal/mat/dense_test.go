package mat

import (
	"math"
	"testing"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 || m.At(1, 0) != 3 || m.At(1, 1) != 4 {
		t.Fatalf("FromRows content mismatch: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsCopiesData(t *testing.T) {
	row := []float64{1, 2}
	m := FromRows([][]float64{row})
	row[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromRows did not copy its input")
	}
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(1, 2) != 6 || m.At(0, 2) != 3 {
		t.Fatalf("FromSlice layout wrong: %v", m)
	}
}

func TestEye(t *testing.T) {
	m := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("Eye(3)[%d,%d] = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	m := Diag(2, 5, -1)
	if m.At(0, 0) != 2 || m.At(1, 1) != 5 || m.At(2, 2) != -1 || m.At(0, 1) != 0 {
		t.Fatalf("Diag content mismatch: %v", m)
	}
}

func TestVecConstructors(t *testing.T) {
	c := ColVec(1, 2, 3)
	if r, cc := c.Dims(); r != 3 || cc != 1 {
		t.Fatalf("ColVec dims = (%d,%d)", r, cc)
	}
	r := RowVec(1, 2, 3)
	if rr, cc := r.Dims(); rr != 1 || cc != 3 {
		t.Fatalf("RowVec dims = (%d,%d)", rr, cc)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCopyFrom(t *testing.T) {
	m := New(2, 2)
	m.CopyFrom(Eye(2))
	if !m.Equal(Eye(2)) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	c := m.Col(0)
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("Col(0) = %v", c)
	}
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Fatal("Row returned shared storage")
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1.0005, 2}})
	if !a.EqualApprox(b, 1e-3) {
		t.Fatal("EqualApprox(1e-3) should hold")
	}
	if a.EqualApprox(b, 1e-6) {
		t.Fatal("EqualApprox(1e-6) should fail")
	}
	if a.EqualApprox(New(2, 1), 1) {
		t.Fatal("EqualApprox across dims should fail")
	}
}

func TestHasNaN(t *testing.T) {
	m := New(2, 2)
	if m.HasNaN() {
		t.Fatal("zero matrix reported NaN")
	}
	m.Set(1, 1, math.NaN())
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
	m.Set(1, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestStringRendering(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {3, 4}}).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestAtSetBoundsPanic(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}
