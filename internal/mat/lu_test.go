package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := ColVec(3, 5)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=3, x+3y=5 → x=4/5, y=7/5
	if math.Abs(x.At(0, 0)-0.8) > 1e-12 || math.Abs(x.At(1, 0)-1.4) > 1e-12 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomDense(rng, n, n)
		// Diagonal dominance keeps the system comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := randomDense(rng, n, 2)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return Mul(a, x).EqualApprox(b, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		a := randomDense(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return Mul(a, inv).EqualApprox(Eye(n), 1e-8) && Mul(inv, a).EqualApprox(Eye(n), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingularDetection(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("Inverse of singular = %v, want ErrSingular", err)
	}
	if _, err := SolveVec(a, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("SolveVec of singular = %v, want ErrSingular", err)
	}
}

func TestDetKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if d := Det(a); math.Abs(d-(-2)) > 1e-12 {
		t.Fatalf("Det = %v, want -2", d)
	}
	if d := Det(Eye(4)); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Det(I) = %v", d)
	}
	if d := Det(Diag(2, 3, 4)); math.Abs(d-24) > 1e-12 {
		t.Fatalf("Det(diag) = %v", d)
	}
}

func TestDetPermutationSign(t *testing.T) {
	// A permutation matrix swapping two rows has determinant -1.
	p := FromRows([][]float64{{0, 1}, {1, 0}})
	if d := Det(p); math.Abs(d-(-1)) > 1e-12 {
		t.Fatalf("Det(swap) = %v, want -1", d)
	}
}

func TestDetProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a, b := randomDense(rng, n, n), randomDense(rng, n, n)
		da, db, dab := Det(a), Det(b), Det(Mul(a, b))
		scale := math.Max(1, math.Abs(da*db))
		return math.Abs(dab-da*db) <= 1e-8*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveVec(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 2}})
	x, err := SolveVec(a, []float64{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 || x[1] != 2 {
		t.Fatalf("SolveVec = %v", x)
	}
}

func TestLUPivotingStability(t *testing.T) {
	// Tiny leading pivot forces a row swap; without pivoting the result
	// would be garbage.
	a := FromRows([][]float64{{1e-18, 1}, {1, 1}})
	b := ColVec(1, 2)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := Sub(Mul(a, x), b)
	if MaxAbs(res) > 1e-12 {
		t.Fatalf("pivoted solve residual too large: %v", res)
	}
}

func TestSolveRHSWrongRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Solve did not panic")
		}
	}()
	_, _ = Solve(Eye(2), New(3, 1))
}
