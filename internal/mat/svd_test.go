package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func checkSVD(t *testing.T, a *Dense) {
	t.Helper()
	u, s, v, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	m, n := a.Dims()
	k := n
	if m < n {
		k = m
	}
	if u.Rows() != m || u.Cols() != k || v.Rows() != n || v.Cols() != k || len(s) != k {
		t.Fatalf("SVD shapes: U %d×%d, V %d×%d, len(S)=%d for A %d×%d",
			u.Rows(), u.Cols(), v.Rows(), v.Cols(), len(s), m, n)
	}
	// Reconstruction A = U S Vᵀ.
	us := u.Clone()
	for j := 0; j < k; j++ {
		for i := 0; i < m; i++ {
			us.Set(i, j, us.At(i, j)*s[j])
		}
	}
	if !Mul(us, v.T()).EqualApprox(a, 1e-9*(1+MaxAbs(a))) {
		t.Fatal("SVD reconstruction failed")
	}
	// Orthogonality and ordering.
	if !Mul(v.T(), v).EqualApprox(Eye(k), 1e-10) {
		t.Fatal("V not orthonormal")
	}
	for j := 1; j < k; j++ {
		if s[j] > s[j-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", s)
		}
		if s[j] < 0 {
			t.Fatalf("negative singular value: %v", s)
		}
	}
	// Columns of U with nonzero sigma are orthonormal.
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			if s[i] == 0 || s[j] == 0 {
				continue
			}
			dot := Dot(u.Col(i), u.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Fatalf("UᵀU[%d,%d] = %v", i, j, dot)
			}
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := Diag(3, -2, 1) // singular values are magnitudes
	_, s, _, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Fatalf("S = %v, want %v", s, want)
		}
	}
	checkSVD(t, a)
}

func TestSVDRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, dims := range [][2]int{{3, 3}, {5, 2}, {2, 5}, {6, 4}, {1, 4}, {4, 1}} {
		a := randomDense(rng, dims[0], dims[1])
		checkSVD(t, a)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: exactly one nonzero singular value.
	a := Mul(ColVec(1, 2, 2), RowVec(3, 0, 4))
	_, s, _, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	// σ₁ = ‖u‖‖v‖ = 3·5 = 15.
	if math.Abs(s[0]-15) > 1e-10 || s[1] > 1e-10 || s[2] > 1e-10 {
		t.Fatalf("S = %v, want [15 0 0]", s)
	}
	checkSVD(t, a)
}

func TestSVDZeroMatrix(t *testing.T) {
	_, s, _, err := SVD(New(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if v != 0 {
			t.Fatalf("S = %v", s)
		}
	}
}

func TestSVDMatchesTwoNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 2+rng.Intn(5), 2+rng.Intn(5))
		s, err := SingularValues(a)
		if err != nil {
			return false
		}
		return math.Abs(s[0]-TwoNorm(a)) <= 1e-7*(1+s[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDFrobeniusIdentityProperty(t *testing.T) {
	// ‖A‖F² = Σ σᵢ².
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		s, err := SingularValues(a)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range s {
			sum += v * v
		}
		fro := FroNorm(a)
		return math.Abs(sum-fro*fro) <= 1e-9*(1+fro*fro)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCond(t *testing.T) {
	c, err := Cond(Diag(10, 1))
	if err != nil || math.Abs(c-10) > 1e-10 {
		t.Fatalf("Cond = %v (err %v)", c, err)
	}
	c, err = Cond(Diag(1, 0))
	if err != nil || !math.IsInf(c, 1) {
		t.Fatalf("Cond singular = %v", c)
	}
	// Orthogonal matrices have condition number 1.
	theta := 0.9
	q := FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	c, err = Cond(q)
	if err != nil || math.Abs(c-1) > 1e-10 {
		t.Fatalf("Cond rotation = %v", c)
	}
}

func TestRankSVDAgreesWithQRRank(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(4)
		n := 2 + rng.Intn(4)
		r := 1 + rng.Intn(minInt(m, n))
		// Random rank-r matrix as a product of full-rank factors.
		a := Mul(randomDense(rng, m, r), randomDense(rng, r, n))
		got, err := RankSVD(a, 1e-9)
		if err != nil {
			return false
		}
		return got == r && Rank(a, 1e-9) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPInvSquareNonsingular(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomDense(rng, 4, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+5)
	}
	pinv, err := PInv(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !pinv.EqualApprox(inv, 1e-8*(1+MaxAbs(inv))) {
		t.Fatal("PInv of nonsingular matrix differs from Inverse")
	}
}

func TestPInvMoorePenroseProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(4)
		n := 2 + rng.Intn(4)
		a := randomDense(rng, m, n)
		p, err := PInv(a, 0)
		if err != nil {
			return false
		}
		// A A⁺ A = A and A⁺ A A⁺ = A⁺; A A⁺ and A⁺ A symmetric.
		tol := 1e-8 * (1 + MaxAbs(a) + MaxAbs(p))
		if !MulMany(a, p, a).EqualApprox(a, tol) {
			return false
		}
		if !MulMany(p, a, p).EqualApprox(p, tol) {
			return false
		}
		ap := Mul(a, p)
		pa := Mul(p, a)
		return ap.EqualApprox(ap.T(), tol) && pa.EqualApprox(pa.T(), tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPInvRankDeficient(t *testing.T) {
	// Rank-1: pseudo-inverse has the reciprocal singular value.
	a := Mul(ColVec(3, 4), RowVec(1, 0)) // σ = 5
	p, err := PInv(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !MulMany(a, p, a).EqualApprox(a, 1e-9) {
		t.Fatal("A A⁺ A != A for rank-deficient A")
	}
	s, err := SingularValues(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]-0.2) > 1e-10 {
		t.Fatalf("σ(A⁺) = %v, want 0.2", s[0])
	}
}

func BenchmarkSVD6x4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 6, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := SVD(a); err != nil {
			b.Fatal(err)
		}
	}
}
