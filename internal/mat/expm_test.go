package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpZero(t *testing.T) {
	if got := Exp(New(3, 3)); !got.EqualApprox(Eye(3), 1e-14) {
		t.Fatalf("Exp(0) = %v", got)
	}
}

func TestExpDiagonal(t *testing.T) {
	a := Diag(1, -2, 0.5)
	got := Exp(a)
	want := Diag(math.E, math.Exp(-2), math.Exp(0.5))
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("Exp(diag) = %v, want %v", got, want)
	}
}

func TestExpNilpotent(t *testing.T) {
	// exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly.
	a := FromRows([][]float64{{0, 1}, {0, 0}})
	got := Exp(a)
	want := FromRows([][]float64{{1, 1}, {0, 1}})
	if !got.EqualApprox(want, 1e-14) {
		t.Fatalf("Exp(nilpotent) = %v", got)
	}
}

func TestExpRotation(t *testing.T) {
	// exp([[0,-θ],[θ,0]]) is a rotation by θ.
	theta := 1.23
	a := FromRows([][]float64{{0, -theta}, {theta, 0}})
	got := Exp(a)
	want := FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	if !got.EqualApprox(want, 1e-13) {
		t.Fatalf("Exp(rotation) = %v, want %v", got, want)
	}
}

func TestExpLargeNormUsesScaling(t *testing.T) {
	// Norm far above theta13 exercises the squaring phase.
	a := Diag(10, -10)
	got := Exp(a)
	if math.Abs(got.At(0, 0)-math.Exp(10)) > 1e-6*math.Exp(10) {
		t.Fatalf("Exp large = %v", got.At(0, 0))
	}
	if math.Abs(got.At(1, 1)-math.Exp(-10)) > 1e-9 {
		t.Fatalf("Exp small entry = %v", got.At(1, 1))
	}
}

func TestExpAdditivityCommuting(t *testing.T) {
	// For commuting A, B: e^{A+B} = e^A e^B. Use polynomials in one matrix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := randomDense(rng, n, n)
		ScaleInPlace(0.5, m)
		a := m
		b := Mul(m, m) // commutes with m
		lhs := Exp(Add(a, b))
		rhs := Mul(Exp(a), Exp(b))
		tol := 1e-9 * math.Max(1, FroNorm(lhs))
		return lhs.EqualApprox(rhs, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomDense(rng, n, n)
		// e^A e^{-A} = I
		p := Mul(Exp(a), Exp(Neg(a)))
		return p.EqualApprox(Eye(n), 1e-8*math.Max(1, FroNorm(Exp(a))))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpMatchesSeriesSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomDense(rng, 4, 4)
	ScaleInPlace(0.01, a)
	// Taylor series to 12 terms is extremely accurate for tiny norms.
	sum := Eye(4)
	term := Eye(4)
	for k := 1; k <= 12; k++ {
		term = Scale(1/float64(k), Mul(term, a))
		sum = Add(sum, term)
	}
	if !Exp(a).EqualApprox(sum, 1e-13) {
		t.Fatal("Exp disagrees with Taylor series for small norm")
	}
}

func TestExpIntegralKnownScalar(t *testing.T) {
	// ẋ = -x + u: Φ(h) = e^{-h}, Γ(h) = 1 - e^{-h}.
	a := FromRows([][]float64{{-1}})
	b := FromRows([][]float64{{1}})
	h := 0.3
	phi, gamma := ExpIntegral(a, b, h)
	if math.Abs(phi.At(0, 0)-math.Exp(-h)) > 1e-13 {
		t.Fatalf("Phi = %v", phi.At(0, 0))
	}
	if math.Abs(gamma.At(0, 0)-(1-math.Exp(-h))) > 1e-13 {
		t.Fatalf("Gamma = %v", gamma.At(0, 0))
	}
}

func TestExpIntegralDoubleIntegrator(t *testing.T) {
	// ẍ = u: Φ = [[1,h],[0,1]], Γ = [h²/2, h]ᵀ.
	a := FromRows([][]float64{{0, 1}, {0, 0}})
	b := ColVec(0, 1)
	h := 0.7
	phi, gamma := ExpIntegral(a, b, h)
	wantPhi := FromRows([][]float64{{1, h}, {0, 1}})
	wantGamma := ColVec(h*h/2, h)
	if !phi.EqualApprox(wantPhi, 1e-13) {
		t.Fatalf("Phi = %v", phi)
	}
	if !gamma.EqualApprox(wantGamma, 1e-13) {
		t.Fatalf("Gamma = %v", gamma)
	}
}

func TestExpIntegralZeroHorizon(t *testing.T) {
	a := FromRows([][]float64{{0, 1}, {-2, -3}})
	b := ColVec(0, 1)
	phi, gamma := ExpIntegral(a, b, 0)
	if !phi.EqualApprox(Eye(2), 1e-14) {
		t.Fatalf("Phi(0) = %v", phi)
	}
	if MaxAbs(gamma) > 1e-14 {
		t.Fatalf("Gamma(0) = %v", gamma)
	}
}

func TestExpIntegralSemigroupProperty(t *testing.T) {
	// Φ(h1+h2) = Φ(h2)Φ(h1) and Γ(h1+h2) = Φ(h2)Γ(h1) + Γ(h2).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 3, 3)
		b := randomDense(rng, 3, 2)
		h1 := 0.05 + 0.3*rng.Float64()
		h2 := 0.05 + 0.3*rng.Float64()
		phi1, gam1 := ExpIntegral(a, b, h1)
		phi2, gam2 := ExpIntegral(a, b, h2)
		phi12, gam12 := ExpIntegral(a, b, h1+h2)
		okPhi := phi12.EqualApprox(Mul(phi2, phi1), 1e-9)
		okGam := gam12.EqualApprox(Add(Mul(phi2, gam1), gam2), 1e-9)
		return okPhi && okGam
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExp4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exp(a)
	}
}

func BenchmarkExp12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exp(a)
	}
}
