package jsr

import (
	"context"
	"math"
	"runtime/debug"

	"adaptivertc/internal/mat"
)

// This file holds the zero-allocation expansion engine behind
// GripenbergCtx. The expand loop is the hot path of every certification
// job: each node costs exactly one small matrix multiply (the child is
// Ω(h)·parent, with the parent product cached on the frontier entry),
// one spectral radius, and one norm — all through preallocated
// per-worker scratch, so a warm level performs zero heap allocations
// per node. Results are bit-identical to the straightforward allocating
// loop because every numeric kernel (mat.MulInto, mat.TwoNormScratch,
// mat.SpectralRadiusScratch) shares its computational core with the
// allocating variant.

// serialCutoverNodes is the frontier size at or below which a level is
// expanded on the calling goroutine regardless of the Workers option:
// for tiny levels the goroutine spawn + merge overhead exceeds the work
// itself (the committed BENCH_jsr.json baseline showed w2/w8 ~10%
// *slower* than w1 before this cutover). Worker invariance makes the
// cutover observationally silent: results are bit-identical on both
// sides of the threshold. A package variable, not a constant, so tests
// can force either side.
var serialCutoverNodes = 16

// matPool is a grow-only pool of n×n product buffers. ensure extends it
// to the requested size; buffers are never returned, so a warm pool
// serves every later level allocation-free.
type matPool struct {
	n    int
	bufs []*mat.Dense
}

func (p *matPool) ensure(count int) {
	for len(p.bufs) < count {
		p.bufs = append(p.bufs, mat.New(p.n, p.n))
	}
}

// gripSearch owns the reusable state of one Gripenberg (or constrained)
// search: two product-buffer pools used in ping-pong by level parity,
// one scratch workspace per worker slot, and the flat children array.
//
// The pools alternate by depth%2: children of level d are written into
// pools[d%2], while their parents — the frontier, written one level
// earlier — live in pools[(d-1)%2] (or outside the pools entirely, for
// seed and resume products). A buffer is only reused two levels later,
// by which time every node of its level has either been merged into the
// next frontier (its children now hold the data) or pruned, so no live
// product is ever overwritten.
type gripSearch struct {
	set      []*mat.Dense
	k, n     int
	pools    [2]matPool
	scratch  []*mat.Scratch
	children []gripChild

	// Per-level state read by fn. Written by expandLevel before the
	// parallel call; the worker WaitGroup orders these writes before any
	// worker read.
	frontier []gripNode
	exp      float64
	pool     *matPool

	// fn is the per-range worker body, built once at construction so
	// expanding a level does not allocate a fresh closure.
	fn func(ctx context.Context, slot, lo, hi int) error
}

func newGripSearch(set []*mat.Dense, workers int) *gripSearch {
	n := set[0].Rows()
	g := &gripSearch{
		set:     set,
		k:       len(set),
		n:       n,
		pools:   [2]matPool{{n: n}, {n: n}},
		scratch: make([]*mat.Scratch, workers),
	}
	g.fn = func(ctx context.Context, slot, lo, hi int) error {
		ms := g.scratchFor(slot)
		for fi := lo; fi < hi; fi++ {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			if gerr := g.expandNodeGuarded(fi, ms); gerr != nil {
				return gerr
			}
		}
		return nil
	}
	return g
}

// scratchFor lazily builds the slot's workspace. Each slot is owned by
// exactly one goroutine per level, and the level barrier
// (sync.WaitGroup in parallelSlots) orders one level's writes before
// the next level's reads, so the lazy initialization is race-free.
func (g *gripSearch) scratchFor(slot int) *mat.Scratch {
	if g.scratch[slot] == nil {
		g.scratch[slot] = mat.NewScratch(g.n)
	}
	return g.scratch[slot]
}

// expandLevel expands frontier[0:expand] into g.children (length
// expand·k), sharded across the worker pool with the serial cutover
// applied. The returned slice aliases g.children and is valid until the
// next expandLevel call; child products live in the depth-parity pool.
func (g *gripSearch) expandLevel(ctx context.Context, frontier []gripNode, expand, depth, workers int) ([]gripChild, error) {
	need := expand * g.k
	if cap(g.children) < need {
		g.children = make([]gripChild, need)
	}
	g.children = g.children[:need]
	pool := &g.pools[depth%2]
	pool.ensure(need)
	g.frontier = frontier
	g.exp = 1 / float64(depth)
	g.pool = pool
	if expand <= serialCutoverNodes {
		workers = 1
	}
	err := parallelSlots(ctx, expand, workers, g.fn)
	return g.children, err
}

// expandNodeGuarded computes the k children of frontier node fi, in
// matrix-index order, converting a panic into a *PanicError carrying
// the node's word. The recover is inlined (rather than routed through
// expandGuard) so the guard costs no closure allocation per node.
func (g *gripSearch) expandNodeGuarded(fi int, ms *mat.Scratch) (err error) {
	nd := g.frontier[fi]
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Value: r, Word: append([]int(nil), nd.word...), Stack: debug.Stack()}
		}
	}()
	out := g.children[fi*g.k : (fi+1)*g.k]
	bufs := g.pool.bufs[fi*g.k : (fi+1)*g.k]
	for ai, a := range g.set {
		p := bufs[ai]
		mat.MulInto(p, a, nd.prod)
		rho, rerr := mat.SpectralRadiusScratch(p, ms)
		if rerr != nil {
			return rerr
		}
		out[ai] = gripChild{prod: p, rho: rho, cert: math.Min(nd.cert, math.Pow(mat.TwoNormScratch(p, ms), g.exp))}
	}
	return nil
}
