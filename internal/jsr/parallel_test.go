package jsr

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"adaptivertc/internal/mat"
)

// goldenPair is the classic JSR = φ example; its optimal switching word
// alternates the two generators, which makes witness assertions sharp.
func goldenPair() []*mat.Dense {
	return []*mat.Dense{
		mat.FromRows([][]float64{{1, 1}, {0, 1}}),
		mat.FromRows([][]float64{{1, 0}, {1, 1}}),
	}
}

func sameBounds(a, b Bounds) bool {
	if a.Lower != b.Lower || a.Upper != b.Upper {
		return false
	}
	if len(a.WitnessWord) != len(b.WitnessWord) {
		return false
	}
	for i := range a.WitnessWord {
		if a.WitnessWord[i] != b.WitnessWord[i] {
			return false
		}
	}
	return true
}

// workerSweep is the set of worker counts the invariance tests compare;
// it straddles GOMAXPROCS on any machine and includes a count that does
// not divide typical level sizes.
func workerSweep() []int {
	return []int{1, 2, 3, 4, 7, runtime.GOMAXPROCS(0)}
}

func TestGripenbergWorkerInvariance(t *testing.T) {
	for name, set := range map[string][]*mat.Dense{"pmsm": pmsmLikeSet(), "golden": goldenPair()} {
		var ref Bounds
		var refErr error
		for i, w := range workerSweep() {
			b, err := Gripenberg(set, GripenbergOptions{Delta: 0.02, MaxDepth: 14, MaxNodes: 50_000, Workers: w})
			if err != nil && !errors.Is(err, ErrBudget) {
				t.Fatal(err)
			}
			if i == 0 {
				ref, refErr = b, err
				continue
			}
			if !sameBounds(ref, b) {
				t.Fatalf("%s: workers=%d bounds %+v differ from workers=1 %+v", name, w, b, ref)
			}
			if !errors.Is(err, refErr) && !errors.Is(refErr, err) {
				t.Fatalf("%s: workers=%d err %v differs from workers=1 err %v", name, w, err, refErr)
			}
		}
	}
}

func TestBruteForceWorkerInvariance(t *testing.T) {
	for name, set := range map[string][]*mat.Dense{"pmsm": pmsmLikeSet(), "golden": goldenPair()} {
		var ref Bounds
		for i, w := range workerSweep() {
			b, err := BruteForceBoundsOpt(set, 8, BruteForceOptions{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = b
				continue
			}
			if !sameBounds(ref, b) {
				t.Fatalf("%s: workers=%d bounds %+v differ from workers=1 %+v", name, w, b, ref)
			}
		}
	}
}

func TestConstrainedGripenbergWorkerInvariance(t *testing.T) {
	g, err := WeaklyHardGraph(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	set := goldenPair()
	var ref Bounds
	var refErr error
	for i, w := range workerSweep() {
		b, err := ConstrainedGripenberg(set, g, GripenbergOptions{Delta: 0.02, MaxDepth: 12, MaxNodes: 50_000, Workers: w})
		if err != nil && !errors.Is(err, ErrBudget) {
			t.Fatal(err)
		}
		if i == 0 {
			ref, refErr = b, err
			continue
		}
		if !sameBounds(ref, b) {
			t.Fatalf("workers=%d bounds %+v differ from workers=1 %+v", w, b, ref)
		}
		if !errors.Is(err, refErr) && !errors.Is(refErr, err) {
			t.Fatalf("workers=%d err %v differs from workers=1 err %v", w, err, refErr)
		}
	}
}

// TestGripenbergPartialBudgetTightensBracket is the regression test for
// the budget bugfix: with MaxNodes=4 the golden-ratio pair affords only
// one of the two depth-2 expansions, and that partial level must still
// raise the lower bound from ρ(A_i)=1 to φ before ErrBudget is
// returned. The old code gave up before expanding anything and reported
// Lower=1.
func TestGripenbergPartialBudgetTightensBracket(t *testing.T) {
	set := goldenPair()
	phi := (1 + math.Sqrt(5)) / 2
	b, err := Gripenberg(set, GripenbergOptions{Delta: 1e-4, MaxDepth: 30, MaxNodes: 4})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if math.Abs(b.Lower-phi) > 1e-9 {
		t.Fatalf("partial level did not tighten: Lower = %v, want φ = %v", b.Lower, phi)
	}
	if len(b.WitnessWord) != 2 || b.WitnessWord[0] != 0 || b.WitnessWord[1] != 1 {
		t.Fatalf("witness = %v, want [0 1]", b.WitnessWord)
	}
	if b.Upper < b.Lower {
		t.Fatalf("inverted bracket %v", b)
	}
	if got := witnessRate(t, set, b.WitnessWord); math.Abs(got-b.Lower) > 1e-12 {
		t.Fatalf("witness rate %v != Lower %v", got, b.Lower)
	}
}

func TestConstrainedGripenbergPartialBudgetTightensBracket(t *testing.T) {
	set := goldenPair()
	g := CompleteGraph(2)
	phi := (1 + math.Sqrt(5)) / 2
	b, err := ConstrainedGripenberg(set, g, GripenbergOptions{Delta: 1e-4, MaxDepth: 30, MaxNodes: 4})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if math.Abs(b.Lower-phi) > 1e-9 {
		t.Fatalf("partial level did not tighten: Lower = %v, want φ = %v", b.Lower, phi)
	}
	if b.Upper < b.Lower {
		t.Fatalf("inverted bracket %v", b)
	}
}

// TestBruteForceStreamingMatchesShallow pins the chunked depth-first
// enumeration to the purely breadth-first shallow path: for depths at
// or below the split the two phases coincide, and increasing depth must
// extend, not perturb, the shallow results.
func TestBruteForceStreamingMatchesShallow(t *testing.T) {
	set := pmsmLikeSet()
	prevUpper := math.Inf(1)
	prevLower := 0.0
	for _, l := range []int{1, 2, 3, 5, 8} {
		b, err := BruteForceBoundsOpt(set, l, BruteForceOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if b.Upper > prevUpper+1e-15 {
			t.Fatalf("upper rose from %v to %v at depth %d", prevUpper, b.Upper, l)
		}
		if b.Lower < prevLower-1e-15 {
			t.Fatalf("lower fell from %v to %v at depth %d", prevLower, b.Lower, l)
		}
		prevUpper, prevLower = b.Upper, b.Lower
	}
}

func TestWitnessRateRoundTrip(t *testing.T) {
	set := pmsmLikeSet()
	bf, err := BruteForceBounds(set, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := WitnessRate(set, bf.WitnessWord); err != nil || math.Abs(got-bf.Lower) > 1e-12 {
		t.Fatalf("brute-force replay = %v (err %v), want Lower = %v", got, err, bf.Lower)
	}
	gp, err := Gripenberg(set, GripenbergOptions{Delta: 0.01, MaxDepth: 20})
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatal(err)
	}
	if got, err := WitnessRate(set, gp.WitnessWord); err != nil || math.Abs(got-gp.Lower) > 1e-12 {
		t.Fatalf("Gripenberg replay = %v (err %v), want Lower = %v", got, err, gp.Lower)
	}
}

// TestEstimateWitnessAttainsLower is the regression test for the
// witness bugfix: Estimate computes its bracket on the preconditioned
// set, where similarity round-off can shift spectral radii, so the
// returned Lower must be the rate the witness attains on the caller's
// matrices — exactly reproducible via WitnessRate.
func TestEstimateWitnessAttainsLower(t *testing.T) {
	for name, set := range map[string][]*mat.Dense{
		"pmsm": pmsmLikeSet(),
		"mixed": {
			mat.FromRows([][]float64{{0.6, 0.3}, {0, 0.4}}),
			mat.FromRows([][]float64{{0.2, 0}, {0.5, 0.7}}),
		},
	} {
		est, err := Estimate(set, 6, GripenbergOptions{Delta: 0.01})
		if err != nil && !errors.Is(err, ErrBudget) {
			t.Fatal(err)
		}
		if len(est.WitnessWord) == 0 {
			t.Fatalf("%s: no witness returned", name)
		}
		got, err := WitnessRate(set, est.WitnessWord)
		if err != nil {
			t.Fatal(err)
		}
		if got != est.Lower {
			t.Fatalf("%s: replayed witness rate %v != Lower %v (word %v)", name, got, est.Lower, est.WitnessWord)
		}
		if est.Upper < est.Lower {
			t.Fatalf("%s: inverted bracket %v", name, est)
		}
	}
}

func TestWitnessRateErrors(t *testing.T) {
	set := pmsmLikeSet()
	if _, err := WitnessRate(nil, []int{0}); !errors.Is(err, ErrEmptySet) {
		t.Fatalf("err = %v", err)
	}
	if _, err := WitnessRate(set, nil); err == nil {
		t.Fatal("empty word accepted")
	}
	if _, err := WitnessRate(set, []int{0, 2}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}
