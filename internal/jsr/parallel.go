package jsr

import (
	"runtime"
	"sync"
)

// This file holds the worker-pool machinery shared by the parallel JSR
// estimators. The engine-wide contract (mirroring the sim package's
// worker-invariance guarantee) is that every exported bound is
// bit-identical for every worker count:
//
//   - work is split by *index*, never by arrival order: each level (or
//     chunk) is a deterministically ordered array, workers own disjoint
//     contiguous index ranges and write only into their own slots;
//   - all floating-point reductions are pure max/min folds (no sums),
//     which are exact and order-free once ties are broken by the lowest
//     index — the same "first strictly greater wins" rule the original
//     sequential scans used;
//   - errors are reported from the lowest-indexed failing range, so
//     even failure modes do not depend on scheduling.

// resolveWorkers maps the Workers option (≤ 0 means "use the default")
// to an actual worker count.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelRanges splits the index range [0, n) into at most `workers`
// contiguous chunks and runs fn on each concurrently. fn(lo, hi) must
// touch only state owned by indexes in [lo, hi). The returned error is
// the one from the lowest-indexed failing chunk.
func parallelRanges(n, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
