package jsr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// This file holds the worker-pool machinery shared by the parallel JSR
// estimators. The engine-wide contract (mirroring the sim package's
// worker-invariance guarantee) is that every exported bound is
// bit-identical for every worker count:
//
//   - work is split by *index*, never by arrival order: each level (or
//     chunk) is a deterministically ordered array, workers own disjoint
//     contiguous index ranges and write only into their own slots;
//   - all floating-point reductions are pure max/min folds (no sums),
//     which are exact and order-free once ties are broken by the lowest
//     index — the same "first strictly greater wins" rule the original
//     sequential scans used;
//   - errors are reported from the lowest-indexed failing range, so
//     even failure modes do not depend on scheduling. Cancellation
//     errors induced by another range's failure never mask that
//     failure.
//
// Resilience additions: every worker polls its context so deadlines and
// cancellation cut a level promptly, and a panicking worker is isolated
// — the panic is converted into a *PanicError (carrying the offending
// product word when the expansion site knows it), the sibling workers
// are drained via an internal cancel, and the caller sees an ordinary
// error instead of a dead process.

// PanicError is a worker panic converted into an error: one poisoned
// matrix product must not kill a long-running certification job. Word,
// when non-empty, is the product word whose expansion panicked.
type PanicError struct {
	Value any    // the recovered panic value
	Word  []int  // offending product word, when the expansion site knows it
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	if len(e.Word) > 0 {
		return fmt.Sprintf("jsr: worker panic expanding word %v: %v", e.Word, e.Value)
	}
	return fmt.Sprintf("jsr: worker panic: %v", e.Value)
}

// expandGuard runs one node expansion, converting a panic into a
// *PanicError carrying the node's product word. Already-converted
// panics pass through unchanged.
func expandGuard(word []int, expand func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Value: r, Word: append([]int(nil), word...), Stack: debug.Stack()}
		}
	}()
	return expand()
}

// isCtxErr reports whether err is a context cancellation or deadline
// (including wrapped forms).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// resolveWorkers maps the Workers option (≤ 0 means "use the default")
// to an actual worker count.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// runSlot invokes fn on one chunk with a panic backstop: expansion
// sites wrap per-node work in expandGuard (or an equivalent inline
// recover) to attach the word, and this outer recover catches anything
// that escapes between nodes.
func runSlot(ctx context.Context, slot, lo, hi int, fn func(ctx context.Context, slot, lo, hi int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, slot, lo, hi)
}

// parallelSlots splits the index range [0, n) into at most `workers`
// contiguous chunks and runs fn on each concurrently. fn(ctx, slot, lo,
// hi) must touch only state owned by indexes in [lo, hi) — plus any
// per-worker scratch keyed by slot, which is in [0, workers) and unique
// per concurrent invocation — and should poll ctx between nodes. When
// any chunk fails (error or panic) the shared context is cancelled so
// the remaining workers drain at their next poll instead of finishing
// the level. The returned error is the one from the lowest-indexed
// chunk that failed for a non-cancellation reason; pure cancellation
// (deadline or caller cancel) is returned only when no chunk failed on
// its own.
func parallelSlots(ctx context.Context, n, workers int, fn func(ctx context.Context, slot, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return runSlot(ctx, 0, 0, n, fn)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = runSlot(wctx, w, lo, hi, fn)
			if errs[w] != nil {
				cancel()
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if isCtxErr(err) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return err
	}
	return ctxErr
}

// parallelRanges is parallelSlots for callers that do not need the
// per-worker slot index.
func parallelRanges(ctx context.Context, n, workers int, fn func(ctx context.Context, lo, hi int) error) error {
	return parallelSlots(ctx, n, workers, func(ctx context.Context, _, lo, hi int) error {
		return fn(ctx, lo, hi)
	})
}
