// Package jsr computes bounds on the joint spectral radius (JSR) of a
// finite set of matrices — the quantity the paper uses to decide
// asymptotic stability of the switched closed loop ξ(k+1) = Ω(h_k) ξ(k)
// under arbitrary switching (Section V):
//
//	ρ(A) = lim_{m→∞} max_σ ‖Ω_σm‖^{1/m}
//
// The system is asymptotically stable for every possible sequence of
// overruns if and only if ρ(A) < 1 (Eq. 10).
//
// Two estimators are provided:
//
//   - BruteForceBounds enumerates all products up to a given length and
//     applies the Gel'fand–Berger–Wang sandwich (Eq. 12):
//     max_ℓ max_σ ρ(Ω_σℓ)^{1/ℓ} ≤ ρ(A) ≤ min_ℓ max_σ ‖Ω_σℓ‖^{1/ℓ}.
//
//   - Gripenberg runs the classic branch-and-bound: it grows products,
//     raises the lower bound with every spectral radius it sees, and
//     prunes any branch whose norm certificate cannot push the JSR
//     above lower+δ, terminating with ρ(A) ∈ [lower, lower+δ] when the
//     frontier drains (G. Gripenberg, "Computing the joint spectral
//     radius", 1996).
//
// Both return certified bounds, not estimates: the upper bounds are
// valid regardless of truncation depth. Both are parallel: independent
// subtrees of the product tree are sharded across a worker pool, and
// the merge is deterministic, so the returned Bounds (including the
// WitnessWord) are bit-identical for every worker count.
//
// Certification searches are combinatorial, so long-running jobs are
// first-class: every estimator has a context-aware variant (the
// ctx-less names wrap context.Background()), a wall-clock Deadline
// option degrades gracefully to a valid best-so-far bracket signalled
// by ErrDeadline, worker panics are isolated into *PanicError values,
// and Gripenberg searches can snapshot and resume their frontier at
// level boundaries (GripenbergState) with bit-identical results.
package jsr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"adaptivertc/internal/mat"
)

// Bounds brackets the joint spectral radius. WitnessWord, when
// non-empty, is the index sequence (in product order: the word w with
// P_w = A_{w[len-1]} ··· A_{w[0]}) whose averaged spectral radius
// attains Lower — for the closed-loop sets of this repository it is the
// worst-case overrun pattern the analysis found.
type Bounds struct {
	Lower       float64
	Upper       float64
	WitnessWord []int
}

// CertifiesStable reports that ρ(A) < 1 is proven.
func (b Bounds) CertifiesStable() bool { return b.Upper < 1 }

// CertifiesUnstable reports that ρ(A) ≥ 1 is proven.
func (b Bounds) CertifiesUnstable() bool { return b.Lower >= 1 }

// Gap returns Upper - Lower.
func (b Bounds) Gap() float64 { return b.Upper - b.Lower }

func (b Bounds) String() string {
	return fmt.Sprintf("[%.6f, %.6f]", b.Lower, b.Upper)
}

// ErrEmptySet is returned when no matrices are supplied.
var ErrEmptySet = errors.New("jsr: empty matrix set")

// ErrNonFinite is returned when a supplied matrix contains a NaN or
// ±Inf entry. Non-finite entries must be rejected up front: every
// comparison against NaN is false, so a search run on such a set would
// never raise its lower bound or trip a prune test and would silently
// return a vacuous bracket (e.g. Upper stuck at 0, which reads as
// certified-stable).
var ErrNonFinite = errors.New("jsr: matrix set contains a non-finite entry")

// ErrBudget is returned by Gripenberg when the node or depth budget is
// exhausted before the requested accuracy δ is certified. The budget is
// spent before giving up: when a whole level no longer fits, the search
// expands as many frontier nodes as the remaining budget allows and
// folds their children into the bracket, so the bounds returned
// alongside ErrBudget are both valid and as tight as the budget could
// make them.
var ErrBudget = errors.New("jsr: node budget exhausted before reaching requested accuracy")

// ErrDeadline is returned when the context is cancelled or the
// wall-clock Deadline expires before the requested accuracy is
// certified. The bounds returned alongside it are valid best-so-far:
// the bracket reflects the last fully merged level, so it is safe to
// act on, and — when a Snapshot hook was installed — to resume from.
// Errors carrying ErrDeadline also wrap the context's cause, so both
// errors.Is(err, ErrDeadline) and errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) hold.
var ErrDeadline = errors.New("jsr: deadline or cancellation before reaching requested accuracy")

// deadlineErr composes ErrDeadline with the context's cause.
func deadlineErr(ctx context.Context, cause error) error {
	if cause == nil {
		cause = ctx.Err()
	}
	if cause == nil {
		return ErrDeadline
	}
	return fmt.Errorf("%w: %w", ErrDeadline, cause)
}

func validateSet(set []*mat.Dense) (int, error) {
	if len(set) == 0 {
		return 0, ErrEmptySet
	}
	n := set[0].Rows()
	for i, m := range set {
		if !m.IsSquare() || m.Rows() != n {
			return 0, fmt.Errorf("jsr: matrix %d is %d×%d, want %d×%d", i, m.Rows(), m.Cols(), n, n)
		}
		if m.HasNaN() {
			return 0, fmt.Errorf("jsr: matrix %d: %w", i, ErrNonFinite)
		}
	}
	return n, nil
}

// norm is the product norm used by both algorithms. The spectral norm
// gives the tightest one-step certificates among the cheap norms.
func norm(m *mat.Dense) float64 { return mat.TwoNorm(m) }

// WitnessRate replays a witness word against a matrix set and returns
// the averaged spectral radius ρ(P_w)^{1/len(w)} it attains — the
// lower-bound certificate the word encodes. The product is assembled in
// the same association order the estimators use (successive left
// multiplications), so replaying a WitnessWord returned together with a
// set reproduces the returned Lower bit for bit.
func WitnessRate(set []*mat.Dense, word []int) (float64, error) {
	if _, err := validateSet(set); err != nil {
		return 0, err
	}
	if len(word) == 0 {
		return 0, errors.New("jsr: empty witness word")
	}
	for _, i := range word {
		if i < 0 || i >= len(set) {
			return 0, fmt.Errorf("jsr: witness index %d out of range [0,%d)", i, len(set))
		}
	}
	p := set[word[0]]
	for _, i := range word[1:] {
		p = mat.Mul(set[i], p)
	}
	rho, err := mat.SpectralRadius(p)
	if err != nil {
		return 0, err
	}
	return math.Pow(rho, 1/float64(len(word))), nil
}

// ---------------------------------------------------------------------------
// Brute-force sandwich (Eq. 12), streamed.

// BruteForceOptions configures the brute-force enumeration. The zero
// value selects defaults.
type BruteForceOptions struct {
	// Workers is the number of enumeration goroutines; ≤ 0 selects
	// GOMAXPROCS. The returned Bounds are bit-identical for every value.
	Workers int
}

// bruteChunkCap bounds how many depth-first roots the shallow phase may
// materialize, which caps resident memory regardless of maxLen.
const bruteChunkCap = 4096

// levelBest accumulates the per-product-length extrema of the Eq. 12
// sandwich: the largest spectral radius (with the first word, in
// enumeration order, attaining it) and the largest norm.
type levelBest struct {
	rho  float64
	word []int
	norm float64
}

// fold merges a candidate into the accumulator; candidates must arrive
// in enumeration order (strictly-greater wins, so the first maximizer
// is kept).
func (lb *levelBest) fold(rho float64, word []int, nv float64) {
	if rho > lb.rho {
		lb.rho = rho
		lb.word = append([]int(nil), word...)
	}
	if nv > lb.norm {
		lb.norm = nv
	}
}

// foldLevel folds one fully materialized breadth-first level into its
// accumulator, in enumeration order.
func foldLevel(lb *levelBest, level []*mat.Dense, words [][]int) error {
	for pi, p := range level {
		rho, err := mat.SpectralRadius(p)
		if err != nil {
			return err
		}
		lb.fold(rho, words[pi], norm(p))
	}
	return nil
}

// expandLevel materializes the next breadth-first level in
// lexicographic word order.
func expandLevel(set []*mat.Dense, level []*mat.Dense, words [][]int) ([]*mat.Dense, [][]int) {
	next := make([]*mat.Dense, 0, len(level)*len(set))
	nextWords := make([][]int, 0, len(level)*len(set))
	for pi, p := range level {
		for ai, a := range set {
			next = append(next, mat.Mul(a, p))
			w := make([]int, len(words[pi])+1)
			copy(w, words[pi])
			w[len(w)-1] = ai
			nextWords = append(nextWords, w)
		}
	}
	return next, nextWords
}

// bruteFinalize assembles the Eq. 12 sandwich from the accumulators of
// levels 1..upTo. With upTo == 0 (a run cut before any level completed)
// the bracket is the vacuous [0, +Inf).
func bruteFinalize(acc []levelBest, upTo int) Bounds {
	lower := 0.0
	upper := math.Inf(1)
	var witness []int
	for l := 1; l <= upTo; l++ {
		exp := 1 / float64(l)
		if lb := math.Pow(acc[l].rho, exp); lb > lower {
			lower = lb
			witness = acc[l].word
		}
		if ub := math.Pow(acc[l].norm, exp); ub < upper {
			upper = ub
		}
	}
	if upper < lower {
		// Round-off at the crossover; collapse to a consistent point.
		upper = lower
	}
	return Bounds{Lower: lower, Upper: upper, WitnessWord: witness}
}

// BruteForceBounds evaluates every product of length 1..maxLen and
// returns the Eq. 12 sandwich with default options. The work grows as
// k^maxLen for k matrices; callers should keep k^maxLen below ~10⁶.
func BruteForceBounds(set []*mat.Dense, maxLen int) (Bounds, error) {
	return BruteForceBoundsOpt(set, maxLen, BruteForceOptions{})
}

// BruteForceBoundsOpt is BruteForceBounds with explicit options.
func BruteForceBoundsOpt(set []*mat.Dense, maxLen int, opt BruteForceOptions) (Bounds, error) {
	return BruteForceBoundsCtx(context.Background(), set, maxLen, opt)
}

// BruteForceBoundsCtx is BruteForceBoundsOpt honoring a context. The
// product tree is enumerated depth-first in chunks: a shallow
// breadth-first pass materializes at most bruteChunkCap subtree roots,
// and workers stream the deep levels holding one product per tree level
// each, so resident memory is O(chunk + workers·maxLen·n²) rather than
// the O(k^maxLen·n²) of a stored breadth-first sweep.
//
// On cancellation the sandwich over the fully completed levels is
// returned together with an error wrapping ErrDeadline — partial levels
// never contribute, because a norm maximum over part of a level is not
// a valid upper bound.
func BruteForceBoundsCtx(ctx context.Context, set []*mat.Dense, maxLen int, opt BruteForceOptions) (Bounds, error) {
	if _, err := validateSet(set); err != nil {
		return Bounds{}, err
	}
	if maxLen < 1 {
		return Bounds{}, fmt.Errorf("jsr: maxLen must be ≥ 1, got %d", maxLen)
	}
	workers := resolveWorkers(opt.Workers)
	k := len(set)

	// splitDepth is where breadth-first seeding stops and depth-first
	// streaming starts. The value depends on the worker count, but the
	// result does not: every word's product is assembled by the same
	// left-multiplication chain and every level is visited in the same
	// lexicographic order in either phase.
	splitDepth := 1
	for pow := k; splitDepth < maxLen && pow < 4*workers && pow*k <= bruteChunkCap; splitDepth++ {
		pow *= k
	}

	acc := make([]levelBest, maxLen+1)

	// Shallow phase: levels 1..splitDepth, breadth-first in
	// lexicographic word order; the last level seeds the chunks.
	level := make([]*mat.Dense, k)
	words := make([][]int, k)
	for i := range set {
		level[i] = set[i]
		words[i] = []int{i}
	}
	for l := 1; ; l++ {
		if err := ctx.Err(); err != nil {
			return bruteFinalize(acc, l-1), deadlineErr(ctx, err)
		}
		if err := foldLevel(&acc[l], level, words); err != nil {
			return Bounds{}, err
		}
		if l == splitDepth || l == maxLen {
			break
		}
		level, words = expandLevel(set, level, words)
	}

	// Deep phase: one depth-first stream per chunk, merged in chunk
	// order so the per-level "first maximizer" is the lexicographically
	// first one, exactly as a sequential sweep would pick it.
	if splitDepth < maxLen {
		// Per-worker scratch: one spectral-norm/eig workspace plus one
		// preallocated product buffer per tree level, so the streaming
		// DFS performs zero allocations per node (words are only
		// materialized on the rare fold improvements). A level-indexed
		// buffer is safe because a node's product is only read while its
		// children are computed, and children use the next level's
		// buffer. The scratch kernels are bit-identical to the
		// allocating ones, so bounds are unchanged.
		n := set[0].Rows()
		type deepScratch struct {
			ms    *mat.Scratch
			prods []*mat.Dense
			path  []int
		}
		scratch := make([]*deepScratch, workers)
		parts := make([][]levelBest, len(level))
		err := parallelSlots(ctx, len(level), workers, func(ctx context.Context, slot, lo, hi int) error {
			ds := scratch[slot]
			if ds == nil {
				ds = &deepScratch{ms: mat.NewScratch(n), prods: make([]*mat.Dense, maxLen+1), path: make([]int, maxLen)}
				for l := splitDepth + 1; l <= maxLen; l++ {
					ds.prods[l] = mat.New(n, n)
				}
				scratch[slot] = ds
			}
			for ci := lo; ci < hi; ci++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				part := make([]levelBest, maxLen+1)
				copy(ds.path, words[ci])
				var dfs func(prod *mat.Dense, length int) error
				dfs = func(prod *mat.Dense, length int) error {
					for ai := 0; ai < k; ai++ {
						if err := ctx.Err(); err != nil {
							return err
						}
						p := ds.prods[length+1]
						mat.MulInto(p, set[ai], prod)
						ds.path[length] = ai
						rho, err := mat.SpectralRadiusScratch(p, ds.ms)
						if err != nil {
							return err
						}
						part[length+1].fold(rho, ds.path[:length+1], mat.TwoNormScratch(p, ds.ms))
						if length+1 < maxLen {
							if err := dfs(p, length+1); err != nil {
								return err
							}
						}
					}
					return nil
				}
				if err := expandGuard(words[ci], func() error {
					return dfs(level[ci], splitDepth)
				}); err != nil {
					return err
				}
				parts[ci] = part
			}
			return nil
		})
		if err != nil {
			if isCtxErr(err) {
				// The deep phase is all-or-nothing: cut runs fall back
				// to the completed shallow levels.
				return bruteFinalize(acc, splitDepth), deadlineErr(ctx, err)
			}
			return Bounds{}, err
		}
		mergeDeepParts(acc, parts, splitDepth, maxLen)
	}
	return bruteFinalize(acc, maxLen), nil
}

// mergeDeepParts folds the per-chunk deep-phase accumulators into acc
// in chunk order, preserving the sequential first-maximizer tie-break.
func mergeDeepParts(acc []levelBest, parts [][]levelBest, splitDepth, maxLen int) {
	for _, part := range parts {
		for l := splitDepth + 1; l <= maxLen; l++ {
			acc[l].fold(part[l].rho, part[l].word, part[l].norm)
		}
	}
}

// ---------------------------------------------------------------------------
// Gripenberg branch-and-bound.

// GripenbergOptions configures the branch-and-bound search. Zero values
// select defaults.
type GripenbergOptions struct {
	Delta    float64 // target accuracy; default 1e-3
	MaxDepth int     // maximum product length; default 40
	MaxNodes int     // total node budget; default 2_000_000
	// Workers is the number of expansion goroutines; ≤ 0 selects
	// GOMAXPROCS. The returned Bounds are bit-identical for every value.
	Workers int
	// DisableEllipsoid turns off the ellipsoidal-norm preconditioning
	// that Gripenberg applies by default: the search runs on the
	// similarity-transformed set M·A·M⁻¹ (see Precondition), whose
	// 2-norm is the single-Lyapunov P-weighted norm of A, so branch
	// certificates are far tighter and the frontier drains much earlier.
	// Lower bounds are replayed against the caller's untransformed
	// matrices, so the bracket contract is unchanged. EstimateCtx and
	// EstimateRawCtx disable it internally (the former preconditions the
	// whole pipeline itself; the latter documents running raw).
	DisableEllipsoid bool
	// Deadline caps the wall-clock time of the search; ≤ 0 means no
	// cap. When it expires the best-so-far bracket is returned with an
	// error wrapping ErrDeadline (see GripenbergCtx for the boundary
	// semantics). In EstimateCtx one Deadline covers the whole
	// brute-force + Gripenberg pipeline.
	Deadline time.Duration
	// Snapshot, when non-nil, is invoked at every level boundary
	// (including the seed state) with the serializable search state; a
	// returned error aborts the search. Wire it to a checkpoint writer
	// to make long jobs crash-resumable.
	Snapshot func(GripenbergState) error
	// Resume, when non-nil, restarts the search from a snapshot instead
	// of the singleton seed. The matrix set must be the one the
	// snapshot was taken from (same content, same order); the resumed
	// search then finishes with bounds bit-identical to an
	// uninterrupted run. Supported by Gripenberg only; constrained
	// searches reject it.
	Resume *GripenbergState
	// Expand, when non-nil, replaces the in-process level expansion:
	// each level's (depth, parent words) are handed to the hook, which
	// must return the children's spectral radii and certificates in
	// frontier-major, matrix-index-minor order (see ExpandShard, whose
	// replay-based evaluation is bit-identical to the in-process
	// kernels). The merge, prune, and lower-bound logic are unchanged,
	// so a hook that shards the request across machines yields the same
	// Bounds, bit for bit, as a local run. Survivor products are then
	// rebuilt lazily on the caller from the parent chain — the same
	// multiplication the expansion kernel performs. Supported by
	// Gripenberg only; constrained searches reject it.
	Expand ExpandFunc
}

func (o GripenbergOptions) withDefaults() (GripenbergOptions, error) {
	//lint:ignore floatcompare the zero value of Delta is the documented "use the default" sentinel
	if o.Delta == 0 {
		o.Delta = 1e-3
	}
	if o.Delta < 0 {
		return o, fmt.Errorf("jsr: negative delta %g", o.Delta)
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 40
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 2_000_000
	}
	o.Workers = resolveWorkers(o.Workers)
	return o, nil
}

// GripenbergState is a serializable snapshot of a Gripenberg search at
// a level boundary. It stores product words only: on resume the
// products and branch certificates are replayed against the matrix set
// with exactly the multiplication chain and min/pow fold the original
// expansion used, so every recomputed float64 matches bit for bit and a
// resumed search ends with the same Bounds as an uninterrupted one.
// K pins the set cardinality; callers persisting snapshots across
// processes should additionally record a content hash of the set (the
// jsrtool checkpoint does).
type GripenbergState struct {
	K        int     // cardinality of the matrix set
	Depth    int     // product length of every frontier word
	Nodes    int     // node budget already spent
	Lower    float64 // best certified lower bound so far
	Witness  []int   // word attaining Lower
	Frontier [][]int // words of the live branches, in frontier order
	// Ellipsoid records whether the snapshotted search ran on the
	// ellipsoidally preconditioned set. Resume recomputes the (fully
	// deterministic) preconditioner rather than persisting the
	// transformed matrices, so a resume is only bit-identical when the
	// resuming options select the same mode; GripenbergCtx rejects a
	// mismatch. Old snapshots without the field decode to false, which
	// matches the raw searches that produced them.
	Ellipsoid bool
}

type gripNode struct {
	prod *mat.Dense
	word []int
	// cert is the branch certificate min over prefixes of ‖P‖^{1/len}:
	// every infinite continuation of this word has asymptotic growth
	// rate at most cert, so a branch with cert ≤ lower+δ cannot raise
	// the JSR beyond lower+δ and is pruned.
	cert float64
}

// gripChild is one freshly expanded product of a level-synchronous
// expansion pass; the word is reconstructed from the child index during
// the merge, so workers never allocate it.
type gripChild struct {
	prod *mat.Dense
	rho  float64
	cert float64
}

func frontierMax(fr []gripNode) float64 {
	m := 0.0
	for _, nd := range fr {
		if nd.cert > m {
			m = nd.cert
		}
	}
	return m
}

func childWord(parent []int, label int) []int {
	w := make([]int, len(parent)+1)
	copy(w, parent)
	w[len(w)-1] = label
	return w
}

// cutBounds is the valid bracket at a level boundary where the search
// stops early (budget, deadline, depth): the live certificates — and
// the pruned branches, which by construction sit below lower+δ — cap
// the JSR.
func cutBounds(lower, delta float64, witness []int, frontier []gripNode) Bounds {
	return Bounds{Lower: lower, Upper: math.Max(lower+delta, frontierMax(frontier)), WitnessWord: witness}
}

// seedFrontier builds the depth-1 frontier of singleton products and
// the initial lower bound, lowest index winning ties. The frontier
// (products and norm certificates) is built from work — the searched,
// possibly preconditioned set — while the lower-bound spectral radii
// are taken from raw, the caller's matrices, so the reported Lower is
// always a rate attained on the caller's set. For unpreconditioned
// searches work and raw are the same slice.
func seedFrontier(work, raw []*mat.Dense) ([]gripNode, float64, []int, error) {
	lower := 0.0
	var witness []int
	frontier := make([]gripNode, 0, len(work))
	for i, a := range work {
		rho, err := mat.SpectralRadius(raw[i])
		if err != nil {
			return nil, 0, nil, err
		}
		if rho > lower {
			lower = rho
			witness = []int{i}
		}
		frontier = append(frontier, gripNode{prod: a, word: []int{i}, cert: norm(a)})
	}
	return frontier, lower, witness, nil
}

// captureGripState deep-copies the loop-top state into a snapshot.
func captureGripState(k, depth, nodes int, lower float64, witness []int, frontier []gripNode, ellipsoid bool) GripenbergState {
	words := make([][]int, len(frontier))
	for i := range frontier {
		words[i] = append([]int(nil), frontier[i].word...)
	}
	return GripenbergState{
		K: k, Depth: depth, Nodes: nodes, Lower: lower,
		Witness:   append([]int(nil), witness...),
		Frontier:  words,
		Ellipsoid: ellipsoid,
	}
}

// rebuildFrontier replays a snapshot's words against the set: each
// node's product is the same left-multiplication chain and each
// certificate the same incremental min/pow fold the original expansion
// performed, so the rebuilt frontier is bit-identical to the one that
// was snapshotted.
func rebuildFrontier(set []*mat.Dense, st *GripenbergState) ([]gripNode, error) {
	if st.K != len(set) {
		return nil, fmt.Errorf("jsr: resume state is for %d matrices, set has %d", st.K, len(set))
	}
	if st.Depth < 1 {
		return nil, fmt.Errorf("jsr: resume state has invalid depth %d", st.Depth)
	}
	frontier := make([]gripNode, len(st.Frontier))
	for i, word := range st.Frontier {
		if len(word) != st.Depth {
			return nil, fmt.Errorf("jsr: resume frontier word %d has length %d, want depth %d", i, len(word), st.Depth)
		}
		for _, ai := range word {
			if ai < 0 || ai >= len(set) {
				return nil, fmt.Errorf("jsr: resume frontier word %d has index %d out of range [0,%d)", i, ai, len(set))
			}
		}
		prod := set[word[0]]
		cert := norm(prod)
		for l, ai := range word[1:] {
			prod = mat.Mul(set[ai], prod)
			cert = math.Min(cert, math.Pow(norm(prod), 1/float64(l+2)))
		}
		frontier[i] = gripNode{prod: prod, word: append([]int(nil), word...), cert: cert}
	}
	return frontier, nil
}

// mergeSurvivors keeps the children whose certificates survive the
// final per-level lower bound (at least as strong as the sequential
// running prune, and worker-count independent), materializing their
// words. Children produced by an Expand hook arrive without products;
// a survivor's product is then rebuilt here with the same
// left-multiplication the expansion kernel performs (mat.Mul and
// mat.MulInto share their computational core), so hook-driven searches
// stay bit-identical to local ones.
func mergeSurvivors(work []*mat.Dense, frontier []gripNode, children []gripChild, k int, bound float64) []gripNode {
	next := make([]gripNode, 0, len(children))
	for ci := range children {
		if c := &children[ci]; c.cert > bound {
			prod := c.prod
			if prod == nil {
				prod = mat.Mul(work[ci%k], frontier[ci/k].prod)
			}
			next = append(next, gripNode{
				prod: prod,
				word: childWord(frontier[ci/k].word, ci%k),
				cert: c.cert,
			})
		}
	}
	return next
}

// Gripenberg runs the branch-and-bound JSR algorithm with a background
// context; see GripenbergCtx.
func Gripenberg(set []*mat.Dense, opt GripenbergOptions) (Bounds, error) {
	return GripenbergCtx(context.Background(), set, opt)
}

// GripenbergCtx runs the branch-and-bound JSR algorithm. Each level of
// the search tree is expanded level-synchronously across the worker
// pool: the frontier is sharded by index, every child's spectral radius
// and norm certificate is computed independently, and the merge raises
// the lower bound with a lowest-index tie-break before pruning the
// children against the final per-level bound — so the result is
// identical for every worker count. On normal termination the true JSR
// lies in [Lower, Upper] with Upper ≤ Lower + δ. If the node budget
// runs out first, the remaining budget is spent on a partial level
// before valid but looser bounds are returned together with ErrBudget.
//
// Cancellation and the Deadline option degrade the same way: the search
// stops at a level boundary (a partially expanded level is discarded,
// keeping results worker-count independent), returns the bracket of the
// last fully merged level, and signals it with an error wrapping
// ErrDeadline. The Snapshot hook fires at every level boundary before
// the cancellation check, so the last persisted snapshot always matches
// the returned bounds and Resume continues bit-identically.
func GripenbergCtx(ctx context.Context, set []*mat.Dense, opt GripenbergOptions) (Bounds, error) {
	if _, err := validateSet(set); err != nil {
		return Bounds{}, err
	}
	opt, err := opt.withDefaults()
	if err != nil {
		return Bounds{}, err
	}
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}
	k := len(set)

	// Ellipsoidal pruning: run the whole search on the Lyapunov-
	// preconditioned set M·A·M⁻¹ (same JSR, far tighter norm
	// certificates) and replay every lower-bound candidate on the
	// caller's raw matrices so the returned Lower is exactly the rate
	// its WitnessWord attains on the caller's set. Running the entire
	// certificate chain in the transformed norm — rather than mixing
	// min(‖·‖₂, ‖·‖_P) per prefix — keeps every prune sound: a branch
	// certificate is only comparable with bounds computed in the same
	// norm. Precondition is deterministic, so resumed searches rebuild
	// the same transformed set.
	work := set
	ell := false
	if !opt.DisableEllipsoid {
		if t, _, ok := Precondition(set); ok {
			work, ell = t, true
		}
	}

	var (
		lower    float64
		witness  []int
		nodes    int
		frontier []gripNode
		depth    int
	)
	if opt.Resume != nil {
		if opt.Resume.Ellipsoid != ell {
			return Bounds{}, fmt.Errorf("jsr: resume state has ellipsoid preconditioning %v but this search resolved it to %v; set DisableEllipsoid to match the snapshotting run", opt.Resume.Ellipsoid, ell)
		}
		frontier, err = rebuildFrontier(work, opt.Resume)
		if err != nil {
			return Bounds{}, err
		}
		depth, nodes, lower = opt.Resume.Depth, opt.Resume.Nodes, opt.Resume.Lower
		witness = append([]int(nil), opt.Resume.Witness...)
	} else {
		frontier, lower, witness, err = seedFrontier(work, set)
		if err != nil {
			return Bounds{}, err
		}
		depth, nodes = 1, k
	}

	g := newGripSearch(work, opt.Workers)

	for len(frontier) > 0 && depth < opt.MaxDepth {
		// The loop top is a level boundary: snapshot it first, so even
		// a cut on this very iteration leaves a resumable state, then
		// honor cancellation with the best-so-far bracket.
		if opt.Snapshot != nil {
			if serr := opt.Snapshot(captureGripState(k, depth, nodes, lower, witness, frontier, ell)); serr != nil {
				return Bounds{}, fmt.Errorf("jsr: snapshot: %w", serr)
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			return cutBounds(lower, opt.Delta, witness, frontier), deadlineErr(ctx, cerr)
		}

		// Prune against the current lower bound.
		kept := frontier[:0]
		for _, nd := range frontier {
			if nd.cert > lower+opt.Delta {
				kept = append(kept, nd)
			}
		}
		frontier = kept
		if len(frontier) == 0 {
			break
		}

		// Budget: expand whole nodes only, and as many of them as the
		// remaining budget affords. A partial level still tightens
		// lower (and the certificates folded below) before ErrBudget.
		expand := len(frontier)
		if remaining := opt.MaxNodes - nodes; expand*k > remaining {
			expand = remaining / k
		}
		if expand == 0 {
			return cutBounds(lower, opt.Delta, witness, frontier), ErrBudget
		}

		depth++
		exp := 1 / float64(depth)
		var children []gripChild
		if opt.Expand != nil {
			children, err = expandViaHook(ctx, opt.Expand, frontier, expand, depth, k)
		} else {
			children, err = g.expandLevel(ctx, frontier, expand, depth, opt.Workers)
		}
		if err != nil {
			if isCtxErr(err) {
				// Mid-level cut: discard the partial level and report
				// the bracket of the last fully merged one — exactly
				// the state the Snapshot hook last persisted.
				return cutBounds(lower, opt.Delta, witness, frontier), deadlineErr(ctx, err)
			}
			return Bounds{}, err
		}
		nodes += expand * k

		// Merge pass 1: raise the lower bound; the scan order makes the
		// lowest-index maximizer the witness. Preconditioned searches
		// replay each improving candidate on the raw set: similarity
		// preserves spectral radii exactly in real arithmetic but not in
		// floating point, and Lower must be the rate the witness attains
		// on the caller's matrices. The replay keeps Lower a running
		// max, so interrupted brackets stay nested inside finished ones.
		if ell {
			for ci := range children {
				if lb := math.Pow(children[ci].rho, exp); lb > lower {
					w := childWord(frontier[ci/k].word, ci%k)
					if r, rerr := WitnessRate(set, w); rerr == nil && r > lower {
						lower, witness = r, w
					}
				}
			}
		} else {
			bestIdx := -1
			for ci := range children {
				if lb := math.Pow(children[ci].rho, exp); lb > lower {
					lower = lb
					bestIdx = ci
				}
			}
			if bestIdx >= 0 {
				witness = childWord(frontier[bestIdx/k].word, bestIdx%k)
			}
		}

		// Merge pass 2: keep children that survive the final per-level
		// lower bound.
		next := mergeSurvivors(work, frontier, children, k, lower+opt.Delta)

		if expand < len(frontier) {
			// Budget exhausted mid-level: unexpanded nodes stay live, so
			// their certificates cap the JSR alongside the new children's.
			upper := math.Max(lower+opt.Delta, math.Max(frontierMax(next), frontierMax(frontier[expand:])))
			return Bounds{Lower: lower, Upper: upper, WitnessWord: witness}, ErrBudget
		}
		frontier = next
	}
	if len(frontier) == 0 {
		return Bounds{Lower: lower, Upper: lower + opt.Delta, WitnessWord: witness}, nil
	}
	// Depth limit hit with live branches: their certificates cap the JSR.
	return cutBounds(lower, opt.Delta, witness, frontier), ErrBudget
}

// EstimateRawCtx reproduces EstimateCtx's bracket merge without the
// Lyapunov preconditioning — the -raw mode of jsrtool and the
// certification service. Budget or deadline cuts from either phase are
// tolerated: the returned bracket is valid best-so-far and the error
// joins whatever the phases reported, exactly as EstimateCtx does.
// Witness replay is unnecessary here because both phases already ran on
// the caller's matrices.
func EstimateRawCtx(ctx context.Context, set []*mat.Dense, bruteLen int, opt GripenbergOptions) (Bounds, error) {
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
		opt.Deadline = 0
	}
	// Raw means raw: no preconditioning anywhere in this pipeline.
	opt.DisableEllipsoid = true
	bf, bferr := BruteForceBoundsCtx(ctx, set, bruteLen, BruteForceOptions{Workers: opt.Workers})
	if bferr != nil && !errors.Is(bferr, ErrDeadline) {
		return Bounds{}, bferr
	}
	gp, gerr := GripenbergCtx(ctx, set, opt)
	if gerr != nil && !errors.Is(gerr, ErrBudget) && !errors.Is(gerr, ErrDeadline) {
		return Bounds{}, gerr
	}
	out := Bounds{
		Lower:       math.Max(bf.Lower, gp.Lower),
		Upper:       math.Min(bf.Upper, gp.Upper),
		WitnessWord: bf.WitnessWord,
	}
	if gp.Lower > bf.Lower {
		out.WitnessWord = gp.WitnessWord
	}
	return out, errors.Join(bferr, gerr)
}

// Estimate combines both algorithms with a background context; see
// EstimateCtx.
func Estimate(set []*mat.Dense, bruteLen int, opt GripenbergOptions) (Bounds, error) {
	return EstimateCtx(context.Background(), set, bruteLen, opt)
}

// EstimateCtx combines both algorithms with Lyapunov preconditioning:
// the set is first transformed by a simultaneous similarity
// (JSR-invariant) that tightens the norm certificates, then a shallow
// brute-force pass provides a lower bound and norm sandwich and
// Gripenberg refines to the requested accuracy; the intersection of the
// two brackets is returned. The witness is replayed against the
// caller's (untransformed) matrices and Lower is set to the rate it
// actually attains there, so WitnessRate(set, out.WitnessWord)
// reproduces out.Lower. A non-nil error satisfying errors.Is for
// ErrBudget or ErrDeadline indicates the bracket is looser than
// requested but still valid — this holds on the parallel worker paths
// too, not just the sequential ones. One opt.Deadline covers the whole
// pipeline; opt.Snapshot/opt.Resume apply to the Gripenberg phase
// (whose state lives on the preconditioned set — resuming recomputes
// the same deterministic preconditioner first).
func EstimateCtx(ctx context.Context, set []*mat.Dense, bruteLen int, opt GripenbergOptions) (Bounds, error) {
	if opt.Deadline > 0 {
		// One wall-clock budget for the pipeline; zero it so the
		// Gripenberg phase does not restart the clock after brute force.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
		opt.Deadline = 0
	}
	work, _, _ := Precondition(set)
	// The whole pipeline already runs on the preconditioned set; a
	// second transform inside Gripenberg would help nothing and would
	// make the Gripenberg-phase snapshots depend on a doubly-transformed
	// set.
	opt.DisableEllipsoid = true
	bf, bferr := BruteForceBoundsCtx(ctx, work, bruteLen, BruteForceOptions{Workers: opt.Workers})
	if bferr != nil && !errors.Is(bferr, ErrDeadline) {
		return Bounds{}, bferr
	}
	gp, gerr := GripenbergCtx(ctx, work, opt)
	if gerr != nil && !errors.Is(gerr, ErrBudget) && !errors.Is(gerr, ErrDeadline) {
		return Bounds{}, gerr
	}
	out := Bounds{
		Lower:       math.Max(bf.Lower, gp.Lower),
		Upper:       math.Min(bf.Upper, gp.Upper),
		WitnessWord: bf.WitnessWord,
	}
	if gp.Lower > bf.Lower {
		out.WitnessWord = gp.WitnessWord
	}
	// The bracket above was computed on the transformed set. Similarity
	// preserves spectral radii exactly in real arithmetic but not in
	// floating point, so replay both candidate witnesses on the original
	// matrices and return the best rate actually attained there.
	bestRate, bestWord := 0.0, out.WitnessWord
	for _, w := range [][]int{bf.WitnessWord, gp.WitnessWord} {
		if len(w) == 0 {
			continue
		}
		rate, rerr := WitnessRate(set, w)
		if rerr != nil {
			continue
		}
		if rate > bestRate {
			bestRate, bestWord = rate, w
		}
	}
	if bestRate > 0 {
		out.Lower = bestRate
		out.WitnessWord = bestWord
	}
	if out.Upper < out.Lower {
		out.Upper = out.Lower
	}
	return out, errors.Join(bferr, gerr)
}
