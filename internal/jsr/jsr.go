// Package jsr computes bounds on the joint spectral radius (JSR) of a
// finite set of matrices — the quantity the paper uses to decide
// asymptotic stability of the switched closed loop ξ(k+1) = Ω(h_k) ξ(k)
// under arbitrary switching (Section V):
//
//	ρ(A) = lim_{m→∞} max_σ ‖Ω_σm‖^{1/m}
//
// The system is asymptotically stable for every possible sequence of
// overruns if and only if ρ(A) < 1 (Eq. 10).
//
// Two estimators are provided:
//
//   - BruteForceBounds enumerates all products up to a given length and
//     applies the Gel'fand–Berger–Wang sandwich (Eq. 12):
//     max_ℓ max_σ ρ(Ω_σℓ)^{1/ℓ} ≤ ρ(A) ≤ min_ℓ max_σ ‖Ω_σℓ‖^{1/ℓ}.
//
//   - Gripenberg runs the classic branch-and-bound: it grows products,
//     raises the lower bound with every spectral radius it sees, and
//     prunes any branch whose norm certificate cannot push the JSR
//     above lower+δ, terminating with ρ(A) ∈ [lower, lower+δ] when the
//     frontier drains (G. Gripenberg, "Computing the joint spectral
//     radius", 1996).
//
// Both return certified bounds, not estimates: the upper bounds are
// valid regardless of truncation depth.
package jsr

import (
	"errors"
	"fmt"
	"math"

	"adaptivertc/internal/mat"
)

// Bounds brackets the joint spectral radius. WitnessWord, when
// non-empty, is the index sequence (in product order: the word w with
// P_w = A_{w[len-1]} ··· A_{w[0]}) whose averaged spectral radius
// attains Lower — for the closed-loop sets of this repository it is the
// worst-case overrun pattern the analysis found.
type Bounds struct {
	Lower       float64
	Upper       float64
	WitnessWord []int
}

// CertifiesStable reports that ρ(A) < 1 is proven.
func (b Bounds) CertifiesStable() bool { return b.Upper < 1 }

// CertifiesUnstable reports that ρ(A) ≥ 1 is proven.
func (b Bounds) CertifiesUnstable() bool { return b.Lower >= 1 }

// Gap returns Upper - Lower.
func (b Bounds) Gap() float64 { return b.Upper - b.Lower }

func (b Bounds) String() string {
	return fmt.Sprintf("[%.6f, %.6f]", b.Lower, b.Upper)
}

// ErrEmptySet is returned when no matrices are supplied.
var ErrEmptySet = errors.New("jsr: empty matrix set")

// ErrBudget is returned by Gripenberg when the node budget is exhausted
// before the requested accuracy δ is certified; the bounds returned
// alongside are still valid.
var ErrBudget = errors.New("jsr: node budget exhausted before reaching requested accuracy")

func validateSet(set []*mat.Dense) (int, error) {
	if len(set) == 0 {
		return 0, ErrEmptySet
	}
	n := set[0].Rows()
	for i, m := range set {
		if !m.IsSquare() || m.Rows() != n {
			return 0, fmt.Errorf("jsr: matrix %d is %d×%d, want %d×%d", i, m.Rows(), m.Cols(), n, n)
		}
	}
	return n, nil
}

// norm is the product norm used by both algorithms. The spectral norm
// gives the tightest one-step certificates among the cheap norms.
func norm(m *mat.Dense) float64 { return mat.TwoNorm(m) }

// BruteForceBounds evaluates every product of length 1..maxLen and
// returns the Eq. 12 sandwich. The work grows as k^maxLen for k
// matrices; callers should keep k^maxLen below ~10⁶.
func BruteForceBounds(set []*mat.Dense, maxLen int) (Bounds, error) {
	if _, err := validateSet(set); err != nil {
		return Bounds{}, err
	}
	if maxLen < 1 {
		return Bounds{}, fmt.Errorf("jsr: maxLen must be ≥ 1, got %d", maxLen)
	}
	lower := 0.0
	upper := math.Inf(1)
	var witness []int
	level := make([]*mat.Dense, len(set))
	words := make([][]int, len(set))
	for i := range set {
		level[i] = set[i]
		words[i] = []int{i}
	}
	for l := 1; l <= maxLen; l++ {
		maxNorm := 0.0
		exp := 1 / float64(l)
		for pi, p := range level {
			rho, err := mat.SpectralRadius(p)
			if err != nil {
				return Bounds{}, err
			}
			if lb := math.Pow(rho, exp); lb > lower {
				lower = lb
				witness = words[pi]
			}
			if nv := norm(p); nv > maxNorm {
				maxNorm = nv
			}
		}
		if ub := math.Pow(maxNorm, exp); ub < upper {
			upper = ub
		}
		if l == maxLen {
			break
		}
		next := make([]*mat.Dense, 0, len(level)*len(set))
		nextWords := make([][]int, 0, len(level)*len(set))
		for pi, p := range level {
			for ai, a := range set {
				next = append(next, mat.Mul(a, p))
				w := make([]int, len(words[pi])+1)
				copy(w, words[pi])
				w[len(w)-1] = ai
				nextWords = append(nextWords, w)
			}
		}
		level = next
		words = nextWords
	}
	if upper < lower {
		// Round-off at the crossover; collapse to a consistent point.
		upper = lower
	}
	return Bounds{Lower: lower, Upper: upper, WitnessWord: witness}, nil
}

// GripenbergOptions configures the branch-and-bound search. Zero values
// select defaults.
type GripenbergOptions struct {
	Delta    float64 // target accuracy; default 1e-3
	MaxDepth int     // maximum product length; default 40
	MaxNodes int     // total node budget; default 2_000_000
}

type gripNode struct {
	prod *mat.Dense
	word []int
	// cert is the branch certificate min over prefixes of ‖P‖^{1/len}:
	// every infinite continuation of this word has asymptotic growth
	// rate at most cert, so a branch with cert ≤ lower+δ cannot raise
	// the JSR beyond lower+δ and is pruned.
	cert float64
}

// Gripenberg runs the branch-and-bound JSR algorithm. On normal
// termination the true JSR lies in [Lower, Upper] with
// Upper ≤ Lower + δ. If the node budget is exhausted first, valid but
// looser bounds are returned together with ErrBudget.
func Gripenberg(set []*mat.Dense, opt GripenbergOptions) (Bounds, error) {
	if _, err := validateSet(set); err != nil {
		return Bounds{}, err
	}
	//lint:ignore floatcompare the zero value of Delta is the documented "use the default" sentinel
	if opt.Delta == 0 {
		opt.Delta = 1e-3
	}
	if opt.Delta < 0 {
		return Bounds{}, fmt.Errorf("jsr: negative delta %g", opt.Delta)
	}
	if opt.MaxDepth == 0 {
		opt.MaxDepth = 40
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 2_000_000
	}

	lower := 0.0
	var witness []int
	nodes := 0
	frontier := make([]gripNode, 0, len(set))
	for i, a := range set {
		rho, err := mat.SpectralRadius(a)
		if err != nil {
			return Bounds{}, err
		}
		if rho > lower {
			lower = rho
			witness = []int{i}
		}
		frontier = append(frontier, gripNode{prod: a, word: []int{i}, cert: norm(a)})
		nodes++
	}

	frontierMax := func(fr []gripNode) float64 {
		m := 0.0
		for _, nd := range fr {
			if nd.cert > m {
				m = nd.cert
			}
		}
		return m
	}

	depth := 1
	for len(frontier) > 0 && depth < opt.MaxDepth {
		// Prune against the current lower bound.
		kept := frontier[:0]
		for _, nd := range frontier {
			if nd.cert > lower+opt.Delta {
				kept = append(kept, nd)
			}
		}
		frontier = kept
		if len(frontier) == 0 {
			break
		}
		if nodes+len(frontier)*len(set) > opt.MaxNodes {
			return Bounds{Lower: lower, Upper: math.Max(lower+opt.Delta, frontierMax(frontier)), WitnessWord: witness}, ErrBudget
		}
		depth++
		next := make([]gripNode, 0, len(frontier)*len(set))
		exp := 1 / float64(depth)
		for _, nd := range frontier {
			for ai, a := range set {
				p := mat.Mul(a, nd.prod)
				nodes++
				rho, err := mat.SpectralRadius(p)
				if err != nil {
					return Bounds{}, err
				}
				var word []int
				makeWord := func() []int {
					if word == nil {
						word = make([]int, len(nd.word)+1)
						copy(word, nd.word)
						word[len(word)-1] = ai
					}
					return word
				}
				if lb := math.Pow(rho, exp); lb > lower {
					lower = lb
					witness = makeWord()
				}
				cert := math.Min(nd.cert, math.Pow(norm(p), exp))
				if cert > lower+opt.Delta {
					next = append(next, gripNode{prod: p, word: makeWord(), cert: cert})
				}
			}
		}
		frontier = next
	}
	if len(frontier) == 0 {
		return Bounds{Lower: lower, Upper: lower + opt.Delta, WitnessWord: witness}, nil
	}
	// Depth limit hit with live branches: their certificates cap the JSR.
	return Bounds{Lower: lower, Upper: math.Max(lower+opt.Delta, frontierMax(frontier)), WitnessWord: witness}, ErrBudget
}

// Estimate combines both algorithms with Lyapunov preconditioning: the
// set is first transformed by a simultaneous similarity (JSR-invariant)
// that tightens the norm certificates, then a shallow brute-force pass
// provides a lower bound and norm sandwich and Gripenberg refines to
// the requested accuracy; the intersection of the two brackets is
// returned. A non-nil error (ErrBudget) indicates the bracket is looser
// than requested but still valid.
func Estimate(set []*mat.Dense, bruteLen int, opt GripenbergOptions) (Bounds, error) {
	work, _, _ := Precondition(set)
	bf, err := BruteForceBounds(work, bruteLen)
	if err != nil {
		return Bounds{}, err
	}
	gp, gerr := Gripenberg(work, opt)
	out := Bounds{
		Lower:       math.Max(bf.Lower, gp.Lower),
		Upper:       math.Min(bf.Upper, gp.Upper),
		WitnessWord: bf.WitnessWord,
	}
	if gp.Lower > bf.Lower {
		out.WitnessWord = gp.WitnessWord
	}
	if out.Upper < out.Lower {
		out.Upper = out.Lower
	}
	return out, gerr
}
