// Package jsr computes bounds on the joint spectral radius (JSR) of a
// finite set of matrices — the quantity the paper uses to decide
// asymptotic stability of the switched closed loop ξ(k+1) = Ω(h_k) ξ(k)
// under arbitrary switching (Section V):
//
//	ρ(A) = lim_{m→∞} max_σ ‖Ω_σm‖^{1/m}
//
// The system is asymptotically stable for every possible sequence of
// overruns if and only if ρ(A) < 1 (Eq. 10).
//
// Two estimators are provided:
//
//   - BruteForceBounds enumerates all products up to a given length and
//     applies the Gel'fand–Berger–Wang sandwich (Eq. 12):
//     max_ℓ max_σ ρ(Ω_σℓ)^{1/ℓ} ≤ ρ(A) ≤ min_ℓ max_σ ‖Ω_σℓ‖^{1/ℓ}.
//
//   - Gripenberg runs the classic branch-and-bound: it grows products,
//     raises the lower bound with every spectral radius it sees, and
//     prunes any branch whose norm certificate cannot push the JSR
//     above lower+δ, terminating with ρ(A) ∈ [lower, lower+δ] when the
//     frontier drains (G. Gripenberg, "Computing the joint spectral
//     radius", 1996).
//
// Both return certified bounds, not estimates: the upper bounds are
// valid regardless of truncation depth. Both are parallel: independent
// subtrees of the product tree are sharded across a worker pool, and
// the merge is deterministic, so the returned Bounds (including the
// WitnessWord) are bit-identical for every worker count.
package jsr

import (
	"errors"
	"fmt"
	"math"

	"adaptivertc/internal/mat"
)

// Bounds brackets the joint spectral radius. WitnessWord, when
// non-empty, is the index sequence (in product order: the word w with
// P_w = A_{w[len-1]} ··· A_{w[0]}) whose averaged spectral radius
// attains Lower — for the closed-loop sets of this repository it is the
// worst-case overrun pattern the analysis found.
type Bounds struct {
	Lower       float64
	Upper       float64
	WitnessWord []int
}

// CertifiesStable reports that ρ(A) < 1 is proven.
func (b Bounds) CertifiesStable() bool { return b.Upper < 1 }

// CertifiesUnstable reports that ρ(A) ≥ 1 is proven.
func (b Bounds) CertifiesUnstable() bool { return b.Lower >= 1 }

// Gap returns Upper - Lower.
func (b Bounds) Gap() float64 { return b.Upper - b.Lower }

func (b Bounds) String() string {
	return fmt.Sprintf("[%.6f, %.6f]", b.Lower, b.Upper)
}

// ErrEmptySet is returned when no matrices are supplied.
var ErrEmptySet = errors.New("jsr: empty matrix set")

// ErrBudget is returned by Gripenberg when the node or depth budget is
// exhausted before the requested accuracy δ is certified. The budget is
// spent before giving up: when a whole level no longer fits, the search
// expands as many frontier nodes as the remaining budget allows and
// folds their children into the bracket, so the bounds returned
// alongside ErrBudget are both valid and as tight as the budget could
// make them.
var ErrBudget = errors.New("jsr: node budget exhausted before reaching requested accuracy")

func validateSet(set []*mat.Dense) (int, error) {
	if len(set) == 0 {
		return 0, ErrEmptySet
	}
	n := set[0].Rows()
	for i, m := range set {
		if !m.IsSquare() || m.Rows() != n {
			return 0, fmt.Errorf("jsr: matrix %d is %d×%d, want %d×%d", i, m.Rows(), m.Cols(), n, n)
		}
	}
	return n, nil
}

// norm is the product norm used by both algorithms. The spectral norm
// gives the tightest one-step certificates among the cheap norms.
func norm(m *mat.Dense) float64 { return mat.TwoNorm(m) }

// WitnessRate replays a witness word against a matrix set and returns
// the averaged spectral radius ρ(P_w)^{1/len(w)} it attains — the
// lower-bound certificate the word encodes. The product is assembled in
// the same association order the estimators use (successive left
// multiplications), so replaying a WitnessWord returned together with a
// set reproduces the returned Lower bit for bit.
func WitnessRate(set []*mat.Dense, word []int) (float64, error) {
	if _, err := validateSet(set); err != nil {
		return 0, err
	}
	if len(word) == 0 {
		return 0, errors.New("jsr: empty witness word")
	}
	for _, i := range word {
		if i < 0 || i >= len(set) {
			return 0, fmt.Errorf("jsr: witness index %d out of range [0,%d)", i, len(set))
		}
	}
	p := set[word[0]]
	for _, i := range word[1:] {
		p = mat.Mul(set[i], p)
	}
	rho, err := mat.SpectralRadius(p)
	if err != nil {
		return 0, err
	}
	return math.Pow(rho, 1/float64(len(word))), nil
}

// ---------------------------------------------------------------------------
// Brute-force sandwich (Eq. 12), streamed.

// BruteForceOptions configures the brute-force enumeration. The zero
// value selects defaults.
type BruteForceOptions struct {
	// Workers is the number of enumeration goroutines; ≤ 0 selects
	// GOMAXPROCS. The returned Bounds are bit-identical for every value.
	Workers int
}

// bruteChunkCap bounds how many depth-first roots the shallow phase may
// materialize, which caps resident memory regardless of maxLen.
const bruteChunkCap = 4096

// levelBest accumulates the per-product-length extrema of the Eq. 12
// sandwich: the largest spectral radius (with the first word, in
// enumeration order, attaining it) and the largest norm.
type levelBest struct {
	rho  float64
	word []int
	norm float64
}

// fold merges a candidate into the accumulator; candidates must arrive
// in enumeration order (strictly-greater wins, so the first maximizer
// is kept).
func (lb *levelBest) fold(rho float64, word []int, nv float64) {
	if rho > lb.rho {
		lb.rho = rho
		lb.word = append([]int(nil), word...)
	}
	if nv > lb.norm {
		lb.norm = nv
	}
}

// BruteForceBounds evaluates every product of length 1..maxLen and
// returns the Eq. 12 sandwich with default options. The work grows as
// k^maxLen for k matrices; callers should keep k^maxLen below ~10⁶.
func BruteForceBounds(set []*mat.Dense, maxLen int) (Bounds, error) {
	return BruteForceBoundsOpt(set, maxLen, BruteForceOptions{})
}

// BruteForceBoundsOpt is BruteForceBounds with explicit options. The
// product tree is enumerated depth-first in chunks: a shallow
// breadth-first pass materializes at most bruteChunkCap subtree roots,
// and workers stream the deep levels holding one product per tree level
// each, so resident memory is O(chunk + workers·maxLen·n²) rather than
// the O(k^maxLen·n²) of a stored breadth-first sweep.
func BruteForceBoundsOpt(set []*mat.Dense, maxLen int, opt BruteForceOptions) (Bounds, error) {
	if _, err := validateSet(set); err != nil {
		return Bounds{}, err
	}
	if maxLen < 1 {
		return Bounds{}, fmt.Errorf("jsr: maxLen must be ≥ 1, got %d", maxLen)
	}
	workers := resolveWorkers(opt.Workers)
	k := len(set)

	// splitDepth is where breadth-first seeding stops and depth-first
	// streaming starts. The value depends on the worker count, but the
	// result does not: every word's product is assembled by the same
	// left-multiplication chain and every level is visited in the same
	// lexicographic order in either phase.
	splitDepth := 1
	for pow := k; splitDepth < maxLen && pow < 4*workers && pow*k <= bruteChunkCap; splitDepth++ {
		pow *= k
	}

	acc := make([]levelBest, maxLen+1)

	// Shallow phase: levels 1..splitDepth, breadth-first in
	// lexicographic word order; the last level seeds the chunks.
	level := make([]*mat.Dense, k)
	words := make([][]int, k)
	for i := range set {
		level[i] = set[i]
		words[i] = []int{i}
	}
	for l := 1; ; l++ {
		for pi, p := range level {
			rho, err := mat.SpectralRadius(p)
			if err != nil {
				return Bounds{}, err
			}
			acc[l].fold(rho, words[pi], norm(p))
		}
		if l == splitDepth || l == maxLen {
			break
		}
		next := make([]*mat.Dense, 0, len(level)*k)
		nextWords := make([][]int, 0, len(level)*k)
		for pi, p := range level {
			for ai, a := range set {
				next = append(next, mat.Mul(a, p))
				w := make([]int, len(words[pi])+1)
				copy(w, words[pi])
				w[len(w)-1] = ai
				nextWords = append(nextWords, w)
			}
		}
		level = next
		words = nextWords
	}

	// Deep phase: one depth-first stream per chunk, merged in chunk
	// order so the per-level "first maximizer" is the lexicographically
	// first one, exactly as a sequential sweep would pick it.
	if splitDepth < maxLen {
		parts := make([][]levelBest, len(level))
		err := parallelRanges(len(level), workers, func(lo, hi int) error {
			path := make([]int, maxLen)
			for ci := lo; ci < hi; ci++ {
				part := make([]levelBest, maxLen+1)
				copy(path, words[ci])
				var dfs func(prod *mat.Dense, length int) error
				dfs = func(prod *mat.Dense, length int) error {
					for ai := 0; ai < k; ai++ {
						p := mat.Mul(set[ai], prod)
						path[length] = ai
						rho, err := mat.SpectralRadius(p)
						if err != nil {
							return err
						}
						part[length+1].fold(rho, path[:length+1], norm(p))
						if length+1 < maxLen {
							if err := dfs(p, length+1); err != nil {
								return err
							}
						}
					}
					return nil
				}
				if err := dfs(level[ci], splitDepth); err != nil {
					return err
				}
				parts[ci] = part
			}
			return nil
		})
		if err != nil {
			return Bounds{}, err
		}
		for _, part := range parts {
			for l := splitDepth + 1; l <= maxLen; l++ {
				acc[l].fold(part[l].rho, part[l].word, part[l].norm)
			}
		}
	}

	lower := 0.0
	upper := math.Inf(1)
	var witness []int
	for l := 1; l <= maxLen; l++ {
		exp := 1 / float64(l)
		if lb := math.Pow(acc[l].rho, exp); lb > lower {
			lower = lb
			witness = acc[l].word
		}
		if ub := math.Pow(acc[l].norm, exp); ub < upper {
			upper = ub
		}
	}
	if upper < lower {
		// Round-off at the crossover; collapse to a consistent point.
		upper = lower
	}
	return Bounds{Lower: lower, Upper: upper, WitnessWord: witness}, nil
}

// ---------------------------------------------------------------------------
// Gripenberg branch-and-bound.

// GripenbergOptions configures the branch-and-bound search. Zero values
// select defaults.
type GripenbergOptions struct {
	Delta    float64 // target accuracy; default 1e-3
	MaxDepth int     // maximum product length; default 40
	MaxNodes int     // total node budget; default 2_000_000
	// Workers is the number of expansion goroutines; ≤ 0 selects
	// GOMAXPROCS. The returned Bounds are bit-identical for every value.
	Workers int
}

func (o GripenbergOptions) withDefaults() (GripenbergOptions, error) {
	//lint:ignore floatcompare the zero value of Delta is the documented "use the default" sentinel
	if o.Delta == 0 {
		o.Delta = 1e-3
	}
	if o.Delta < 0 {
		return o, fmt.Errorf("jsr: negative delta %g", o.Delta)
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 40
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 2_000_000
	}
	o.Workers = resolveWorkers(o.Workers)
	return o, nil
}

type gripNode struct {
	prod *mat.Dense
	word []int
	// cert is the branch certificate min over prefixes of ‖P‖^{1/len}:
	// every infinite continuation of this word has asymptotic growth
	// rate at most cert, so a branch with cert ≤ lower+δ cannot raise
	// the JSR beyond lower+δ and is pruned.
	cert float64
}

// gripChild is one freshly expanded product of a level-synchronous
// expansion pass; the word is reconstructed from the child index during
// the merge, so workers never allocate it.
type gripChild struct {
	prod *mat.Dense
	rho  float64
	cert float64
}

func frontierMax(fr []gripNode) float64 {
	m := 0.0
	for _, nd := range fr {
		if nd.cert > m {
			m = nd.cert
		}
	}
	return m
}

func childWord(parent []int, label int) []int {
	w := make([]int, len(parent)+1)
	copy(w, parent)
	w[len(w)-1] = label
	return w
}

// Gripenberg runs the branch-and-bound JSR algorithm. Each level of the
// search tree is expanded level-synchronously across the worker pool:
// the frontier is sharded by index, every child's spectral radius and
// norm certificate is computed independently, and the merge raises the
// lower bound with a lowest-index tie-break before pruning the children
// against the final per-level bound — so the result is identical for
// every worker count. On normal termination the true JSR lies in
// [Lower, Upper] with Upper ≤ Lower + δ. If the node budget runs out
// first, the remaining budget is spent on a partial level before valid
// but looser bounds are returned together with ErrBudget.
func Gripenberg(set []*mat.Dense, opt GripenbergOptions) (Bounds, error) {
	if _, err := validateSet(set); err != nil {
		return Bounds{}, err
	}
	opt, err := opt.withDefaults()
	if err != nil {
		return Bounds{}, err
	}
	k := len(set)

	lower := 0.0
	var witness []int
	nodes := 0
	frontier := make([]gripNode, 0, k)
	for i, a := range set {
		rho, err := mat.SpectralRadius(a)
		if err != nil {
			return Bounds{}, err
		}
		if rho > lower {
			lower = rho
			witness = []int{i}
		}
		frontier = append(frontier, gripNode{prod: a, word: []int{i}, cert: norm(a)})
		nodes++
	}

	depth := 1
	for len(frontier) > 0 && depth < opt.MaxDepth {
		// Prune against the current lower bound.
		kept := frontier[:0]
		for _, nd := range frontier {
			if nd.cert > lower+opt.Delta {
				kept = append(kept, nd)
			}
		}
		frontier = kept
		if len(frontier) == 0 {
			break
		}

		// Budget: expand whole nodes only, and as many of them as the
		// remaining budget affords. A partial level still tightens
		// lower (and the certificates folded below) before ErrBudget.
		expand := len(frontier)
		if remaining := opt.MaxNodes - nodes; expand*k > remaining {
			expand = remaining / k
		}
		if expand == 0 {
			return Bounds{Lower: lower, Upper: math.Max(lower+opt.Delta, frontierMax(frontier)), WitnessWord: witness}, ErrBudget
		}

		depth++
		exp := 1 / float64(depth)
		children := make([]gripChild, expand*k)
		err := parallelRanges(expand, opt.Workers, func(lo, hi int) error {
			for fi := lo; fi < hi; fi++ {
				nd := frontier[fi]
				for ai, a := range set {
					p := mat.Mul(a, nd.prod)
					rho, err := mat.SpectralRadius(p)
					if err != nil {
						return err
					}
					children[fi*k+ai] = gripChild{
						prod: p,
						rho:  rho,
						cert: math.Min(nd.cert, math.Pow(norm(p), exp)),
					}
				}
			}
			return nil
		})
		if err != nil {
			return Bounds{}, err
		}
		nodes += expand * k

		// Merge pass 1: raise the lower bound; the scan order makes the
		// lowest-index maximizer the witness.
		bestIdx := -1
		for ci := range children {
			if lb := math.Pow(children[ci].rho, exp); lb > lower {
				lower = lb
				bestIdx = ci
			}
		}
		if bestIdx >= 0 {
			witness = childWord(frontier[bestIdx/k].word, bestIdx%k)
		}

		// Merge pass 2: keep children that survive the final per-level
		// lower bound (at least as strong as the sequential running
		// prune, and worker-count independent).
		next := make([]gripNode, 0, len(children))
		for ci := range children {
			if c := &children[ci]; c.cert > lower+opt.Delta {
				next = append(next, gripNode{
					prod: c.prod,
					word: childWord(frontier[ci/k].word, ci%k),
					cert: c.cert,
				})
			}
		}

		if expand < len(frontier) {
			// Budget exhausted mid-level: unexpanded nodes stay live, so
			// their certificates cap the JSR alongside the new children's.
			upper := math.Max(lower+opt.Delta, math.Max(frontierMax(next), frontierMax(frontier[expand:])))
			return Bounds{Lower: lower, Upper: upper, WitnessWord: witness}, ErrBudget
		}
		frontier = next
	}
	if len(frontier) == 0 {
		return Bounds{Lower: lower, Upper: lower + opt.Delta, WitnessWord: witness}, nil
	}
	// Depth limit hit with live branches: their certificates cap the JSR.
	return Bounds{Lower: lower, Upper: math.Max(lower+opt.Delta, frontierMax(frontier)), WitnessWord: witness}, ErrBudget
}

// Estimate combines both algorithms with Lyapunov preconditioning: the
// set is first transformed by a simultaneous similarity (JSR-invariant)
// that tightens the norm certificates, then a shallow brute-force pass
// provides a lower bound and norm sandwich and Gripenberg refines to
// the requested accuracy; the intersection of the two brackets is
// returned. The witness is replayed against the caller's (untransformed)
// matrices and Lower is set to the rate it actually attains there, so
// WitnessRate(set, out.WitnessWord) reproduces out.Lower. A non-nil
// error (ErrBudget) indicates the bracket is looser than requested but
// still valid.
func Estimate(set []*mat.Dense, bruteLen int, opt GripenbergOptions) (Bounds, error) {
	work, _, _ := Precondition(set)
	bf, err := BruteForceBoundsOpt(work, bruteLen, BruteForceOptions{Workers: opt.Workers})
	if err != nil {
		return Bounds{}, err
	}
	gp, gerr := Gripenberg(work, opt)
	out := Bounds{
		Lower:       math.Max(bf.Lower, gp.Lower),
		Upper:       math.Min(bf.Upper, gp.Upper),
		WitnessWord: bf.WitnessWord,
	}
	if gp.Lower > bf.Lower {
		out.WitnessWord = gp.WitnessWord
	}
	// The bracket above was computed on the transformed set. Similarity
	// preserves spectral radii exactly in real arithmetic but not in
	// floating point, so replay both candidate witnesses on the original
	// matrices and return the best rate actually attained there.
	bestRate, bestWord := 0.0, out.WitnessWord
	for _, w := range [][]int{bf.WitnessWord, gp.WitnessWord} {
		if len(w) == 0 {
			continue
		}
		rate, rerr := WitnessRate(set, w)
		if rerr != nil {
			continue
		}
		if rate > bestRate {
			bestRate, bestWord = rate, w
		}
	}
	if bestRate > 0 {
		out.Lower = bestRate
		out.WitnessWord = bestWord
	}
	if out.Upper < out.Lower {
		out.Upper = out.Lower
	}
	return out, gerr
}
