package jsr

import (
	"context"
	"fmt"
	"math"

	"adaptivertc/internal/mat"
)

// This file implements JSR bounds under *constrained* switching, after
// the tree-based algorithms of Dercole & Della Rossa (the paper's
// ref. [27]): switching sequences are restricted to the walks of a
// directed graph whose nodes carry matrix labels. The paper's main
// analysis assumes arbitrary switching (any interval can follow any
// other); the constrained variant connects the tool to the weakly-hard
// literature it compares against ([16]–[18]), where overrun patterns
// are limited to at most m overruns in any window of K jobs.

// Graph is a switching constraint: Nodes[i] labels node i with a matrix
// index into the analyzed set, and Next[i] lists the admissible
// successor nodes. A switching sequence is admissible iff it is the
// label sequence of a walk.
type Graph struct {
	Nodes []int
	Next  [][]int
}

// Validate checks the graph against a set of k matrices.
func (g *Graph) Validate(k int) error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("jsr: empty constraint graph")
	}
	if len(g.Next) != len(g.Nodes) {
		return fmt.Errorf("jsr: %d nodes but %d adjacency rows", len(g.Nodes), len(g.Next))
	}
	for i, lbl := range g.Nodes {
		if lbl < 0 || lbl >= k {
			return fmt.Errorf("jsr: node %d labelled %d, want [0,%d)", i, lbl, k)
		}
		for _, nxt := range g.Next[i] {
			if nxt < 0 || nxt >= len(g.Nodes) {
				return fmt.Errorf("jsr: node %d has successor %d out of range", i, nxt)
			}
		}
	}
	return nil
}

// CompleteGraph returns the unconstrained graph over k matrices (every
// matrix may follow every other) — with it, ConstrainedBounds reduces
// to BruteForceBounds.
func CompleteGraph(k int) *Graph {
	g := &Graph{Nodes: make([]int, k), Next: make([][]int, k)}
	for i := 0; i < k; i++ {
		g.Nodes[i] = i
		g.Next[i] = make([]int, k)
		for j := 0; j < k; j++ {
			g.Next[i][j] = j
		}
	}
	return g
}

// WeaklyHardGraph builds the constraint automaton of the weakly-hard
// model (m, K): label 1 (overrun) may occur at most m times in any
// window of K consecutive jobs; label 0 is a nominal job. The analyzed
// set must therefore have exactly two matrices: index 0 = nominal
// closed loop, index 1 = overrun closed loop. Automaton states encode
// the last K-1 outcomes (at most 2^(K-1) states, pruned to reachable
// ones that already satisfy the constraint).
func WeaklyHardGraph(m, k int) (*Graph, error) {
	if k < 1 || m < 0 || m > k {
		return nil, fmt.Errorf("jsr: invalid weakly-hard parameters (m=%d, K=%d)", m, k)
	}
	type state = int // bitmask of the last K-1 outcomes (LSB = most recent)
	width := k - 1
	mask := (1 << width) - 1
	ones := func(s int) int {
		c := 0
		for ; s != 0; s >>= 1 {
			c += s & 1
		}
		return c
	}
	// Enumerate reachable, constraint-satisfying histories; each node is
	// (history, lastOutcome). To keep the node count small we label the
	// node with the outcome that *entered* it.
	type node struct {
		hist  int
		label int
	}
	index := map[node]int{}
	var nodes []node
	addNode := func(nd node) int {
		if id, ok := index[nd]; ok {
			return id
		}
		id := len(nodes)
		index[nd] = id
		nodes = append(nodes, nd)
		return id
	}
	// Start states: empty history entering either outcome (if allowed).
	var queue []int
	start0 := addNode(node{hist: 0, label: 0})
	queue = append(queue, start0)
	if m >= 1 {
		s1 := addNode(node{hist: 1 & mask, label: 1})
		if width == 0 {
			s1 = addNode(node{hist: 0, label: 1})
		}
		queue = append(queue, s1)
	}
	adj := map[int][]int{}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if _, done := adj[id]; done {
			continue
		}
		nd := nodes[id]
		var succ []int
		for _, out := range []int{0, 1} {
			// Window = last K-1 outcomes + the new one.
			if ones(nd.hist)+out > m {
				continue
			}
			nh := 0
			if width > 0 {
				nh = ((nd.hist << 1) | out) & mask
			}
			nid := addNode(node{hist: nh, label: out})
			succ = append(succ, nid)
			if _, seen := adj[nid]; !seen {
				queue = append(queue, nid)
			}
		}
		adj[id] = succ
	}
	g := &Graph{Nodes: make([]int, len(nodes)), Next: make([][]int, len(nodes))}
	for id, nd := range nodes {
		g.Nodes[id] = nd.label
		g.Next[id] = adj[id]
	}
	return g, nil
}

// ConstrainedBounds brackets the constrained joint spectral radius: the
// largest asymptotic growth rate over switching sequences admitted by
// the graph. Lower bounds come from the spectral radii of products
// along closed walks (cycles); upper bounds from the norm sandwich over
// all admissible products of each length.
func ConstrainedBounds(set []*mat.Dense, g *Graph, maxLen int) (Bounds, error) {
	if _, err := validateSet(set); err != nil {
		return Bounds{}, err
	}
	if err := g.Validate(len(set)); err != nil {
		return Bounds{}, err
	}
	if maxLen < 1 {
		return Bounds{}, fmt.Errorf("jsr: maxLen must be ≥ 1, got %d", maxLen)
	}

	type walk struct {
		node  int
		start int // node where the walk began (for cycle detection)
		prod  *mat.Dense
		word  []int
	}
	var level []walk
	for i := range g.Nodes {
		level = append(level, walk{node: i, start: i, prod: set[g.Nodes[i]], word: []int{g.Nodes[i]}})
	}
	lower := 0.0
	upper := math.Inf(1)
	var witness []int
	for l := 1; l <= maxLen; l++ {
		maxNorm := 0.0
		exp := 1 / float64(l)
		for _, w := range level {
			if nv := norm(w.prod); nv > maxNorm {
				maxNorm = nv
			}
			// Cycles: only products along closed walks bound the
			// constrained JSR from below (they can be repeated forever).
			if closes(g, w.node, w.start) {
				rho, err := mat.SpectralRadius(w.prod)
				if err != nil {
					return Bounds{}, err
				}
				if lb := math.Pow(rho, exp); lb > lower {
					lower = lb
					witness = w.word
				}
			}
		}
		if ub := math.Pow(maxNorm, exp); ub < upper {
			upper = ub
		}
		if l == maxLen {
			break
		}
		var next []walk
		for _, w := range level {
			for _, nxt := range g.Next[w.node] {
				word := make([]int, len(w.word)+1)
				copy(word, w.word)
				word[len(word)-1] = g.Nodes[nxt]
				next = append(next, walk{
					node:  nxt,
					start: w.start,
					prod:  mat.Mul(set[g.Nodes[nxt]], w.prod),
					word:  word,
				})
			}
		}
		level = next
	}
	if upper < lower {
		upper = lower
	}
	return Bounds{Lower: lower, Upper: upper, WitnessWord: witness}, nil
}

// closes reports whether a walk ending at `node` can immediately return
// to `start` (so the walk is a cycle when extended by that edge — we
// treat walks whose end links back to their start as repeatable).
func closes(g *Graph, node, start int) bool {
	for _, nxt := range g.Next[node] {
		if nxt == start {
			return true
		}
	}
	return false
}

// cgripNode is a live branch of the constrained search: a walk ending
// at graph node `at`, started at `start` (needed for cycle detection).
type cgripNode struct {
	at    int
	start int
	prod  *mat.Dense
	word  []int
	cert  float64
}

// cgripChild is one expanded successor; rho is meaningful only when cyc
// is set (spectral radii of non-closable walks never bound the
// constrained JSR from below, so they are not computed).
type cgripChild struct {
	at   int
	prod *mat.Dense
	rho  float64
	cyc  bool
	cert float64
}

func cgripFrontierMax(fr []cgripNode) float64 {
	m := 0.0
	for _, nd := range fr {
		if nd.cert > m {
			m = nd.cert
		}
	}
	return m
}

// cgripCutBounds is the valid constrained bracket at a level boundary
// where the search stops early.
func cgripCutBounds(lower, delta float64, witness []int, frontier []cgripNode) Bounds {
	return Bounds{Lower: lower, Upper: math.Max(lower+delta, cgripFrontierMax(frontier)), WitnessWord: witness}
}

// expandCGripNode computes the out-degree children of one constrained
// frontier node into out, in successor order.
func expandCGripNode(set []*mat.Dense, g *Graph, nd cgripNode, exp float64, out []cgripChild) error {
	for j, nxt := range g.Next[nd.at] {
		p := mat.Mul(set[g.Nodes[nxt]], nd.prod)
		c := cgripChild{
			at:   nxt,
			prod: p,
			cert: math.Min(nd.cert, math.Pow(norm(p), exp)),
		}
		if closes(g, nxt, nd.start) {
			rho, err := mat.SpectralRadius(p)
			if err != nil {
				return err
			}
			c.rho, c.cyc = rho, true
		}
		out[j] = c
	}
	return nil
}

// ConstrainedGripenberg runs the branch-and-bound bound refinement on a
// switching graph with a background context; see
// ConstrainedGripenbergCtx.
func ConstrainedGripenberg(set []*mat.Dense, g *Graph, opt GripenbergOptions) (Bounds, error) {
	return ConstrainedGripenbergCtx(context.Background(), set, g, opt)
}

// ConstrainedGripenbergCtx runs the branch-and-bound bound refinement
// on a switching graph: identical pruning logic to Gripenberg, with the
// walk set restricted to the graph and lower bounds taken only from
// closable walks (whose periodic repetition is admissible). Levels are
// expanded in parallel with the same index-sharded, deterministically
// merged scheme as Gripenberg, so the result is identical for every
// Workers value. Combine with ConstrainedBounds via the caller;
// ErrBudget signals a valid but looser-than-requested bracket, returned
// only after the remaining node budget has been spent on a partial
// level. Cancellation and the Deadline option cut the search at a level
// boundary with the last fully merged bracket and an error wrapping
// ErrDeadline, like GripenbergCtx. Snapshot/Resume are not supported on
// the constrained search (the frontier carries graph positions, not
// just words); setting either is an error.
func ConstrainedGripenbergCtx(ctx context.Context, set []*mat.Dense, g *Graph, opt GripenbergOptions) (Bounds, error) {
	if _, err := validateSet(set); err != nil {
		return Bounds{}, err
	}
	if err := g.Validate(len(set)); err != nil {
		return Bounds{}, err
	}
	if opt.Snapshot != nil || opt.Resume != nil {
		return Bounds{}, fmt.Errorf("jsr: Snapshot/Resume are not supported by the constrained search")
	}
	if opt.Expand != nil {
		return Bounds{}, fmt.Errorf("jsr: Expand hooks are not supported by the constrained search")
	}
	opt, err := opt.withDefaults()
	if err != nil {
		return Bounds{}, err
	}
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}

	lower := 0.0
	var witness []int
	nodes := 0
	var frontier []cgripNode
	for i := range g.Nodes {
		p := set[g.Nodes[i]]
		nd := cgripNode{at: i, start: i, prod: p, word: []int{g.Nodes[i]}, cert: norm(p)}
		if closes(g, i, i) {
			rho, err := mat.SpectralRadius(p)
			if err != nil {
				return Bounds{}, err
			}
			if rho > lower {
				lower = rho
				witness = nd.word
			}
		}
		frontier = append(frontier, nd)
		nodes++
	}
	depth := 1
	for len(frontier) > 0 && depth < opt.MaxDepth {
		if cerr := ctx.Err(); cerr != nil {
			return cgripCutBounds(lower, opt.Delta, witness, frontier), deadlineErr(ctx, cerr)
		}
		kept := frontier[:0]
		for _, nd := range frontier {
			if nd.cert > lower+opt.Delta {
				kept = append(kept, nd)
			}
		}
		frontier = kept
		if len(frontier) == 0 {
			break
		}

		// Child slots are laid out by prefix sums of the per-node
		// out-degree: node fi owns slots [offs[fi], offs[fi+1]).
		offs := make([]int, len(frontier)+1)
		for fi, nd := range frontier {
			offs[fi+1] = offs[fi] + len(g.Next[nd.at])
		}

		// Budget: expand the longest prefix of whole nodes whose
		// cumulative growth fits the remaining budget, so a partial
		// level still tightens the bracket before ErrBudget.
		remaining := opt.MaxNodes - nodes
		expand := len(frontier)
		for expand > 0 && offs[expand] > remaining {
			expand--
		}
		if expand == 0 {
			return cgripCutBounds(lower, opt.Delta, witness, frontier), ErrBudget
		}

		depth++
		exp := 1 / float64(depth)
		children := make([]cgripChild, offs[expand])
		err := parallelRanges(ctx, expand, opt.Workers, func(ctx context.Context, lo, hi int) error {
			for fi := lo; fi < hi; fi++ {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				nd := frontier[fi]
				if gerr := expandGuard(nd.word, func() error {
					return expandCGripNode(set, g, nd, exp, children[offs[fi]:offs[fi+1]])
				}); gerr != nil {
					return gerr
				}
			}
			return nil
		})
		if err != nil {
			if isCtxErr(err) {
				// Mid-level cut: discard the partial level and report
				// the bracket of the last fully merged one.
				return cgripCutBounds(lower, opt.Delta, witness, frontier), deadlineErr(ctx, err)
			}
			return Bounds{}, err
		}
		nodes += offs[expand]

		// Merge pass 1: raise the lower bound from closable children,
		// lowest index winning ties via the strictly-greater scan.
		parentOf := func(ci int) int {
			fi := 0
			for offs[fi+1] <= ci {
				fi++
			}
			return fi
		}
		bestIdx := -1
		for ci := range children {
			if !children[ci].cyc {
				continue
			}
			if lb := math.Pow(children[ci].rho, exp); lb > lower {
				lower = lb
				bestIdx = ci
			}
		}
		if bestIdx >= 0 {
			pw := frontier[parentOf(bestIdx)].word
			witness = make([]int, len(pw)+1)
			copy(witness, pw)
			witness[len(witness)-1] = g.Nodes[children[bestIdx].at]
		}

		// Merge pass 2: survivors against the final per-level lower.
		// The in-order walk advances the parent cursor incrementally.
		next := make([]cgripNode, 0, len(children))
		fi := 0
		for ci := range children {
			for offs[fi+1] <= ci {
				fi++
			}
			c := &children[ci]
			if c.cert <= lower+opt.Delta {
				continue
			}
			parent := frontier[fi]
			word := make([]int, len(parent.word)+1)
			copy(word, parent.word)
			word[len(word)-1] = g.Nodes[c.at]
			next = append(next, cgripNode{at: c.at, start: parent.start, prod: c.prod, word: word, cert: c.cert})
		}

		if expand < len(frontier) {
			upper := math.Max(lower+opt.Delta, math.Max(cgripFrontierMax(next), cgripFrontierMax(frontier[expand:])))
			return Bounds{Lower: lower, Upper: upper, WitnessWord: witness}, ErrBudget
		}
		frontier = next
	}
	if len(frontier) == 0 {
		return Bounds{Lower: lower, Upper: lower + opt.Delta, WitnessWord: witness}, nil
	}
	return cgripCutBounds(lower, opt.Delta, witness, frontier), ErrBudget
}
