package jsr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivertc/internal/mat"
)

func TestSingletonEqualsSpectralRadius(t *testing.T) {
	a := mat.FromRows([][]float64{{0.5, 1}, {0, 0.3}})
	rho, _ := mat.SpectralRadius(a)
	b, err := BruteForceBounds([]*mat.Dense{a}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower > rho+1e-12 || b.Lower < rho-1e-12 {
		t.Fatalf("lower = %v, want ρ = %v", b.Lower, rho)
	}
	if b.Upper < rho-1e-12 {
		t.Fatalf("upper = %v < ρ = %v", b.Upper, rho)
	}
	// For a non-normal matrix the norm certificates tighten only like
	// ‖Aᵐ‖^{1/m}, so a coarse delta converges while a very fine one may
	// exhaust the depth budget with a still-valid bracket.
	g, err := Gripenberg([]*mat.Dense{a}, GripenbergOptions{Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if g.Lower < rho-1e-9 || g.Upper > rho+0.05+1e-9 {
		t.Fatalf("Gripenberg %v, want ≈ %v", g, rho)
	}
	gTight, err := Gripenberg([]*mat.Dense{a}, GripenbergOptions{Delta: 1e-4})
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatal(err)
	}
	if gTight.Lower > rho+1e-9 || gTight.Upper < rho-1e-9 {
		t.Fatalf("tight bracket %v does not contain ρ = %v", gTight, rho)
	}
}

func TestDiagonalSetJSRIsMaxRho(t *testing.T) {
	set := []*mat.Dense{mat.Diag(0.5, 0.2), mat.Diag(0.3, 0.8)}
	g, err := Gripenberg(set, GripenbergOptions{Delta: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Lower-0.8) > 1e-9 {
		t.Fatalf("lower = %v, want 0.8", g.Lower)
	}
	if g.Upper > 0.8+1e-3 {
		t.Fatalf("upper = %v", g.Upper)
	}
}

func TestGoldenRatioPair(t *testing.T) {
	// Classic example: JSR({[[1,1],[0,1]], [[1,0],[1,1]]}) = φ.
	set := []*mat.Dense{
		mat.FromRows([][]float64{{1, 1}, {0, 1}}),
		mat.FromRows([][]float64{{1, 0}, {1, 1}}),
	}
	phi := (1 + math.Sqrt(5)) / 2
	b, err := BruteForceBounds(set, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Lower-phi) > 1e-9 {
		t.Fatalf("brute lower = %v, want φ = %v", b.Lower, phi)
	}
	if b.Upper < phi-1e-9 {
		t.Fatalf("brute upper = %v < φ", b.Upper)
	}
	// Gripenberg must bracket φ. (Norm-based upper bounds converge
	// slowly here, so allow the budget-exhausted path as long as the
	// bracket is valid.)
	g, err := Gripenberg(set, GripenbergOptions{Delta: 0.05, MaxDepth: 25})
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatal(err)
	}
	if g.Lower > phi+1e-9 || g.Upper < phi-1e-9 {
		t.Fatalf("Gripenberg bracket %v does not contain φ = %v", g, phi)
	}
	if math.Abs(g.Lower-phi) > 1e-6 {
		t.Fatalf("Gripenberg lower = %v, want φ", g.Lower)
	}
}

func TestBoundsOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		n := 1 + rng.Intn(3)
		set := make([]*mat.Dense, k)
		for i := range set {
			m := mat.New(n, n)
			for r := 0; r < n; r++ {
				for c := 0; c < n; c++ {
					m.Set(r, c, rng.NormFloat64())
				}
			}
			set[i] = m
		}
		b, err := BruteForceBounds(set, 5)
		if err != nil {
			return false
		}
		if b.Lower > b.Upper+1e-12 {
			return false
		}
		g, err := Gripenberg(set, GripenbergOptions{Delta: 0.02, MaxDepth: 12, MaxNodes: 100000})
		if err != nil && !errors.Is(err, ErrBudget) {
			return false
		}
		// The two brackets must intersect (they bound the same number).
		return g.Lower <= b.Upper+1e-9 && b.Lower <= g.Upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStabilityVerdicts(t *testing.T) {
	stable := []*mat.Dense{mat.Diag(0.5), mat.Diag(0.7)}
	b, err := Gripenberg(stable, GripenbergOptions{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !b.CertifiesStable() || b.CertifiesUnstable() {
		t.Fatalf("stable set verdicts wrong: %v", b)
	}
	unstable := []*mat.Dense{mat.Diag(1.2), mat.Diag(0.7)}
	b, err = Gripenberg(unstable, GripenbergOptions{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !b.CertifiesUnstable() || b.CertifiesStable() {
		t.Fatalf("unstable set verdicts wrong: %v", b)
	}
}

func TestScalingHomogeneity(t *testing.T) {
	// JSR(cA) = c·JSR(A): verify on the bracket.
	set := []*mat.Dense{
		mat.FromRows([][]float64{{0.3, 0.4}, {0, 0.5}}),
		mat.FromRows([][]float64{{0.5, 0}, {0.2, 0.3}}),
	}
	c := 1.7
	scaled := []*mat.Dense{mat.Scale(c, set[0]), mat.Scale(c, set[1])}
	b1, err := BruteForceBounds(set, 8)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BruteForceBounds(scaled, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b2.Lower-c*b1.Lower) > 1e-9 || math.Abs(b2.Upper-c*b1.Upper) > 1e-9 {
		t.Fatalf("homogeneity violated: %v vs scaled %v", b1, b2)
	}
}

func TestEmptySetAndBadArgs(t *testing.T) {
	if _, err := BruteForceBounds(nil, 3); !errors.Is(err, ErrEmptySet) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Gripenberg(nil, GripenbergOptions{}); !errors.Is(err, ErrEmptySet) {
		t.Fatalf("err = %v", err)
	}
	if _, err := BruteForceBounds([]*mat.Dense{mat.Eye(2)}, 0); err == nil {
		t.Fatal("maxLen=0 accepted")
	}
	if _, err := BruteForceBounds([]*mat.Dense{mat.Eye(2), mat.Eye(3)}, 2); err == nil {
		t.Fatal("mixed dimensions accepted")
	}
	if _, err := Gripenberg([]*mat.Dense{mat.Eye(2)}, GripenbergOptions{Delta: -1}); err == nil {
		t.Fatal("negative delta accepted")
	}
}

func TestGripenbergBudgetStillValid(t *testing.T) {
	// Force a tiny budget; bounds must still bracket the true value
	// (here JSR = 1 for a pair of rotations).
	theta := 0.5
	rot := func(s float64) *mat.Dense {
		return mat.FromRows([][]float64{
			{math.Cos(s), -math.Sin(s)},
			{math.Sin(s), math.Cos(s)},
		})
	}
	set := []*mat.Dense{rot(theta), rot(-theta * 0.7)}
	b, err := Gripenberg(set, GripenbergOptions{Delta: 1e-6, MaxDepth: 30, MaxNodes: 50})
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatal(err)
	}
	if b.Lower > 1+1e-9 || b.Upper < 1-1e-9 {
		t.Fatalf("bracket %v does not contain 1", b)
	}
}

func TestEstimateIntersectsBrackets(t *testing.T) {
	set := []*mat.Dense{
		mat.FromRows([][]float64{{0.6, 0.3}, {0, 0.4}}),
		mat.FromRows([][]float64{{0.2, 0}, {0.5, 0.7}}),
	}
	est, err := Estimate(set, 6, GripenbergOptions{Delta: 0.01})
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatal(err)
	}
	bf, _ := BruteForceBounds(set, 6)
	if est.Upper > bf.Upper+1e-12 {
		t.Fatalf("Estimate upper %v worse than brute force %v", est.Upper, bf.Upper)
	}
	if est.Lower < bf.Lower-1e-12 {
		t.Fatalf("Estimate lower %v worse than brute force %v", est.Lower, bf.Lower)
	}
	if est.Lower > est.Upper {
		t.Fatalf("inverted bracket %v", est)
	}
}

func TestBruteForceMonotoneUpper(t *testing.T) {
	// Deeper enumeration can only tighten the upper bound.
	set := []*mat.Dense{
		mat.FromRows([][]float64{{0.9, 0.5}, {0, 0.1}}),
		mat.FromRows([][]float64{{0.1, 0}, {0.5, 0.9}}),
	}
	prev := math.Inf(1)
	for _, l := range []int{1, 2, 4, 6} {
		b, err := BruteForceBounds(set, l)
		if err != nil {
			t.Fatal(err)
		}
		if b.Upper > prev+1e-12 {
			t.Fatalf("upper bound rose from %v to %v at depth %d", prev, b.Upper, l)
		}
		prev = b.Upper
	}
}

func witnessRate(t *testing.T, set []*mat.Dense, word []int) float64 {
	t.Helper()
	if len(word) == 0 {
		t.Fatal("empty witness word")
	}
	p := set[word[0]]
	for _, i := range word[1:] {
		p = mat.Mul(set[i], p)
	}
	rho, err := mat.SpectralRadius(p)
	if err != nil {
		t.Fatal(err)
	}
	return math.Pow(rho, 1/float64(len(word)))
}

func TestWitnessWordReproducesLowerBound(t *testing.T) {
	set := []*mat.Dense{
		mat.FromRows([][]float64{{1, 1}, {0, 1}}),
		mat.FromRows([][]float64{{1, 0}, {1, 1}}),
	}
	b, err := BruteForceBounds(set, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := witnessRate(t, set, b.WitnessWord); math.Abs(got-b.Lower) > 1e-9 {
		t.Fatalf("brute witness rate %v != lower %v (word %v)", got, b.Lower, b.WitnessWord)
	}
	g, err := Gripenberg(set, GripenbergOptions{Delta: 0.05, MaxDepth: 12})
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatal(err)
	}
	if got := witnessRate(t, set, g.WitnessWord); math.Abs(got-g.Lower) > 1e-9 {
		t.Fatalf("Gripenberg witness rate %v != lower %v (word %v)", got, g.Lower, g.WitnessWord)
	}
	// For the golden-ratio pair the optimal word alternates the two
	// generators.
	alternates := true
	for i := 1; i < len(g.WitnessWord); i++ {
		if g.WitnessWord[i] == g.WitnessWord[i-1] {
			alternates = false
		}
	}
	if !alternates {
		t.Logf("note: witness %v does not alternate (still a valid maximizer)", g.WitnessWord)
	}
}

func TestWitnessWordSingleton(t *testing.T) {
	set := []*mat.Dense{mat.Diag(0.5, 0.2)}
	b, err := BruteForceBounds(set, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range b.WitnessWord {
		if i != 0 {
			t.Fatalf("witness %v references a missing matrix", b.WitnessWord)
		}
	}
}

// pmsmLikeSet builds a small non-normal stable set resembling the
// closed-loop families the repository analyzes.
func pmsmLikeSet() []*mat.Dense {
	return []*mat.Dense{
		mat.FromRows([][]float64{{0.8, 0.3, 0}, {0, 0.7, 0.2}, {0.1, 0, 0.75}}),
		mat.FromRows([][]float64{{0.85, 0, 0.25}, {0.15, 0.65, 0}, {0, 0.1, 0.8}}),
	}
}

func BenchmarkGripenberg(b *testing.B) {
	set := pmsmLikeSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Gripenberg(set, GripenbergOptions{Delta: 0.01, MaxDepth: 20}); err != nil && !errors.Is(err, ErrBudget) {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimatePreconditioned(b *testing.B) {
	set := pmsmLikeSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(set, 5, GripenbergOptions{Delta: 0.01, MaxDepth: 20}); err != nil && !errors.Is(err, ErrBudget) {
			b.Fatal(err)
		}
	}
}
