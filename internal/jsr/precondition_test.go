package jsr

import (
	"errors"
	"math"
	"testing"

	"adaptivertc/internal/mat"
)

// nonNormalPair builds a stable but highly non-normal set whose raw
// norm bounds are loose: both matrices are upper triangular, so every
// product is too and the JSR equals the largest diagonal entry (0.6),
// while the 2-norms exceed 5.
func nonNormalPair() []*mat.Dense {
	return []*mat.Dense{
		mat.FromRows([][]float64{{0.6, 5}, {0, 0.5}}),
		mat.FromRows([][]float64{{0.4, 7}, {0, 0.55}}),
	}
}

func TestPreconditionPreservesJSRBracket(t *testing.T) {
	set := nonNormalPair()
	work, m, ok := Precondition(set)
	if !ok {
		t.Fatal("preconditioning failed on a stable set")
	}
	if m == nil {
		t.Fatal("no transform returned")
	}
	// Spectral radii of corresponding products are preserved
	// (similarity invariance), e.g. for pairwise products.
	for i := range set {
		for j := range set {
			p1, _ := mat.SpectralRadius(mat.Mul(set[i], set[j]))
			p2, _ := mat.SpectralRadius(mat.Mul(work[i], work[j]))
			if math.Abs(p1-p2) > 1e-7*(1+p1) {
				t.Fatalf("similarity broke product spectra: %v vs %v", p1, p2)
			}
		}
	}
}

func TestPreconditionTightensNormBounds(t *testing.T) {
	set := nonNormalPair()
	raw, err := BruteForceBounds(set, 3)
	if err != nil {
		t.Fatal(err)
	}
	work, _, ok := Precondition(set)
	if !ok {
		t.Fatal("preconditioning failed")
	}
	pre, err := BruteForceBounds(work, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Upper >= raw.Upper {
		t.Fatalf("preconditioning did not tighten the upper bound: %v vs %v", pre.Upper, raw.Upper)
	}
	// Both brackets must contain the same JSR.
	if pre.Upper < raw.Lower-1e-9 || raw.Upper < pre.Lower-1e-9 {
		t.Fatalf("disjoint brackets: raw %v, preconditioned %v", raw, pre)
	}
}

func TestEstimateCertifiesNonNormalStableSet(t *testing.T) {
	// Without preconditioning this set's norm bounds sit far above 1;
	// Estimate must still certify stability.
	b, err := Estimate(nonNormalPair(), 4, GripenbergOptions{Delta: 0.02, MaxDepth: 20})
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatal(err)
	}
	if !b.CertifiesStable() {
		t.Fatalf("stable non-normal set not certified: %v", b)
	}
}

func TestPreconditionHandlesDegenerateInputs(t *testing.T) {
	// Empty set: graceful failure.
	if _, _, ok := Precondition(nil); ok {
		t.Fatal("empty set preconditioned")
	}
	// Zero matrices: gamma falls back to 1 and the identity-ish
	// transform succeeds or fails gracefully — either is fine, but no
	// panic and a valid (possibly identical) set.
	set := []*mat.Dense{mat.New(2, 2)}
	work, _, _ := Precondition(set)
	if len(work) != 1 {
		t.Fatal("set size changed")
	}
}
